// Command prvm-replay inspects, verifies and diffs placement decision
// recordings (internal/obs/record, DESIGN.md §11).
//
// Usage:
//
//	prvm-replay rec.jsonl[.gz]           summarize a recording
//	prvm-replay -verify rec.jsonl[.gz]   golden regression: re-run the
//	                                     recorded config through the
//	                                     current code and require a
//	                                     bit-identical decision stream
//	prvm-replay -diff a.jsonl b.jsonl    decision-by-decision diff of
//	                                     two recordings
//	prvm-replay -phases rec.jsonl[.gz]   per-phase latency percentiles
//
// -verify replays from the recording's self-describing header (trace,
// seed, VM count, inventory, horizon), reports replay throughput, and
// exits nonzero on the first divergent decision — the CI gate that
// placement semantics did not drift. -diff compares two existing
// recordings positionally (e.g. fast-path vs -record-nofast runs of
// the same seed) and exits nonzero when they diverge. Decision
// identity ignores metadata (seq, engine flag, timings); scores are
// compared bitwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs/record"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-replay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-replay", flag.ContinueOnError)
	var (
		verify = fs.Bool("verify", false, "replay the recording through the current code and fail on any decision divergence")
		diff   = fs.Bool("diff", false, "diff two recordings decision-by-decision")
		phases = fs.Bool("phases", false, "print per-phase latency percentiles only")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: prvm-replay [-verify | -diff | -phases] recording [recording]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *diff:
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs two recordings, got %d", fs.NArg())
		}
		return runDiff(fs.Arg(0), fs.Arg(1))
	case *verify:
		if fs.NArg() != 1 {
			return fmt.Errorf("-verify needs one recording, got %d", fs.NArg())
		}
		return runVerify(fs.Arg(0))
	case *phases:
		if fs.NArg() != 1 {
			return fmt.Errorf("-phases needs one recording, got %d", fs.NArg())
		}
		return runPhases(fs.Arg(0))
	default:
		if fs.NArg() != 1 {
			fs.Usage()
			return fmt.Errorf("need one recording, got %d", fs.NArg())
		}
		return runSummary(fs.Arg(0))
	}
}

// runVerify is the golden regression: reconstruct the recorded run
// from its header, diff the fresh decision stream against the
// recording, and report replay throughput.
func runVerify(path string) error {
	hdr, recorded, _, err := record.ReadAll(path)
	if err != nil {
		return err
	}
	printMeta(path, hdr.Meta)
	start := time.Now()
	replayed, _, res, err := experiments.Replay(hdr.Meta)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(len(replayed)) / elapsed.Seconds()
	fmt.Printf("replayed %d decisions in %v (%.0f decisions/s)\n", len(replayed), elapsed.Round(time.Millisecond), rate)
	fmt.Printf("replay result: pms=%d energy=%.2fkWh migrations=%d slo=%.2f%%\n",
		res.PMsUsed, res.EnergyKWh, res.Migrations, res.SLOViolationPct)
	sum := record.Diff(recorded, replayed)
	if err := sum.Write(os.Stdout); err != nil {
		return err
	}
	if !sum.Clean() {
		return fmt.Errorf("recording diverges from current code (%d of %d decisions)", sum.Divergent, sum.ADecisions)
	}
	fmt.Println("verify: OK — current code reproduces the recording bit-identically")
	return nil
}

func runDiff(pathA, pathB string) error {
	_, a, _, err := record.ReadAll(pathA)
	if err != nil {
		return fmt.Errorf("%s: %w", pathA, err)
	}
	_, b, _, err := record.ReadAll(pathB)
	if err != nil {
		return fmt.Errorf("%s: %w", pathB, err)
	}
	fmt.Printf("A: %s (%d decisions)\nB: %s (%d decisions)\n", pathA, len(a), pathB, len(b))
	sum := record.Diff(a, b)
	if err := sum.Write(os.Stdout); err != nil {
		return err
	}
	if !sum.Clean() {
		return fmt.Errorf("recordings diverge (%d decisions)", sum.Divergent)
	}
	return nil
}

func runPhases(path string) error {
	_, decisions, spans, err := record.ReadAll(path)
	if err != nil {
		return err
	}
	return record.WritePhases(os.Stdout, record.SummarizePhases(decisions, spans))
}

func runSummary(path string) error {
	hdr, decisions, spans, err := record.ReadAll(path)
	if err != nil {
		return err
	}
	printMeta(path, hdr.Meta)
	placed, opened, rejected, fast := 0, 0, 0, 0
	for _, d := range decisions {
		switch {
		case d.Rejected:
			rejected++
		case d.Opened:
			opened++
		default:
			placed++
		}
		if d.Fast {
			fast++
		}
	}
	fmt.Printf("decisions: %d (placed %d, opened %d, rejected %d; fast-path %d), spans: %d\n",
		len(decisions), placed, opened, rejected, fast, len(spans))
	return record.WritePhases(os.Stdout, record.SummarizePhases(decisions, spans))
}

func printMeta(path string, m record.RunMeta) {
	fmt.Printf("%s: %s run, trace=%s seed=%d vms=%d pms/type=%d steps=%d",
		path, orUnknown(m.Kind), orUnknown(m.Trace), m.Seed, m.NumVMs, m.PMsPerType, m.Steps)
	if m.Algorithm != "" {
		fmt.Printf(" alg=%s", m.Algorithm)
	}
	if m.NoFastPath {
		fmt.Print(" nofast")
	}
	fmt.Println()
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}
