// Command prvm-serve runs the placement daemon: a PageRankVM placement
// engine behind an HTTP/JSON API, with sharded cluster state, admission
// batching, and write-ahead-log durability (API.md, DESIGN.md §14).
//
// Usage:
//
//	prvm-serve [-addr :8080] [-data dir] [-shards n] [-pms n]
//	           [-seed s] [-fsync] [-batch-max n] [-batch-wait d]
//	           [-snapshot-every n] [-rebalance-every d]
//	           [-rebalance-budget n] [-rebalance-pm-budget n]
//	           [-drain-below f]
//
// The cluster is -pms hosts of each Table II PM type from the Amazon
// catalog; rank tables are built at startup. With -data set, accepted
// decisions are appended to a WAL in that directory and periodic
// snapshots bound replay time; restarting with the same -data and
// -shards recovers the exact pre-crash state. Without -data the server
// is in-memory only.
//
// Telemetry (JSON metrics, decision traces, pprof) is served in-process
// on /metrics, /metrics.json, /events and /debug/pprof/ of the same
// listener. SIGINT/SIGTERM shut down gracefully: in-flight requests
// finish, a final snapshot is cut, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pagerankvm/internal/deschedule"
	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		dataDir   = fs.String("data", "", "durability directory for WAL + snapshots (empty = in-memory)")
		shards    = fs.Int("shards", 0, "state shards (0 = one per CPU, capped at 8)")
		pms       = fs.Int("pms", 64, "PMs per Table II type")
		seed      = fs.Int64("seed", 1, "base placer seed")
		fsync     = fs.Bool("fsync", false, "fsync the WAL before acknowledging (durable across power loss)")
		batchMax  = fs.Int("batch-max", 0, "max placements per admission batch (0 = default)")
		batchWait = fs.Duration("batch-wait", 0, "hold admission batches open this long (0 = greedy group commit)")
		snapEvery = fs.Int64("snapshot-every", 0, "ops between automatic snapshots (0 = default, <0 disables)")
		rebEvery  = fs.Duration("rebalance-every", 0, "period between background descheduler rounds (0 disables the loop)")
		rebBudget = fs.Int("rebalance-budget", 0, "max migrations per descheduler round (0 = default)")
		rebPM     = fs.Int("rebalance-pm-budget", 0, "max migrations off one PM per round (0 = default)")
		drainFrac = fs.Float64("drain-below", 0, "fill fraction under which the descheduler evacuates a PM (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cat, err := experiments.AmazonCatalog()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "building rank tables...")
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		return err
	}

	observer := obs.New()
	ring := obs.NewRingSink(4096)
	observer.SetSink(ring)

	s, err := serve.New(serve.Config{
		Rankers:        reg,
		PMs:            cat.BuildCluster(*pms).PMs(),
		NewVM:          cat.NewVM,
		Shards:         *shards,
		Seed:           *seed,
		DataDir:        *dataDir,
		Fsync:          *fsync,
		BatchMax:       *batchMax,
		BatchWait:      *batchWait,
		SnapshotEvery:  *snapEvery,
		Obs:            observer,
		Sink:           ring,
		RebalanceEvery: *rebEvery,
		Rebalance: deschedule.Config{
			MaxMovesPerRound: *rebBudget,
			MaxMovesPerPM:    *rebPM,
			DrainBelow:       *drainFrac,
		},
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		info := s.Recovery()
		fmt.Fprintf(os.Stderr, "recovered %d VMs (snapshot seq %d, %d WAL ops replayed, truncated=%v)\n",
			info.VMs, info.SnapshotSeq, info.ReplayedOps, info.Truncated)
	}

	hs := &http.Server{Addr: *addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "prvm-serve on %s (shards=%d pms=%d/type data=%q fsync=%v)\n",
		*addr, s.NumShards(), *pms, *dataDir, *fsync)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		_ = s.Close()
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "caught %v, shutting down...\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-serve: http shutdown:", err)
	}
	return s.Close()
}
