// Command prvm-bench runs the repo's hot-path micro-benchmarks and
// writes a machine-readable summary to a JSON file (BENCH_pr10.json by
// default). It shells out to `go test -bench`, parses the standard
// benchmark output, and pairs up before/after variants — fast vs
// legacy, csr vs slices, parallel vs serial, recording off vs on,
// cache miss vs hit — into explicit speedup comparisons so a reviewer
// (or CI) can assert on the ratios. It then records and replays one
// small seeded simulation in-process, folding replay throughput and
// per-phase latency percentiles into the report (DESIGN.md §11).
//
// With -compare the run is additionally diffed against a recorded
// baseline report: any benchmark present in both reports fails the run
// when its ns/op regresses past -tolerance (default 15%) or its
// allocs/op increases. ns/op is machine- and load-dependent —
// comparing across different hardware needs a loose tolerance — while
// allocs/op compares exactly for the serial hot paths. The one
// exception: benchmarks already paying many allocs/op (the parallel
// work-stealing builds) jitter by ±1 with goroutine scheduling, so
// those get a one-alloc slack — a real regression on such a path adds
// allocations per item, far more than one per op.
//
// Usage:
//
//	prvm-bench [-bench regex] [-pkg ./...] [-benchtime 1s] [-count 1]
//	           [-out BENCH_pr10.json] [-replay-vms n]
//	           [-compare BENCH_prN.json] [-tolerance 0.15]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs/record"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-bench:", err)
		os.Exit(1)
	}
}

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsPer  *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// comparison relates a baseline variant to its optimized counterpart
// under the same parent benchmark.
type comparison struct {
	Benchmark string   `json:"benchmark"`
	Baseline  string   `json:"baseline"`
	Candidate string   `json:"candidate"`
	SpeedupX  float64  `json:"speedup_x"` // baseline ns/op divided by candidate ns/op
	BaseNs    float64  `json:"baseline_ns_per_op"`
	CandNs    float64  `json:"candidate_ns_per_op"`
	BaseAlloc *float64 `json:"baseline_allocs_per_op,omitempty"`
	CandAlloc *float64 `json:"candidate_allocs_per_op,omitempty"`
}

type report struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Timestamp  string        `json:"timestamp"`
	BenchRegex string        `json:"bench_regex"`
	Results    []result      `json:"results"`
	Compare    []comparison  `json:"comparisons"`
	Replay     *replayReport `json:"replay,omitempty"`
}

// replayReport is the record/replay macro-benchmark: one small seeded
// simulation recorded to a gzip JSONL file and replayed from its
// header, with decision throughput and the recording's per-phase
// latency percentiles.
type replayReport struct {
	NumVMs          int                   `json:"num_vms"`
	PMsPerType      int                   `json:"pms_per_type"`
	Steps           int                   `json:"steps"`
	Seed            int64                 `json:"seed"`
	Decisions       int64                 `json:"decisions"`
	RecordSeconds   float64               `json:"record_seconds"`
	ReplaySeconds   float64               `json:"replay_seconds"`
	DecisionsPerSec float64               `json:"replay_decisions_per_sec"`
	Phases          []record.PhaseSummary `json:"phases"`
}

// variantPairs names the (baseline, candidate) sub-benchmark pairs the
// harness knows how to relate. Order matters only for the report.
var variantPairs = [][2]string{
	{"legacy", "fast"},
	{"slices", "csr"},
	{"serial", "parallel"},
	// Recording off vs on: the "speedup" is below 1 by design — it
	// prices what enabling decision recording costs a full Place call.
	{"off", "on"},
	// Cache miss vs hit: the ratio is the per-lookup win of reusing a
	// built table instead of rebuilding it.
	{"miss", "hit"},
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-bench", flag.ContinueOnError)
	var (
		benchRe   = fs.String("bench", "BenchmarkPlaceLookup|BenchmarkSpaceWire|BenchmarkRanksCSR|BenchmarkRecordOverhead|BenchmarkTableCache|BenchmarkRebalanceStep", "benchmark regex passed to go test -bench")
		pkg       = fs.String("pkg", ".", "package pattern to benchmark")
		benchtime = fs.String("benchtime", "", "go test -benchtime value (empty = default)")
		count     = fs.Int("count", 1, "go test -count value")
		out       = fs.String("out", "BENCH_pr10.json", "output JSON file")
		replayVMs = fs.Int("replay-vms", 120, "VM count of the record/replay macro-benchmark (0 disables it)")
		baseline  = fs.String("compare", "", "baseline BENCH_prN.json to gate against (empty = no gate)")
		tolerance = fs.Float64("tolerance", 0.15, "allowed fractional ns/op regression vs -compare baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cmdArgs := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
	}
	cmdArgs = append(cmdArgs, *pkg)

	fmt.Fprintf(os.Stderr, "prvm-bench: go %s\n", strings.Join(cmdArgs, " "))
	cmd := exec.Command("go", cmdArgs...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	_, _ = os.Stderr.Write(buf.Bytes())

	results, err := parseBench(&buf)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *benchRe)
	}
	// The id-indexed lookup path must stay allocation-free: the
	// hotalloc analyzer and the alloc_gate test assert it statically
	// and in-process, and the harness refuses to bless a regression.
	for _, r := range results {
		if r.Name == "BenchmarkPlaceLookup/fast" && r.AllocsPer != nil && *r.AllocsPer > 0 {
			return fmt.Errorf("%s allocates %.1f allocs/op, want 0", r.Name, *r.AllocsPer)
		}
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		BenchRegex: *benchRe,
		Results:    results,
		Compare:    pairUp(results),
	}
	if *replayVMs > 0 {
		rr, err := benchReplay(*replayVMs)
		if err != nil {
			return fmt.Errorf("replay benchmark: %w", err)
		}
		rep.Replay = rr
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "prvm-bench: wrote %s (%d results, %d comparisons)\n", *out, len(rep.Results), len(rep.Compare))
	for _, c := range rep.Compare {
		fmt.Fprintf(os.Stderr, "  %s: %s %.4gx faster than %s (%.4g vs %.4g ns/op)\n",
			c.Benchmark, c.Candidate, c.SpeedupX, c.Baseline, c.CandNs, c.BaseNs)
	}
	if rep.Replay != nil {
		fmt.Fprintf(os.Stderr, "  replay: %d decisions at %.0f decisions/s (record %.2fs, replay %.2fs)\n",
			rep.Replay.Decisions, rep.Replay.DecisionsPerSec, rep.Replay.RecordSeconds, rep.Replay.ReplaySeconds)
	}
	if *baseline != "" {
		if err := compareBaseline(*baseline, rep, *tolerance); err != nil {
			return err
		}
	}
	return nil
}

// compareBaseline gates the current run against a recorded report:
// every benchmark present in both fails the run when its ns/op
// regresses by more than tol (fractional) or its allocs/op increases
// at all. Benchmarks present only on one side are reported but never
// fail — the gate must not break when benchmarks are added or retired.
func compareBaseline(path string, cur report, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare: parse %s: %w", path, err)
	}
	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	var fails []string
	compared := 0
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "  compare: %s: new benchmark, no baseline\n", r.Name)
			continue
		}
		compared++
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g (+%.0f%%, tolerance %.0f%%)",
				r.Name, r.NsPerOp, b.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if b.AllocsPer != nil && r.AllocsPer != nil {
			// Zero- and few-alloc hot paths compare exactly; paths
			// already paying many allocs/op (parallel work-stealing
			// builds) jitter by ±1 with goroutine scheduling, and a
			// real regression there adds far more than one alloc/op.
			slack := 0.0
			if *b.AllocsPer >= 16 {
				slack = 1
			}
			if *r.AllocsPer > *b.AllocsPer+slack {
				fails = append(fails, fmt.Sprintf("%s: %.1f allocs/op vs baseline %.1f — allocation regression fails",
					r.Name, *r.AllocsPer, *b.AllocsPer))
			}
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "  REGRESSION:", f)
		}
		return fmt.Errorf("compare: %d regression(s) vs %s", len(fails), path)
	}
	fmt.Fprintf(os.Stderr, "prvm-bench: compare OK — %d benchmarks within %.0f%% of %s, no alloc regressions\n",
		compared, 100*tol, path)
	return nil
}

// benchReplay records one small seeded simulation to a temp file and
// replays it from its header, timing both halves. The replay must diff
// clean against the recording — a divergence is a correctness bug, not
// a slow run, so it fails the harness.
func benchReplay(numVMs int) (*replayReport, error) {
	cfg := experiments.RecordConfig{Seed: 11, NumVMs: numVMs, PMsPerType: 8, Steps: 48}
	dir, err := os.MkdirTemp("", "prvm-bench-replay")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	path := filepath.Join(dir, "run.jsonl.gz")

	recStart := time.Now()
	_, ndec, err := experiments.RecordToFile(path, cfg)
	if err != nil {
		return nil, err
	}
	recSec := time.Since(recStart).Seconds()

	hdr, recorded, spans, err := record.ReadAll(path)
	if err != nil {
		return nil, err
	}
	repStart := time.Now()
	replayed, _, _, err := experiments.Replay(hdr.Meta)
	if err != nil {
		return nil, err
	}
	repSec := time.Since(repStart).Seconds()
	if sum := record.Diff(recorded, replayed); !sum.Clean() {
		return nil, fmt.Errorf("replay diverged from recording: %d of %d decisions", sum.Divergent, sum.ADecisions)
	}

	// The header carries the config with defaults resolved.
	return &replayReport{
		NumVMs:          hdr.Meta.NumVMs,
		PMsPerType:      hdr.Meta.PMsPerType,
		Steps:           hdr.Meta.Steps,
		Seed:            hdr.Meta.Seed,
		Decisions:       ndec,
		RecordSeconds:   recSec,
		ReplaySeconds:   repSec,
		DecisionsPerSec: float64(len(replayed)) / repSec,
		Phases:          record.SummarizePhases(recorded, spans),
	}, nil
}

// parseBench reads standard `go test -bench` output: lines of the form
//
//	BenchmarkName/sub-8   1000   53.70 ns/op   0 B/op   0 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBench(r *bytes.Buffer) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." line without a count (e.g. a log line)
		}
		res := result{Name: trimProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPer = &a
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name
// ("BenchmarkX/fast-8" → "BenchmarkX/fast").
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// pairUp matches known baseline/candidate sub-benchmark variants under
// the same parent and computes their speedup ratios. With -count > 1
// the last sample of each name wins.
func pairUp(results []result) []comparison {
	byName := make(map[string]result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	var comps []comparison
	seen := map[string]bool{}
	for _, r := range results {
		i := strings.LastIndex(r.Name, "/")
		if i < 0 {
			continue
		}
		parent := r.Name[:i]
		if seen[parent] {
			continue
		}
		for _, pair := range variantPairs {
			base, ok1 := byName[parent+"/"+pair[0]]
			cand, ok2 := byName[parent+"/"+pair[1]]
			if !ok1 || !ok2 || cand.NsPerOp <= 0 {
				continue
			}
			seen[parent] = true
			comps = append(comps, comparison{
				Benchmark: parent,
				Baseline:  pair[0],
				Candidate: pair[1],
				SpeedupX:  base.NsPerOp / cand.NsPerOp,
				BaseNs:    base.NsPerOp,
				CandNs:    cand.NsPerOp,
				BaseAlloc: base.AllocsPer,
				CandAlloc: cand.AllocsPer,
			})
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Benchmark < comps[j].Benchmark })
	return comps
}
