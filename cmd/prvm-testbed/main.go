// Command prvm-testbed runs the GENI-testbed emulation experiments of
// the paper (Figures 4(a), 4(b) and 8): a centralized controller
// assigning jobs to 10 emulated instances over message-passing agents.
//
// Usage:
//
//	prvm-testbed [-fig all|4a|4b|8] [-jobs 100,200,300] [-reps n]
//	             [-steps n] [-pms n] [-tcp]
//	             [-call-timeout d] [-call-retries n] [-retry-backoff d]
//	             [-faults spec]
//	             [-obsaddr host:port] [-metrics-out file]
//
// -tcp runs the control protocol over real loopback TCP sockets
// instead of in-memory pipes. -call-timeout, -call-retries and
// -retry-backoff tune the controller's fault-tolerant call path;
// -faults injects deterministic transport faults, e.g.
//
//	prvm-testbed -fig 4a -call-timeout 50ms \
//	    -faults "seed=7,drop=0.01,err=0.01"
//
// (drop/delay faults need -call-timeout to be detected). -obsaddr
// serves live telemetry (JSON metrics, decision traces, pprof —
// including the controller's per-request control-protocol latency
// histogram); -metrics-out dumps the final snapshot as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/testbed"
)

var figures = map[string]struct {
	metric experiments.Metric
	title  string
}{
	"4a": {metric: experiments.MetricPMs, title: "Figure 4(a): PMs used"},
	"4b": {metric: experiments.MetricMigrations, title: "Figure 4(b): migrations"},
	"8":  {metric: experiments.MetricSLO, title: "Figure 8: SLO violations"},
}

var figureOrder = []string{"4a", "4b", "8"}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-testbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-testbed", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure id (4a, 4b, 8) or all")
		jobs    = fs.String("jobs", "100,200,300", "comma-separated job counts")
		reps    = fs.Int("reps", 10, "repetitions per point")
		steps   = fs.Int("steps", 1440, "control intervals (paper: 4h at 10s)")
		pms     = fs.Int("pms", testbed.DefaultPMs, "emulated instances")
		seed    = fs.Int64("seed", 1, "base random seed")
		tcp     = fs.Bool("tcp", false, "use loopback TCP for the control protocol")
		callTO  = fs.Duration("call-timeout", 0, "per-call transport deadline; 0 disables")
		callRet = fs.Int("call-retries", testbed.DefaultCallRetries, "transport retries before declaring an agent dead")
		backoff = fs.Duration("retry-backoff", testbed.DefaultRetryBackoff, "initial retry backoff (doubles per retry)")
		faults  = fs.String("faults", "", `fault injection spec, e.g. "seed=7,drop=0.01,err=0.01,delay=5ms,delayprob=0.02,close=500"`)
		csvPath = fs.String("csv", "", "also write the sweep data as tidy CSV to this file")
		obsAddr = fs.String("obsaddr", "", "serve telemetry (JSON metrics, decision traces, pprof) on this address; :0 picks a port")
		metOut  = fs.String("metrics-out", "", "write the final telemetry snapshot as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*jobs)
	if err != nil {
		return err
	}
	observer, err := setupObs(*obsAddr, *metOut)
	if err != nil {
		return err
	}
	wanted := figureOrder
	if *fig != "all" {
		if _, ok := figures[*fig]; !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		wanted = []string{*fig}
	}

	transport := testbed.TransportInMemory
	if *tcp {
		transport = testbed.TransportTCP
	}
	var faultCfg *testbed.FaultConfig
	if *faults != "" {
		cfg, err := testbed.ParseFaultSpec(*faults)
		if err != nil {
			return err
		}
		if (cfg.DropProb > 0 || cfg.DelayProb > 0) && *callTO == 0 {
			return fmt.Errorf("-faults with drop/delay needs -call-timeout (a dropped message otherwise blocks the controller forever)")
		}
		faultCfg = &cfg
	}
	fmt.Fprintf(os.Stderr, "running testbed sweep: jobs=%v reps=%d steps=%d pms=%d...\n",
		counts, *reps, *steps, *pms)
	sweep, err := experiments.RunTestbedSweep(experiments.TestbedConfig{
		NumJobs:      counts,
		Reps:         *reps,
		Seed:         *seed,
		NumPMs:       *pms,
		Steps:        *steps,
		Transport:    transport,
		CallTimeout:  *callTO,
		CallRetries:  opt.I(*callRet),
		RetryBackoff: *backoff,
		Faults:       faultCfg,
		Obs:          observer,
	})
	if err != nil {
		return err
	}
	for i, id := range wanted {
		if i > 0 {
			fmt.Println()
		}
		f := figures[id]
		if err := sweep.WriteFigure(os.Stdout, f.metric, f.title); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := sweep.WriteCSV(out); err != nil {
			_ = out.Close()
			return err
		}
		// Write path: the close error is the last chance to hear about
		// a truncated CSV.
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *metOut != "" {
		if err := observer.WriteFile(*metOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metOut)
	}
	return nil
}

// setupObs builds the observer when telemetry was requested; nil (all
// instrumentation disabled) when neither flag is set.
func setupObs(addr, metricsOut string) (*obs.Observer, error) {
	if addr == "" && metricsOut == "" {
		return nil, nil
	}
	o := obs.New()
	if addr != "" {
		ring := obs.NewRingSink(4096)
		o.SetSink(ring)
		// The stop handle is deliberately dropped: the endpoint serves
		// for the remaining process lifetime.
		bound, _, err := obs.Serve(addr, o, ring)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s (/metrics /events /debug/pprof/)\n", bound)
	}
	return o, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad job count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
