// Command prvm-exp regenerates every table and figure of the paper's
// evaluation in one run — the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	prvm-exp [-reps n] [-vms 1000,2000,3000] [-jobs 100,200,300]
//	         [-steps n] [-quick] [-obsaddr host:port] [-metrics-out file]
//
// -quick shrinks every sweep to a laptop-scale smoke run. -obsaddr
// serves live telemetry (JSON metrics, decision traces, pprof) while
// the harness runs; -metrics-out dumps the final snapshot as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/ranktable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-exp", flag.ContinueOnError)
	var (
		reps    = fs.Int("reps", 10, "repetitions per point (paper: 100)")
		vms     = fs.String("vms", "1000,2000,3000", "simulation VM counts")
		jobs    = fs.String("jobs", "100,200,300", "testbed job counts")
		steps   = fs.Int("steps", 1440, "testbed control intervals")
		seed    = fs.Int64("seed", 1, "base random seed")
		quick   = fs.Bool("quick", false, "tiny smoke-run configuration")
		obsAddr = fs.String("obsaddr", "", "serve telemetry (JSON metrics, decision traces, pprof) on this address; :0 picks a port")
		metOut  = fs.String("metrics-out", "", "write the final telemetry snapshot as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	observer, err := setupObs(*obsAddr, *metOut)
	if err != nil {
		return err
	}
	vmCounts, err := parseInts(*vms)
	if err != nil {
		return err
	}
	jobCounts, err := parseInts(*jobs)
	if err != nil {
		return err
	}
	if *quick {
		vmCounts, jobCounts = []int{200}, []int{40}
		*reps, *steps = 2, 120
	}

	start := time.Now()
	out := os.Stdout

	fmt.Fprintf(out, "PageRankVM evaluation harness — reps=%d, vms=%v, jobs=%v, seed=%d\n\n",
		*reps, vmCounts, jobCounts, *seed)

	// Tables I-III.
	for _, write := range []func() error{
		func() error { return experiments.WriteTable1(out) },
		func() error { return experiments.WriteTable2(out) },
		func() error { return experiments.WriteTable3(out) },
	} {
		if err := write(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// Figures 1 and 2 (profile ranking).
	if err := experiments.WriteFigure1(out, ranktable.Options{Obs: observer}); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if err := experiments.WriteFigure2(out, ranktable.Options{Obs: observer}); err != nil {
		return err
	}
	fmt.Fprintln(out)

	// Simulation sweeps (Figures 3, 5, 6, 7).
	type simFig struct {
		metric experiments.Metric
		title  string
	}
	for _, tr := range []string{"planetlab", "google"} {
		fmt.Fprintf(os.Stderr, "simulation sweep (%s)...\n", tr)
		sweep, err := experiments.RunSimSweep(experiments.SimConfig{
			Trace:  tr,
			NumVMs: vmCounts,
			Reps:   *reps,
			Seed:   *seed,
			Obs:    observer,
		})
		if err != nil {
			return err
		}
		sub := "a"
		if tr == "google" {
			sub = "b"
		}
		for _, f := range []simFig{
			{metric: experiments.MetricPMs, title: "Figure 3(" + sub + "): PMs used"},
			{metric: experiments.MetricEnergy, title: "Figure 5(" + sub + "): energy"},
			{metric: experiments.MetricMigrations, title: "Figure 6(" + sub + "): migrations"},
			{metric: experiments.MetricSLO, title: "Figure 7(" + sub + "): SLO violations"},
		} {
			if err := sweep.WriteFigure(out, f.metric, f.title); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	// Testbed sweeps (Figures 4 and 8).
	fmt.Fprintln(os.Stderr, "testbed sweep...")
	tb, err := experiments.RunTestbedSweep(experiments.TestbedConfig{
		NumJobs: jobCounts,
		Reps:    *reps,
		Seed:    *seed,
		Steps:   *steps,
		Obs:     observer,
	})
	if err != nil {
		return err
	}
	for _, f := range []struct {
		metric experiments.Metric
		title  string
	}{
		{metric: experiments.MetricPMs, title: "Figure 4(a): PMs used"},
		{metric: experiments.MetricMigrations, title: "Figure 4(b): migrations"},
		{metric: experiments.MetricSLO, title: "Figure 8: SLO violations"},
	} {
		if err := tb.WriteFigure(out, f.metric, f.title); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Second))
	if *metOut != "" {
		if err := observer.WriteFile(*metOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metOut)
	}
	return nil
}

// setupObs builds the observer when telemetry was requested; nil (all
// instrumentation disabled) when neither flag is set.
func setupObs(addr, metricsOut string) (*obs.Observer, error) {
	if addr == "" && metricsOut == "" {
		return nil, nil
	}
	o := obs.New()
	if addr != "" {
		ring := obs.NewRingSink(4096)
		o.SetSink(ring)
		// The stop handle is deliberately dropped: the endpoint serves
		// for the remaining process lifetime.
		bound, _, err := obs.Serve(addr, o, ring)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s (/metrics /events /debug/pprof/)\n", bound)
	}
	return o, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
