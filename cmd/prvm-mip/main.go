// Command prvm-mip solves a Section-IV placement instance exactly by
// branch and bound, reading a JSON instance description.
//
// Usage:
//
//	prvm-mip -example            # print a sample instance
//	prvm-mip -f instance.json    # solve it
//	prvm-mip -f - < inst.json    # read from stdin
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pagerankvm/internal/mip"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-mip:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-mip", flag.ContinueOnError)
	var (
		file    = fs.String("f", "", "instance JSON file (- for stdin)")
		nodes   = fs.Int("nodes", 0, "search node limit (0 = default)")
		example = fs.Bool("example", false, "print a sample instance and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return mip.ExampleInstance().Write(os.Stdout)
	}
	if *file == "" {
		return errors.New("need -f instance.json (or -example)")
	}

	var in io.Reader = os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }() // read-only input; close cannot lose data
		in = f
	}
	inst, err := mip.ReadInstance(in)
	if err != nil {
		return err
	}
	pms, vms, opts, err := inst.Build()
	if err != nil {
		return err
	}
	opts.NodeLimit = *nodes

	sol, err := mip.Solve(pms, vms, opts)
	if errors.Is(err, mip.ErrInfeasible) {
		fmt.Println("infeasible: no assignment satisfies the constraints")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("cost %.4g, %d PMs used, %d nodes explored, optimal=%v\n",
		sol.Cost, sol.PMsUsed, sol.Nodes, sol.Optimal)
	ids := make([]int, 0, len(sol.Assignments))
	for id := range sol.Assignments {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := sol.Assignments[id]
		fmt.Printf("  vm %d -> pm %d  %v\n", id, a.PM, a.Assign)
	}
	return nil
}
