// Command prvm-sim runs the trace-driven simulation experiments of
// the paper (Figures 3, 5, 6 and 7): the four placement algorithms
// over increasing VM counts, with median [p1, p99] reporting across
// repetitions.
//
// Usage:
//
//	prvm-sim [-fig all|3a|3b|5a|5b|6a|6b|7a|7b] [-reps n] [-seed s]
//	         [-vms 1000,2000,3000] [-pms n]
//	         [-obsaddr host:port] [-metrics-out file]
//	prvm-sim -record out.jsonl[.gz] [-record-steps n] [-record-nofast]
//	         [-seed s] [-vms n] [-pms n] [-rebalance-every n]
//	         [-rebalance-budget n] [-rebalance-pm-budget n]
//	         [-drain-below f]
//
// The paper uses 100 repetitions; the default here is sized for a
// small machine — pass -reps 100 (or set PRVM_REPS) to match the
// paper.
//
// -record switches to standalone recording mode: one seeded PageRankVM
// run (trace from the first requested figure, the first -vms count,
// -pms hosts per type) is captured as a self-describing decision
// recording that prvm-replay can verify, diff and summarize (DESIGN.md
// §11). -record-nofast records the legacy scoring path — its decision
// stream must diff clean against a fast-path recording of the same
// seed.
//
// -obsaddr serves live telemetry over HTTP (/metrics JSON, /events
// decision traces, /debug/pprof/) while the sweep runs; -obsaddr :0
// picks an ephemeral port, printed on stderr. -metrics-out dumps the
// final metrics snapshot as JSON for benchmark trajectory tracking.
// Either flag enables instrumentation; with neither, the hot paths run
// uninstrumented.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/obs"
)

// figure maps a figure id to its trace and metric.
var figures = map[string]struct {
	trace  string
	metric experiments.Metric
	title  string
}{
	"3a": {trace: "planetlab", metric: experiments.MetricPMs, title: "Figure 3(a): PMs used"},
	"3b": {trace: "google", metric: experiments.MetricPMs, title: "Figure 3(b): PMs used"},
	"5a": {trace: "planetlab", metric: experiments.MetricEnergy, title: "Figure 5(a): energy"},
	"5b": {trace: "google", metric: experiments.MetricEnergy, title: "Figure 5(b): energy"},
	"6a": {trace: "planetlab", metric: experiments.MetricMigrations, title: "Figure 6(a): migrations"},
	"6b": {trace: "google", metric: experiments.MetricMigrations, title: "Figure 6(b): migrations"},
	"7a": {trace: "planetlab", metric: experiments.MetricSLO, title: "Figure 7(a): SLO violations"},
	"7b": {trace: "google", metric: experiments.MetricSLO, title: "Figure 7(b): SLO violations"},
}

var figureOrder = []string{"3a", "3b", "5a", "5b", "6a", "6b", "7a", "7b"}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-sim", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure id (3a,3b,5a,5b,6a,6b,7a,7b) or all")
		reps      = fs.Int("reps", defaultReps(), "repetitions per point (paper: 100)")
		seed      = fs.Int64("seed", 1, "base random seed")
		vms       = fs.String("vms", "1000,2000,3000", "comma-separated VM counts")
		pms       = fs.Int("pms", 0, "PMs per Table II type (0 = auto)")
		csvPath   = fs.String("csv", "", "also write the sweep data as tidy CSV to this file")
		series    = fs.String("series", "", "write one run's per-interval time series as CSV to this file (uses the first -vms count and the first figure's trace)")
		obsAddr   = fs.String("obsaddr", "", "serve telemetry (JSON metrics, decision traces, pprof) on this address; :0 picks a port")
		metOut    = fs.String("metrics-out", "", "write the final telemetry snapshot as JSON to this file")
		recPath   = fs.String("record", "", "record one seeded run as a decision recording at this path (.gz compresses) instead of sweeping")
		recStep   = fs.Int("record-steps", 0, "horizon of the recorded run in monitoring intervals (0 = the 24 h default)")
		recSlow   = fs.Bool("record-nofast", false, "record with the id-indexed fast path disabled (legacy scoring)")
		rebEvery  = fs.Int("rebalance-every", 0, "recording mode: run a descheduler round every n monitoring intervals (0 disables)")
		rebBudget = fs.Int("rebalance-budget", 0, "recording mode: max migrations per descheduler round (0 = default)")
		rebPM     = fs.Int("rebalance-pm-budget", 0, "recording mode: max migrations off one PM per round (0 = default)")
		drainFrac = fs.Float64("drain-below", 0, "recording mode: fill fraction under which the descheduler evacuates a PM (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseInts(*vms)
	if err != nil {
		return err
	}

	wanted := figureOrder
	if *fig != "all" {
		if _, ok := figures[*fig]; !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		wanted = []string{*fig}
	}

	if *recPath != "" {
		return runRecord(*recPath, experiments.RecordConfig{
			Trace:               figures[wanted[0]].trace,
			Seed:                *seed,
			NumVMs:              counts[0],
			PMsPerType:          *pms,
			Steps:               *recStep,
			NoFastPath:          *recSlow,
			RebalanceEvery:      *rebEvery,
			RebalanceBudget:     *rebBudget,
			RebalancePMBudget:   *rebPM,
			RebalanceDrainBelow: *drainFrac,
		})
	}

	observer, err := setupObs(*obsAddr, *metOut)
	if err != nil {
		return err
	}

	// One sweep per needed trace, reused by every requested figure.
	sweeps := make(map[string]*experiments.SimSweep)
	for _, id := range wanted {
		tr := figures[id].trace
		if _, done := sweeps[tr]; done {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s sweep: vms=%v reps=%d...\n", tr, counts, *reps)
		sweep, err := experiments.RunSimSweep(experiments.SimConfig{
			Trace:      tr,
			NumVMs:     counts,
			Reps:       *reps,
			Seed:       *seed,
			PMsPerType: *pms,
			Obs:        observer,
		})
		if err != nil {
			return err
		}
		sweeps[tr] = sweep
	}
	for i, id := range wanted {
		if i > 0 {
			fmt.Println()
		}
		f := figures[id]
		if err := sweeps[f.trace].WriteFigure(os.Stdout, f.metric, f.title); err != nil {
			return err
		}
	}
	if *series != "" {
		tr := figures[wanted[0]].trace
		fmt.Fprintf(os.Stderr, "recording %s time series at %d VMs...\n", tr, counts[0])
		ts, err := experiments.RunTimeSeries(experiments.SimConfig{
			Trace:      tr,
			Reps:       1,
			Seed:       *seed,
			PMsPerType: *pms,
			Obs:        observer,
		}, counts[0])
		if err != nil {
			return err
		}
		out, err := os.Create(*series)
		if err != nil {
			return err
		}
		if err := ts.WriteCSV(out); err != nil {
			_ = out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *series)
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		for _, sweep := range sweeps {
			if err := sweep.WriteCSV(out); err != nil {
				_ = out.Close()
				return err
			}
		}
		// Write path: the close error is the last chance to hear about
		// a truncated CSV.
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *metOut != "" {
		if err := observer.WriteFile(*metOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metOut)
	}
	return nil
}

// runRecord is standalone recording mode: one seeded PageRankVM run
// captured as a self-describing recording prvm-replay can verify.
func runRecord(path string, cfg experiments.RecordConfig) error {
	res, ndec, err := experiments.RecordToFile(path, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recorded %d decisions to %s (pms=%d energy=%.2fkWh migrations=%d slo=%.2f%%)\n",
		ndec, path, res.PMsUsed, res.EnergyKWh, res.Migrations, res.SLOViolationPct)
	return nil
}

// setupObs builds the observer when telemetry was requested: -obsaddr
// serves it live (with a ring of recent decision traces on /events),
// -metrics-out snapshots it at exit. Returns nil — instrumentation
// disabled — when neither flag is set.
func setupObs(addr, metricsOut string) (*obs.Observer, error) {
	if addr == "" && metricsOut == "" {
		return nil, nil
	}
	o := obs.New()
	if addr != "" {
		ring := obs.NewRingSink(4096)
		o.SetSink(ring)
		// The stop handle is deliberately dropped: the endpoint serves
		// for the remaining process lifetime.
		bound, _, err := obs.Serve(addr, o, ring)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry on http://%s (/metrics /events /debug/pprof/)\n", bound)
	}
	return o, nil
}

func defaultReps() int {
	if s := os.Getenv("PRVM_REPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad VM count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
