// Command prvm-trace inspects and exports the synthetic workload
// traces. It can print summary statistics, dump one VM's series, or
// export a whole workload as CloudSim-PlanetLab-format files (one file
// per VM, one utilization percentage per line) that round-trip through
// trace.LoadDir — so synthetic and real traces are interchangeable
// inputs to the simulator.
//
// Usage:
//
//	prvm-trace -gen planetlab -vms 10 -steps 288 -stats
//	prvm-trace -gen google -vm 3 -steps 288          # dump one series
//	prvm-trace -gen planetlab -vms 100 -export dir/  # write files
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pagerankvm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-trace", flag.ContinueOnError)
	var (
		gen    = fs.String("gen", "planetlab", "generator: planetlab, google, constant")
		seed   = fs.Int64("seed", 1, "generator seed")
		vms    = fs.Int("vms", 10, "number of VMs (stats/export)")
		steps  = fs.Int("steps", 288, "samples per series (288 = 24h at 5min)")
		vm     = fs.Int("vm", -1, "dump this VM's series instead")
		stats  = fs.Bool("stats", false, "print population statistics")
		export = fs.String("export", "", "write PlanetLab-format files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := trace.ByName(*gen, *seed)
	if err != nil {
		return err
	}
	if *steps <= 0 || *vms <= 0 {
		return errors.New("need positive -steps and -vms")
	}

	switch {
	case *vm >= 0:
		s := g.Series(*vm, *steps)
		for _, u := range s {
			fmt.Printf("%.4f\n", u)
		}
		return nil
	case *export != "":
		return exportDir(g, *export, *vms, *steps)
	case *stats:
		return printStats(g, *vms, *steps)
	default:
		return errors.New("pick one of -vm, -stats or -export")
	}
}

func printStats(g trace.Generator, vms, steps int) error {
	var meanSum, peak float64
	minMean := 1.0
	for id := 0; id < vms; id++ {
		s := g.Series(id, steps)
		m := s.Mean()
		meanSum += m
		if m < minMean {
			minMean = m
		}
		if p := s.Max(); p > peak {
			peak = p
		}
	}
	fmt.Printf("generator %s: %d VMs x %d steps\n", g.Name(), vms, steps)
	fmt.Printf("population mean %.3f, min per-VM mean %.3f, peak %.3f\n",
		meanSum/float64(vms), minMean, peak)
	return nil
}

func exportDir(g trace.Generator, dir string, vms, steps int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	width := len(strconv.Itoa(vms - 1))
	for id := 0; id < vms; id++ {
		s := g.Series(id, steps)
		var sb strings.Builder
		for _, u := range s {
			// PlanetLab format: integer percentages, one per line.
			fmt.Fprintf(&sb, "%d\n", int(u*100+0.5))
		}
		name := filepath.Join(dir, fmt.Sprintf("vm_%0*d", width, id))
		if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d trace files to %s\n", vms, dir)
	return nil
}
