// Command prvm-load drives a running prvm-serve with a seeded,
// deterministic mix of place and release requests and reports
// throughput plus latency percentiles.
//
// Usage:
//
//	prvm-load [-addr host:port] [-n 20000] [-c 16] [-pipeline 1]
//	          [-seed s] [-place 0.7] [-types m3.medium,m3.large,...]
//
// Each of the -c workers owns one keep-alive TCP connection, a
// rand.Rand seeded seed+worker, and a private list of VMs it has
// placed, so each worker's request stream is a pure function of the
// flags: every op is a place with probability -place (release
// otherwise; a worker with nothing resident places instead). VM ids
// are unique per run (worker id in the high bits), so reruns against a
// fresh server never collide.
//
// The client speaks minimal HTTP/1.1 over raw sockets rather than
// net/http: a load generator's job is to saturate the server, not to
// spend the box's CPU on its own transport. -pipeline > 1 writes that
// many requests per batch before reading the responses (HTTP/1.1
// pipelining); per-request latency then includes queueing behind
// earlier requests of the batch, which is the honest number under
// saturation.
//
// The report counts only acknowledged decisions (2xx on place or
// release); rejections (409 capacity) are tallied separately and
// excluded from the latency distribution. Any 5xx or transport error
// fails the run.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// opStat is one acknowledged request's latency sample.
type opStat struct {
	place bool
	d     time.Duration
}

// workerReport aggregates one worker's outcomes; merged after the run.
type workerReport struct {
	stats    []opStat
	rejected int // 409 no_capacity
	errored  int // transport errors, 4xx other than 409, 5xx
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-load:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-load", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "host:port of the prvm-serve instance (scheme prefix allowed)")
		n        = fs.Int("n", 20000, "total requests across all workers")
		c        = fs.Int("c", 16, "concurrent workers (one connection each)")
		pipe     = fs.Int("pipeline", 1, "requests written per batch before reading responses")
		seed     = fs.Int64("seed", 1, "base seed; worker w uses seed+w")
		placeP   = fs.Float64("place", 0.7, "probability an op is a place (vs release)")
		typesArg = fs.String("types", "m3.medium,m3.large,m3.xlarge", "comma-separated VM types to place")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *c <= 0 || *n <= 0 || *pipe <= 0 {
		return fmt.Errorf("need positive -n, -c and -pipeline")
	}
	types := strings.Split(*typesArg, ",")
	host := strings.TrimRight(strings.TrimPrefix(strings.TrimPrefix(*addr, "http://"), "https://"), "/")

	if err := waitHealthy(host); err != nil {
		return err
	}

	perWorker := *n / *c
	reports := make([]workerReport, *c)
	errs := make([]error, *c)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reports[w], errs[w] = worker(host, workerCfg{
				id:     w,
				ops:    perWorker,
				pipe:   *pipe,
				rng:    rand.New(rand.NewSource(*seed + int64(w))),
				placeP: *placeP,
				types:  types,
			})
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
	}
	var all []opStat
	rejected, errored := 0, 0
	for _, r := range reports {
		all = append(all, r.stats...)
		rejected += r.rejected
		errored += r.errored
	}
	if len(all) == 0 {
		return fmt.Errorf("no request succeeded (rejected=%d errors=%d)", rejected, errored)
	}
	report(os.Stdout, all, rejected, errored, elapsed)
	if errored > 0 {
		return fmt.Errorf("%d requests failed", errored)
	}
	return nil
}

// workerCfg parameterizes one worker's deterministic stream.
type workerCfg struct {
	id     int
	ops    int
	pipe   int
	rng    *rand.Rand
	placeP float64
	types  []string
}

// pendingOp is one written-but-unanswered request of a batch.
type pendingOp struct {
	place bool
	vm    int
}

// worker issues cfg.ops requests over one connection in batches of
// cfg.pipe, timing each against the batch write.
func worker(host string, cfg workerCfg) (workerReport, error) {
	var rep workerReport
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return rep, err
	}
	defer func() { _ = conn.Close() }()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(conn, 16<<10)

	var (
		resident []int
		buf      []byte
		batch    []pendingOp
	)
	nextID := cfg.id << 32 // unique across workers
	for done := 0; done < cfg.ops; {
		want := cfg.pipe
		if r := cfg.ops - done; r < want {
			want = r
		}
		buf = buf[:0]
		batch = batch[:0]
		for len(batch) < want {
			if len(resident) == 0 || cfg.rng.Float64() < cfg.placeP {
				nextID++
				vmType := cfg.types[cfg.rng.Intn(len(cfg.types))]
				buf = appendRequest(buf, host, "/v1/place",
					`{"vm":`+strconv.Itoa(nextID)+`,"type":"`+vmType+`"}`)
				batch = append(batch, pendingOp{place: true, vm: nextID})
			} else {
				// Release a random resident VM (swap-delete is O(1)).
				j := cfg.rng.Intn(len(resident))
				vm := resident[j]
				resident[j] = resident[len(resident)-1]
				resident = resident[:len(resident)-1]
				buf = appendRequest(buf, host, "/v1/release",
					`{"vm":`+strconv.Itoa(vm)+`}`)
				batch = append(batch, pendingOp{place: false, vm: vm})
			}
		}
		t0 := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return rep, fmt.Errorf("write: %w", err)
		}
		for _, op := range batch {
			code, err := readResponse(br)
			if err != nil {
				return rep, fmt.Errorf("read response: %w", err)
			}
			switch {
			case code == 200:
				rep.stats = append(rep.stats, opStat{place: op.place, d: time.Since(t0)})
				if op.place {
					resident = append(resident, op.vm)
				}
			case code == 409:
				rep.rejected++
			default:
				rep.errored++
			}
			done++
		}
	}
	return rep, nil
}

// appendRequest appends one HTTP/1.1 POST with a JSON body to buf.
func appendRequest(buf []byte, host, path, body string) []byte {
	buf = append(buf, "POST "...)
	buf = append(buf, path...)
	buf = append(buf, " HTTP/1.1\r\nHost: "...)
	buf = append(buf, host...)
	buf = append(buf, "\r\nContent-Type: application/json\r\nContent-Length: "...)
	buf = strconv.AppendInt(buf, int64(len(body)), 10)
	buf = append(buf, "\r\n\r\n"...)
	return append(buf, body...)
}

// readResponse parses one HTTP/1.1 response — status line, headers,
// body — and returns the status code. The body is discarded; only
// Content-Length framing is supported (prvm-serve always sets it for
// its small JSON bodies).
func readResponse(br *bufio.Reader) (int, error) {
	status, err := br.ReadString('\n')
	if err != nil {
		return 0, err
	}
	parts := strings.SplitN(status, " ", 3)
	if len(parts) < 2 {
		return 0, fmt.Errorf("malformed status line %q", strings.TrimSpace(status))
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, fmt.Errorf("malformed status line %q", strings.TrimSpace(status))
	}
	length := -1
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok {
			switch strings.ToLower(strings.TrimSpace(k)) {
			case "content-length":
				if length, err = strconv.Atoi(strings.TrimSpace(v)); err != nil {
					return 0, fmt.Errorf("bad content-length %q", v)
				}
			case "transfer-encoding":
				return 0, fmt.Errorf("unsupported transfer-encoding %q", strings.TrimSpace(v))
			case "connection":
				if strings.EqualFold(strings.TrimSpace(v), "close") {
					return 0, fmt.Errorf("server closed the connection (status %d)", code)
				}
			}
		}
	}
	if length < 0 {
		return 0, fmt.Errorf("response without content-length (status %d)", code)
	}
	if _, err := io.CopyN(io.Discard, br, int64(length)); err != nil {
		return 0, err
	}
	return code, nil
}

// waitHealthy polls /healthz briefly so a just-started server does not
// count startup refusals as load errors.
func waitHealthy(host string) error {
	var last error
	for i := 0; i < 50; i++ {
		conn, err := net.DialTimeout("tcp", host, time.Second)
		if err == nil {
			_, _ = fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", host)
			status, rerr := bufio.NewReader(conn).ReadString('\n')
			_ = conn.Close()
			if rerr == nil && strings.Contains(status, " 200 ") {
				return nil
			}
			last = fmt.Errorf("healthz: %q", strings.TrimSpace(status))
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server not healthy: %w", last)
}

// report prints throughput and the latency distribution, overall and
// split by op kind.
func report(w *os.File, all []opStat, rejected, errored int, elapsed time.Duration) {
	var places, releases []time.Duration
	for _, s := range all {
		if s.place {
			places = append(places, s.d)
		} else {
			releases = append(releases, s.d)
		}
	}
	fmt.Fprintf(w, "decisions: %d (%d place, %d release) in %v — %.0f decisions/sec\n",
		len(all), len(places), len(releases), elapsed.Round(time.Millisecond),
		float64(len(all))/elapsed.Seconds())
	fmt.Fprintf(w, "rejected (409): %d   errors: %d\n", rejected, errored)
	durs := make([]time.Duration, 0, len(all))
	for _, s := range all {
		durs = append(durs, s.d)
	}
	line(w, "all", durs)
	line(w, "place", places)
	line(w, "release", releases)
}

// line prints one percentile row; lats need not be pre-sorted.
func line(w *os.File, name string, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	fmt.Fprintf(w, "%-8s p50=%v p90=%v p99=%v max=%v\n", name,
		pct(lats, 50), pct(lats, 90), pct(lats, 99), lats[len(lats)-1])
}

// pct returns the p-th percentile of sorted lats (nearest-rank).
func pct(lats []time.Duration, p int) time.Duration {
	i := (len(lats)*p + 99) / 100
	if i > 0 {
		i--
	}
	return lats[i]
}
