// Command prvm-rank builds Profile→PageRank score tables and prints
// the paper's Figure 1 rank values and Figure 2 quality comparisons.
//
// Usage:
//
//	prvm-rank [-mode absorption|reverse-pr|forward-pr] [-top n]
//	          [-pm M3|C3] [-save file] [-compare]
//
// Without -pm it uses the paper's running example (capacity [4,4,4,4],
// VM types {[1,1],[1,1,1,1]}); with -pm it builds the factored table
// of a Table II host over the Table I VM catalog.
package main

import (
	"flag"
	"fmt"
	"os"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/ranktable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prvm-rank:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prvm-rank", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "absorption", "rank mode: absorption, reverse-pr, forward-pr")
		top     = fs.Int("top", 10, "print the top-n profiles of the example table")
		pmType  = fs.String("pm", "", "build the factored table of a Table II PM type instead")
		save    = fs.String("save", "", "serialize the example table to this file")
		compare = fs.Bool("compare", true, "print the Figure 2 quality comparisons")
		workers = fs.Int("workers", 0, "goroutines wiring lattice edges (0 = GOMAXPROCS; output is identical for any count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := parseMode(*mode)
	if err != nil {
		return err
	}
	opts.WireWorkers = *workers

	if *pmType != "" {
		return describePMType(*pmType, opts)
	}

	if err := experiments.WriteFigure1(os.Stdout, opts); err != nil {
		return err
	}
	if *compare {
		fmt.Println()
		if err := experiments.WriteFigure2(os.Stdout, opts); err != nil {
			return err
		}
	}
	table, err := experiments.PaperExampleTable(opts)
	if err != nil {
		return err
	}
	if *top > 0 {
		fmt.Printf("\ntop %d profiles:\n", *top)
		for _, e := range table.Top(*top) {
			fmt.Printf("  %v  %.6f\n", e.Profile, e.Score)
		}
	}
	stats := table.Stats()
	fmt.Printf("\ntable: %d profiles, %d edges, %d iterations, converged=%v\n",
		stats.Nodes, stats.Edges, stats.Iterations, stats.Converged)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := table.Save(f); err != nil {
			_ = f.Close()
			return err
		}
		// Write path: the close error is the last chance to hear about
		// a truncated table file.
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved table to %s\n", *save)
	}
	return nil
}

func parseMode(s string) (ranktable.Options, error) {
	switch s {
	case "absorption":
		return ranktable.Options{Mode: ranktable.ModeAbsorption}, nil
	case "reverse-pr":
		return ranktable.Options{Mode: ranktable.ModeReversePR}, nil
	case "forward-pr":
		return ranktable.Options{Mode: ranktable.ModeForwardPR}, nil
	default:
		return ranktable.Options{}, fmt.Errorf("unknown mode %q", s)
	}
}

func describePMType(name string, opts ranktable.Options) error {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		return err
	}
	shape, ok := cat.Shape(name)
	if !ok {
		return fmt.Errorf("unknown PM type %q (want M3 or C3)", name)
	}
	reg, err := cat.BuildRegistry(opts)
	if err != nil {
		return err
	}
	ranker, _ := reg.Get(name)
	fmt.Printf("PM type %s: %d dimensions, %d canonical joint profiles (factored ranker)\n",
		name, shape.NumDims(), shape.NumProfiles())
	empty, _ := ranker.Score(shape.Zero())
	full, _ := ranker.Score(shape.Capacity())
	fmt.Printf("score(empty) = %.6g\nscore(full)  = %.6g\n", empty, full)
	return nil
}
