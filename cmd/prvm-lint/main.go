// Command prvm-lint runs the domain-invariant static-analysis suite of
// internal/analysis over the module — the multichecker of the merge
// gate (`make lint`, folded into `make check`).
//
// Usage:
//
//	prvm-lint [-list] [-run regexp] [packages]
//
// With no package arguments it checks ./... . Exit status is 1 when
// any analyzer reports a finding, 2 on loader errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"pagerankvm/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "prvm-lint: -run %q matches no analyzer\n", *run)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
