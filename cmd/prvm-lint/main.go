// Command prvm-lint runs the domain-invariant static-analysis suite of
// internal/analysis over the module — the multichecker of the merge
// gate (`make lint`, folded into `make check`).
//
// Usage:
//
//	prvm-lint [-list] [-run regexp] [-baseline file] [-write-baseline file] [-summary file] [packages]
//
// With no package arguments it checks ./... . -baseline tolerates the
// findings inventoried in file (pre-existing debt) but fails on stale
// entries, so the inventory only shrinks; -write-baseline regenerates
// that file from the current findings; -summary appends a markdown
// report (fed to $GITHUB_STEP_SUMMARY in CI). Exit status is 1 when
// any non-baselined finding or stale baseline entry remains, 2 on
// loader errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"pagerankvm/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	baseline := flag.String("baseline", "", "tolerate the findings listed in this file; fail on stale entries")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this file and exit")
	summary := flag.String("summary", "", "append a markdown summary of the run to this file")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "prvm-lint: -run %q matches no analyzer\n", *run)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}
	rel := func(file string) string {
		if r, err := filepath.Rel(cwd, file); err == nil {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(file)
	}

	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, analysis.FormatBaseline(diags, rel), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("prvm-lint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	var stale []analysis.BaselineEntry
	baselined := 0
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
			os.Exit(2)
		}
		entries, err := analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: %s: %v\n", *baseline, err)
			os.Exit(2)
		}
		// With -run narrowing the suite, entries for unselected
		// analyzers cannot match anything; don't call them stale.
		selected := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			selected[a.Name] = true
		}
		applicable := entries[:0]
		for _, e := range entries {
			if selected[e.Analyzer] {
				applicable = append(applicable, e)
			}
		}
		total := len(diags)
		diags, stale = analysis.ApplyBaseline(diags, applicable, rel)
		baselined = total - len(diags)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	for _, e := range stale {
		fmt.Printf("%s: stale baseline entry (the finding it tolerated is gone; regenerate with make lint-baseline)\n", e)
	}

	if *summary != "" {
		if err := appendSummary(*summary, analyzers, diags, stale, baselined); err != nil {
			fmt.Fprintf(os.Stderr, "prvm-lint: %v\n", err)
			os.Exit(2)
		}
	}

	if len(diags) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

// appendSummary writes a markdown report of the run — appended, so CI
// can point it straight at $GITHUB_STEP_SUMMARY.
func appendSummary(path string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, stale []analysis.BaselineEntry, baselined int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### prvm-lint: %d analyzer(s)\n\n", len(analyzers))
	if len(diags) == 0 && len(stale) == 0 {
		fmt.Fprintf(&b, "No findings")
		if baselined > 0 {
			fmt.Fprintf(&b, " (%d baselined)", baselined)
		}
		fmt.Fprintf(&b, ". ✅\n")
	} else {
		counts := make(map[string]int)
		for _, d := range diags {
			counts[d.Analyzer]++
		}
		fmt.Fprintf(&b, "| analyzer | findings |\n|---|---|\n")
		for _, a := range analyzers {
			if counts[a.Name] > 0 {
				fmt.Fprintf(&b, "| %s | %d |\n", a.Name, counts[a.Name])
			}
		}
		fmt.Fprintf(&b, "\n```\n")
		for _, d := range diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
		for _, e := range stale {
			fmt.Fprintf(&b, "stale baseline entry: %s\n", e)
		}
		fmt.Fprintf(&b, "```\n")
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
