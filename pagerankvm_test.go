package pagerankvm_test

import (
	"bytes"
	"errors"
	"testing"

	"pagerankvm"
)

// The facade quickstart: build a rank table, place VMs, check the
// paper's Figure 2 ordering — all through the public API.
func TestFacadeQuickstart(t *testing.T) {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []pagerankvm.VMType{
		pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}}),
		pagerankvm.NewVMType("[1,1,1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
	table, err := pagerankvm.BuildJointTable(shape, types, pagerankvm.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	balanced, _ := table.Score(pagerankvm.Vec{3, 3, 3, 3})
	skewed, _ := table.Score(pagerankvm.Vec{4, 4, 2, 2})
	if balanced <= skewed {
		t.Fatalf("figure 2 ordering broken: %v vs %v", balanced, skewed)
	}

	reg := pagerankvm.NewRegistry()
	reg.Add("host", table)
	placer := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1))

	cluster := pagerankvm.NewCluster([]*pagerankvm.PM{
		pagerankvm.NewPM(0, "host", shape),
		pagerankvm.NewPM(1, "host", shape),
	})
	for i := 0; i < 10; i++ {
		vm := &pagerankvm.VM{
			ID:   i,
			Type: "[1,1]",
			Req:  map[string]pagerankvm.VMType{"host": types[0]},
		}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	if cluster.NumVMs() != 10 {
		t.Fatalf("placed %d VMs", cluster.NumVMs())
	}

	// Serialization round-trips through the facade.
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := pagerankvm.LoadRankTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != table.Len() {
		t.Fatalf("loaded %d entries", loaded.Len())
	}
}

func TestFacadeExactSolver(t *testing.T) {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 2, Cap: 2})
	vt := pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	pms := []*pagerankvm.PM{
		pagerankvm.NewPM(0, "h", shape),
		pagerankvm.NewPM(1, "h", shape),
	}
	vms := []*pagerankvm.VM{
		{ID: 0, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}},
		{ID: 1, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}},
	}
	sol, err := pagerankvm.SolveExact(pms, vms, pagerankvm.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d", sol.PMsUsed)
	}
	// Infeasible case surfaces the sentinel.
	vms = append(vms, &pagerankvm.VM{ID: 2, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}},
		&pagerankvm.VM{ID: 3, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}},
		&pagerankvm.VM{ID: 4, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}})
	freshPMs := []*pagerankvm.PM{pagerankvm.NewPM(0, "h", shape)}
	if _, err := pagerankvm.SolveExact(freshPMs, vms, pagerankvm.ExactOptions{}); !errors.Is(err, pagerankvm.ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 2, Cap: 4})
	vt := pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	cluster := pagerankvm.NewCluster([]*pagerankvm.PM{pagerankvm.NewPM(0, "h", shape)})

	gen := pagerankvm.ConstantTrace{Level: 0.5}
	var workloads []pagerankvm.Workload
	for i := 0; i < 3; i++ {
		workloads = append(workloads, pagerankvm.Workload{
			VM:    &pagerankvm.VM{ID: i, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}},
			Trace: gen.Series(i, 4),
		})
	}
	s, err := pagerankvm.NewSimulation(
		pagerankvm.SimConfig{Interval: 300e9, Horizon: 1200e9},
		cluster,
		pagerankvm.FirstFit{},
		pagerankvm.MMTEvictor{},
		map[string]*pagerankvm.EnergyModel{"h": pagerankvm.PowerModelE52670()},
		workloads,
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PMsUsed != 1 || res.Rejected != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.EnergyKWh <= 0 {
		t.Fatalf("energy %v", res.EnergyKWh)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if pagerankvm.Quantize(0.7, 0.65) != 2 || pagerankvm.QuantizeCap(2.6, 0.65) != 4 {
		t.Fatal("quantization helpers broken")
	}
	if _, err := pagerankvm.TraceByName("planetlab", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pagerankvm.PowerModelByName("E5-2680"); err != nil {
		t.Fatal(err)
	}
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 2, Cap: 2})
	vt := pagerankvm.NewVMType("x", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	if !pagerankvm.Fits(shape, shape.Zero(), vt) {
		t.Fatal("Fits broken")
	}
	if got := len(pagerankvm.Placements(shape, shape.Zero(), vt)); got != 1 {
		t.Fatalf("Placements = %d outcomes", got)
	}
	if _, err := pagerankvm.BuildFactoredTable(shape, []pagerankvm.VMType{vt}, pagerankvm.RankOptions{}); err != nil {
		t.Fatal(err)
	}
}
