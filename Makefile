GO ?= go

.PHONY: check vet build test race bench fmt

# The full pre-merge gate: static analysis, a clean build, and the
# test suite under the race detector (the obs concurrency tests are
# written for it).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

fmt:
	gofmt -l -w .
