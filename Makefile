GO ?= go

.PHONY: check vet lint lint-self lint-baseline docs-check build test race chaos bench bench-compare bench-all golden fmt

# The full pre-merge gate: static analysis (go vet plus the project's
# own prvm-lint analyzers), godoc coverage, a clean build, and the test
# suite under the race detector (the obs concurrency tests are written
# for it).
check: vet lint docs-check build race

vet:
	$(GO) vet ./...

# The project's twelve analyzers — five domain-invariant (detrand,
# floateq, obsnilguard, veclen, lockscope), six concurrency/
# determinism (maporder, goroleak, deadlinecall, errswallow, atomicmix,
# hotalloc), and one documentation gate (doccomment) — see DESIGN.md §8
# and §12. Findings in lint.baseline are tolerated until their code is
# touched; anything new exits non-zero.
lint:
	$(GO) run ./cmd/prvm-lint -baseline lint.baseline ./...

# Documentation gate: every exported symbol of the core library
# packages carries a godoc comment leading with its name (tolerated
# debt lives in docs.allow), and the Example functions compile and
# their output matches. API.md and README.md stay honest because godoc
# does.
docs-check:
	$(GO) run ./cmd/prvm-lint -run doccomment -baseline docs.allow ./...
	$(GO) test -run Example ./...

# The linter linting itself plus every command — kept baseline-free:
# new analyzer code must arrive clean.
lint-self:
	$(GO) run ./cmd/prvm-lint ./internal/analysis/... ./cmd/...

# Regenerate lint.baseline from the current tree. Only for adopting an
# analyzer with pre-existing findings; the baseline must shrink, never
# grow, in normal work.
lint-baseline:
	$(GO) run ./cmd/prvm-lint -write-baseline lint.baseline ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos suite (DESIGN.md §10): full testbed experiments under seeded
# fault injection — drops, transport errors, agent crashes — with the
# race detector on, asserting the controller degrades gracefully and
# surviving agents stay consistent with its mirror. The serve-side
# kill/recover tests ride along: concurrent traffic, descheduler
# rounds and maintenance drains against an abrupt kill, verified by an
# independent WAL fold.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/testbed/
	$(GO) test -race -count=1 -run 'KillRecover' ./internal/serve/

# Hot-path benchmark harness: runs the PlaceLookup / SpaceWire /
# RanksCSR / RecordOverhead / TableCache / RebalanceStep
# micro-benchmarks, plus a record/replay macro-benchmark (throughput
# and per-phase latency percentiles), and writes the comparisons to
# BENCH_pr10.json (see README "Benchmarks").
bench:
	$(GO) run ./cmd/prvm-bench -out BENCH_pr10.json

# Bench-regression gate: re-run the micro-benchmarks briefly and diff
# against the recorded baseline. Allocs/op must not regress (the
# many-alloc parallel builds get a one-alloc scheduler-jitter slack);
# ns/op gets a loose tolerance because the baseline was recorded on
# different hardware than CI runners (see cmd/prvm-bench doc comment).
bench-compare:
	$(GO) run ./cmd/prvm-bench -out /tmp/bench_compare.json -benchtime 0.2s \
		-replay-vms 40 -compare BENCH_pr10.json -tolerance 1.0

# Golden replay regression (DESIGN.md §11): the checked-in recordings
# under examples/ must replay bit-identically through the current code
# — the admission-only run and the churn+rebalance run (whose decision
# stream includes descheduler moves as release+place op pairs).
golden:
	$(GO) run ./cmd/prvm-replay -verify examples/golden/planetlab-60vm-48step.jsonl.gz
	$(GO) run ./cmd/prvm-replay -verify examples/golden/churn-rebalance-60vm-48step.jsonl.gz

bench-all:
	$(GO) test -bench . -benchmem ./...

fmt:
	gofmt -l -w .
