// Package pagerankvm is a Go implementation of PageRankVM — "A
// PageRank Based Algorithm with Anti-Collocation Constraints for
// Virtual Machine Placement in Cloud Datacenters" (Li, Shen, Miles;
// ICDCS 2018) — together with everything its evaluation depends on:
// the profile-graph ranking machinery, the comparison heuristics (FF,
// FFDSum, CompVM, BestFit), an exact branch-and-bound reference
// solver, a trace-driven datacenter simulator, synthetic
// PlanetLab/Google-style workload traces, the Table-III energy model,
// and a distributed GENI-style testbed emulation (controller + agents
// over gob/TCP).
//
// # Model
//
// A physical machine (PM) is a Shape: named groups of identical
// dimensions — e.g. 8 CPU cores of 4 vCPU slots each, one memory
// dimension, 4 physical disks. A VM type demands units from those
// groups; demands with several entries on one group are
// anti-collocated: each entry must land on a distinct dimension
// (paper Equ. 3/4 and 8/9). A PM's usage profile is an integer vector
// over its dimensions.
//
// # Ranking
//
// BuildJointTable enumerates every canonical usage profile of a shape,
// wires the "accommodating one VM" edges, and scores the profiles
// (Algorithm 1). The paper's prose, equation, and worked examples
// disagree on the rank semantics; all three readings are implemented
// and selectable via RankOptions.Mode, with the absorption-value
// reading (the one that reproduces every worked example in the paper
// and its evaluation claims) as the default. BuildFactoredTable
// scales the construction to large shapes by ranking each resource
// group on its own sub-lattice.
//
// # Placement
//
// NewPageRankVM implements Algorithm 2 over a Registry of per-PM-type
// rank tables: scan the used PMs, enumerate the distinct
// anti-collocation outcomes of hosting the VM, and commit to the
// best-scoring resulting profile. FirstFit, FFDSum, CompVM and
// BestFit are the paper's comparison algorithms, sharing the same
// anti-collocation machinery.
//
// # Quickstart
//
//	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
//	types := []pagerankvm.VMType{
//		pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}}),
//		pagerankvm.NewVMType("[1,1,1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
//	}
//	table, _ := pagerankvm.BuildJointTable(shape, types, pagerankvm.RankOptions{})
//	reg := pagerankvm.NewRegistry()
//	reg.Add("host", table)
//	placer := pagerankvm.NewPageRankVM(reg)
//
// See examples/ for runnable programs and DESIGN.md for the full
// system inventory and the paper-interpretation notes.
package pagerankvm
