module pagerankvm

go 1.22
