package pagerankvm_test

import (
	"fmt"

	"pagerankvm"
)

// Build the paper's running-example table and read the Figure 2
// scores.
func ExampleBuildJointTable() {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []pagerankvm.VMType{
		pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}}),
		pagerankvm.NewVMType("[1,1,1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
	table, err := pagerankvm.BuildJointTable(shape, types, pagerankvm.RankOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	balanced, _ := table.Score(pagerankvm.Vec{3, 3, 3, 3})
	skewed, _ := table.Score(pagerankvm.Vec{4, 4, 2, 2})
	fmt.Printf("[3,3,3,3] %.5f\n[4,4,2,2] %.5f\n", balanced, skewed)
	// Output:
	// [3,3,3,3] 0.78625
	// [4,4,2,2] 0.72250
}

// Place a VM with Algorithm 2.
func ExampleNewPageRankVM() {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	vt := pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	table, err := pagerankvm.BuildJointTable(shape, []pagerankvm.VMType{vt}, pagerankvm.RankOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	reg := pagerankvm.NewRegistry()
	reg.Add("host", table)

	placer := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1))
	cluster := pagerankvm.NewCluster([]*pagerankvm.PM{pagerankvm.NewPM(0, "host", shape)})
	vm := &pagerankvm.VM{ID: 1, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"host": vt}}

	pm, assign, err := placer.Place(cluster, vm, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := cluster.Host(pm, vm, assign); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(pm.Used().Sum(), "units on pm", pm.ID)
	// Output:
	// 2 units on pm 0
}

// Enumerate the anti-collocating placements of a VM.
func ExamplePlacements() {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	vt := pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	outcomes := pagerankvm.Placements(shape, pagerankvm.Vec{3, 3, 2, 2}, vt)
	for _, pl := range outcomes {
		fmt.Println(shape.Canon(pl.Result))
	}
	// Unordered output:
	// [2,2,4,4]
	// [2,3,3,4]
	// [3,3,3,3]
}

// Quantize physical amounts into integer units.
func ExampleQuantize() {
	// A 0.7 GHz vCPU on a host whose core slot is 0.65 GHz.
	fmt.Println(pagerankvm.Quantize(0.7, 0.65))
	// A 64 GiB host at a 3.75 GiB memory quantum.
	fmt.Println(pagerankvm.QuantizeCap(64, 3.75))
	// Output:
	// 2
	// 17
}
