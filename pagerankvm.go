package pagerankvm

import (
	"io"

	"pagerankvm/internal/energy"
	"pagerankvm/internal/mip"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/sim"
	"pagerankvm/internal/trace"
)

// Resource model (internal/resource).
type (
	// Vec is a per-dimension integer resource vector.
	Vec = resource.Vec
	// Group is a set of identical dimensions of one PM resource.
	Group = resource.Group
	// Shape is a PM type's dimension layout.
	Shape = resource.Shape
	// Demand is one VM requirement against one group; multiple Units
	// entries are anti-collocated.
	Demand = resource.Demand
	// VMType is a VM class with demands across groups.
	VMType = resource.VMType
	// DimUnits is one (dimension, units) cell of an assignment.
	DimUnits = resource.DimUnits
	// Assignment is a concrete anti-collocating placement of a VM.
	Assignment = resource.Assignment
	// PlacementOption is one distinct outcome of adding a VM to a
	// profile.
	PlacementOption = resource.Placement
)

// NewShape validates groups and builds a Shape.
func NewShape(groups ...Group) (*Shape, error) { return resource.NewShape(groups...) }

// MustShape is NewShape that panics on error.
func MustShape(groups ...Group) *Shape { return resource.MustShape(groups...) }

// NewVMType builds a VM type from demands.
func NewVMType(name string, demands ...Demand) VMType { return resource.NewVMType(name, demands...) }

// Placements enumerates the distinct canonical outcomes of adding vm
// to profile p under shape s.
func Placements(s *Shape, p Vec, vm VMType) []PlacementOption { return resource.Placements(s, p, vm) }

// Fits reports whether vm can be placed onto p at all.
func Fits(s *Shape, p Vec, vm VMType) bool { return resource.Fits(s, p, vm) }

// Quantize converts a physical demand into integer units (rounding
// up); QuantizeCap converts a capacity (rounding down).
func Quantize(amount, quantum float64) int    { return resource.Quantize(amount, quantum) }
func QuantizeCap(amount, quantum float64) int { return resource.QuantizeCap(amount, quantum) }

// Profile ranking (internal/ranktable).
type (
	// RankOptions configures Profile→score table construction.
	RankOptions = ranktable.Options
	// RankMode selects the Algorithm 1 interpretation.
	RankMode = ranktable.Mode
	// RankTable is an exact Profile→score table over one lattice.
	RankTable = ranktable.Table
	// FactoredTable scores profiles as a product of per-group tables.
	FactoredTable = ranktable.Factored
	// Ranker scores PM usage profiles.
	Ranker = ranktable.Ranker
	// Registry maps PM type names to rankers.
	Registry = ranktable.Registry
	// RankEntry pairs a profile with its score.
	RankEntry = ranktable.Entry
)

// Rank mode constants; ModeAbsorption is the default (see DESIGN.md).
const (
	ModeAbsorption = ranktable.ModeAbsorption
	ModeReversePR  = ranktable.ModeReversePR
	ModeForwardPR  = ranktable.ModeForwardPR
)

// BuildJointTable runs Algorithm 1 on the full canonical profile
// lattice of shape.
func BuildJointTable(shape *Shape, vmTypes []VMType, opts RankOptions) (*RankTable, error) {
	return ranktable.NewJoint(shape, vmTypes, opts)
}

// BuildFactoredTable builds one table per resource group (the
// scalable ranker for large PM types).
func BuildFactoredTable(shape *Shape, vmTypes []VMType, opts RankOptions) (*FactoredTable, error) {
	return ranktable.NewFactored(shape, vmTypes, opts)
}

// LoadRankTable reads a table written with RankTable.Save.
func LoadRankTable(r io.Reader) (*RankTable, error) { return ranktable.LoadTable(r) }

// NewRegistry returns an empty ranker registry.
func NewRegistry() *Registry { return ranktable.NewRegistry() }

// Placement (internal/placement).
type (
	// VM is a placement request.
	VM = placement.VM
	// PM is one physical machine.
	PM = placement.PM
	// Cluster tracks PMs and hosted VMs (the used/unused PM lists of
	// Algorithm 2).
	Cluster = placement.Cluster
	// Placer selects a PM and assignment for a VM.
	Placer = placement.Placer
	// Evictor selects overload victims.
	Evictor = placement.Evictor
	// Hosted is a VM on a PM with its assignment.
	Hosted = placement.Hosted
	// PageRankVM is the paper's Algorithm 2 placer.
	PageRankVM = placement.PageRankVM
	// FirstFit, FFDSum, CompVM and BestFit are the comparison
	// algorithms.
	FirstFit = placement.FirstFit
	FFDSum   = placement.FFDSum
	CompVM   = placement.CompVM
	BestFit  = placement.BestFit
	// RankEvictor is PageRankVM's overload policy; MMTEvictor is
	// CloudSim's minimum-migration-time default used by baselines.
	RankEvictor = placement.RankEvictor
	MMTEvictor  = placement.MMTEvictor
	// PageRankOption configures NewPageRankVM.
	PageRankOption = placement.PageRankOption
)

// ErrNoCapacity is returned when no PM can host a VM.
var ErrNoCapacity = placement.ErrNoCapacity

// NewPM returns an empty PM.
func NewPM(id int, pmType string, shape *Shape) *PM { return placement.NewPM(id, pmType, shape) }

// NewCluster builds a cluster over a PM inventory.
func NewCluster(pms []*PM) *Cluster { return placement.NewCluster(pms) }

// NewPageRankVM builds the Algorithm 2 placer.
func NewPageRankVM(rankers *Registry, opts ...PageRankOption) *PageRankVM {
	return placement.NewPageRankVM(rankers, opts...)
}

// WithTwoChoice enables the Section V-C 2-choice sampling variant.
func WithTwoChoice() PageRankOption { return placement.WithTwoChoice() }

// WithSeed seeds the placer's tie-breaking generator.
func WithSeed(seed int64) PageRankOption { return placement.WithSeed(seed) }

// WithRecorder attaches a decision recorder to the placer (see
// internal/obs/record and DESIGN.md §11).
func WithRecorder(r *Recorder) PageRankOption { return placement.WithRecorder(r) }

// Decision recording (internal/obs/record).
type (
	// Recorder appends placement decisions and spans to a recording.
	Recorder = record.Recorder
	// RecordMeta is the replayable run configuration in a recording's
	// header.
	RecordMeta = record.RunMeta
	// RecordedDecision is one captured placement decision.
	RecordedDecision = record.Decision
	// RecordedSpan is one captured span-style timing.
	RecordedSpan = record.Span
	// RecordDiff summarizes a decision-by-decision comparison of two
	// recordings.
	RecordDiff = record.DiffSummary
)

// CreateRecording starts a JSONL recording at path (gzip when the path
// ends in ".gz").
func CreateRecording(path string, meta RecordMeta) (*Recorder, error) {
	return record.Create(path, meta)
}

// ReadRecording loads a recording written with CreateRecording.
func ReadRecording(path string) (RecordMeta, []RecordedDecision, []RecordedSpan, error) {
	hdr, ds, ss, err := record.ReadAll(path)
	return hdr.Meta, ds, ss, err
}

// DiffRecordings compares two decision streams (see record.Diff).
func DiffRecordings(a, b []RecordedDecision) RecordDiff { return record.Diff(a, b) }

// Simulation (internal/sim).
type (
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// Workload pairs a VM with its trace and lease window.
	Workload = sim.Workload
	// Simulation is one trace-driven run.
	Simulation = sim.Simulation
	// SimResult aggregates the paper's metrics.
	SimResult = sim.Result
)

// NewSimulation assembles a simulation run.
func NewSimulation(cfg SimConfig, cluster *Cluster, placer Placer, evictor Evictor,
	models map[string]*EnergyModel, workloads []Workload) (*Simulation, error) {
	return sim.New(cfg, cluster, placer, evictor, models, workloads)
}

// Traces (internal/trace).
type (
	// Series is a per-interval utilization multiplier series.
	Series = trace.Series
	// TraceGenerator produces per-VM utilization series.
	TraceGenerator = trace.Generator
	// PlanetLabTrace and GoogleTrace are the synthetic stand-ins for
	// the paper's workload traces; ConstantTrace is a test fixture.
	PlanetLabTrace = trace.PlanetLab
	GoogleTrace    = trace.Google
	ConstantTrace  = trace.Constant
	// BurstConfig parameterizes tenant-level load surges.
	BurstConfig = trace.BurstConfig
)

// TraceByName builds a generator from "planetlab", "google" or
// "constant".
func TraceByName(name string, seed int64) (TraceGenerator, error) {
	return trace.ByName(name, seed)
}

// Energy (internal/energy).
type (
	// EnergyModel is a Table III power-vs-utilization curve.
	EnergyModel = energy.Model
	// EnergyMeter accumulates energy over a run.
	EnergyMeter = energy.Meter
)

// PowerModelE52670 and PowerModelE52680 are the Table III host models.
func PowerModelE52670() *EnergyModel { return energy.E52670() }
func PowerModelE52680() *EnergyModel { return energy.E52680() }

// PowerModelByName resolves a Table III model by name.
func PowerModelByName(name string) (*EnergyModel, error) { return energy.ByName(name) }

// Exact solver (internal/mip).
type (
	// ExactOptions tunes the branch-and-bound search.
	ExactOptions = mip.Options
	// ExactSolution is the optimal assignment found.
	ExactSolution = mip.Solution
)

// ErrInfeasible is returned by SolveExact when no assignment exists.
var ErrInfeasible = mip.ErrInfeasible

// SolveExact solves the Section IV MIP by branch-and-bound (small
// instances only).
func SolveExact(pms []*PM, vms []*VM, opts ExactOptions) (*ExactSolution, error) {
	return mip.Solve(pms, vms, opts)
}
