package resource

import "math"

// Quantize converts a demanded physical amount into integer units,
// rounding up: a demand must be fully covered. A non-positive quantum
// or amount yields 0.
func Quantize(amount, quantum float64) int {
	if amount <= 0 || quantum <= 0 {
		return 0
	}
	return int(math.Ceil(amount/quantum - 1e-9))
}

// QuantizeCap converts a capacity physical amount into integer units,
// rounding down: a capacity must never be overstated.
func QuantizeCap(amount, quantum float64) int {
	if amount <= 0 || quantum <= 0 {
		return 0
	}
	return int(math.Floor(amount/quantum + 1e-9))
}
