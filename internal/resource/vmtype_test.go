package resource

import "testing"

func TestNewVMTypeSortsUnitsAndGroups(t *testing.T) {
	vt := NewVMType("x",
		Demand{Group: "mem", Units: []int{2}},
		Demand{Group: "cpu", Units: []int{1, 3, 2}},
	)
	if vt.Demands[0].Group != "cpu" || vt.Demands[1].Group != "mem" {
		t.Fatalf("demands not sorted by group: %v", vt)
	}
	got := vt.Demands[0].Units
	if got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("units not sorted descending: %v", got)
	}
}

func TestNewVMTypeDropsEmptyDemands(t *testing.T) {
	vt := NewVMType("x", Demand{Group: "cpu"}, Demand{Group: "mem", Units: []int{1}})
	if len(vt.Demands) != 1 || vt.Demands[0].Group != "mem" {
		t.Fatalf("empty demand not dropped: %v", vt)
	}
}

func TestNewVMTypeCopiesUnits(t *testing.T) {
	units := []int{1, 2}
	vt := NewVMType("x", Demand{Group: "cpu", Units: units})
	units[0] = 99
	if vt.Demands[0].Units[0] == 99 || vt.Demands[0].Units[1] == 99 {
		t.Fatal("NewVMType aliases caller's units slice")
	}
}

func TestVMTypeValidate(t *testing.T) {
	s := MustShape(
		Group{Name: "cpu", Dims: 4, Cap: 4},
		Group{Name: "mem", Dims: 1, Cap: 8},
	)
	tests := []struct {
		name    string
		give    VMType
		wantErr bool
	}{
		{
			name: "valid",
			give: NewVMType("ok", Demand{Group: "cpu", Units: []int{1, 1}}, Demand{Group: "mem", Units: []int{4}}),
		},
		{
			name:    "unknown group",
			give:    NewVMType("bad", Demand{Group: "gpu", Units: []int{1}}),
			wantErr: true,
		},
		{
			name:    "too many anti-collocated units",
			give:    NewVMType("bad", Demand{Group: "cpu", Units: []int{1, 1, 1, 1, 1}}),
			wantErr: true,
		},
		{
			name:    "unit exceeds dim capacity",
			give:    NewVMType("bad", Demand{Group: "cpu", Units: []int{5}}),
			wantErr: true,
		},
		{
			name:    "non-positive unit",
			give:    VMType{Name: "bad", Demands: []Demand{{Group: "cpu", Units: []int{0}}}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate(s)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestVMTypeAccessors(t *testing.T) {
	vt := NewVMType("m3.large",
		Demand{Group: "cpu", Units: []int{1, 1}},
		Demand{Group: "mem", Units: []int{2}},
	)
	if got := vt.TotalUnits(); got != 4 {
		t.Errorf("TotalUnits = %d", got)
	}
	d, ok := vt.DemandFor("cpu")
	if !ok || len(d.Units) != 2 {
		t.Errorf("DemandFor(cpu) = %v, %v", d, ok)
	}
	if _, ok := vt.DemandFor("disk"); ok {
		t.Error("DemandFor(disk) unexpectedly found")
	}
	proj, ok := vt.Project("mem")
	if !ok || len(proj.Demands) != 1 || proj.Demands[0].Group != "mem" {
		t.Errorf("Project(mem) = %v, %v", proj, ok)
	}
	if _, ok := vt.Project("disk"); ok {
		t.Error("Project(disk) unexpectedly found")
	}
	want := "m3.large{cpu:[1,1] mem:[2]}"
	if got := vt.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
