package resource

import "sort"

// DimUnits records that Units resource units were placed on dimension
// Dim (a global dimension index of the shape).
type DimUnits struct {
	Dim   int
	Units int
}

// Assignment is a concrete, anti-collocation-respecting placement of a
// VM onto a PM: for every demanded unit, which dimension received it.
// All dims within the portion belonging to one demand are distinct.
type Assignment []DimUnits

// Vec expands the assignment into a demand vector for the shape.
func (a Assignment) Vec(s *Shape) Vec {
	v := s.Zero()
	for _, du := range a {
		v[du.Dim] += du.Units
	}
	return v
}

// Placement is one distinct way of adding a VM to a profile: the
// concrete assignment, the resulting (non-canonical) profile, and the
// canonical key of the result for rank-table lookups. Placements with
// equal keys are interchangeable; the enumeration returns one
// representative per key.
type Placement struct {
	Assign Assignment
	Result Vec
	Key    string
}

// Placements enumerates the distinct canonical outcomes of placing vm
// onto profile p under shape s, honoring anti-collocation (each unit of
// a demand on a distinct dimension of its group) and capacity.
// It returns nil when the VM does not fit.
func Placements(s *Shape, p Vec, vm VMType) []Placement {
	var (
		results []Placement
		seen    = make(map[string]bool)
		assign  Assignment
		work    = p.Clone()
	)

	var recurse func(demandIdx int)
	recurse = func(demandIdx int) {
		if demandIdx == len(vm.Demands) {
			key := s.Key(work)
			if seen[key] {
				return
			}
			seen[key] = true
			a := make(Assignment, len(assign))
			copy(a, assign)
			results = append(results, Placement{
				Assign: a,
				Result: work.Clone(),
				Key:    key,
			})
			return
		}
		d := vm.Demands[demandIdx]
		gi := s.GroupIndex(d.Group)
		if gi < 0 {
			return
		}
		lo, hi := s.GroupRange(gi)
		capUnits := s.Group(gi).Cap
		used := make([]bool, hi-lo)

		// Place each unit of the demand on a distinct dimension of the
		// group. Units are sorted descending (NewVMType); identical
		// consecutive units are forced onto increasing dimension
		// indices to avoid enumerating symmetric duplicates.
		var placeUnit func(unitIdx, minDim int)
		placeUnit = func(unitIdx, minDim int) {
			if unitIdx == len(d.Units) {
				recurse(demandIdx + 1)
				return
			}
			u := d.Units[unitIdx]
			start := lo
			if unitIdx > 0 && d.Units[unitIdx-1] == u {
				start = minDim
			}
			for dim := start; dim < hi; dim++ {
				if used[dim-lo] || work[dim]+u > capUnits {
					continue
				}
				used[dim-lo] = true
				work[dim] += u
				assign = append(assign, DimUnits{Dim: dim, Units: u})
				placeUnit(unitIdx+1, dim+1)
				assign = assign[:len(assign)-1]
				work[dim] -= u
				used[dim-lo] = false
			}
		}
		placeUnit(0, lo)
	}
	recurse(0)
	return results
}

// Fits reports whether vm can be placed onto profile p at all. Per
// group it checks Hall's condition over threshold sets: with the
// per-unit demands sorted descending (NewVMType guarantees this), an
// anti-collocating assignment exists iff for every i the group has at
// least i dimensions whose headroom covers the i-th largest demand —
// the counting form of the classic exchange argument (match demands
// against dimensions by descending headroom). Counting instead of
// sorting keeps this allocation-free: Fits is the per-candidate
// feasibility gate of every placement scan, called O(used PMs) times
// per decision.
//
//prvm:hotpath
func Fits(s *Shape, p Vec, vm VMType) bool {
	for _, d := range vm.Demands {
		gi := s.GroupIndex(d.Group)
		if gi < 0 {
			return false
		}
		lo, hi := s.GroupRange(gi)
		capUnits := s.Group(gi).Cap
		if len(d.Units) > hi-lo {
			return false
		}
		for i, u := range d.Units { // units sorted descending
			n := 0
			for dim := lo; dim < hi; dim++ {
				if capUnits-p[dim] >= u {
					n++
					if n > i {
						break
					}
				}
			}
			if n <= i {
				return false
			}
		}
	}
	return true
}

// GreedyAssign returns one feasible assignment of vm onto p, choosing
// for every demand the dimensions with the most headroom (spreading
// load). Returns nil when the VM does not fit. First-fit style
// algorithms use this; PageRankVM picks among Placements instead.
func GreedyAssign(s *Shape, p Vec, vm VMType) Assignment {
	if !Fits(s, p, vm) {
		return nil
	}
	var assign Assignment
	work := p.Clone()
	for _, d := range vm.Demands {
		gi := s.GroupIndex(d.Group)
		lo, hi := s.GroupRange(gi)
		capUnits := s.Group(gi).Cap

		type dimHead struct{ dim, head int }
		dims := make([]dimHead, 0, hi-lo)
		for dim := lo; dim < hi; dim++ {
			dims = append(dims, dimHead{dim: dim, head: capUnits - work[dim]})
		}
		sort.Slice(dims, func(i, j int) bool {
			if dims[i].head != dims[j].head {
				return dims[i].head > dims[j].head
			}
			return dims[i].dim < dims[j].dim
		})
		for i, u := range d.Units {
			if dims[i].head < u {
				return nil // should not happen after Fits
			}
			work[dims[i].dim] += u
			assign = append(assign, DimUnits{Dim: dims[i].dim, Units: u})
		}
	}
	return assign
}

// PackAssign returns one feasible assignment of vm onto p that packs:
// for every demand it chooses the feasible dimensions with the *least*
// headroom (tightest fit first). Returns nil when the VM does not fit.
func PackAssign(s *Shape, p Vec, vm VMType) Assignment {
	var assign Assignment
	work := p.Clone()
	for _, d := range vm.Demands {
		gi := s.GroupIndex(d.Group)
		if gi < 0 {
			return nil
		}
		lo, hi := s.GroupRange(gi)
		capUnits := s.Group(gi).Cap

		type dimHead struct{ dim, head int }
		dims := make([]dimHead, 0, hi-lo)
		for dim := lo; dim < hi; dim++ {
			dims = append(dims, dimHead{dim: dim, head: capUnits - work[dim]})
		}
		sort.Slice(dims, func(i, j int) bool {
			if dims[i].head != dims[j].head {
				return dims[i].head < dims[j].head
			}
			return dims[i].dim < dims[j].dim
		})
		for _, u := range d.Units {
			placed := false
			for i := range dims {
				if dims[i].head >= u {
					work[dims[i].dim] += u
					assign = append(assign, DimUnits{Dim: dims[i].dim, Units: u})
					dims[i].head = -1 // consumed for this demand
					placed = true
					break
				}
			}
			if !placed {
				return nil
			}
		}
	}
	return assign
}
