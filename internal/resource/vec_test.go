package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecClone(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatalf("Clone aliases underlying array: v=%v", v)
	}
	if !v.Equal(Vec{1, 2, 3}) {
		t.Fatalf("original mutated: %v", v)
	}
}

func TestVecSum(t *testing.T) {
	tests := []struct {
		give Vec
		want int
	}{
		{give: Vec{}, want: 0},
		{give: Vec{4}, want: 4},
		{give: Vec{1, 2, 3, 4}, want: 10},
		{give: Vec{0, 0, 0}, want: 0},
	}
	for _, tt := range tests {
		if got := tt.give.Sum(); got != tt.want {
			t.Errorf("%v.Sum() = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestVecAddSub(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{3, 2, 1}
	sum := v.Add(w)
	if !sum.Equal(Vec{4, 4, 4}) {
		t.Fatalf("Add = %v", sum)
	}
	diff := sum.Sub(w)
	if !diff.Equal(v) {
		t.Fatalf("Sub = %v, want %v", diff, v)
	}
}

func TestVecAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestVecLE(t *testing.T) {
	tests := []struct {
		name string
		v, w Vec
		want bool
	}{
		{name: "equal", v: Vec{1, 2}, w: Vec{1, 2}, want: true},
		{name: "less", v: Vec{0, 2}, w: Vec{1, 2}, want: true},
		{name: "greater", v: Vec{2, 2}, w: Vec{1, 2}, want: false},
		{name: "incomparable", v: Vec{0, 3}, w: Vec{1, 2}, want: false},
		{name: "length mismatch", v: Vec{1}, w: Vec{1, 2}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.LE(tt.w); got != tt.want {
				t.Errorf("LE(%v,%v) = %v, want %v", tt.v, tt.w, got, tt.want)
			}
		})
	}
}

func TestVecString(t *testing.T) {
	if got := (Vec{4, 3, 3, 3}).String(); got != "[4,3,3,3]" {
		t.Fatalf("String = %q", got)
	}
	if got := (Vec{}).String(); got != "[]" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestVecIsZero(t *testing.T) {
	if !(Vec{0, 0}).IsZero() {
		t.Error("zero vector reported non-zero")
	}
	if (Vec{0, 1}).IsZero() {
		t.Error("non-zero vector reported zero")
	}
}

// Property: Add then Sub round-trips.
func TestVecAddSubRoundTrip(t *testing.T) {
	f := func(a, b []uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		v := make(Vec, n)
		w := make(Vec, n)
		for i := 0; i < n; i++ {
			v[i], w[i] = int(a[i]), int(b[i])
		}
		return v.Add(w).Sub(w).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
