package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperShape is the paper's running example: 4 dimensions, capacity 4
// each (Figure 2 and the GENI testbed configuration).
func paperShape(t *testing.T) *Shape {
	t.Helper()
	return MustShape(Group{Name: "cpu", Dims: 4, Cap: 4})
}

func vm11() VMType   { return NewVMType("[1,1]", Demand{Group: "cpu", Units: []int{1, 1}}) }
func vm1111() VMType { return NewVMType("[1,1,1,1]", Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}) }

func TestPlacementsPaperExample(t *testing.T) {
	s := paperShape(t)

	// [3,3,2,2] + [1,1]: distinct canonical outcomes are
	// [4,4,2,2], [4,3,3,2], [3,3,3,3].
	p := Vec{3, 3, 2, 2}
	got := Placements(s, p, vm11())
	keys := make(map[string]bool, len(got))
	for _, pl := range got {
		keys[pl.Key] = true
	}
	wantProfiles := []Vec{{4, 4, 2, 2}, {4, 3, 3, 2}, {3, 3, 3, 3}}
	if len(got) != len(wantProfiles) {
		t.Fatalf("got %d placements, want %d: %v", len(got), len(wantProfiles), got)
	}
	for _, w := range wantProfiles {
		if !keys[s.Key(w)] {
			t.Errorf("missing outcome %v", w)
		}
	}
}

func TestPlacementsFourWide(t *testing.T) {
	s := paperShape(t)
	// [3,3,3,3] + [1,1,1,1] -> only [4,4,4,4].
	got := Placements(s, Vec{3, 3, 3, 3}, vm1111())
	if len(got) != 1 {
		t.Fatalf("got %d placements, want 1", len(got))
	}
	if !got[0].Result.Equal(Vec{4, 4, 4, 4}) {
		t.Fatalf("result = %v", got[0].Result)
	}
	// Assignment touches 4 distinct dims.
	seen := make(map[int]bool)
	for _, du := range got[0].Assign {
		if seen[du.Dim] {
			t.Fatalf("anti-collocation violated: dim %d reused", du.Dim)
		}
		seen[du.Dim] = true
	}
}

func TestPlacementsNoFit(t *testing.T) {
	s := paperShape(t)
	// [4,4,4,3] cannot accommodate [1,1].
	if got := Placements(s, Vec{4, 4, 4, 3}, vm11()); got != nil {
		t.Fatalf("expected no placements, got %v", got)
	}
	// Full profile accommodates nothing.
	if got := Placements(s, Vec{4, 4, 4, 4}, vm11()); got != nil {
		t.Fatalf("expected no placements on full profile, got %v", got)
	}
}

func TestPlacementsMultiGroup(t *testing.T) {
	s := MustShape(
		Group{Name: "cpu", Dims: 2, Cap: 2},
		Group{Name: "mem", Dims: 1, Cap: 4},
		Group{Name: "disk", Dims: 2, Cap: 2},
	)
	vt := NewVMType("t",
		Demand{Group: "cpu", Units: []int{1, 1}},
		Demand{Group: "mem", Units: []int{2}},
		Demand{Group: "disk", Units: []int{1}},
	)
	got := Placements(s, s.Zero(), vt)
	// cpu has a single multiset outcome {1,1}; mem one; disk one
	// canonical outcome (either disk yields [0,1]).
	if len(got) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(got))
	}
	if !got[0].Result.Equal(Vec{1, 1, 2, 1, 0}) && !got[0].Result.Equal(Vec{1, 1, 2, 0, 1}) {
		t.Fatalf("result = %v", got[0].Result)
	}
}

func TestPlacementsUnequalUnits(t *testing.T) {
	s := MustShape(Group{Name: "disk", Dims: 2, Cap: 4})
	vt := NewVMType("t", Demand{Group: "disk", Units: []int{3, 1}})
	// From [1,0]: 3 can go on the 0-dim (->[1+?]) etc. Feasible
	// assignments: 3 on dim1 & 1 on dim0 => [2,3]; 3 on dim0? 1+3=4 ok,
	// 1 on dim1 => [4,1]. Two canonical outcomes.
	got := Placements(s, Vec{1, 0}, vt)
	if len(got) != 2 {
		t.Fatalf("got %d outcomes, want 2: %v", len(got), got)
	}
}

func TestFitsMatchesPlacements(t *testing.T) {
	s := MustShape(
		Group{Name: "cpu", Dims: 3, Cap: 3},
		Group{Name: "disk", Dims: 2, Cap: 2},
	)
	types := []VMType{
		NewVMType("a", Demand{Group: "cpu", Units: []int{1, 1}}),
		NewVMType("b", Demand{Group: "cpu", Units: []int{2, 2, 2}}),
		NewVMType("c", Demand{Group: "cpu", Units: []int{3}}, Demand{Group: "disk", Units: []int{1, 1}}),
		NewVMType("d", Demand{Group: "disk", Units: []int{2, 2}}),
	}
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := make(Vec, s.NumDims())
		caps := s.Capacity()
		for i := range p {
			p[i] = r.Intn(caps[i] + 1)
		}
		vt := types[r.Intn(len(types))]
		fits := Fits(s, p, vt)
		placements := Placements(s, p, vt)
		return fits == (len(placements) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated placement stays within capacity, uses
// distinct dims per demand, and adds exactly the demanded units.
func TestPlacementsInvariants(t *testing.T) {
	s := MustShape(
		Group{Name: "cpu", Dims: 4, Cap: 3},
		Group{Name: "mem", Dims: 1, Cap: 6},
	)
	vt := NewVMType("t",
		Demand{Group: "cpu", Units: []int{2, 1, 1}},
		Demand{Group: "mem", Units: []int{2}},
	)
	caps := s.Capacity()
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := make(Vec, s.NumDims())
		for i := range p {
			p[i] = r.Intn(caps[i] + 1)
		}
		for _, pl := range Placements(s, p, vt) {
			if !pl.Result.LE(caps) {
				return false
			}
			if pl.Result.Sum()-p.Sum() != vt.TotalUnits() {
				return false
			}
			if !pl.Result.Equal(p.Add(pl.Assign.Vec(s))) {
				return false
			}
			// Distinct dims per demand: total assignment entries must
			// equal total unit count and no dim may appear twice within
			// the entries of one demand. Since demands target disjoint
			// groups here, global uniqueness suffices.
			seen := make(map[int]bool)
			for _, du := range pl.Assign {
				if seen[du.Dim] {
					return false
				}
				seen[du.Dim] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGreedyAssignSpreads(t *testing.T) {
	s := paperShape(t)
	p := Vec{3, 1, 0, 2}
	a := GreedyAssign(s, p, vm11())
	if a == nil {
		t.Fatal("GreedyAssign returned nil for feasible placement")
	}
	// Most headroom dims are 2 (head 4) and 1 (head 3).
	got := map[int]bool{a[0].Dim: true, a[1].Dim: true}
	if !got[2] || !got[1] {
		t.Fatalf("GreedyAssign chose dims %v, want {1,2}", got)
	}
}

func TestGreedyAssignInfeasible(t *testing.T) {
	s := paperShape(t)
	if a := GreedyAssign(s, Vec{4, 4, 4, 3}, vm11()); a != nil {
		t.Fatalf("GreedyAssign = %v, want nil", a)
	}
}

func TestPackAssignTightens(t *testing.T) {
	s := paperShape(t)
	p := Vec{3, 1, 0, 2}
	a := PackAssign(s, p, vm11())
	if a == nil {
		t.Fatal("PackAssign returned nil for feasible placement")
	}
	// Tightest feasible dims are 0 (head 1) then 3 (head 2).
	got := map[int]bool{a[0].Dim: true, a[1].Dim: true}
	if !got[0] || !got[3] {
		t.Fatalf("PackAssign chose dims %v, want {0,3}", got)
	}
}

func TestPackAssignInfeasible(t *testing.T) {
	s := MustShape(Group{Name: "disk", Dims: 2, Cap: 4})
	vt := NewVMType("t", Demand{Group: "disk", Units: []int{3, 3}})
	if a := PackAssign(s, Vec{2, 0}, vt); a != nil {
		t.Fatalf("PackAssign = %v, want nil", a)
	}
}

func TestQuantize(t *testing.T) {
	tests := []struct {
		amount, quantum float64
		want            int
	}{
		{amount: 0.6, quantum: 0.65, want: 1},
		{amount: 0.7, quantum: 0.65, want: 2},
		{amount: 1.3, quantum: 0.65, want: 2},
		{amount: 0, quantum: 1, want: 0},
		{amount: 1, quantum: 0, want: 0},
		{amount: 7.5, quantum: 3.75, want: 2},
	}
	for _, tt := range tests {
		if got := Quantize(tt.amount, tt.quantum); got != tt.want {
			t.Errorf("Quantize(%v,%v) = %d, want %d", tt.amount, tt.quantum, got, tt.want)
		}
	}
}

func TestQuantizeCap(t *testing.T) {
	tests := []struct {
		amount, quantum float64
		want            int
	}{
		{amount: 2.6, quantum: 0.65, want: 4},
		{amount: 2.8, quantum: 0.65, want: 4},
		{amount: 64, quantum: 3.75, want: 17},
		{amount: 7.5, quantum: 3.75, want: 2},
		{amount: 0, quantum: 1, want: 0},
	}
	for _, tt := range tests {
		if got := QuantizeCap(tt.amount, tt.quantum); got != tt.want {
			t.Errorf("QuantizeCap(%v,%v) = %d, want %d", tt.amount, tt.quantum, got, tt.want)
		}
	}
}
