package resource

import (
	"errors"
	"fmt"
	"sort"
)

// Group describes a set of identical, interchangeable dimensions of one
// physical resource: for example "cpu" with Dims=8 physical cores of
// Cap=4 units each, or "mem" with a single dimension. Anti-collocation
// constraints are expressed against groups: the per-unit demands of one
// VM must land on distinct dimensions of the group (Equ. 3/4 and 8/9 in
// the paper).
type Group struct {
	// Name identifies the group ("cpu", "mem", "disk", ...). Demands
	// refer to groups by name.
	Name string
	// Dims is the number of identical dimensions in the group (e.g.
	// the number of physical cores).
	Dims int
	// Cap is the per-dimension capacity in integer units.
	Cap int
}

// maxKeyUnit bounds per-dimension capacities so canonical profiles can
// be encoded one byte per dimension in map keys.
const maxKeyUnit = 255

// Shape is the dimension layout of a PM type: an ordered list of groups.
// A Shape is immutable after construction.
type Shape struct {
	groups  []Group
	offsets []int // offsets[i] is the first dimension index of group i
	dims    int   // total dimension count
	total   int   // total capacity in units, summed over all dimensions
}

// NewShape validates the groups and builds a Shape. Group names must be
// non-empty and unique, dimension counts positive, and capacities in
// [1, 255].
func NewShape(groups ...Group) (*Shape, error) {
	if len(groups) == 0 {
		return nil, errors.New("resource: shape needs at least one group")
	}
	seen := make(map[string]bool, len(groups))
	s := &Shape{
		groups:  make([]Group, len(groups)),
		offsets: make([]int, len(groups)),
	}
	for i, g := range groups {
		switch {
		case g.Name == "":
			return nil, fmt.Errorf("resource: group %d has empty name", i)
		case seen[g.Name]:
			return nil, fmt.Errorf("resource: duplicate group name %q", g.Name)
		case g.Dims <= 0:
			return nil, fmt.Errorf("resource: group %q has %d dims", g.Name, g.Dims)
		case g.Cap <= 0 || g.Cap > maxKeyUnit:
			return nil, fmt.Errorf("resource: group %q capacity %d outside [1,%d]", g.Name, g.Cap, maxKeyUnit)
		}
		seen[g.Name] = true
		s.groups[i] = g
		s.offsets[i] = s.dims
		s.dims += g.Dims
		s.total += g.Dims * g.Cap
	}
	return s, nil
}

// MustShape is NewShape that panics on error, for static catalogs and
// tests.
func MustShape(groups ...Group) *Shape {
	s, err := NewShape(groups...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDims returns the total number of dimensions.
func (s *Shape) NumDims() int { return s.dims }

// NumGroups returns the number of groups.
func (s *Shape) NumGroups() int { return len(s.groups) }

// Group returns the i-th group.
func (s *Shape) Group(i int) Group { return s.groups[i] }

// GroupIndex returns the index of the named group, or -1.
func (s *Shape) GroupIndex(name string) int {
	for i, g := range s.groups {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// GroupRange returns the half-open dimension index range [lo, hi) of
// group i.
func (s *Shape) GroupRange(i int) (lo, hi int) {
	lo = s.offsets[i]
	return lo, lo + s.groups[i].Dims
}

// Capacity returns the capacity vector of the shape.
func (s *Shape) Capacity() Vec {
	v := make(Vec, s.dims)
	for i, g := range s.groups {
		lo, hi := s.GroupRange(i)
		for d := lo; d < hi; d++ {
			v[d] = g.Cap
		}
	}
	return v
}

// TotalCapacity returns the total units across all dimensions.
func (s *Shape) TotalCapacity() int { return s.total }

// Zero returns the all-zero profile of the shape.
func (s *Shape) Zero() Vec { return make(Vec, s.dims) }

// Valid reports whether v has the right length and every dimension lies
// within [0, cap].
func (s *Shape) Valid(v Vec) bool {
	if len(v) != s.dims {
		return false
	}
	for i, g := range s.groups {
		lo, hi := s.GroupRange(i)
		for d := lo; d < hi; d++ {
			if v[d] < 0 || v[d] > g.Cap {
				return false
			}
		}
	}
	return true
}

// Canon returns the canonical form of v: within every group the
// dimension values are sorted ascending. Profiles that are permutations
// of one another within groups are physically indistinguishable (the
// dimensions are identical hardware), so they share a canonical form
// and a rank score.
func (s *Shape) Canon(v Vec) Vec {
	out := v.Clone()
	s.CanonInPlace(out)
	return out
}

// CanonInPlace sorts v into canonical form without allocating.
func (s *Shape) CanonInPlace(v Vec) {
	for i := range s.groups {
		lo, hi := s.GroupRange(i)
		sort.Ints(v[lo:hi])
	}
}

// Key encodes the canonical form of v as a compact string usable as a
// map key. One byte per dimension; NewShape guarantees every value fits.
func (s *Shape) Key(v Vec) string {
	c := s.Canon(v)
	return rawKey(c)
}

// KeyCanon encodes an already-canonical vector without re-sorting.
func (s *Shape) KeyCanon(c Vec) string { return rawKey(c) }

func rawKey(c Vec) string {
	b := make([]byte, len(c))
	for i, x := range c {
		b[i] = byte(x)
	}
	return string(b)
}

// Util returns the aggregate utilization of v in [0, 1]: used units over
// total capacity.
func (s *Shape) Util(v Vec) float64 {
	if s.total == 0 {
		return 0
	}
	return float64(v.Sum()) / float64(s.total)
}

// GroupUtil returns the utilization of group i under v.
func (s *Shape) GroupUtil(v Vec, i int) float64 {
	lo, hi := s.GroupRange(i)
	used := 0
	for d := lo; d < hi; d++ {
		used += v[d]
	}
	return float64(used) / float64(s.groups[i].Dims*s.groups[i].Cap)
}

// IsBest reports whether v is the best profile: full utilization in
// every dimension.
func (s *Shape) IsBest(v Vec) bool {
	for i, g := range s.groups {
		lo, hi := s.GroupRange(i)
		for d := lo; d < hi; d++ {
			if v[d] != g.Cap {
				return false
			}
		}
	}
	return true
}

// SubShape returns a single-group shape for group i, used by the
// factored ranker.
func (s *Shape) SubShape(i int) *Shape {
	sub, err := NewShape(s.groups[i])
	if err != nil {
		// The group was validated when s was built.
		panic(err)
	}
	return sub
}

// Project extracts group i's slice of v as a vector for the sub-shape.
func (s *Shape) Project(v Vec, i int) Vec {
	lo, hi := s.GroupRange(i)
	out := make(Vec, hi-lo)
	copy(out, v[lo:hi])
	return out
}

// NumProfiles returns the number of canonical profiles in the full box
// lattice of the shape: the product over groups of multiset counts
// C(dims+cap, cap). Returns -1 on overflow.
func (s *Shape) NumProfiles() int64 {
	total := int64(1)
	for _, g := range s.groups {
		n := multisetCount(g.Dims, g.Cap)
		if n < 0 {
			return -1
		}
		total *= n
		if total < 0 {
			return -1
		}
	}
	return total
}

// multisetCount returns C(dims+cap, cap): the number of non-decreasing
// sequences of length dims with values in [0, cap].
func multisetCount(dims, capUnits int) int64 {
	n, k := int64(dims+capUnits), int64(capUnits)
	if k > n-k {
		k = n - k
	}
	result := int64(1)
	for i := int64(1); i <= k; i++ {
		result = result * (n - k + i) / i
		if result < 0 {
			return -1
		}
	}
	return result
}
