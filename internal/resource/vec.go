// Package resource defines the multi-dimensional resource model used
// throughout the PageRankVM library: integer-unit vectors, dimension
// groups with symmetry (CPU cores, physical disks), PM shapes, VM type
// demands with anti-collocation semantics, and the enumeration of
// feasible placements of a VM onto a PM profile.
//
// All quantities are integer "units" produced by quantizing physical
// amounts (GHz, GiB, GB); see Quantize and QuantizeCap.
package resource

import (
	"fmt"
	"strconv"
	"strings"
)

// Vec is a resource vector: one integer amount of used (or demanded)
// units per dimension. The dimension layout is given by a Shape.
type Vec []int

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Sum returns the total units across all dimensions.
func (v Vec) Sum() int {
	total := 0
	for _, x := range v {
		total += x
	}
	return total
}

// Add returns v + w as a new vector. It panics if lengths differ, since
// that is always a programming error (vectors from different shapes).
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("resource: Add length mismatch %d != %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector. It panics if lengths differ.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("resource: Sub length mismatch %d != %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// LE reports whether v <= w componentwise.
func (v Vec) LE(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Equal reports whether v and w are identical.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every dimension is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// String renders the vector in the paper's profile notation, e.g.
// "[4,3,3,3]".
func (v Vec) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(x))
	}
	sb.WriteByte(']')
	return sb.String()
}
