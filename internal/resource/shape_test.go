package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testShape(t *testing.T) *Shape {
	t.Helper()
	s, err := NewShape(
		Group{Name: "cpu", Dims: 4, Cap: 4},
		Group{Name: "mem", Dims: 1, Cap: 8},
		Group{Name: "disk", Dims: 2, Cap: 6},
	)
	if err != nil {
		t.Fatalf("NewShape: %v", err)
	}
	return s
}

func TestNewShapeValidation(t *testing.T) {
	tests := []struct {
		name   string
		groups []Group
	}{
		{name: "empty", groups: nil},
		{name: "empty name", groups: []Group{{Name: "", Dims: 1, Cap: 1}}},
		{name: "duplicate name", groups: []Group{{Name: "a", Dims: 1, Cap: 1}, {Name: "a", Dims: 1, Cap: 1}}},
		{name: "zero dims", groups: []Group{{Name: "a", Dims: 0, Cap: 1}}},
		{name: "zero cap", groups: []Group{{Name: "a", Dims: 1, Cap: 0}}},
		{name: "cap too large", groups: []Group{{Name: "a", Dims: 1, Cap: 256}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewShape(tt.groups...); err == nil {
				t.Error("NewShape accepted invalid groups")
			}
		})
	}
}

func TestShapeLayout(t *testing.T) {
	s := testShape(t)
	if s.NumDims() != 7 {
		t.Fatalf("NumDims = %d, want 7", s.NumDims())
	}
	if s.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", s.NumGroups())
	}
	lo, hi := s.GroupRange(0)
	if lo != 0 || hi != 4 {
		t.Errorf("cpu range = [%d,%d)", lo, hi)
	}
	lo, hi = s.GroupRange(2)
	if lo != 5 || hi != 7 {
		t.Errorf("disk range = [%d,%d)", lo, hi)
	}
	if got := s.GroupIndex("mem"); got != 1 {
		t.Errorf("GroupIndex(mem) = %d", got)
	}
	if got := s.GroupIndex("gpu"); got != -1 {
		t.Errorf("GroupIndex(gpu) = %d", got)
	}
	if got := s.TotalCapacity(); got != 4*4+8+2*6 {
		t.Errorf("TotalCapacity = %d", got)
	}
	want := Vec{4, 4, 4, 4, 8, 6, 6}
	if !s.Capacity().Equal(want) {
		t.Errorf("Capacity = %v, want %v", s.Capacity(), want)
	}
}

func TestShapeValid(t *testing.T) {
	s := testShape(t)
	tests := []struct {
		name string
		give Vec
		want bool
	}{
		{name: "zero", give: s.Zero(), want: true},
		{name: "full", give: s.Capacity(), want: true},
		{name: "wrong length", give: Vec{0, 0}, want: false},
		{name: "negative", give: Vec{-1, 0, 0, 0, 0, 0, 0}, want: false},
		{name: "over capacity", give: Vec{5, 0, 0, 0, 0, 0, 0}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Valid(tt.give); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestShapeCanon(t *testing.T) {
	s := testShape(t)
	v := Vec{3, 1, 2, 0, 5, 6, 2}
	c := s.Canon(v)
	want := Vec{0, 1, 2, 3, 5, 2, 6}
	if !c.Equal(want) {
		t.Fatalf("Canon(%v) = %v, want %v", v, c, want)
	}
	// Original untouched.
	if !v.Equal(Vec{3, 1, 2, 0, 5, 6, 2}) {
		t.Fatalf("Canon mutated input: %v", v)
	}
	// Idempotent.
	if !s.Canon(c).Equal(c) {
		t.Fatalf("Canon not idempotent")
	}
}

// Property: canonicalization is invariant under within-group shuffles.
func TestShapeCanonPermutationInvariant(t *testing.T) {
	s := testShape(t)
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := make(Vec, s.NumDims())
		for i, g := range []int{0, 0, 0, 0, 1, 2, 2} {
			v[i] = r.Intn(s.Group(g).Cap + 1)
		}
		shuffled := v.Clone()
		for gi := 0; gi < s.NumGroups(); gi++ {
			lo, hi := s.GroupRange(gi)
			r.Shuffle(hi-lo, func(i, j int) {
				shuffled[lo+i], shuffled[lo+j] = shuffled[lo+j], shuffled[lo+i]
			})
		}
		return s.Key(v) == s.Key(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestShapeKeyDistinguishes(t *testing.T) {
	s := testShape(t)
	a := Vec{1, 1, 1, 1, 0, 0, 0}
	b := Vec{1, 1, 1, 1, 1, 0, 0}
	if s.Key(a) == s.Key(b) {
		t.Fatal("distinct profiles share a key")
	}
}

func TestShapeUtil(t *testing.T) {
	s := testShape(t)
	if got := s.Util(s.Zero()); got != 0 {
		t.Errorf("Util(zero) = %v", got)
	}
	if got := s.Util(s.Capacity()); got != 1 {
		t.Errorf("Util(full) = %v", got)
	}
	half := Vec{2, 2, 2, 2, 4, 3, 3}
	if got := s.Util(half); got != 0.5 {
		t.Errorf("Util(half) = %v", got)
	}
	if got := s.GroupUtil(half, 0); got != 0.5 {
		t.Errorf("GroupUtil(cpu) = %v", got)
	}
}

func TestShapeIsBest(t *testing.T) {
	s := testShape(t)
	if !s.IsBest(s.Capacity()) {
		t.Error("full profile not best")
	}
	almost := s.Capacity()
	almost[3]--
	if s.IsBest(almost) {
		t.Error("non-full profile reported best")
	}
}

func TestShapeSubShapeProject(t *testing.T) {
	s := testShape(t)
	sub := s.SubShape(2)
	if sub.NumDims() != 2 || sub.Group(0).Name != "disk" {
		t.Fatalf("SubShape(2) = %+v", sub.Group(0))
	}
	v := Vec{1, 2, 3, 4, 5, 6, 2}
	p := s.Project(v, 2)
	if !p.Equal(Vec{6, 2}) {
		t.Fatalf("Project = %v", p)
	}
	p[0] = 0
	if v[5] != 6 {
		t.Fatal("Project aliases the source")
	}
}

func TestShapeNumProfiles(t *testing.T) {
	// Single group, 4 dims cap 4: C(8,4) = 70 canonical profiles.
	s := MustShape(Group{Name: "cpu", Dims: 4, Cap: 4})
	if got := s.NumProfiles(); got != 70 {
		t.Fatalf("NumProfiles = %d, want 70", got)
	}
	// Two dims cap 1 each: C(3,1) = 3 (00, 01, 11).
	s2 := MustShape(Group{Name: "a", Dims: 2, Cap: 1})
	if got := s2.NumProfiles(); got != 3 {
		t.Fatalf("NumProfiles = %d, want 3", got)
	}
}

func TestMustShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustShape with invalid group did not panic")
		}
	}()
	MustShape(Group{Name: "", Dims: 0, Cap: 0})
}
