package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Demand is one VM type's requirement against one resource group.
// Units holds the per-unit amounts; each entry must be placed on a
// *distinct* dimension of the group (the anti-collocation constraint):
// e.g. Units=[1,1] on group "cpu" demands 1 unit on each of two
// different physical cores. A single-dimension group (memory) simply
// has one entry.
type Demand struct {
	Group string
	Units []int
}

// VMType is a VM class: a name plus its demands across resource groups.
// In the paper's notation a VM type like {[1,1] cpu} is written [1,1];
// the Units of each Demand are the alpha/gamma values after
// quantization.
type VMType struct {
	Name    string
	Demands []Demand
}

// NewVMType builds a VM type with demands sorted by group name and each
// demand's units sorted descending (the canonical internal order used
// by placement enumeration).
func NewVMType(name string, demands ...Demand) VMType {
	ds := make([]Demand, 0, len(demands))
	for _, d := range demands {
		if len(d.Units) == 0 {
			continue
		}
		units := make([]int, len(d.Units))
		copy(units, d.Units)
		sort.Sort(sort.Reverse(sort.IntSlice(units)))
		ds = append(ds, Demand{Group: d.Group, Units: units})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Group < ds[j].Group })
	return VMType{Name: name, Demands: ds}
}

// Validate checks the VM type against a shape: every demand group must
// exist, unit counts must not exceed the group's dimension count, and
// every unit amount must fit a single dimension.
func (t VMType) Validate(s *Shape) error {
	for _, d := range t.Demands {
		gi := s.GroupIndex(d.Group)
		if gi < 0 {
			return fmt.Errorf("resource: vm type %q demands unknown group %q", t.Name, d.Group)
		}
		g := s.Group(gi)
		if len(d.Units) > g.Dims {
			return fmt.Errorf("resource: vm type %q demands %d anti-collocated units on group %q with only %d dims",
				t.Name, len(d.Units), d.Group, g.Dims)
		}
		for _, u := range d.Units {
			if u <= 0 {
				return fmt.Errorf("resource: vm type %q has non-positive unit demand on group %q", t.Name, d.Group)
			}
			if u > g.Cap {
				return fmt.Errorf("resource: vm type %q unit demand %d exceeds group %q capacity %d",
					t.Name, u, d.Group, g.Cap)
			}
		}
	}
	return nil
}

// DemandFor returns the demand on the named group and whether one exists.
func (t VMType) DemandFor(group string) (Demand, bool) {
	for _, d := range t.Demands {
		if d.Group == group {
			return d, true
		}
	}
	return Demand{}, false
}

// TotalUnits returns the total demanded units across all groups.
func (t VMType) TotalUnits() int {
	total := 0
	for _, d := range t.Demands {
		for _, u := range d.Units {
			total += u
		}
	}
	return total
}

// Equal reports whether two VM types have the same name and identical
// demands (group names, unit counts and amounts, in order). The
// placer's id-indexed fast path uses it to verify that a VM's demand
// really is the type a rank table precomputed, rather than trusting
// the name alone.
func (t VMType) Equal(o VMType) bool {
	if t.Name != o.Name || len(t.Demands) != len(o.Demands) {
		return false
	}
	for i, d := range t.Demands {
		od := o.Demands[i]
		if d.Group != od.Group || len(d.Units) != len(od.Units) {
			return false
		}
		for k, u := range d.Units {
			if od.Units[k] != u {
				return false
			}
		}
	}
	return true
}

// Project returns a copy of the VM type containing only the demand on
// the named group (used by the factored ranker). The second return is
// false when the type has no demand on the group.
func (t VMType) Project(group string) (VMType, bool) {
	d, ok := t.DemandFor(group)
	if !ok {
		return VMType{}, false
	}
	return VMType{Name: t.Name, Demands: []Demand{d}}, true
}

// String renders the type as e.g. "m3.large{cpu:[1,1] mem:[2] disk:[4]}".
func (t VMType) String() string {
	var sb strings.Builder
	sb.WriteString(t.Name)
	sb.WriteByte('{')
	for i, d := range t.Demands {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(d.Group)
		sb.WriteByte(':')
		sb.WriteString(Vec(d.Units).String())
	}
	sb.WriteByte('}')
	return sb.String()
}
