package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 50, want: 3},
		{p: 100, want: 5},
		{p: 25, want: 2},
		{p: 75, want: 4},
		{p: -5, want: 1},
		{p: 150, want: 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 99); math.Abs(got-9.9) > 1e-9 {
		t.Errorf("Percentile(99) = %v, want 9.9", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	xs := []float64{7}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile(xs, p); got != 7 {
			t.Errorf("Percentile(%v) = %v, want 7", p, got)
		}
	}
}

func TestPercentileAllEqual(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile(xs, p); got != 3 {
			t.Errorf("Percentile(%v) = %v, want 3", p, got)
		}
	}
}

func TestPercentileEdgeQueries(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"below range clamps to min", []float64{1, 2, 3}, -10, 1},
		{"above range clamps to max", []float64{1, 2, 3}, 250, 3},
		{"single below range", []float64{7}, -1, 7},
		{"single above range", []float64{7}, 101, 7},
		{"NaN p", []float64{1, 2, 3}, math.NaN(), math.NaN()},
		{"NaN p empty", nil, math.NaN(), math.NaN()},
		{"inf p clamps", []float64{1, 2, 3}, math.Inf(1), 3},
		{"-inf p clamps", []float64{1, 2, 3}, math.Inf(-1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentile(tc.xs, tc.p)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Percentile(%v, %v) = %v, want NaN", tc.xs, tc.p, got)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{4.2})
	if s.Median != 4.2 || s.P1 != 4.2 || s.P99 != 4.2 || s.N != 1 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestSummaryStringEmpty(t *testing.T) {
	got := Summarize(nil).String()
	if got != "- (n=0)" {
		t.Errorf("empty Summary.String() = %q, want %q", got, "- (n=0)")
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) not NaN")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.Median != 50 || s.P1 != 1 || s.P99 != 99 || s.N != 101 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

// Properties: percentiles are monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev || v < sorted[0] || v > sorted[n-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
