// Package metrics provides the summary statistics the paper reports:
// per-experiment medians with 1st and 99th percentile error bars over
// repeated runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile of xs using linear
// interpolation between closest ranks. p is clamped to [0, 100], so a
// single sample (or an all-equal sample) answers every percentile with
// that value. It returns NaN for an empty input or a NaN p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Summary is the paper's error-bar triple: median with 1st and 99th
// percentiles over the repetitions of one experimental point.
type Summary struct {
	Median float64
	P1     float64
	P99    float64
	N      int
}

// Summarize computes a Summary over repetition results.
func Summarize(xs []float64) Summary {
	return Summary{
		Median: Median(xs),
		P1:     Percentile(xs, 1),
		P99:    Percentile(xs, 99),
		N:      len(xs),
	}
}

// String renders "median [p1, p99] (n=N)", or "- (n=0)" when the
// summary was computed over no repetitions.
func (s Summary) String() string {
	if s.N == 0 {
		return "- (n=0)"
	}
	return fmt.Sprintf("%.2f [%.2f, %.2f] (n=%d)", s.Median, s.P1, s.P99, s.N)
}
