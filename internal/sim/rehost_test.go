package sim

import (
	"testing"

	"pagerankvm/internal/placement"
)

// TestRelieveRehostOnFailedMigration pins the no-destination eviction
// path: every PM is packed and overloaded, so each relieve attempt
// releases a victim, finds no feasible destination, and must rehost it
// on its source — counting exactly one failed migration per overloaded
// PM per step and never dropping a VM.
func TestRelieveRehostOnFailedMigration(t *testing.T) {
	const steps = 3
	c := newCluster(2)
	// 8 wide VMs fill both PMs exactly; at level 1.0 every CPU
	// dimension carries 4.0 > 0.9*4 = 3.6, so both PMs are overloaded
	// at every step and no PM has room for anyone else's victim.
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(8, "[1,1,1,1]", 1.0, steps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * steps; res.FailedMigrations != want {
		t.Fatalf("FailedMigrations = %d, want %d (one per overloaded PM per step)", res.FailedMigrations, want)
	}
	if res.Migrations != 0 {
		t.Fatalf("Migrations = %d, want 0 (nowhere to move)", res.Migrations)
	}
	if got := c.NumVMs(); got != 8 {
		t.Fatalf("NumVMs = %d, want 8 (rehost must not lose the victim)", got)
	}
	// Every VM must still hold a committed assignment on some PM.
	for id := 0; id < 8; id++ {
		if _, ok := c.Locate(id); !ok {
			t.Errorf("VM %d unplaced after rehost", id)
		}
	}
}
