// Package sim is the trace-driven datacenter simulator standing in for
// CloudSim in the paper's evaluation (see DESIGN.md §5). It implements
// exactly the semantics the experiments rely on:
//
//   - VMs are allocated by their requested integer-unit demands
//     (Algorithm 2 and the baselines operate on requested profiles);
//   - every Interval (300 s in the paper) the simulator computes each
//     PM's actual utilization by scaling the CPU assignments with the
//     per-VM workload trace;
//   - a PM whose utilization crosses the overload threshold (90%) in
//     any CPU dimension sheds VMs — the eviction policy picks victims,
//     the placement algorithm picks destinations — and each move
//     counts as one migration;
//   - an active PM-interval in which some CPU dimension sits at 100%
//     counts as an SLO violation (the paper's Section VI-A metric);
//   - active PMs accumulate energy under the Table III power model of
//     their type.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"pagerankvm/internal/deschedule"
	"pagerankvm/internal/energy"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// Defaults matching the paper's simulation setup.
const (
	DefaultInterval          = 300 * time.Second
	DefaultHorizon           = 24 * time.Hour
	DefaultOverloadThreshold = 0.90
	DefaultCPUGroup          = "cpu"

	// sloEpsilon is the tolerance under full utilization that still
	// counts as "experiencing 100% CPU utilization".
	sloEpsilon = 1e-9

	// maxEvictionsPerPM bounds how many VMs one overload event may
	// shed in a single interval, a safety valve against pathological
	// thrash.
	maxEvictionsPerPM = 16
)

// Config parameterizes a simulation run.
type Config struct {
	// Interval is the monitoring period (paper: 300 s).
	Interval time.Duration
	// Horizon is the simulated duration (paper: 24 h).
	Horizon time.Duration
	// OverloadThreshold flags a PM as overloaded when any CPU
	// dimension's actual utilization exceeds it; nil selects
	// DefaultOverloadThreshold (paper: 0.9). Set with opt.F.
	OverloadThreshold *float64
	// UnderloadThreshold, when positive, enables dynamic consolidation
	// (Beloglazov-style, the usual CloudSim companion policy): an
	// active PM whose aggregate CPU utilization falls below the
	// threshold is evacuated — all of its VMs are migrated to other
	// used PMs — so it can power off. Zero disables consolidation,
	// matching the paper's setup.
	UnderloadThreshold float64
	// CPUGroup names the trace-driven resource group.
	CPUGroup string
	// Observer, when non-nil, receives a snapshot after every
	// monitoring interval — time-series output for plotting.
	Observer func(StepStats)
	// Obs, when non-nil, records runtime telemetry (sim.* counters
	// and the per-decision placement latency histogram). Independent
	// of Observer: that hook is per-step time-series data, this one is
	// aggregate instrumentation.
	Obs *obs.Observer
	// Recorder, when non-nil, appends "sim.tick" spans (one per
	// monitoring interval, labelled with the step index) and one
	// closing "sim.run" span to the decision recording. Pair it with
	// placement.WithRecorder on the placer for the decision stream
	// itself.
	Recorder *record.Recorder
	// RebalanceEvery, when positive, runs one descheduler round every
	// that many monitoring intervals (after the interval's monitoring
	// actions, so relief and rebalancing never race within a step).
	// Requires the placer to be a *placement.PageRankVM — the engine
	// re-asks Algorithm 2 for its moves. Zero disables rebalancing.
	RebalanceEvery int
	// Rebalance parameterizes the descheduler when RebalanceEvery is
	// set. Its Obs and Recorder default to this Config's when unset.
	Rebalance deschedule.Config
}

// StepStats is the per-interval snapshot passed to Config.Observer.
type StepStats struct {
	// Step is the interval index.
	Step int
	// ActivePMs is the number of PMs hosting VMs at the end of the
	// interval.
	ActivePMs int
	// PlacedVMs is the number of VMs currently placed.
	PlacedVMs int
	// Migrations and OverloadedPMs are this interval's counts.
	Migrations    int
	OverloadedPMs int
	// ViolatedPMs is the number of PMs that experienced 100% CPU in
	// some dimension during the interval.
	ViolatedPMs int
	// RebalanceMoves is the number of descheduler migrations this
	// interval (0 on intervals without a rebalance round).
	RebalanceMoves int
	// MeanCPUUtil is the mean aggregate CPU utilization over the PMs
	// active during the interval (0 when none).
	MeanCPUUtil float64
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.OverloadThreshold == nil {
		c.OverloadThreshold = opt.F(DefaultOverloadThreshold)
	}
	if c.CPUGroup == "" {
		c.CPUGroup = DefaultCPUGroup
	}
	return c
}

// Steps returns the number of monitoring intervals in the horizon.
func (c Config) Steps() int {
	cfg := c.withDefaults()
	return int(cfg.Horizon / cfg.Interval)
}

// Workload pairs a VM request with its utilization trace and lease
// window. A zero-valued window means the VM is present for the whole
// horizon (the paper's static allocation); workloads with churn set
// Start/End in monitoring-interval steps.
type Workload struct {
	VM    *placement.VM
	Trace trace.Series
	// Start is the arrival step (inclusive); 0 arrives with the
	// initial allocation.
	Start int
	// End is the departure step (exclusive); 0 means "runs forever".
	End int
}

// Result aggregates the metrics the paper reports.
type Result struct {
	// PMsUsed is the high-water mark of simultaneously active PMs
	// (Figures 3 and 4a).
	PMsUsed int
	// FinalPMs is the active PM count at the end of the horizon.
	FinalPMs int
	// Migrations counts VM moves triggered by overload (Figure 6).
	Migrations int
	// FailedMigrations counts evictions with no feasible destination;
	// the VM stays put.
	FailedMigrations int
	// Rejected counts VMs that could not be placed at all.
	Rejected int
	// EnergyKWh is the cumulative energy of active PMs (Figure 5).
	EnergyKWh float64
	// SLOViolationPct is the percentage of active PM-intervals that
	// experienced 100% CPU utilization in some dimension (Figure 7).
	SLOViolationPct float64
	// ActivePMSteps and ViolatedPMSteps are the SLO ratio's parts.
	ActivePMSteps   int
	ViolatedPMSteps int
	// OverloadEvents counts PM-intervals above the overload threshold.
	OverloadEvents int
	// Consolidations counts PMs evacuated by underload consolidation.
	Consolidations int
	// RebalanceRounds, RebalanceMoves and RebalanceFreedPMs summarize
	// descheduler activity (Config.RebalanceEvery). Rebalance moves are
	// counted separately from Migrations: the paper's migration metric
	// measures overload response, not proactive consolidation.
	RebalanceRounds   int
	RebalanceMoves    int
	RebalanceFreedPMs int
}

// Simulation drives one run. Build it with New, then call Run once.
type Simulation struct {
	cfg     Config
	cluster *placement.Cluster
	placer  placement.Placer
	evictor placement.Evictor
	models  map[string]*energy.Model // PM type -> power model
	loads   map[int]trace.Series     // vm id -> trace
	vms     []*placement.VM          // arrivals at step 0
	arrives map[int][]*placement.VM  // step -> arrivals (step > 0)
	departs map[int][]int            // step -> departing vm ids
	resched *deschedule.Engine       // nil when rebalancing is off
	met     simMetrics
}

// simMetrics pre-resolves the simulator's instruments; all nil (and
// every call a no-op branch) when Config.Obs is unset.
type simMetrics struct {
	ticks            *obs.Counter   // sim.ticks
	placements       *obs.Counter   // sim.placements
	rejected         *obs.Counter   // sim.rejected
	overloads        *obs.Counter   // sim.overload_events
	relieveMoves     *obs.Counter   // sim.relieve_migrations
	consolidations   *obs.Counter   // sim.consolidations
	consolidateMoves *obs.Counter   // sim.consolidate_migrations
	failedMoves      *obs.Counter   // sim.failed_migrations
	sloViolations    *obs.Counter   // sim.slo_violations
	activePMs        *obs.Gauge     // sim.active_pms
	placedVMs        *obs.Gauge     // sim.placed_vms
	placeSeconds     *obs.Histogram // sim.place_seconds
}

func newSimMetrics(o *obs.Observer) simMetrics {
	return simMetrics{
		ticks:            o.Counter("sim.ticks"),
		placements:       o.Counter("sim.placements"),
		rejected:         o.Counter("sim.rejected"),
		overloads:        o.Counter("sim.overload_events"),
		relieveMoves:     o.Counter("sim.relieve_migrations"),
		consolidations:   o.Counter("sim.consolidations"),
		consolidateMoves: o.Counter("sim.consolidate_migrations"),
		failedMoves:      o.Counter("sim.failed_migrations"),
		sloViolations:    o.Counter("sim.slo_violations"),
		activePMs:        o.Gauge("sim.active_pms"),
		placedVMs:        o.Gauge("sim.placed_vms"),
		placeSeconds:     o.Histogram("sim.place_seconds", nil),
	}
}

// place routes every placement decision through one point so the
// latency histogram sees initial allocation, arrivals, relief and
// consolidation alike. Timing is skipped when telemetry is off.
func (s *Simulation) place(vm *placement.VM, exclude *placement.PM) (*placement.PM, resource.Assignment, error) {
	if s.met.placeSeconds == nil {
		return s.placer.Place(s.cluster, vm, exclude)
	}
	start := time.Now()
	pm, assign, err := s.placer.Place(s.cluster, vm, exclude)
	s.met.placeSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		s.met.placements.Inc()
	}
	return pm, assign, err
}

// New validates and assembles a simulation.
//
// models maps PM type names to Table III power models; every PM type
// in the cluster needs one. workloads supply both the VM requests and
// their traces.
func New(cfg Config, cluster *placement.Cluster, placer placement.Placer,
	evictor placement.Evictor, models map[string]*energy.Model, workloads []Workload) (*Simulation, error) {
	if cluster == nil || placer == nil || evictor == nil {
		return nil, errors.New("sim: cluster, placer and evictor are required")
	}
	cfg = cfg.withDefaults()
	if cfg.Steps() <= 0 {
		return nil, fmt.Errorf("sim: horizon %v shorter than interval %v", cfg.Horizon, cfg.Interval)
	}
	for _, pm := range cluster.PMs() {
		if _, ok := models[pm.Type]; !ok {
			return nil, fmt.Errorf("sim: no power model for PM type %q", pm.Type)
		}
	}
	s := &Simulation{
		cfg:     cfg,
		cluster: cluster,
		placer:  placer,
		evictor: evictor,
		models:  models,
		loads:   make(map[int]trace.Series, len(workloads)),
		arrives: make(map[int][]*placement.VM),
		departs: make(map[int][]int),
		met:     newSimMetrics(cfg.Obs),
	}
	if cfg.RebalanceEvery > 0 {
		prvm, ok := placer.(*placement.PageRankVM)
		if !ok {
			return nil, fmt.Errorf("sim: rebalancing requires the PageRankVM placer, got %s", placer.Name())
		}
		rcfg := cfg.Rebalance
		if rcfg.Obs == nil {
			rcfg.Obs = cfg.Obs
		}
		if rcfg.Recorder == nil {
			rcfg.Recorder = cfg.Recorder
		}
		s.resched = deschedule.New(prvm, rcfg)
	}
	for _, w := range workloads {
		if w.VM == nil {
			return nil, errors.New("sim: nil VM in workload")
		}
		if _, dup := s.loads[w.VM.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate VM id %d", w.VM.ID)
		}
		if w.Start < 0 || (w.End != 0 && w.End <= w.Start) {
			return nil, fmt.Errorf("sim: vm %d has invalid lease [%d,%d)", w.VM.ID, w.Start, w.End)
		}
		s.loads[w.VM.ID] = w.Trace
		if w.Start == 0 {
			s.vms = append(s.vms, w.VM)
		} else {
			s.arrives[w.Start] = append(s.arrives[w.Start], w.VM)
		}
		if w.End > 0 {
			s.departs[w.End] = append(s.departs[w.End], w.VM.ID)
		}
	}
	return s, nil
}

// Run performs the initial allocation and then steps the simulation
// through the horizon. It must be called at most once.
func (s *Simulation) Run() (Result, error) {
	var res Result

	// Initial allocation. Placers that define a VM ordering (FFDSum)
	// get to sort the queue first.
	queue := make([]*placement.VM, len(s.vms))
	copy(queue, s.vms)
	if orderer, ok := s.placer.(interface{ OrderVMs([]*placement.VM) }); ok {
		orderer.OrderVMs(queue)
	}
	for _, vm := range queue {
		pm, assign, err := s.place(vm, nil)
		if errors.Is(err, placement.ErrNoCapacity) {
			res.Rejected++
			s.met.rejected.Inc()
			continue
		}
		if err != nil {
			return res, fmt.Errorf("sim: initial allocation: %w", err)
		}
		if err := s.cluster.Host(pm, vm, assign); err != nil {
			return res, fmt.Errorf("sim: initial allocation: %w", err)
		}
	}

	meter := &energy.Meter{}
	steps := s.cfg.Steps()
	rec := s.cfg.Recorder.Active()
	var runStart time.Time
	if rec {
		runStart = time.Now()
	}
	for step := 0; step < steps; step++ {
		var tickStart time.Time
		if rec {
			tickStart = time.Now()
		}
		if err := s.tick(step, meter, &res); err != nil {
			return res, err
		}
		if rec {
			s.cfg.Recorder.RecordSpan("sim.tick", time.Since(tickStart).Nanoseconds(),
				map[string]string{"step": strconv.Itoa(step)})
		}
	}
	if rec {
		s.cfg.Recorder.RecordSpan("sim.run", time.Since(runStart).Nanoseconds(),
			map[string]string{"steps": strconv.Itoa(steps)})
	}
	res.EnergyKWh = meter.KWh()
	res.PMsUsed = s.cluster.MaxUsed
	res.FinalPMs = s.cluster.NumUsed()
	if res.ActivePMSteps > 0 {
		res.SLOViolationPct = 100 * float64(res.ViolatedPMSteps) / float64(res.ActivePMSteps)
	}
	return res, nil
}

// tick processes one monitoring interval: departures, arrivals, then
// monitoring (energy, SLO, overload relief).
func (s *Simulation) tick(step int, meter *energy.Meter, res *Result) error {
	if step > 0 {
		for _, id := range s.departs[step] {
			// Ignore VMs that were rejected at arrival.
			if _, placed := s.cluster.Locate(id); placed {
				if _, err := s.cluster.Release(id); err != nil {
					return fmt.Errorf("sim: departure of vm %d: %w", id, err)
				}
			}
		}
		for _, vm := range s.arrives[step] {
			pm, assign, err := s.place(vm, nil)
			if errors.Is(err, placement.ErrNoCapacity) {
				res.Rejected++
				s.met.rejected.Inc()
				continue
			}
			if err != nil {
				return fmt.Errorf("sim: arrival of vm %d: %w", vm.ID, err)
			}
			if err := s.cluster.Host(pm, vm, assign); err != nil {
				return fmt.Errorf("sim: arrival of vm %d: %w", vm.ID, err)
			}
		}
	}

	s.met.ticks.Inc()
	var stats StepStats
	stats.Step = step
	migrationsBefore := res.Migrations
	activePMsSeen := 0
	utilSum := 0.0

	// Snapshot the used list: migrations mutate it mid-step.
	active := append([]*placement.PM(nil), s.cluster.UsedPMs()...)
	for _, pm := range active {
		if !pm.Active() {
			continue // emptied by an earlier migration this step
		}
		load := s.actualCPU(pm, step)
		gi := pm.Shape.GroupIndex(s.cfg.CPUGroup)
		if gi < 0 {
			continue
		}
		lo, hi := pm.Shape.GroupRange(gi)
		capUnits := float64(pm.Shape.Group(gi).Cap)

		// Metrics for this PM-interval.
		res.ActivePMSteps++
		violated := false
		overloaded := false
		total := 0.0
		for d := lo; d < hi; d++ {
			total += load[d-lo]
			if load[d-lo] >= capUnits-sloEpsilon {
				violated = true
			}
			if load[d-lo] > (*s.cfg.OverloadThreshold)*capUnits {
				overloaded = true
			}
		}
		if violated {
			res.ViolatedPMSteps++
			stats.ViolatedPMs++
			s.met.sloViolations.Inc()
		}
		cpuUtil := total / (capUnits * float64(hi-lo))
		meter.Accumulate(s.models[pm.Type], cpuUtil, s.cfg.Interval)
		activePMsSeen++
		utilSum += cpuUtil

		if overloaded {
			res.OverloadEvents++
			stats.OverloadedPMs++
			s.met.overloads.Inc()
			s.relieve(pm, step, res)
		} else if s.cfg.UnderloadThreshold > 0 && cpuUtil < s.cfg.UnderloadThreshold {
			s.consolidate(pm, res)
		}
	}

	if s.resched != nil && (step+1)%s.cfg.RebalanceEvery == 0 {
		rst := s.resched.Rebalance(s.cluster)
		res.RebalanceRounds++
		res.RebalanceMoves += rst.Moves
		res.RebalanceFreedPMs += rst.PMsFreed
		stats.RebalanceMoves = rst.Moves
	}

	s.met.activePMs.Set(int64(s.cluster.NumUsed()))
	s.met.placedVMs.Set(int64(s.cluster.NumVMs()))
	if s.cfg.Observer != nil {
		stats.ActivePMs = s.cluster.NumUsed()
		stats.PlacedVMs = s.cluster.NumVMs()
		stats.Migrations = res.Migrations - migrationsBefore
		if activePMsSeen > 0 {
			stats.MeanCPUUtil = utilSum / float64(activePMsSeen)
		}
		s.cfg.Observer(stats)
	}
	return nil
}

// consolidate tries to evacuate an underloaded PM entirely onto other
// used PMs. Each successful move counts as a migration; if some VM has
// no destination the evacuation stops (partially drained PMs simply
// try again next interval).
func (s *Simulation) consolidate(pm *placement.PM, res *Result) {
	// Snapshot ids: Release mutates the map we would range over.
	ids := make([]int, 0, pm.NumVMs())
	for id := range pm.VMs() {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		h, err := s.cluster.Release(id)
		if err != nil {
			return
		}
		dest, assign, err := s.place(h.VM, pm)
		if err != nil || !dest.Active() {
			// Only consolidate onto already-running PMs; powering a
			// fresh PM on would defeat the purpose.
			s.rehost(pm, h)
			return
		}
		if err := s.cluster.Host(dest, h.VM, assign); err != nil {
			s.rehost(pm, h)
			return
		}
		res.Migrations++
		s.met.consolidateMoves.Inc()
	}
	res.Consolidations++
	s.met.consolidations.Inc()
}

// actualCPU returns the PM's per-CPU-dimension actual load in units
// (requested units scaled by each VM's trace at the step).
func (s *Simulation) actualCPU(pm *placement.PM, step int) []float64 {
	gi := pm.Shape.GroupIndex(s.cfg.CPUGroup)
	if gi < 0 {
		return nil
	}
	lo, hi := pm.Shape.GroupRange(gi)
	// Accumulate in sorted VM order: float addition is not associative,
	// so summing in map order would make the load (and every threshold
	// decision downstream) differ bit-for-bit between runs of one seed.
	vms := pm.VMs()
	ids := make([]int, 0, len(vms))
	for id := range vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	load := make([]float64, hi-lo)
	for _, id := range ids {
		u := s.loads[id].At(step)
		for _, du := range vms[id].Assign {
			if du.Dim >= lo && du.Dim < hi {
				load[du.Dim-lo] += float64(du.Units) * u
			}
		}
	}
	return load
}

// relieve migrates VMs off an overloaded PM until no CPU dimension
// exceeds the threshold, each successful move counting as a migration.
func (s *Simulation) relieve(pm *placement.PM, step int, res *Result) {
	for evictions := 0; evictions < maxEvictionsPerPM; evictions++ {
		load := s.actualCPU(pm, step)
		gi := pm.Shape.GroupIndex(s.cfg.CPUGroup)
		lo, hi := pm.Shape.GroupRange(gi)
		capUnits := float64(pm.Shape.Group(gi).Cap)
		var overloadedDims []int
		for d := lo; d < hi; d++ {
			if load[d-lo] > (*s.cfg.OverloadThreshold)*capUnits {
				overloadedDims = append(overloadedDims, d)
			}
		}
		if len(overloadedDims) == 0 {
			return
		}
		victimID, ok := s.evictor.SelectVictim(pm, overloadedDims)
		if !ok {
			return
		}
		h, err := s.cluster.Release(victimID)
		if err != nil {
			return
		}
		dest, assign, err := s.place(h.VM, pm)
		if err != nil {
			// No destination: the VM stays where it was.
			s.rehost(pm, h)
			res.FailedMigrations++
			s.met.failedMoves.Inc()
			return
		}
		if err := s.cluster.Host(dest, h.VM, assign); err != nil {
			s.rehost(pm, h)
			res.FailedMigrations++
			s.met.failedMoves.Inc()
			return
		}
		res.Migrations++
		s.met.relieveMoves.Inc()
	}
}

// rehost puts a released VM back on its source PM with its original
// assignment (always feasible: the resources were just freed).
func (s *Simulation) rehost(pm *placement.PM, h Hosted) {
	if err := s.cluster.Host(pm, h.VM, h.Assign); err != nil {
		// The source had the capacity a moment ago; failure here is a
		// bookkeeping bug worth crashing loudly on in development.
		panic(fmt.Sprintf("sim: rehost on pm %d failed: %v", pm.ID, err))
	}
}

// Hosted aliases placement.Hosted for the package API surface.
type Hosted = placement.Hosted
