package sim

import (
	"testing"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// fragmentedChurn builds the churn scenario both rebalance tests run:
// 16 wide VMs fill 4 PMs at step 0, then three of every four depart at
// step 2, stranding one low-load VM per PM for the rest of the
// horizon. Admission alone never heals that — no new arrivals means no
// new decisions — so the final active-PM count isolates the
// descheduler's contribution.
func fragmentedChurn(steps int) []Workload {
	gen := trace.Constant{Level: 0.1}
	var workloads []Workload
	for i := 0; i < 16; i++ {
		w := Workload{VM: newVM(i, "[1,1,1,1]"), Trace: gen.Series(i, steps)}
		if i%4 != 0 {
			w.End = 2
		}
		workloads = append(workloads, w)
	}
	return workloads
}

func rebalanceRun(t *testing.T, steps, every int) Result {
	t.Helper()
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
	}, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)
	prvm := placement.NewPageRankVM(reg, placement.WithSeed(5))

	cfg := shortCfg(steps)
	cfg.RebalanceEvery = every
	if every > 0 {
		cfg.Rebalance.DrainBelow = 0.3
		cfg.Rebalance.MaxMovesPerRound = 8
	}
	s, err := New(cfg, newCluster(8), prvm, placement.RankEvictor{Placer: prvm}, models(), fragmentedChurn(steps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRebalanceReducesActivePMs is the issue's acceptance scenario:
// under churn, periodic descheduler rounds with a stated migration
// budget must end on fewer active PMs — and burn less energy — than
// admission-only placement of the same workload.
func TestRebalanceReducesActivePMs(t *testing.T) {
	const steps = 8
	base := rebalanceRun(t, steps, 0)
	reb := rebalanceRun(t, steps, 2)

	if base.RebalanceRounds != 0 || base.RebalanceMoves != 0 {
		t.Fatalf("admission-only run reports rebalancing: %+v", base)
	}
	if reb.RebalanceRounds == 0 || reb.RebalanceMoves == 0 {
		t.Fatalf("rebalancing run did nothing: %+v", reb)
	}
	if reb.FinalPMs >= base.FinalPMs {
		t.Fatalf("FinalPMs %d (rebalance) vs %d (admission-only): no consolidation", reb.FinalPMs, base.FinalPMs)
	}
	if reb.ActivePMSteps >= base.ActivePMSteps {
		t.Fatalf("ActivePMSteps %d vs %d: rebalancing saved no PM-intervals", reb.ActivePMSteps, base.ActivePMSteps)
	}
	if reb.EnergyKWh >= base.EnergyKWh {
		t.Fatalf("EnergyKWh %v vs %v: rebalancing saved no energy", reb.EnergyKWh, base.EnergyKWh)
	}
	if reb.RebalanceFreedPMs == 0 {
		t.Fatalf("RebalanceFreedPMs = 0: %+v", reb)
	}
	// Proactive moves must not leak into the paper's overload-response
	// migration metric.
	if reb.Migrations != base.Migrations {
		t.Fatalf("Migrations %d vs %d: rebalance moves leaked into the overload metric", reb.Migrations, base.Migrations)
	}
}

// Two identical rebalancing runs must agree on every statistic: the
// descheduler adds no nondeterminism to the simulation.
func TestRebalanceSeedStable(t *testing.T) {
	const steps = 8
	a := rebalanceRun(t, steps, 2)
	b := rebalanceRun(t, steps, 2)
	if a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// RebalanceEvery demands the PageRankVM placer: the engine re-asks
// Algorithm 2 for its moves, so any other placer is a config error.
func TestRebalanceRequiresPageRankVM(t *testing.T) {
	cfg := shortCfg(4)
	cfg.RebalanceEvery = 2
	_, err := New(cfg, newCluster(2), placement.FirstFit{}, placement.MMTEvictor{}, models(), constWorkloads(2, "[1,1]", 0.1, 4))
	if err == nil {
		t.Fatal("FirstFit accepted with RebalanceEvery set")
	}
}
