package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// runWithPlacerOpts is runSeeded with extra placer options injected,
// for A/B-ing the id-indexed fast path against the string-key path
// over a full simulation (churn, overload migrations, evictions).
func runWithPlacerOpts(t *testing.T, seed int64, popts ...placement.PageRankOption) (Result, []obs.Event) {
	t.Helper()
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
	}, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)

	o := obs.New()
	ring := obs.NewRingSink(1 << 14)
	o.SetSink(ring)
	opts := append([]placement.PageRankOption{placement.WithSeed(seed), placement.WithObserver(o)}, popts...)
	prvm := placement.NewPageRankVM(reg, opts...)

	const steps = 48
	rng := rand.New(rand.NewSource(seed))
	gen := trace.Google{Seed: seed, Mean: opt.F(0.55)}
	var workloads []Workload
	for i := 0; i < 24; i++ {
		name := "[1,1]"
		if rng.Intn(2) == 0 {
			name = "[1,1,1,1]"
		}
		w := Workload{VM: newVM(i, name), Trace: gen.Series(i, steps)}
		if rng.Intn(2) == 0 {
			w.Start = rng.Intn(steps / 2)
			if rng.Intn(2) == 0 {
				w.End = w.Start + 1 + rng.Intn(steps/2)
			}
		}
		workloads = append(workloads, w)
	}

	s, err := New(shortCfg(steps), newCluster(8), prvm, placement.RankEvictor{Placer: prvm}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	for i := range events {
		events[i].Time = time.Time{}
	}
	return res, events
}

// TestSimFastPathEquivalence runs the whole simulator — initial
// placement, interval monitoring, overload evictions and migrations —
// with the fast path on and off and requires the identical Result and
// the identical placement-decision trace (every chosen PM, every
// score, every profile count, in order).
func TestSimFastPathEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 7, 21} {
		fastRes, fastEvents := runWithPlacerOpts(t, seed)
		slowRes, slowEvents := runWithPlacerOpts(t, seed, placement.WithoutFastPath())

		if !reflect.DeepEqual(fastRes, slowRes) {
			t.Errorf("seed %d: simulation Result differs between fast and slow paths:\n  fast: %+v\n  slow: %+v",
				seed, fastRes, slowRes)
		}
		if len(fastEvents) == 0 {
			t.Fatalf("seed %d: no trace events captured", seed)
		}
		if !reflect.DeepEqual(fastEvents, slowEvents) {
			n := len(fastEvents)
			if len(slowEvents) < n {
				n = len(slowEvents)
			}
			for i := 0; i < n; i++ {
				if !reflect.DeepEqual(fastEvents[i], slowEvents[i]) {
					t.Fatalf("seed %d: decision traces diverge at event %d:\n  fast: %+v\n  slow: %+v",
						seed, i, fastEvents[i], slowEvents[i])
				}
			}
			t.Fatalf("seed %d: decision traces differ in length: %d vs %d", seed, len(fastEvents), len(slowEvents))
		}
	}
}
