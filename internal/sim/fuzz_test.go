package sim

import (
	"math/rand"
	"testing"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// Randomized end-to-end runs: every placer, random churned workloads,
// hot traces. Whatever happens, the core invariants must hold: no PM
// ever over its requested capacity, every placed VM on exactly one PM,
// no VM lost or duplicated by migrations, all counters non-negative
// and consistent.
func TestSimulationInvariantsFuzz(t *testing.T) {
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
	}, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)

	type stack struct {
		placer  placement.Placer
		evictor placement.Evictor
	}
	prvm := placement.NewPageRankVM(reg, placement.WithSeed(2))
	stacks := []stack{
		{placer: prvm, evictor: placement.RankEvictor{Placer: prvm}},
		{placer: placement.FirstFit{}, evictor: placement.MMTEvictor{}},
		{placer: placement.FFDSum{}, evictor: placement.MMTEvictor{}},
		{placer: placement.CompVM{}, evictor: placement.MMTEvictor{}},
		{placer: placement.BestFit{}, evictor: placement.MMTEvictor{}},
	}

	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const steps = 48
		numVMs := 10 + rng.Intn(30)
		gen := trace.Google{Seed: seed, Mean: opt.F(0.6)}

		var workloads []Workload
		expectForever := 0
		for i := 0; i < numVMs; i++ {
			name := "[1,1]"
			if rng.Intn(2) == 0 {
				name = "[1,1,1,1]"
			}
			w := Workload{VM: newVM(i, name), Trace: gen.Series(i, steps)}
			if rng.Intn(2) == 0 {
				w.Start = rng.Intn(steps - 1)
				if rng.Intn(2) == 0 {
					w.End = w.Start + 1 + rng.Intn(steps-w.Start)
					if w.End >= steps {
						w.End = 0
					}
				}
			}
			if w.End == 0 {
				expectForever++
			}
			workloads = append(workloads, w)
		}

		for _, st := range stacks {
			c := newCluster(8)
			s, err := New(shortCfg(steps), c, st.placer, st.evictor, models(), workloads)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, st.placer.Name(), err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, st.placer.Name(), err)
			}

			// Capacity invariant.
			caps := smallShape().Capacity()
			placed := 0
			for _, pm := range c.PMs() {
				if !pm.Used().LE(caps) {
					t.Fatalf("seed %d %s: pm %d over capacity %v", seed, st.placer.Name(), pm.ID, pm.Used())
				}
				placed += pm.NumVMs()
			}
			// Conservation: everyone who should still be running is,
			// except rejected arrivals.
			if placed != c.NumVMs() {
				t.Fatalf("seed %d %s: pm-level count %d != cluster count %d",
					seed, st.placer.Name(), placed, c.NumVMs())
			}
			if c.NumVMs()+res.Rejected < expectForever {
				t.Fatalf("seed %d %s: lost VMs: %d placed + %d rejected < %d forever",
					seed, st.placer.Name(), c.NumVMs(), res.Rejected, expectForever)
			}
			// Counter sanity.
			if res.Migrations < 0 || res.ViolatedPMSteps > res.ActivePMSteps {
				t.Fatalf("seed %d %s: inconsistent counters %+v", seed, st.placer.Name(), res)
			}
			if res.SLOViolationPct < 0 || res.SLOViolationPct > 100 {
				t.Fatalf("seed %d %s: SLO%% = %v", seed, st.placer.Name(), res.SLOViolationPct)
			}
			if res.EnergyKWh < 0 {
				t.Fatalf("seed %d %s: negative energy", seed, st.placer.Name())
			}
			// Every placed VM locatable on exactly the PM that hosts it.
			for _, pm := range c.PMs() {
				for id := range pm.VMs() {
					loc, ok := c.Locate(id)
					if !ok || loc != pm {
						t.Fatalf("seed %d %s: vm %d location inconsistent", seed, st.placer.Name(), id)
					}
				}
			}
		}
	}
}
