package sim

import (
	"math"
	"testing"
	"time"

	"pagerankvm/internal/energy"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

const pmSmall = "small"

func smallShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func smallVMType(name string) resource.VMType {
	switch name {
	case "[1,1]":
		return resource.NewVMType(name, resource.Demand{Group: "cpu", Units: []int{1, 1}})
	case "[1,1,1,1]":
		return resource.NewVMType(name, resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}})
	}
	panic("unknown type " + name)
}

func newVM(id int, typeName string) *placement.VM {
	return &placement.VM{
		ID:   id,
		Type: typeName,
		Req:  map[string]resource.VMType{pmSmall: smallVMType(typeName)},
	}
}

func newCluster(n int) *placement.Cluster {
	shape := smallShape()
	pms := make([]*placement.PM, n)
	for i := range pms {
		pms[i] = placement.NewPM(i, pmSmall, shape)
	}
	return placement.NewCluster(pms)
}

func models() map[string]*energy.Model {
	return map[string]*energy.Model{pmSmall: energy.E52670()}
}

func constWorkloads(n int, typeName string, level float64, steps int) []Workload {
	out := make([]Workload, n)
	gen := trace.Constant{Level: level}
	for i := range out {
		out[i] = Workload{VM: newVM(i, typeName), Trace: gen.Series(i, steps)}
	}
	return out
}

func shortCfg(steps int) Config {
	return Config{
		Interval: 300 * time.Second,
		Horizon:  time.Duration(steps) * 300 * time.Second,
	}
}

func TestConfigSteps(t *testing.T) {
	var cfg Config
	if got := cfg.Steps(); got != 288 {
		t.Fatalf("default Steps = %d, want 288 (24h / 300s)", got)
	}
}

func TestNewValidation(t *testing.T) {
	c := newCluster(1)
	if _, err := New(Config{}, nil, placement.FirstFit{}, placement.MMTEvictor{}, models(), nil); err == nil {
		t.Error("accepted nil cluster")
	}
	if _, err := New(Config{}, c, placement.FirstFit{}, placement.MMTEvictor{}, nil, nil); err == nil {
		t.Error("accepted missing power model")
	}
	if _, err := New(Config{Interval: time.Hour, Horizon: time.Minute}, c, placement.FirstFit{},
		placement.MMTEvictor{}, models(), nil); err == nil {
		t.Error("accepted horizon < interval")
	}
	dup := []Workload{
		{VM: newVM(1, "[1,1]")},
		{VM: newVM(1, "[1,1]")},
	}
	if _, err := New(Config{}, c, placement.FirstFit{}, placement.MMTEvictor{}, models(), dup); err == nil {
		t.Error("accepted duplicate VM ids")
	}
	if _, err := New(Config{}, c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		[]Workload{{VM: nil}}); err == nil {
		t.Error("accepted nil VM")
	}
}

func TestRunPlacesAllVMs(t *testing.T) {
	c := newCluster(3)
	s, err := New(shortCfg(2), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(8, "[1,1]", 0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	if c.NumVMs() != 8 {
		t.Fatalf("placed %d VMs", c.NumVMs())
	}
	if res.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d, want 1 (8 x [1,1] fill one small PM)", res.PMsUsed)
	}
}

func TestRunRejectsOverflow(t *testing.T) {
	c := newCluster(1)
	// 5 four-wide VMs: only 4 fit.
	s, err := New(shortCfg(1), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(5, "[1,1,1,1]", 0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", res.Rejected)
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := newCluster(2)
	const steps = 12 // one hour
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(8, "[1,1]", 0.5, steps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// One PM at aggregate utilization 0.5 for one hour:
	// E5-2670 power at 0.5 = (363.6+378)/2 = 370.8 W -> 0.3708 kWh.
	want := 370.8 / 1000
	if math.Abs(res.EnergyKWh-want) > 1e-9 {
		t.Fatalf("EnergyKWh = %v, want %v", res.EnergyKWh, want)
	}
	if res.OverloadEvents != 0 || res.Migrations != 0 {
		t.Fatalf("unexpected overloads/migrations: %+v", res)
	}
}

func TestSLOViolationAccounting(t *testing.T) {
	// A single PM packed 4/4 on every core, traces at 1.0 and nowhere
	// to migrate: every interval is a violation and every eviction
	// fails.
	c := newCluster(1)
	const steps = 4
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(4, "[1,1,1,1]", 1.0, steps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolationPct != 100 {
		t.Fatalf("SLOViolationPct = %v, want 100", res.SLOViolationPct)
	}
	if res.ActivePMSteps != steps || res.ViolatedPMSteps != steps {
		t.Fatalf("PM-steps = %d/%d", res.ViolatedPMSteps, res.ActivePMSteps)
	}
	if res.FailedMigrations == 0 {
		t.Fatal("expected failed migrations with nowhere to go")
	}
	if c.NumVMs() != 4 {
		t.Fatalf("VM lost during failed migration: %d left", c.NumVMs())
	}
}

func TestOverloadTriggersMigration(t *testing.T) {
	// PM0 packed 4/4 with hot VMs, PM1 free: exactly one migration
	// relieves the overload (3 x 1.0 = 3.0 <= 3.6 afterwards).
	c := newCluster(2)
	const steps = 3
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(4, "[1,1,1,1]", 1.0, steps))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", res.Migrations)
	}
	if res.PMsUsed != 2 {
		t.Fatalf("PMsUsed = %d, want 2", res.PMsUsed)
	}
	if res.FailedMigrations != 0 {
		t.Fatalf("FailedMigrations = %d", res.FailedMigrations)
	}
	// The destination PM hosts the migrated VM.
	if c.PMs()[1].NumVMs() != 1 {
		t.Fatalf("destination hosts %d VMs", c.PMs()[1].NumVMs())
	}
	// VM conservation.
	if c.NumVMs() != 4 {
		t.Fatalf("NumVMs = %d", c.NumVMs())
	}
}

func TestNoOverloadBelowThreshold(t *testing.T) {
	// 4/4 cores at 0.85 utilization: 3.4 < 3.6, no overload, no SLO.
	c := newCluster(2)
	s, err := New(shortCfg(3), c, placement.FirstFit{}, placement.MMTEvictor{}, models(),
		constWorkloads(4, "[1,1,1,1]", 0.85, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 || res.OverloadEvents != 0 || res.ViolatedPMSteps != 0 {
		t.Fatalf("unexpected events: %+v", res)
	}
}

func TestPageRankVMSimulationDeterministic(t *testing.T) {
	run := func() Result {
		table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
			smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
		}, ranktable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reg := ranktable.NewRegistry()
		reg.Add(pmSmall, table)
		placer := placement.NewPageRankVM(reg)
		evictor := placement.RankEvictor{Placer: placer}

		c := newCluster(4)
		gen := trace.Google{Seed: 17}
		const steps = 24
		var workloads []Workload
		for i := 0; i < 12; i++ {
			name := "[1,1]"
			if i%3 == 0 {
				name = "[1,1,1,1]"
			}
			workloads = append(workloads, Workload{VM: newVM(i, name), Trace: gen.Series(i, steps)})
		}
		s, err := New(shortCfg(steps), c, placer, evictor, models(), workloads)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Invariant: no PM over capacity at the end.
		for _, pm := range c.PMs() {
			if !pm.Used().LE(pm.Shape.Capacity()) {
				t.Fatalf("pm %d over capacity: %v", pm.ID, pm.Used())
			}
		}
		if c.NumVMs() != 12 {
			t.Fatalf("NumVMs = %d", c.NumVMs())
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic results:\n%+v\n%+v", a, b)
	}
}

// actualCPU drives the SLO, overload and consolidation thresholds; a
// map-order sum over hosted VMs would make the load differ bit-for-bit
// between identical runs, because float addition is not associative.
func TestActualCPUDeterministic(t *testing.T) {
	c := newCluster(1)
	pm := c.PMs()[0]
	// Four VMs sharing CPU dims with trace levels whose sum depends on
	// addition order (0.1+0.2+0.3 != 0.3+0.2+0.1 bit-for-bit).
	levels := []float64{0.1, 0.2, 0.3, 0.7}
	workloads := make([]Workload, len(levels))
	for i, level := range levels {
		workloads[i] = Workload{VM: newVM(i, "[1,1]"), Trace: trace.Constant{Level: level}.Series(i, 4)}
	}
	s, err := New(shortCfg(4), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads {
		assign := resource.Assignment{{Dim: 0, Units: 1}, {Dim: 1, Units: 1}}
		if err := c.Host(pm, w.VM, assign); err != nil {
			t.Fatal(err)
		}
	}
	first := s.actualCPU(pm, 0)
	if len(first) != 4 {
		t.Fatalf("load = %v, want 4 dims", first)
	}
	for n := 0; n < 64; n++ {
		got := s.actualCPU(pm, 0)
		for d := range first {
			if got[d] != first[d] {
				t.Fatalf("call %d: load[%d] = %v, first call had %v", n, d, got[d], first[d])
			}
		}
	}
}
