package sim

import (
	"math/rand"
	"testing"

	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// recordedSimRun runs a seeded churny simulation with a collector
// recorder on both the placer and the sim config, and returns the
// captured streams.
func recordedSimRun(t *testing.T, seed int64, popts ...placement.PageRankOption) ([]record.Decision, []record.Span) {
	t.Helper()
	rec := record.NewCollector()
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
	}, ranktable.Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)
	opts := append([]placement.PageRankOption{placement.WithSeed(seed), placement.WithRecorder(rec)}, popts...)
	prvm := placement.NewPageRankVM(reg, opts...)

	const steps = 48
	rng := rand.New(rand.NewSource(seed))
	gen := trace.Google{Seed: seed, Mean: opt.F(0.55)}
	var workloads []Workload
	for i := 0; i < 24; i++ {
		name := "[1,1]"
		if rng.Intn(2) == 0 {
			name = "[1,1,1,1]"
		}
		w := Workload{VM: newVM(i, name), Trace: gen.Series(i, steps)}
		if rng.Intn(2) == 0 {
			w.Start = rng.Intn(steps / 2)
			if rng.Intn(2) == 0 {
				w.End = w.Start + 1 + rng.Intn(steps/2)
			}
		}
		workloads = append(workloads, w)
	}

	cfg := shortCfg(steps)
	cfg.Recorder = rec
	s, err := New(cfg, newCluster(8), prvm, placement.RankEvictor{Placer: prvm}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rec.Decisions(), rec.Spans()
}

// TestSimRecordingFastPathDiffClean mirrors TestSimFastPathEquivalence
// at the recording layer: full-sim decision streams with the fast path
// on and off must diff clean — the property `prvm-replay -diff`
// certifies between recordings of the two variants.
func TestSimRecordingFastPathDiffClean(t *testing.T) {
	for _, seed := range []int64{3, 21} {
		fastD, _ := recordedSimRun(t, seed)
		slowD, _ := recordedSimRun(t, seed, placement.WithoutFastPath())
		if len(fastD) == 0 {
			t.Fatalf("seed %d: no decisions recorded", seed)
		}
		sum := record.Diff(fastD, slowD)
		if !sum.Clean() {
			t.Fatalf("seed %d: fast vs no-fast sim recordings diverge: %+v (first: %+v)",
				seed, sum, sum.First)
		}
	}
}

func TestSimRecordingSpans(t *testing.T) {
	const steps = 48
	_, spans := recordedSimRun(t, 3)
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Ns < 0 {
			t.Fatalf("span %s has negative duration %d", s.Name, s.Ns)
		}
	}
	if counts["sim.tick"] != steps {
		t.Fatalf("sim.tick spans = %d, want %d", counts["sim.tick"], steps)
	}
	if counts["sim.run"] != 1 {
		t.Fatalf("sim.run spans = %d, want 1", counts["sim.run"])
	}
	if counts["ranktable.build"] == 0 {
		t.Fatal("no ranktable.build span recorded")
	}
	// Step labels let phase summaries group tick latencies.
	for _, s := range spans {
		if s.Name == "sim.tick" && s.Labels["step"] == "" {
			t.Fatalf("sim.tick span missing step label: %+v", s)
		}
	}
}
