package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// runSeeded executes one full simulation — churned workloads, hot
// Google-style traces, the PageRankVM placer with an injected seed —
// and returns everything observable about it: the result, the counter
// snapshot, and the structured decision trace (timestamps stripped;
// they are the one legitimately non-deterministic field).
func runSeeded(t *testing.T, seed int64) (Result, map[string]int64, []obs.Event) {
	t.Helper()
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		smallVMType("[1,1]"), smallVMType("[1,1,1,1]"),
	}, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)

	o := obs.New()
	ring := obs.NewRingSink(1 << 14)
	o.SetSink(ring)
	prvm := placement.NewPageRankVM(reg, placement.WithSeed(seed), placement.WithObserver(o))

	const steps = 48
	rng := rand.New(rand.NewSource(seed))
	gen := trace.Google{Seed: seed, Mean: opt.F(0.55)}
	var workloads []Workload
	for i := 0; i < 24; i++ {
		name := "[1,1]"
		if rng.Intn(2) == 0 {
			name = "[1,1,1,1]"
		}
		w := Workload{VM: newVM(i, name), Trace: gen.Series(i, steps)}
		if rng.Intn(2) == 0 { // churn: late arrival, possibly early departure
			w.Start = rng.Intn(steps / 2)
			if rng.Intn(2) == 0 {
				w.End = w.Start + 1 + rng.Intn(steps/2)
			}
		}
		workloads = append(workloads, w)
	}

	cfg := shortCfg(steps)
	cfg.Obs = o
	s, err := New(cfg, newCluster(8), prvm, placement.RankEvictor{Placer: prvm}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	events := ring.Events()
	for i := range events {
		events[i].Time = time.Time{}
	}
	return res, o.Snapshot().Counters, events
}

// TestSimulationDeterminism is the reproducibility contract end to
// end: two runs with the same seed must agree bit for bit — same
// Result, same telemetry counters, same placement-decision trace.
// This is the invariant the detrand analyzer exists to protect.
func TestSimulationDeterminism(t *testing.T) {
	res1, counters1, events1 := runSeeded(t, 7)
	res2, counters2, events2 := runSeeded(t, 7)

	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("Result differs across identical seeded runs:\n  %+v\n  %+v", res1, res2)
	}
	if !reflect.DeepEqual(counters1, counters2) {
		t.Errorf("telemetry counters differ across identical seeded runs:\n  %v\n  %v", counters1, counters2)
	}
	if len(events1) == 0 {
		t.Fatal("no trace events captured; decision tracing is not wired")
	}
	if !reflect.DeepEqual(events1, events2) {
		t.Fatalf("decision traces differ: %d vs %d events", len(events1), len(events2))
	}

	// And a different seed must actually steer the run — otherwise the
	// assertions above are vacuous.
	res3, _, _ := runSeeded(t, 8)
	if reflect.DeepEqual(res1, res3) {
		t.Log("seeds 7 and 8 produced identical results; widen the workload if this persists")
	}
}
