package sim

import (
	"testing"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/trace"
)

func TestChurnArrivalAndDeparture(t *testing.T) {
	c := newCluster(1)
	const steps = 6
	gen := trace.Constant{Level: 0.3}
	workloads := []Workload{
		{VM: newVM(0, "[1,1]"), Trace: gen.Series(0, steps)},                   // whole horizon
		{VM: newVM(1, "[1,1]"), Trace: gen.Series(1, steps), Start: 2, End: 4}, // mid lease
		{VM: newVM(2, "[1,1,1,1]"), Trace: gen.Series(2, steps), Start: 3},     // arrives, stays
		{VM: newVM(3, "[1,1]"), Trace: gen.Series(3, steps), Start: 1},         // arrives, stays
	}
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	// VM 1 departed; VMs 0, 2, 3 remain.
	if c.NumVMs() != 3 {
		t.Fatalf("NumVMs = %d, want 3", c.NumVMs())
	}
	if _, placed := c.Locate(1); placed {
		t.Fatal("vm 1 still placed after its lease")
	}
	for _, id := range []int{0, 2, 3} {
		if _, placed := c.Locate(id); !placed {
			t.Fatalf("vm %d missing", id)
		}
	}
}

func TestChurnArrivalRejectedWhenFull(t *testing.T) {
	c := newCluster(1)
	const steps = 4
	gen := trace.Constant{Level: 0.2}
	var workloads []Workload
	for i := 0; i < 4; i++ {
		workloads = append(workloads, Workload{VM: newVM(i, "[1,1,1,1]"), Trace: gen.Series(i, steps)})
	}
	// A late arrival finds no room.
	workloads = append(workloads, Workload{VM: newVM(9, "[1,1]"), Trace: gen.Series(9, steps), Start: 2})
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", res.Rejected)
	}
}

func TestChurnFreesCapacityForLaterArrivals(t *testing.T) {
	c := newCluster(1)
	const steps = 6
	gen := trace.Constant{Level: 0.2}
	workloads := []Workload{
		// Fill the PM until step 2.
		{VM: newVM(0, "[1,1,1,1]"), Trace: gen.Series(0, steps), End: 2},
		{VM: newVM(1, "[1,1,1,1]"), Trace: gen.Series(1, steps), End: 2},
		{VM: newVM(2, "[1,1,1,1]"), Trace: gen.Series(2, steps), End: 2},
		{VM: newVM(3, "[1,1,1,1]"), Trace: gen.Series(3, steps), End: 2},
		// Arrives after the departures: must fit.
		{VM: newVM(4, "[1,1,1,1]"), Trace: gen.Series(4, steps), Start: 3},
	}
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0", res.Rejected)
	}
	if c.NumVMs() != 1 {
		t.Fatalf("NumVMs = %d, want 1", c.NumVMs())
	}
}

func TestChurnInvalidLeaseRejected(t *testing.T) {
	c := newCluster(1)
	bad := []Workload{{VM: newVM(0, "[1,1]"), Start: 3, End: 2}}
	if _, err := New(shortCfg(4), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), bad); err == nil {
		t.Fatal("accepted End <= Start")
	}
	bad = []Workload{{VM: newVM(0, "[1,1]"), Start: -1}}
	if _, err := New(shortCfg(4), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), bad); err == nil {
		t.Fatal("accepted negative Start")
	}
}

// An emptied PM stops consuming energy: the meter only accumulates for
// active PM-intervals.
func TestChurnEnergyStopsAfterDeparture(t *testing.T) {
	c := newCluster(1)
	const steps = 4
	gen := trace.Constant{Level: 0.0}
	workloads := []Workload{
		{VM: newVM(0, "[1,1]"), Trace: gen.Series(0, steps), End: 2},
	}
	s, err := New(shortCfg(steps), c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Active for 2 intervals at idle power 337.3 W x 300 s each.
	wantKWh := 2 * 337.3 * 300 / 3.6e6
	if diff := res.EnergyKWh - wantKWh; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EnergyKWh = %v, want %v", res.EnergyKWh, wantKWh)
	}
	if res.ActivePMSteps != 2 {
		t.Fatalf("ActivePMSteps = %d, want 2", res.ActivePMSteps)
	}
}

func TestUnderloadConsolidation(t *testing.T) {
	// Two PMs each hosting one small VM at low utilization: with
	// consolidation enabled, one PM is evacuated into the other.
	c := newCluster(2)
	const steps = 4
	gen := trace.Constant{Level: 0.1}
	workloads := []Workload{
		{VM: newVM(0, "[1,1]"), Trace: gen.Series(0, steps)},
		{VM: newVM(1, "[1,1,1,1]"), Trace: gen.Series(1, steps)},
	}
	// Force the two VMs onto different PMs: place the second with a
	// Start so the first fills PM0... FirstFit would co-locate them, so
	// pre-place by hand instead.
	cfg := shortCfg(steps)
	cfg.UnderloadThreshold = 0.5
	s, err := New(cfg, c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-placement via the simulation's own initial allocation puts
	// both VMs on PM0 (they fit); move VM1 to PM1 manually afterwards
	// is not possible pre-Run, so instead just verify the co-located
	// case consolidates nothing and stays stable.
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Consolidations != 0 {
		t.Fatalf("consolidated a single active PM: %+v", res)
	}
	if c.NumUsed() != 1 {
		t.Fatalf("used = %d", c.NumUsed())
	}
}

func TestUnderloadConsolidationEvacuates(t *testing.T) {
	// Start VM1 on its own PM by arrival timing: VM0 fills PM0's first
	// two dims; VM1 arrives later as [1,1,1,1] and also fits PM0 — so
	// instead make VM0 a [1,1,1,1] occupying all dims at cap... use a
	// full PM0 at t=0 that drains at t=2, leaving two low-load PMs.
	c := newCluster(2)
	const steps = 8
	gen := trace.Constant{Level: 0.1}
	var workloads []Workload
	// Four wide VMs fill PM0 completely; three depart at step 2.
	for i := 0; i < 4; i++ {
		w := Workload{VM: newVM(i, "[1,1,1,1]"), Trace: gen.Series(i, steps)}
		if i > 0 {
			w.End = 2
		}
		workloads = append(workloads, w)
	}
	// A fifth wide VM arrives at step 1 while PM0 is full: opens PM1.
	workloads = append(workloads, Workload{VM: newVM(4, "[1,1,1,1]"), Trace: gen.Series(4, steps), Start: 1})

	cfg := shortCfg(steps)
	cfg.UnderloadThreshold = 0.5
	s, err := New(cfg, c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After the step-2 departures, PM0 and PM1 each hold one idle wide
	// VM; consolidation folds them onto one PM.
	if res.Consolidations == 0 {
		t.Fatalf("no consolidation: %+v", res)
	}
	if c.NumUsed() != 1 {
		t.Fatalf("used = %d PMs at the end, want 1", c.NumUsed())
	}
	if c.NumVMs() != 2 {
		t.Fatalf("NumVMs = %d, want 2", c.NumVMs())
	}
}

func TestObserverSeesEveryStep(t *testing.T) {
	c := newCluster(2)
	const steps = 5
	var snaps []StepStats
	cfg := shortCfg(steps)
	cfg.Observer = func(s StepStats) { snaps = append(snaps, s) }
	workloads := constWorkloads(4, "[1,1,1,1]", 1.0, steps)
	s, err := New(cfg, c, placement.FirstFit{}, placement.MMTEvictor{}, models(), workloads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != steps {
		t.Fatalf("observer saw %d steps, want %d", len(snaps), steps)
	}
	totalMigr := 0
	for i, snap := range snaps {
		if snap.Step != i {
			t.Fatalf("snap %d has Step %d", i, snap.Step)
		}
		if snap.MeanCPUUtil < 0 || snap.MeanCPUUtil > 1 {
			t.Fatalf("MeanCPUUtil = %v", snap.MeanCPUUtil)
		}
		totalMigr += snap.Migrations
	}
	if totalMigr != res.Migrations {
		t.Fatalf("observer migrations %d != result %d", totalMigr, res.Migrations)
	}
	// Hot full PM: the first step must report an overload.
	if snaps[0].OverloadedPMs == 0 || snaps[0].ViolatedPMs == 0 {
		t.Fatalf("first step stats: %+v", snaps[0])
	}
	if snaps[steps-1].PlacedVMs != 4 {
		t.Fatalf("PlacedVMs = %d", snaps[steps-1].PlacedVMs)
	}
}
