package testbed

import (
	"fmt"
	"math/rand"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// The paper's testbed configuration: 10 instances, 4 CPU cores each,
// 4 vCPUs per core, CPU-only profiles, VM (job) types [1,1] and
// [1,1,1,1].
const (
	// PMType is the emulated instance type name.
	PMType = "geni"
	// DefaultPMs is the paper's instance count.
	DefaultPMs = 10
)

// PMShape returns the testbed PM shape: a 4-dimensional CPU vector
// with capacity 4 per core.
func PMShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

// JobTypes returns the two job (VM) types of the experiment.
func JobTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
}

// NewRegistry builds the Profile→score table registry for the testbed
// PM type. The testbed fleet is homogeneous (one PM type, one joint
// table), so no cache is defaulted here; callers sharing tables across
// harnesses can pass a ranktable.Cache via opts.Cache.
func NewRegistry(opts ranktable.Options) (*ranktable.Registry, error) {
	table, err := ranktable.NewJoint(PMShape(), JobTypes(), opts)
	if err != nil {
		return nil, err
	}
	reg := ranktable.NewRegistry()
	reg.Add(PMType, table)
	return reg, nil
}

// Transport selects how controller and agents communicate.
type Transport int

const (
	// TransportInMemory uses channel pipes (fast, used by the
	// repetition harness).
	TransportInMemory Transport = iota
	// TransportTCP uses gob over loopback TCP sockets — real message
	// framing, as on the GENI control network.
	TransportTCP
)

// Harness owns the agents of one experiment.
type Harness struct {
	cluster    *placement.Cluster
	conns      map[int]Conn
	agentConns map[int]Conn
	agents     []*Agent
}

// Launch starts numPMs agents over the chosen transport and builds
// the matching (empty) cluster mirror.
func Launch(numPMs int, tr Transport) (*Harness, error) {
	return LaunchWithFaults(numPMs, tr, nil)
}

// LaunchWithFaults is Launch with every controller-side connection
// wrapped in a deterministic fault injector (nil faults means none).
// Each PM's injector gets its own seed derived from faults.Seed, so a
// fixed seed reproduces the same fault pattern across runs.
func LaunchWithFaults(numPMs int, tr Transport, faults *FaultConfig) (*Harness, error) {
	if numPMs <= 0 {
		return nil, fmt.Errorf("testbed: numPMs must be positive, got %d", numPMs)
	}
	shape := PMShape()
	h := &Harness{
		conns:      make(map[int]Conn, numPMs),
		agentConns: make(map[int]Conn, numPMs),
	}
	pms := make([]*placement.PM, numPMs)
	for i := 0; i < numPMs; i++ {
		var ctrlEnd, agentEnd Conn
		switch tr {
		case TransportTCP:
			var err error
			ctrlEnd, agentEnd, err = DialTCPPair()
			if err != nil {
				return nil, err
			}
		default:
			ctrlEnd, agentEnd = Pipe()
		}
		if faults != nil {
			perPM := *faults
			perPM.Seed = faults.Seed*1_000_003 + int64(i)
			ctrlEnd = NewFaultConn(ctrlEnd, perPM)
		}
		agent := NewAgent(i, shape, agentEnd)
		agent.Start()
		h.agents = append(h.agents, agent)
		h.conns[i] = ctrlEnd
		h.agentConns[i] = agentEnd
		pms[i] = placement.NewPM(i, PMType, shape)
	}
	h.cluster = placement.NewCluster(pms)
	return h, nil
}

// Cluster returns the controller-side mirror.
func (h *Harness) Cluster() *placement.Cluster { return h.cluster }

// Conns returns the controller-side connections keyed by PM id.
func (h *Harness) Conns() map[int]Conn { return h.conns }

// Agents returns the launched agents, indexed by PM id.
func (h *Harness) Agents() []*Agent { return h.agents }

// KillAgent emulates an agent crash mid-experiment: its connection is
// closed, which ends the agent loop; the controller discovers the
// death on its next call to that agent and recovers its jobs.
func (h *Harness) KillAgent(id int) {
	if conn, ok := h.agentConns[id]; ok {
		_ = conn.Close()
	}
}

// Close waits for the agents to exit and closes the connections. Call
// after Controller.Run (which shuts the agents down, closing every
// conn — even toward agents that stopped answering).
func (h *Harness) Close() {
	for _, a := range h.agents {
		a.Wait()
	}
	for _, c := range h.conns {
		_ = c.Close()
	}
	for _, c := range h.agentConns {
		_ = c.Close()
	}
}

// JobConfig parameterizes the synthetic job stream of the experiment.
type JobConfig struct {
	// NumJobs is the total jobs submitted over the experiment (the
	// paper sweeps 100-300).
	NumJobs int
	// Steps is the experiment length in control intervals.
	Steps int
	// Seed drives arrivals, types and traces.
	Seed int64
	// MeanLeaseSteps is the mean job duration; 0 selects Steps/8.
	MeanLeaseSteps int
	// WideShare is the fraction of [1,1,1,1] jobs; nil selects 0.5
	// (set with opt.F).
	WideShare *float64
}

// GenJobs builds the job stream: users submit 1-5 jobs together (with
// a shared load-burst series), arrivals are spread over the first 80%
// of the experiment, and each job runs for an exponential lease.
func GenJobs(cat func(id int, vt resource.VMType) *placement.VM, cfg JobConfig) ([]Job, error) {
	if cfg.NumJobs <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("testbed: job config needs NumJobs and Steps")
	}
	if cfg.MeanLeaseSteps == 0 {
		cfg.MeanLeaseSteps = cfg.Steps / 12
	}
	wideShare := opt.Or(cfg.WideShare, 0.5)
	types := JobTypes()
	gen := trace.Google{Seed: cfg.Seed, Mean: opt.F(0.5)}
	rng := rand.New(rand.NewSource(cfg.Seed * 31 / 7))

	jobs := make([]Job, 0, cfg.NumJobs)
	user := 0
	for len(jobs) < cfg.NumJobs {
		group := 1 + rng.Intn(5)
		shared := trace.Bursts(cfg.Seed, 1<<24+user, cfg.Steps,
			trace.BurstConfig{Prob: opt.F(0.03), Min: 0.8, Max: opt.F(1.0)})
		vt := types[0]
		if rng.Float64() < wideShare {
			vt = types[1]
		}
		start := rng.Intn(cfg.Steps * 8 / 10)
		for g := 0; g < group && len(jobs) < cfg.NumJobs; g++ {
			id := len(jobs)
			lease := 1 + int(rng.ExpFloat64()*float64(cfg.MeanLeaseSteps))
			end := start + lease
			if end >= cfg.Steps {
				end = 0
			}
			jobs = append(jobs, Job{
				VM:    cat(id, vt),
				Trace: trace.Overlay(gen.Series(id, cfg.Steps), shared),
				Start: start,
				End:   end,
			})
		}
		user++
	}
	return jobs, nil
}

// NewJobVM is the default cat function for GenJobs: a VM whose only
// demand entry targets the testbed PM type.
func NewJobVM(id int, vt resource.VMType) *placement.VM {
	return &placement.VM{
		ID:   id,
		Type: vt.Name,
		Req:  map[string]resource.VMType{PMType: vt},
	}
}
