package testbed

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Conn is a bidirectional message pipe between the controller and one
// agent.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// Pipe returns an in-memory connected pair: the controller uses one
// end, the agent the other. Sends block until received (lock-step
// protocol), like an unbuffered socket.
func Pipe() (controller, agent Conn) {
	a2c := make(chan Message)
	c2a := make(chan Message)
	done := make(chan struct{})
	stop := &sync.Once{}
	return &chanConn{send: c2a, recv: a2c, done: done, stop: stop},
		&chanConn{send: a2c, recv: c2a, done: done, stop: stop}
}

type chanConn struct {
	send chan Message
	recv chan Message
	done chan struct{}
	stop *sync.Once
}

func (c *chanConn) Send(m Message) error {
	select {
	case c.send <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("testbed: send on closed conn")
	}
}

func (c *chanConn) Recv() (Message, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.done:
		return Message{}, fmt.Errorf("testbed: recv on closed conn")
	}
}

func (c *chanConn) Close() error {
	c.stop.Do(func() { close(c.done) })
	return nil
}

// gobConn frames messages with encoding/gob over a net.Conn — the
// TCP transport of the emulated GENI control network.
type gobConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewGobConn wraps a network connection.
func NewGobConn(c net.Conn) Conn {
	return &gobConn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (g *gobConn) Send(m Message) error {
	if err := g.enc.Encode(m); err != nil {
		return fmt.Errorf("testbed: send: %w", err)
	}
	return nil
}

func (g *gobConn) Recv() (Message, error) {
	var m Message
	if err := g.dec.Decode(&m); err != nil {
		return Message{}, fmt.Errorf("testbed: recv: %w", err)
	}
	return m, nil
}

func (g *gobConn) Close() error { return g.conn.Close() }

// DialTCPPair creates a loopback TCP connection pair on an ephemeral
// port: the returned conns are the controller's and agent's ends.
func DialTCPPair() (controller, agent Conn, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("testbed: listen: %w", err)
	}
	defer ln.Close()

	type result struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- result{conn: c, err: err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, fmt.Errorf("testbed: dial: %w", err)
	}
	res := <-accepted
	if res.err != nil {
		dialed.Close()
		return nil, nil, fmt.Errorf("testbed: accept: %w", res.err)
	}
	return NewGobConn(dialed), NewGobConn(res.conn), nil
}
