package testbed

import (
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Conn is a bidirectional message pipe between the controller and one
// agent.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// deadlineSetter is the optional deadline facet of a Conn. Both built-in
// transports implement it; the controller arms it per call when
// Config.CallTimeout is set and skips conns that do not support it.
type deadlineSetter interface {
	// SetDeadline bounds subsequent Send/Recv calls; the zero time
	// clears it. An expired deadline makes them fail with an error
	// satisfying errors.Is(err, os.ErrDeadlineExceeded).
	SetDeadline(t time.Time) error
}

// Pipe returns an in-memory connected pair: the controller uses one
// end, the agent the other. Each direction buffers one message, so a
// replier never blocks the other side's next request — the slack a
// kernel socket buffer provides on the TCP transport, and what lets a
// timed-out call be retried without deadlocking against an agent still
// holding the stale reply.
func Pipe() (controller, agent Conn) {
	a2c := make(chan Message, 1)
	c2a := make(chan Message, 1)
	done := make(chan struct{})
	stop := &sync.Once{}
	return &chanConn{send: c2a, recv: a2c, done: done, stop: stop},
		&chanConn{send: a2c, recv: c2a, done: done, stop: stop}
}

type chanConn struct {
	send chan Message
	recv chan Message
	done chan struct{}
	stop *sync.Once

	mu       sync.Mutex
	deadline time.Time
}

// SetDeadline implements deadlineSetter.
func (c *chanConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadline = t
	return nil
}

// expiry returns a channel that fires at the deadline (nil when no
// deadline is set, which never fires in a select) plus the timer to
// stop.
func (c *chanConn) expiry() (<-chan time.Time, *time.Timer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deadline.IsZero() {
		return nil, nil
	}
	tm := time.NewTimer(time.Until(c.deadline))
	return tm.C, tm
}

// checkNow reports a closed conn or an already-expired deadline before
// the main select: with buffered directions the send case can be ready
// at the same time, and a select would pick between them at random.
func (c *chanConn) checkNow(op string) error {
	select {
	case <-c.done:
		return fmt.Errorf("testbed: %s on closed conn", op)
	default:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		return fmt.Errorf("testbed: %s: %w", op, os.ErrDeadlineExceeded)
	}
	return nil
}

func (c *chanConn) Send(m Message) error {
	if err := c.checkNow("send"); err != nil {
		return err
	}
	expire, tm := c.expiry()
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case c.send <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("testbed: send on closed conn")
	case <-expire:
		return fmt.Errorf("testbed: send: %w", os.ErrDeadlineExceeded)
	}
}

func (c *chanConn) Recv() (Message, error) {
	if err := c.checkNow("recv"); err != nil {
		return Message{}, err
	}
	expire, tm := c.expiry()
	if tm != nil {
		defer tm.Stop()
	}
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.done:
		return Message{}, fmt.Errorf("testbed: recv on closed conn")
	case <-expire:
		return Message{}, fmt.Errorf("testbed: recv: %w", os.ErrDeadlineExceeded)
	}
}

func (c *chanConn) Close() error {
	c.stop.Do(func() { close(c.done) })
	return nil
}

// gobConn frames messages with encoding/gob over a net.Conn — the
// TCP transport of the emulated GENI control network.
type gobConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewGobConn wraps a network connection.
func NewGobConn(c net.Conn) Conn {
	return &gobConn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// SetDeadline implements deadlineSetter on the underlying socket.
func (g *gobConn) SetDeadline(t time.Time) error { return g.conn.SetDeadline(t) }

func (g *gobConn) Send(m Message) error {
	if err := g.enc.Encode(m); err != nil {
		return fmt.Errorf("testbed: send: %w", err)
	}
	return nil
}

func (g *gobConn) Recv() (Message, error) {
	var m Message
	if err := g.dec.Decode(&m); err != nil {
		return Message{}, fmt.Errorf("testbed: recv: %w", err)
	}
	return m, nil
}

func (g *gobConn) Close() error { return g.conn.Close() }

// DialTCPPair creates a loopback TCP connection pair on an ephemeral
// port: the returned conns are the controller's and agent's ends.
func DialTCPPair() (controller, agent Conn, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("testbed: listen: %w", err)
	}
	// Once both ends exist the listener is just scaffolding; its close
	// error cannot affect the established conns.
	defer func() { _ = ln.Close() }()

	type result struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		accepted <- result{conn: c, err: err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		// Unblock the pending Accept, then drain it: a half-open
		// accepted conn would otherwise leak with the goroutine. The
		// dial error is the story; the cleanup errors are discarded
		// deliberately.
		_ = ln.Close()
		if res := <-accepted; res.conn != nil {
			_ = res.conn.Close()
		}
		return nil, nil, fmt.Errorf("testbed: dial: %w", err)
	}
	res := <-accepted
	if res.err != nil {
		_ = dialed.Close()
		return nil, nil, fmt.Errorf("testbed: accept: %w", res.err)
	}
	return NewGobConn(dialed), NewGobConn(res.conn), nil
}
