package testbed

import (
	"errors"
	"os"
	"testing"
	"time"

	"pagerankvm/internal/resource"
)

func TestPipeRoundTrip(t *testing.T) {
	ctrl, agent := Pipe()
	go func() {
		m, err := agent.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		m.Step++
		if err := agent.Send(m); err != nil {
			t.Error(err)
		}
	}()
	if err := ctrl.Send(Message{Kind: KindTick, Step: 41}); err != nil {
		t.Fatal(err)
	}
	reply, err := ctrl.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Step != 42 {
		t.Fatalf("Step = %d", reply.Step)
	}
}

func TestPipeClose(t *testing.T) {
	ctrl, agent := Pipe()
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and closes both ends.
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Send(Message{}); err == nil {
		t.Fatal("send on closed pipe succeeded")
	}
	if _, err := agent.Recv(); err == nil {
		t.Fatal("recv on closed pipe succeeded")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ctrl, agent, err := DialTCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	defer agent.Close()

	msg := Message{
		Kind: KindStart,
		Job: &JobSpec{
			ID:     7,
			Assign: []resource.DimUnits{{Dim: 0, Units: 1}, {Dim: 2, Units: 1}},
			Trace:  []float64{0.25, 0.5, 1},
		},
	}
	done := make(chan error, 1)
	go func() {
		m, err := agent.Recv()
		if err != nil {
			done <- err
			return
		}
		if m.Job == nil || m.Job.ID != 7 || len(m.Job.Assign) != 2 || m.Job.Trace[2] != 1 {
			done <- errFmt("bad payload %+v", m.Job)
			return
		}
		done <- agent.Send(Message{Kind: KindOK})
	}()
	if err := ctrl.Send(msg); err != nil {
		t.Fatal(err)
	}
	reply, err := ctrl.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != KindOK {
		t.Fatalf("reply = %v", reply.Kind)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func errFmt(format string, args ...any) error {
	return &protoError{msg: format, args: args}
}

type protoError struct {
	msg  string
	args []any
}

func (e *protoError) Error() string { return e.msg }

func TestPipeDeadline(t *testing.T) {
	ctrl, _ := Pipe()
	ds, ok := ctrl.(deadlineSetter)
	if !ok {
		t.Fatal("pipe conns must support deadlines")
	}
	if err := ds.SetDeadline(time.Now().Add(15 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := ctrl.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv past deadline: err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline fired far too late")
	}
	// An already expired deadline fails sends immediately too.
	if err := ds.SetDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Send(Message{Kind: KindTick}); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Send past deadline: err = %v, want deadline exceeded", err)
	}
	// The zero time clears the deadline again.
	if err := ds.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Send(Message{Kind: KindTick}); err != nil {
		t.Fatalf("Send after clearing deadline: %v", err)
	}
}

func TestTCPDeadline(t *testing.T) {
	ctrl, agent, err := DialTCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	defer agent.Close()

	ds, ok := ctrl.(deadlineSetter)
	if !ok {
		t.Fatal("TCP conns must support deadlines")
	}
	if err := ds.SetDeadline(time.Now().Add(15 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv past deadline: err = %v, want deadline exceeded", err)
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := map[MsgKind]string{
		KindTick: "tick", KindStart: "start", KindKill: "kill",
		KindShutdown: "shutdown", KindStatus: "status", KindOK: "ok",
		KindError: "error", MsgKind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
