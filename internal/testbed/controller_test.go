package testbed

import (
	"testing"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/trace"
)

func prvmStack(t *testing.T) (placement.Placer, placement.Evictor) {
	t.Helper()
	reg, err := NewRegistry(ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := placement.NewPageRankVM(reg)
	return p, placement.RankEvictor{Placer: p}
}

func constJob(id int, typeIdx int, level float64, steps, start, end int) Job {
	vt := JobTypes()[typeIdx]
	return Job{
		VM:    NewJobVM(id, vt),
		Trace: trace.Constant{Level: level}.Series(id, steps),
		Start: start,
		End:   end,
	}
}

func runExperiment(t *testing.T, tr Transport, jobs []Job, steps int,
	placer placement.Placer, evictor placement.Evictor) (Result, *Harness) {
	t.Helper()
	h, err := Launch(2, tr)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(Config{Steps: steps}, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	return res, h
}

func TestControllerPlacesAndDeparts(t *testing.T) {
	placer, evictor := prvmStack(t)
	const steps = 6
	jobs := []Job{
		constJob(0, 0, 0.5, steps, 0, 3), // departs at step 3
		constJob(1, 1, 0.5, steps, 1, 0), // arrives at 1, runs forever
	}
	res, h := runExperiment(t, TransportInMemory, jobs, steps, placer, evictor)
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	if res.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d, want 1", res.PMsUsed)
	}
	// Only job 1 remains at the end.
	if got := h.Cluster().NumVMs(); got != 1 {
		t.Fatalf("NumVMs = %d, want 1", got)
	}
	if _, placed := h.Cluster().Locate(1); !placed {
		t.Fatal("job 1 missing at the end")
	}
}

func TestControllerOverloadMigrates(t *testing.T) {
	placer, evictor := prvmStack(t)
	const steps = 4
	// Four wide jobs at full heat pack one PM's cores to 4.0 > 3.6:
	// overload, one kill-and-continue per round until relieved.
	jobs := []Job{
		constJob(0, 1, 1.0, steps, 0, 0),
		constJob(1, 1, 1.0, steps, 0, 0),
		constJob(2, 1, 1.0, steps, 0, 0),
		constJob(3, 1, 1.0, steps, 0, 0),
	}
	res, h := runExperiment(t, TransportInMemory, jobs, steps, placer, evictor)
	if res.Migrations == 0 {
		t.Fatalf("no migrations: %+v", res)
	}
	if res.PMsUsed != 2 {
		t.Fatalf("PMsUsed = %d, want 2", res.PMsUsed)
	}
	if got := h.Cluster().NumVMs(); got != 4 {
		t.Fatalf("job lost: NumVMs = %d", got)
	}
}

func TestControllerSLOAccounting(t *testing.T) {
	placer, evictor := prvmStack(t)
	const steps = 3
	// 8 wide jobs fill both PMs completely at heat 1.0: every active
	// PM-interval is a violation and there is nowhere to migrate.
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, constJob(i, 1, 1.0, steps, 0, 0))
	}
	res, _ := runExperiment(t, TransportInMemory, jobs, steps, placer, evictor)
	if res.SLOViolationPct != 100 {
		t.Fatalf("SLO = %v, want 100", res.SLOViolationPct)
	}
	if res.FailedMoves == 0 {
		t.Fatal("expected failed moves with a full testbed")
	}
}

func TestControllerRejectsWhenFull(t *testing.T) {
	placer, evictor := prvmStack(t)
	const steps = 2
	var jobs []Job
	// 9 wide cold jobs: capacity is 8.
	for i := 0; i < 9; i++ {
		jobs = append(jobs, constJob(i, 1, 0.1, steps, 0, 0))
	}
	res, _ := runExperiment(t, TransportInMemory, jobs, steps, placer, evictor)
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
}

// The controller's mirror and the agents' own state must agree.
func TestControllerMirrorConsistency(t *testing.T) {
	placer, evictor := prvmStack(t)
	h, err := Launch(2, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 8
	jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 12, Steps: steps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(Config{Steps: steps}, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(); err != nil {
		t.Fatal(err)
	}
	// Before shutdown completes the agents have exited; compare final
	// mirror state against what each agent last reported via a fresh
	// probe... agents are down now, so instead verify the mirror's
	// internal consistency: every placed job sits on exactly one PM.
	seen := map[int]int{}
	for _, pm := range h.Cluster().PMs() {
		for id := range pm.VMs() {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %d on %d PMs", id, n)
		}
	}
	h.Close()
}

func TestControllerDeterministic(t *testing.T) {
	run := func() Result {
		placer, evictor := prvmStack(t)
		const steps = 30
		jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 20, Steps: steps, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runExperiment(t, TransportInMemory, jobs, steps, placer, evictor)
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestControllerOverTCP(t *testing.T) {
	placer, evictor := prvmStack(t)
	const steps = 6
	jobs := []Job{
		constJob(0, 0, 0.5, steps, 0, 0),
		constJob(1, 1, 0.6, steps, 2, 5),
	}
	res, h := runExperiment(t, TransportTCP, jobs, steps, placer, evictor)
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	if got := h.Cluster().NumVMs(); got != 1 {
		t.Fatalf("NumVMs = %d, want 1 (job 1 departed)", got)
	}
}

func TestNewControllerValidation(t *testing.T) {
	placer, evictor := prvmStack(t)
	h, err := Launch(1, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctrl, _ := NewController(Config{Steps: 1}, h.Cluster(), placer, evictor, h.Conns(), nil)
		_, _ = ctrl.Run()
		h.Close()
	}()
	if _, err := NewController(Config{}, nil, placer, evictor, h.Conns(), nil); err == nil {
		t.Error("accepted nil cluster")
	}
	if _, err := NewController(Config{}, h.Cluster(), placer, evictor, map[int]Conn{}, nil); err == nil {
		t.Error("accepted missing conns")
	}
	dup := []Job{
		{VM: NewJobVM(1, JobTypes()[0])},
		{VM: NewJobVM(1, JobTypes()[0])},
	}
	if _, err := NewController(Config{}, h.Cluster(), placer, evictor, h.Conns(), dup); err == nil {
		t.Error("accepted duplicate jobs")
	}
	if _, err := NewController(Config{}, h.Cluster(), placer, evictor, h.Conns(), []Job{{}}); err == nil {
		t.Error("accepted job without VM")
	}
}

func TestLaunchValidation(t *testing.T) {
	if _, err := Launch(0, TransportInMemory); err == nil {
		t.Fatal("accepted zero PMs")
	}
}

func TestGenJobsValidation(t *testing.T) {
	if _, err := GenJobs(NewJobVM, JobConfig{}); err == nil {
		t.Fatal("accepted empty config")
	}
	jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 30, Steps: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 30 {
		t.Fatalf("len = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Start < 0 || j.Start >= 100 {
			t.Fatalf("bad start %d", j.Start)
		}
		if j.End != 0 && j.End <= j.Start {
			t.Fatalf("bad lease [%d,%d)", j.Start, j.End)
		}
		if len(j.Trace) != 100 {
			t.Fatalf("trace len %d", len(j.Trace))
		}
	}
}
