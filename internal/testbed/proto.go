// Package testbed emulates the paper's GENI experiment: PMs are
// emulated by instances running an agent, VMs by jobs, and a
// centralized controller assigns jobs to instances, polls their
// utilization every control interval (10 s in the paper), and handles
// overload by killing a job and continuing it on another instance.
//
// The controller and agents exchange gob-encoded messages over a
// Transport; both an in-memory channel transport and a real TCP
// (loopback) transport are provided. Rounds are lock-step — the
// controller ticks each agent and waits for its status — so runs are
// deterministic for a fixed seed, while still exercising real
// message passing (and real sockets under TransportTCP).
package testbed

import (
	"fmt"

	"pagerankvm/internal/resource"
)

// MsgKind enumerates protocol messages.
type MsgKind int

const (
	// KindTick asks an agent for its status at a step.
	KindTick MsgKind = iota + 1
	// KindStart asks an agent to start (or continue) a job.
	KindStart
	// KindKill asks an agent to kill a job.
	KindKill
	// KindShutdown terminates the agent loop.
	KindShutdown
	// KindStatus is the agent's reply to KindTick.
	KindStatus
	// KindOK is the agent's reply to start/kill/shutdown.
	KindOK
	// KindError reports an agent-side failure.
	KindError
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case KindTick:
		return "tick"
	case KindStart:
		return "start"
	case KindKill:
		return "kill"
	case KindShutdown:
		return "shutdown"
	case KindStatus:
		return "status"
	case KindOK:
		return "ok"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// JobSpec carries everything an agent needs to run a job: its
// identity, the per-dimension units it occupies (the controller's
// anti-collocation assignment), and its CPU utilization trace.
type JobSpec struct {
	ID     int
	Assign []resource.DimUnits
	Trace  []float64
}

// Status is an agent's per-tick report: actual per-dimension load and
// the ids of hosted jobs.
type Status struct {
	AgentID int
	Step    int
	Load    []float64
	Jobs    []int
}

// Message is the single wire envelope for all protocol messages.
//
// Seq gives the control protocol at-most-once semantics under retries:
// the controller stamps each request with a per-connection increasing
// sequence number, the agent echoes it on the reply and answers a
// duplicate of its last seen Seq from a cached reply instead of
// re-executing the command. Requests with Seq 0 (hand-rolled test
// traffic) bypass deduplication.
type Message struct {
	Kind   MsgKind
	Seq    uint64
	Step   int
	Job    *JobSpec
	JobID  int
	Status *Status
	Err    string
}
