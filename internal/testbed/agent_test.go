package testbed

import (
	"testing"

	"pagerankvm/internal/resource"
)

// startAgent launches an agent on a pipe and returns the controller
// end plus a cleanup that shuts the agent down.
func startAgent(t *testing.T) Conn {
	t.Helper()
	ctrl, agentEnd := Pipe()
	agent := NewAgent(3, PMShape(), agentEnd)
	agent.Start()
	t.Cleanup(func() {
		_ = ctrl.Send(Message{Kind: KindShutdown})
		_, _ = ctrl.Recv()
		agent.Wait()
		_ = ctrl.Close()
	})
	return ctrl
}

func call(t *testing.T, c Conn, m Message) Message {
	t.Helper()
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestAgentStartAndStatus(t *testing.T) {
	ctrl := startAgent(t)
	reply := call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID:     1,
		Assign: []resource.DimUnits{{Dim: 0, Units: 1}, {Dim: 1, Units: 1}},
		Trace:  []float64{0.5, 1.0},
	}})
	if reply.Kind != KindOK {
		t.Fatalf("start reply %v: %s", reply.Kind, reply.Err)
	}
	status := call(t, ctrl, Message{Kind: KindTick, Step: 0})
	if status.Kind != KindStatus {
		t.Fatalf("tick reply %v", status.Kind)
	}
	if got := status.Status.Load[0]; got != 0.5 {
		t.Fatalf("load[0] = %v", got)
	}
	// Trace clamps past the end.
	status = call(t, ctrl, Message{Kind: KindTick, Step: 99})
	if got := status.Status.Load[1]; got != 1.0 {
		t.Fatalf("load[1] = %v", got)
	}
	if len(status.Status.Jobs) != 1 || status.Status.Jobs[0] != 1 {
		t.Fatalf("jobs = %v", status.Status.Jobs)
	}
	if status.Status.AgentID != 3 {
		t.Fatalf("agent id = %d", status.Status.AgentID)
	}
}

func TestAgentRejectsAntiCollocationViolation(t *testing.T) {
	ctrl := startAgent(t)
	reply := call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID:     1,
		Assign: []resource.DimUnits{{Dim: 0, Units: 1}, {Dim: 0, Units: 1}},
	}})
	if reply.Kind != KindError {
		t.Fatalf("reply = %v, want error", reply.Kind)
	}
}

func TestAgentRejectsOverflow(t *testing.T) {
	ctrl := startAgent(t)
	reply := call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID:     1,
		Assign: []resource.DimUnits{{Dim: 0, Units: 5}},
	}})
	if reply.Kind != KindError {
		t.Fatalf("reply = %v, want error", reply.Kind)
	}
	reply = call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID:     2,
		Assign: []resource.DimUnits{{Dim: 9, Units: 1}},
	}})
	if reply.Kind != KindError {
		t.Fatalf("out-of-range dim accepted")
	}
}

func TestAgentRejectsDuplicateJob(t *testing.T) {
	ctrl := startAgent(t)
	job := &JobSpec{ID: 1, Assign: []resource.DimUnits{{Dim: 0, Units: 1}}}
	if reply := call(t, ctrl, Message{Kind: KindStart, Job: job}); reply.Kind != KindOK {
		t.Fatal(reply.Err)
	}
	if reply := call(t, ctrl, Message{Kind: KindStart, Job: job}); reply.Kind != KindError {
		t.Fatal("duplicate start accepted")
	}
	if reply := call(t, ctrl, Message{Kind: KindStart}); reply.Kind != KindError {
		t.Fatal("nil job accepted")
	}
}

func TestAgentKill(t *testing.T) {
	ctrl := startAgent(t)
	call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID: 1, Assign: []resource.DimUnits{{Dim: 0, Units: 2}}, Trace: []float64{1},
	}})
	if reply := call(t, ctrl, Message{Kind: KindKill, JobID: 1}); reply.Kind != KindOK {
		t.Fatalf("kill reply: %s", reply.Err)
	}
	status := call(t, ctrl, Message{Kind: KindTick})
	if len(status.Status.Jobs) != 0 || status.Status.Load[0] != 0 {
		t.Fatalf("job not removed: %+v", status.Status)
	}
	if reply := call(t, ctrl, Message{Kind: KindKill, JobID: 1}); reply.Kind != KindError {
		t.Fatal("killing unknown job succeeded")
	}
}

func TestAgentUnknownKind(t *testing.T) {
	ctrl := startAgent(t)
	if reply := call(t, ctrl, Message{Kind: MsgKind(42)}); reply.Kind != KindError {
		t.Fatalf("reply = %v", reply.Kind)
	}
}

// After a start is rejected, the agent's capacity must be unchanged —
// failed validation must not leak partial assignments.
func TestAgentRejectionLeavesStateClean(t *testing.T) {
	ctrl := startAgent(t)
	// Fill dim 0 fully.
	call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID: 1, Assign: []resource.DimUnits{{Dim: 0, Units: 4}}, Trace: []float64{1},
	}})
	// This one overflows dim 0 and must be rejected...
	reply := call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
		ID: 2, Assign: []resource.DimUnits{{Dim: 1, Units: 1}, {Dim: 0, Units: 1}},
	}})
	if reply.Kind != KindError {
		t.Fatal("overflow accepted")
	}
	// ...without having committed the dim-1 part.
	status := call(t, ctrl, Message{Kind: KindTick})
	if status.Status.Load[1] != 0 {
		t.Fatalf("rejected job leaked load: %v", status.Status.Load)
	}
}

// Status.Load feeds the controller's overload decisions; a map-order
// sum over jobs would make it differ bit-for-bit between identical
// ticks, because float addition is not associative.
func TestAgentStatusLoadDeterministic(t *testing.T) {
	ctrl := startAgent(t)
	// Four jobs on one dimension with trace levels whose sum depends
	// on addition order (0.1+0.2+0.3 != 0.3+0.2+0.1 bit-for-bit).
	for i, level := range []float64{0.1, 0.2, 0.3, 0.7} {
		reply := call(t, ctrl, Message{Kind: KindStart, Job: &JobSpec{
			ID:     i + 1,
			Assign: []resource.DimUnits{{Dim: 0, Units: 1}},
			Trace:  []float64{level},
		}})
		if reply.Kind != KindOK {
			t.Fatalf("start job %d: %v %s", i+1, reply.Kind, reply.Err)
		}
	}
	first := call(t, ctrl, Message{Kind: KindTick, Step: 0})
	if first.Kind != KindStatus {
		t.Fatalf("tick reply %v", first.Kind)
	}
	for n := 0; n < 50; n++ {
		status := call(t, ctrl, Message{Kind: KindTick, Step: 0})
		for d, got := range status.Status.Load {
			if got != first.Status.Load[d] {
				t.Fatalf("tick %d: load[%d] = %v, first tick had %v", n, d, got, first.Status.Load[d])
			}
		}
	}
}
