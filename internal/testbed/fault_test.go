package testbed

import (
	"errors"
	"os"
	"reflect"
	"testing"
	"time"

	"pagerankvm/internal/obs"
)

func TestFaultConnInactiveIsIdentity(t *testing.T) {
	ctrl, _ := Pipe()
	if got := NewFaultConn(ctrl, FaultConfig{Seed: 42}); got != ctrl {
		t.Fatal("a config injecting nothing must return the inner conn unchanged")
	}
}

func TestFaultConnDropSend(t *testing.T) {
	ctrl, agent := Pipe()
	fc := NewFaultConn(ctrl, FaultConfig{Seed: 1, DropProb: 1})
	if err := fc.Send(Message{Kind: KindTick}); err != nil {
		t.Fatalf("a dropped send must look successful to the caller: %v", err)
	}
	// The message must never arrive: a deadline-armed Recv on the
	// agent side times out instead of delivering it.
	ds := agent.(deadlineSetter)
	if err := ds.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv after dropped send: err = %v, want deadline exceeded", err)
	}
}

func TestFaultConnDropRecv(t *testing.T) {
	ctrl, agent := Pipe()
	fc := NewFaultConn(ctrl, FaultConfig{Seed: 1, DropProb: 1})
	if err := agent.Send(Message{Kind: KindStatus}); err != nil {
		t.Fatal(err)
	}
	// The injector consumes and discards the inbound reply, then keeps
	// waiting; the armed deadline must eventually fire.
	if err := fc.(deadlineSetter).SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Recv(); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Recv with dropped replies: err = %v, want deadline exceeded", err)
	}
}

func TestFaultConnErr(t *testing.T) {
	ctrl, _ := Pipe()
	o := obs.New()
	fc := NewFaultConn(ctrl, FaultConfig{Seed: 1, ErrProb: 1, Obs: o})
	if err := fc.Send(Message{Kind: KindTick}); err == nil {
		t.Fatal("ErrProb=1 must fail every send")
	}
	if _, err := fc.Recv(); err == nil {
		t.Fatal("ErrProb=1 must fail every recv")
	}
	if got := o.Counter("testbed.faults_injected").Value(); got != 2 {
		t.Fatalf("faults_injected = %d, want 2", got)
	}
}

func TestFaultConnDelay(t *testing.T) {
	ctrl, agent := Pipe()
	fc := NewFaultConn(ctrl, FaultConfig{Seed: 1, Delay: 30 * time.Millisecond, DelayProb: 1})
	start := time.Now()
	if err := fc.Send(Message{Kind: KindTick}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delayed send took %v, want >= 30ms", elapsed)
	}
	if _, err := agent.Recv(); err != nil {
		t.Fatalf("a delayed message must still arrive: %v", err)
	}
}

func TestFaultConnCloseAfter(t *testing.T) {
	ctrl, agent := Pipe()
	fc := NewFaultConn(ctrl, FaultConfig{Seed: 1, CloseAfter: 2})
	for i := 0; i < 2; i++ {
		if err := fc.Send(Message{Kind: KindTick}); err != nil {
			t.Fatalf("op %d before CloseAfter: %v", i+1, err)
		}
		if _, err := agent.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fc.Send(Message{Kind: KindTick}); err == nil {
		t.Fatal("op past CloseAfter must fail")
	}
	// The underlying conn is really closed — the agent side sees it.
	if _, err := agent.Recv(); err == nil {
		t.Fatal("agent side must observe the close")
	}
}

// TestFaultConnDeterministic checks two injectors with the same seed
// produce the same fault pattern over the same operation sequence.
func TestFaultConnDeterministic(t *testing.T) {
	pattern := func() []bool {
		ctrl, agent := Pipe()
		defer ctrl.Close()
		go func() { // drain successful sends so the pipe never fills
			for {
				if _, err := agent.Recv(); err != nil {
					return
				}
			}
		}()
		fc := NewFaultConn(ctrl, FaultConfig{Seed: 99, ErrProb: 0.3})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			outcomes = append(outcomes, fc.Send(Message{Kind: KindTick}) != nil)
		}
		return outcomes
	}
	if a, b := pattern(), pattern(); !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the same fault pattern")
	}
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("seed=7, drop=0.01,err=0.02,delay=5ms,delayprob=0.05,close=500")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{
		Seed:       7,
		DropProb:   0.01,
		ErrProb:    0.02,
		Delay:      5 * time.Millisecond,
		DelayProb:  0.05,
		CloseAfter: 500,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("ParseFaultSpec = %+v, want %+v", cfg, want)
	}

	empty, err := ParseFaultSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.active() {
		t.Fatal("empty spec must inject nothing")
	}

	for _, bad := range []string{
		"bogus=1",       // unknown key
		"drop",          // not key=value
		"drop=1.5",      // probability out of range
		"err=-0.1",      // probability out of range
		"delay=fast",    // not a duration
		"close=many",    // not an int
		"seed=2b",       // not an int64
		"delayprob=x,y", // garbage
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q): expected error", bad)
		}
	}
}
