package testbed

import (
	"fmt"
	"testing"
	"time"

	"pagerankvm/internal/opt"
)

// chaosConfig is the controller tuning every chaos run uses: tight
// deadlines, a few retries, fast backoff.
func chaosConfig(steps int) Config {
	return Config{
		Steps:        steps,
		CallTimeout:  25 * time.Millisecond,
		CallRetries:  opt.I(3),
		RetryBackoff: time.Millisecond,
	}
}

// TestChaosFaultInjection runs the full controller pipeline under
// seeded random drops and transport errors and asserts it never
// errors out, never loses track of a job, and leaves surviving agents
// exactly in sync with the controller's mirror. Run under -race via
// `make chaos`.
func TestChaosFaultInjection(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const steps = 30
			placer, evictor := prvmStack(t)
			h, err := LaunchWithFaults(4, TransportInMemory, &FaultConfig{
				Seed:     seed,
				DropProb: 0.01,
				ErrProb:  0.03,
			})
			if err != nil {
				t.Fatal(err)
			}
			jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 24, Steps: steps, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			ctrl, err := NewController(chaosConfig(steps), h.Cluster(), placer, evictor, h.Conns(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ctrl.Run()
			if err != nil {
				t.Fatalf("chaos run must degrade gracefully, got: %v", err)
			}
			h.Close()
			t.Logf("result: %+v dead=%v", res, ctrl.DeadAgents())
			assertMirrorAgentsConsistent(t, h, ctrl)
		})
	}
}

// TestChaosAllAgentsDie cuts every connection mid-run; the controller
// must finish without error, retire everything, and account every
// placed job as lost.
func TestChaosAllAgentsDie(t *testing.T) {
	const steps = 20
	placer, evictor := prvmStack(t)
	h, err := Launch(4, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	// Every conn dies within a few rounds: even an idle agent sees two
	// operations (tick send + status recv) per round.
	for id, conn := range h.Conns() {
		h.Conns()[id] = NewFaultConn(conn, FaultConfig{CloseAfter: 8 + id})
	}
	jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 16, Steps: steps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(chaosConfig(steps), h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run()
	if err != nil {
		t.Fatalf("total agent loss must not abort the run: %v", err)
	}
	h.Close()
	if res.DeadAgents != 4 {
		t.Fatalf("DeadAgents = %d, want 4 (result %+v)", res.DeadAgents, res)
	}
	if got := h.Cluster().NumVMs(); got != 0 {
		t.Fatalf("NumVMs = %d, want 0 (no PM left to host anything)", got)
	}
	if got := len(h.Cluster().PMs()); got != 0 {
		t.Fatalf("inventory = %d PMs, want 0 (all retired)", got)
	}
}

// TestChaosOverTCP exercises the fault-tolerant path over real
// loopback gob/TCP conns. Injected errors only (no drops): an error
// verdict never touches the gob stream, so retries see a clean
// encoder state.
func TestChaosOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP chaos skipped in -short")
	}
	const steps = 20
	placer, evictor := prvmStack(t)
	h, err := LaunchWithFaults(3, TransportTCP, &FaultConfig{
		Seed:    11,
		ErrProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 16, Steps: steps, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(steps)
	cfg.CallTimeout = 0 // errors are synchronous; no deadline needed
	ctrl, err := NewController(cfg, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(); err != nil {
		t.Fatalf("TCP chaos run: %v", err)
	}
	h.Close()
	assertMirrorAgentsConsistent(t, h, ctrl)
}
