package testbed

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pagerankvm/internal/obs"
)

// FaultConfig parameterizes a deterministic fault-injecting Conn
// wrapper. All randomness derives from Seed, so for a fixed seed the
// same controller message sequence hits the same faults — chaos runs
// are reproducible, mirroring how internal/trace fakes workloads.
//
// Drop and delay faults stall the caller until its deadline, so they
// are only useful together with Config.CallTimeout (the -faults flag
// enforces this).
type FaultConfig struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// DropProb is the probability a Send is silently discarded (and a
	// Recv consumes and discards an inbound message).
	DropProb float64
	// ErrProb is the probability a Send or Recv fails immediately with
	// an injected transport error.
	ErrProb float64
	// Delay is the extra latency injected with probability DelayProb.
	Delay time.Duration
	// DelayProb is the probability an operation is delayed by Delay.
	DelayProb float64
	// CloseAfter closes the underlying conn after this many operations
	// (0 disables) — an agent crash at a deterministic point.
	CloseAfter int
	// Obs, when non-nil, counts injected faults under
	// testbed.faults_injected.
	Obs *obs.Observer
}

// active reports whether the config injects anything at all.
func (f FaultConfig) active() bool {
	return f.DropProb > 0 || f.ErrProb > 0 || (f.DelayProb > 0 && f.Delay > 0) || f.CloseAfter > 0
}

// NewFaultConn wraps inner with seeded fault injection. A config that
// injects nothing returns inner unchanged.
func NewFaultConn(inner Conn, cfg FaultConfig) Conn {
	if !cfg.active() {
		return inner
	}
	return &faultConn{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		injected: cfg.Obs.Counter("testbed.faults_injected"),
	}
}

// faultConn injects faults on the controller side of a connection. The
// mutex serializes the RNG and operation counter; the controller
// drives each conn from one goroutine, but Close may race with it.
type faultConn struct {
	inner Conn
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
	ops int

	injected *obs.Counter
}

// verdict is one pre-rolled fault decision.
type verdict struct {
	drop  bool
	err   bool
	delay bool
	close bool
}

// roll draws the fault decisions for one operation under the lock, so
// the consumed randomness per operation is fixed regardless of which
// faults fire.
func (f *faultConn) roll() verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	v := verdict{
		drop:  f.rng.Float64() < f.cfg.DropProb,
		err:   f.rng.Float64() < f.cfg.ErrProb,
		delay: f.rng.Float64() < f.cfg.DelayProb,
		close: f.cfg.CloseAfter > 0 && f.ops > f.cfg.CloseAfter,
	}
	return v
}

func (f *faultConn) apply(v verdict, op string) (handled bool, err error) {
	if v.close {
		f.injected.Inc()
		_ = f.inner.Close()
		return true, fmt.Errorf("testbed: fault: conn closed after %d ops", f.cfg.CloseAfter)
	}
	if v.err {
		f.injected.Inc()
		return true, fmt.Errorf("testbed: fault: injected %s error", op)
	}
	if v.delay {
		f.injected.Inc()
		time.Sleep(f.cfg.Delay)
	}
	return false, nil
}

func (f *faultConn) Send(m Message) error {
	v := f.roll()
	if handled, err := f.apply(v, "send"); handled {
		return err
	}
	if v.drop {
		f.injected.Inc()
		return nil // silently lost in the network
	}
	return f.inner.Send(m)
}

func (f *faultConn) Recv() (Message, error) {
	for {
		v := f.roll()
		if handled, err := f.apply(v, "recv"); handled {
			return Message{}, err
		}
		m, err := f.inner.Recv()
		if err != nil {
			return Message{}, err
		}
		if v.drop {
			f.injected.Inc()
			continue // reply lost in the network; keep waiting
		}
		return m, nil
	}
}

func (f *faultConn) Close() error { return f.inner.Close() }

// SetDeadline passes deadlines through to the wrapped conn, so
// injected delays still respect the caller's call timeout.
func (f *faultConn) SetDeadline(t time.Time) error {
	if d, ok := f.inner.(deadlineSetter); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// ParseFaultSpec parses the -faults flag syntax: comma-separated
// key=value pairs, e.g.
//
//	"seed=7,drop=0.01,err=0.02,delay=5ms,delayprob=0.05,close=500"
//
// Unknown keys are errors; omitted keys stay zero.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("testbed: fault spec %q: want key=value", part)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.DropProb, err = parseProb(val)
		case "err":
			cfg.ErrProb, err = parseProb(val)
		case "delay":
			cfg.Delay, err = time.ParseDuration(val)
		case "delayprob":
			cfg.DelayProb, err = parseProb(val)
		case "close":
			cfg.CloseAfter, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("testbed: fault spec: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("testbed: fault spec %q: %w", part, err)
		}
	}
	return cfg, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}
