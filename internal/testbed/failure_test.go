package testbed

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
)

// assertMirrorAgentsConsistent checks that every surviving agent's own
// job set matches the controller's mirror, and that no job appears on
// two PMs. Call only after Harness.Close (agent state is unsynchronized
// until the loops exit).
func assertMirrorAgentsConsistent(t *testing.T, h *Harness, ctrl *Controller) {
	t.Helper()
	dead := map[int]bool{}
	for _, id := range ctrl.DeadAgents() {
		dead[id] = true
	}
	byPM := map[int][]int{}
	seen := map[int]int{}
	for _, pm := range h.Cluster().PMs() {
		ids := []int{}
		for id := range pm.VMs() {
			ids = append(ids, id)
			seen[id]++
		}
		sort.Ints(ids)
		byPM[pm.ID] = ids
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %d on %d PMs", id, n)
		}
	}
	for _, a := range h.Agents() {
		if dead[a.ID()] {
			continue
		}
		want := byPM[a.ID()]
		if want == nil {
			want = []int{}
		}
		got := a.JobIDs()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("agent %d jobs = %v, mirror says %v", a.ID(), got, want)
		}
	}
}

// TestControllerAgentCrashRecovery kills one agent's transport at a
// deterministic point mid-experiment and checks the controller
// re-places its jobs on surviving PMs instead of aborting.
func TestControllerAgentCrashRecovery(t *testing.T) {
	placer, evictor := prvmStack(t)
	h, err := Launch(3, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	// Agent 1's conn dies after 12 operations — mid-run, after its
	// jobs started and a couple of ticks went through.
	h.Conns()[1] = NewFaultConn(h.Conns()[1], FaultConfig{CloseAfter: 12})

	const steps = 8
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, constJob(i, 1, 0.5, steps, 0, 0))
	}
	ctrl, err := NewController(Config{Steps: steps}, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run()
	if err != nil {
		t.Fatalf("run with crashed agent: %v", err)
	}
	h.Close()

	if res.DeadAgents != 1 {
		t.Fatalf("DeadAgents = %d, want 1 (result %+v)", res.DeadAgents, res)
	}
	if got := ctrl.DeadAgents(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DeadAgents() = %v, want [1]", got)
	}
	if res.Recovered == 0 {
		t.Fatalf("no jobs recovered: %+v", res)
	}
	if res.Lost != 0 {
		t.Fatalf("Lost = %d, want 0 (3 PMs have capacity for 8 wide jobs)", res.Lost)
	}
	if got := h.Cluster().NumVMs(); got != 8 {
		t.Fatalf("NumVMs = %d, want 8 (no job may vanish)", got)
	}
	if got := len(h.Cluster().PMs()); got != 2 {
		t.Fatalf("inventory = %d PMs, want 2 (dead PM retired)", got)
	}
	assertMirrorAgentsConsistent(t, h, ctrl)
}

// flakySends fails the first N sends of selected message kinds, then
// behaves normally — a transient transport fault targeted at specific
// protocol operations.
type flakySends struct {
	Conn
	remaining map[MsgKind]int
}

func (f *flakySends) Send(m Message) error {
	if n := f.remaining[m.Kind]; n > 0 {
		f.remaining[m.Kind] = n - 1
		return fmt.Errorf("flaky: injected %v send error", m.Kind)
	}
	return f.Conn.Send(m)
}

// TestControllerRetriesKillStart injects transient send failures on
// exactly the kill and start operations; bounded retries must mask
// them, yielding a result identical to the fault-free run.
func TestControllerRetriesKillStart(t *testing.T) {
	const steps = 4
	overloadJobs := func() []Job {
		var jobs []Job
		for i := 0; i < 4; i++ {
			jobs = append(jobs, constJob(i, 1, 1.0, steps, 0, 0))
		}
		return jobs
	}
	run := func(flaky bool, o *obs.Observer) Result {
		placer, evictor := prvmStack(t)
		h, err := Launch(2, TransportInMemory)
		if err != nil {
			t.Fatal(err)
		}
		if flaky {
			for id, conn := range h.Conns() {
				h.Conns()[id] = &flakySends{Conn: conn, remaining: map[MsgKind]int{KindKill: 2, KindStart: 2}}
			}
		}
		ctrl, err := NewController(Config{
			Steps:        steps,
			CallRetries:  opt.I(3),
			RetryBackoff: time.Millisecond,
			Obs:          o,
		}, h.Cluster(), placer, evictor, h.Conns(), overloadJobs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctrl.Run()
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
		assertMirrorAgentsConsistent(t, h, ctrl)
		return res
	}
	base := run(false, nil)
	o := obs.New()
	got := run(true, o)
	if got != base {
		t.Fatalf("flaky result %+v differs from fault-free %+v", got, base)
	}
	if base.Migrations == 0 {
		t.Fatal("scenario exercised no kill/start migrations")
	}
	if o.Counter("testbed.retries").Value() == 0 {
		t.Fatal("no retries recorded despite injected send failures")
	}
	if o.Counter("testbed.dead_agents").Value() != 0 {
		t.Fatal("transient faults must not kill agents")
	}
}

// flakyRecv fails every nth receive — the reply-lost case, which
// forces a duplicate request that the agent must answer from its
// dedup cache without re-executing the command.
type flakyRecv struct {
	Conn
	every int
	ops   int
}

func (f *flakyRecv) Recv() (Message, error) {
	f.ops++
	if f.every > 0 && f.ops%f.every == 0 {
		return Message{}, fmt.Errorf("flaky: injected recv error")
	}
	return f.Conn.Recv()
}

// TestControllerRetriesLostReplies drops replies (recv errors) across
// the whole run; at-most-once retries must keep the result identical
// to the fault-free run.
func TestControllerRetriesLostReplies(t *testing.T) {
	const steps = 4
	run := func(every int) Result {
		placer, evictor := prvmStack(t)
		h, err := Launch(2, TransportInMemory)
		if err != nil {
			t.Fatal(err)
		}
		if every > 0 {
			for id, conn := range h.Conns() {
				h.Conns()[id] = &flakyRecv{Conn: conn, every: every}
			}
		}
		var jobs []Job
		for i := 0; i < 4; i++ {
			jobs = append(jobs, constJob(i, 1, 1.0, steps, 0, 0))
		}
		ctrl, err := NewController(Config{
			Steps:        steps,
			CallRetries:  opt.I(3),
			RetryBackoff: time.Millisecond,
		}, h.Cluster(), placer, evictor, h.Conns(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctrl.Run()
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
		assertMirrorAgentsConsistent(t, h, ctrl)
		return res
	}
	base := run(0)
	for _, every := range []int{5, 7} {
		if got := run(every); got != base {
			t.Fatalf("recv-fail every %d: result %+v differs from fault-free %+v", every, got, base)
		}
	}
}

// TestControllerLostJobAccounting drives the failed-migration restart
// path to the point where the restart slot vanishes, and checks the
// job is counted in Result.Lost rather than silently dropped.
func TestControllerLostJobAccounting(t *testing.T) {
	placer, evictor := prvmStack(t)
	h, err := Launch(1, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		constJob(0, 1, 1.0, 4, 0, 0),
		constJob(1, 1, 1.0, 4, 0, 0),
		constJob(2, 1, 1.0, 4, 0, 0),
		constJob(3, 1, 1.0, 4, 0, 0),
	}
	ctrl, err := NewController(Config{Steps: 4}, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	// Round 0: the packed PM overloads, the victim has nowhere to go
	// (single PM) and restarts on the source.
	if err := ctrl.round(0, &res); err != nil {
		t.Fatal(err)
	}
	if res.FailedMoves != 1 || res.Lost != 0 {
		t.Fatalf("round 0: FailedMoves=%d Lost=%d, want 1/0", res.FailedMoves, res.Lost)
	}
	if got := h.Cluster().NumVMs(); got != 4 {
		t.Fatalf("round 0: NumVMs = %d, want 4 (victim restarted on source)", got)
	}
	// Sabotage the restart: without a demand entry for the PM type,
	// neither Place nor the source re-assignment can produce an
	// assignment after the kill.
	for i := range jobs {
		delete(jobs[i].VM.Req, PMType)
	}
	if err := ctrl.round(1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 {
		t.Fatalf("round 1: Lost = %d, want 1 (restart slot vanished)", res.Lost)
	}
	if got := h.Cluster().NumVMs(); got != 3 {
		t.Fatalf("round 1: NumVMs = %d, want 3", got)
	}
	ctrl.shutdown()
	h.Close()
}

// bogusEvictor names a victim the controller's job table does not
// know — the jobVM-returns-nil hazard.
type bogusEvictor struct{}

func (bogusEvictor) Name() string { return "bogus" }
func (bogusEvictor) SelectVictim(pm *placement.PM, overloaded []int) (int, bool) {
	return 9999, true
}

// TestControllerUnknownVictimGuard checks an evictor returning an
// unknown job id is survived: no kill, no panic, no lost job.
func TestControllerUnknownVictimGuard(t *testing.T) {
	placer, _ := prvmStack(t)
	h, err := Launch(1, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 3
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, constJob(i, 1, 1.0, steps, 0, 0))
	}
	ctrl, err := NewController(Config{Steps: steps}, h.Cluster(), placer, bogusEvictor{}, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if res.Lost != 0 || res.Migrations != 0 {
		t.Fatalf("unknown victim must be a no-op, got %+v", res)
	}
	if got := h.Cluster().NumVMs(); got != 4 {
		t.Fatalf("NumVMs = %d, want 4", got)
	}
}

// TestControllerShutdownOnRoundError checks a fatal round error still
// shuts the agents down — Harness.Close would hang forever on leaked
// agent loops otherwise.
func TestControllerShutdownOnRoundError(t *testing.T) {
	placer, evictor := prvmStack(t)
	h, err := Launch(2, TransportInMemory)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{constJob(0, 0, 0.5, 4, 0, 0)}
	// A config naming a nonexistent resource group makes the first
	// status handling fail fatally.
	ctrl, err := NewController(Config{Steps: 4, CPUGroup: "nope"}, h.Cluster(), placer, evictor, h.Conns(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Run(); err == nil {
		t.Fatal("expected a fatal round error")
	}
	done := make(chan struct{})
	go func() {
		h.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Harness.Close hung: agents leaked after a failed round")
	}
}

// TestFaultToleranceOffPath checks that enabling the fault-tolerance
// knobs without any fault changes nothing: the result is identical to
// the default deterministic seeded run.
func TestFaultToleranceOffPath(t *testing.T) {
	const steps = 30
	run := func(cfg Config) Result {
		placer, evictor := prvmStack(t)
		jobs, err := GenJobs(NewJobVM, JobConfig{NumJobs: 20, Steps: steps, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Steps = steps
		h, err := Launch(2, TransportInMemory)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewController(cfg, h.Cluster(), placer, evictor, h.Conns(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctrl.Run()
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
		return res
	}
	base := run(Config{})
	tuned := run(Config{
		CallTimeout:  time.Second,
		CallRetries:  opt.I(5),
		RetryBackoff: time.Millisecond,
	})
	if base != tuned {
		t.Fatalf("fault-tolerance knobs changed a fault-free run:\nbase  %+v\ntuned %+v", base, tuned)
	}
}
