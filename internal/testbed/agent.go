package testbed

import (
	"fmt"
	"sort"

	"pagerankvm/internal/resource"
)

// Agent emulates one PM instance: it hosts jobs, computes its actual
// per-dimension load from their traces on request, and applies
// start/kill commands. It owns its state; the controller only sees
// what the agent reports.
type Agent struct {
	id    int
	shape *resource.Shape
	conn  Conn
	jobs  map[int]JobSpec
	done  chan struct{}

	// lastSeq/lastReply implement at-most-once command execution: a
	// retried request (same Seq as the last one handled) is answered
	// from the cached reply instead of re-executed, so a kill or start
	// whose reply was lost in the network is not applied twice.
	lastSeq   uint64
	lastReply Message
}

// NewAgent builds an agent for one emulated PM.
func NewAgent(id int, shape *resource.Shape, conn Conn) *Agent {
	return &Agent{
		id:    id,
		shape: shape,
		conn:  conn,
		jobs:  make(map[int]JobSpec),
		done:  make(chan struct{}),
	}
}

// Start launches the agent loop in its own goroutine. The loop exits
// on a shutdown message or transport failure; Wait blocks until then.
func (a *Agent) Start() {
	go func() {
		defer close(a.done)
		a.loop()
	}()
}

// Wait blocks until the agent loop has exited.
func (a *Agent) Wait() { <-a.done }

func (a *Agent) loop() {
	for {
		msg, err := a.conn.Recv() //prvmlint:allow deadlinecall — blocks for the next command by design; controller Shutdown or conn Close unblocks it
		if err != nil {
			return
		}
		if msg.Seq != 0 && msg.Seq == a.lastSeq {
			// Duplicate of the last handled request: the reply was lost
			// and the controller retried. Resend the cached reply
			// without re-executing the command.
			a.send(a.lastReply)
			continue
		}
		switch msg.Kind {
		case KindTick:
			a.reply(msg, Message{Kind: KindStatus, Status: a.status(msg.Step)})
		case KindStart:
			if err := a.start(msg.Job); err != nil {
				a.reply(msg, Message{Kind: KindError, Err: err.Error()})
				continue
			}
			a.reply(msg, Message{Kind: KindOK})
		case KindKill:
			if _, ok := a.jobs[msg.JobID]; !ok {
				a.reply(msg, Message{Kind: KindError, Err: fmt.Sprintf("agent %d: no job %d", a.id, msg.JobID)})
				continue
			}
			delete(a.jobs, msg.JobID)
			a.reply(msg, Message{Kind: KindOK})
		case KindShutdown:
			a.reply(msg, Message{Kind: KindOK})
			return
		default:
			a.reply(msg, Message{Kind: KindError, Err: fmt.Sprintf("agent %d: unexpected %v", a.id, msg.Kind)})
		}
	}
}

// reply answers req with m, echoing the request's sequence number and
// caching the reply for duplicate suppression.
func (a *Agent) reply(req Message, m Message) {
	m.Seq = req.Seq
	if req.Seq != 0 {
		a.lastSeq, a.lastReply = req.Seq, m
	}
	a.send(m)
}

func (a *Agent) send(m Message) {
	// A failed reply means the controller is gone; the next Recv will
	// fail and end the loop.
	_ = a.conn.Send(m) //prvmlint:allow deadlinecall — reply on the controller-owned conn; the controller's per-call deadline bounds it
}

// start validates the assignment against local state — capacity and
// per-job anti-collocation — before accepting the job. The controller
// is supposed to send only valid assignments; the agent checking them
// anyway is what catches controller/agent state divergence.
func (a *Agent) start(job *JobSpec) error {
	if job == nil {
		return fmt.Errorf("agent %d: start without job", a.id)
	}
	if _, dup := a.jobs[job.ID]; dup {
		return fmt.Errorf("agent %d: job %d already running", a.id, job.ID)
	}
	used := a.used()
	caps := a.shape.Capacity()
	seen := make(map[int]bool, len(job.Assign))
	for _, du := range job.Assign {
		if du.Dim < 0 || du.Dim >= a.shape.NumDims() {
			return fmt.Errorf("agent %d: job %d dim %d out of range", a.id, job.ID, du.Dim)
		}
		if seen[du.Dim] {
			return fmt.Errorf("agent %d: job %d violates anti-collocation on dim %d", a.id, job.ID, du.Dim)
		}
		seen[du.Dim] = true
		if used[du.Dim]+du.Units > caps[du.Dim] {
			return fmt.Errorf("agent %d: job %d overflows dim %d", a.id, job.ID, du.Dim)
		}
	}
	a.jobs[job.ID] = *job
	return nil
}

// JobIDs returns the ids of the jobs the agent hosts, sorted. Only
// safe once the agent loop has exited (after Wait); tests use it to
// check the controller's mirror against the agent's own state.
func (a *Agent) JobIDs() []int {
	ids := make([]int, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ID returns the agent's PM id.
func (a *Agent) ID() int { return a.id }

func (a *Agent) used() resource.Vec {
	v := a.shape.Zero()
	for _, job := range a.jobs {
		for _, du := range job.Assign {
			v[du.Dim] += du.Units
		}
	}
	return v
}

// status computes the actual load at a step from the hosted jobs'
// traces.
func (a *Agent) status(step int) *Status {
	load := make([]float64, a.shape.NumDims())
	ids := make([]int, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Accumulate in sorted job order: float addition is not
	// associative, so map-order sums would report a load that differs
	// bit-for-bit between identical runs.
	for _, id := range ids {
		job := a.jobs[id]
		u := traceAt(job.Trace, step)
		for _, du := range job.Assign {
			load[du.Dim] += float64(du.Units) * u
		}
	}
	return &Status{AgentID: a.id, Step: step, Load: load, Jobs: ids}
}

func traceAt(t []float64, step int) float64 {
	if len(t) == 0 {
		return 0
	}
	if step < 0 {
		step = 0
	}
	if step >= len(t) {
		step = len(t) - 1
	}
	return t[step]
}
