package testbed

import (
	"errors"
	"fmt"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// Job is one workload unit submitted to the testbed: an emulated VM
// with a lease window, as in the paper's GENI experiment (jobs run on
// instances; killing and continuing a job on another instance emulates
// VM migration).
type Job struct {
	VM    *placement.VM
	Trace trace.Series
	// Start is the arrival step; End (exclusive) is the departure
	// step, 0 meaning "runs to the end of the experiment".
	Start int
	End   int
}

// Config parameterizes a testbed run.
type Config struct {
	// Steps is the number of control intervals (paper: 4 h at 10 s
	// per interval = 1440).
	Steps int
	// OverloadThreshold mirrors the simulator's 90% per-dimension
	// rule; nil selects 0.90 (set with opt.F).
	OverloadThreshold *float64
	// CPUGroup names the trace-driven group; default "cpu".
	CPUGroup string
	// Obs, when non-nil, records controller telemetry: per-request
	// control-protocol latency and transport errors (testbed.*).
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 1440
	}
	if c.OverloadThreshold == nil {
		c.OverloadThreshold = opt.F(0.90)
	}
	if c.CPUGroup == "" {
		c.CPUGroup = "cpu"
	}
	return c
}

// Result mirrors the metrics of the paper's Figures 4 and 8.
type Result struct {
	PMsUsed         int
	Migrations      int
	FailedMoves     int
	Rejected        int
	SLOViolationPct float64
	ActivePMSteps   int
	ViolatedPMSteps int
	OverloadEvents  int
}

// Controller is the centralized scheduler of the emulated testbed. It
// keeps a local mirror of every agent's assignments (a
// placement.Cluster), drives lock-step rounds, and reacts to the
// loads the agents report.
type Controller struct {
	cfg     Config
	cluster *placement.Cluster
	placer  placement.Placer
	evictor placement.Evictor
	conns   map[int]Conn // pm id -> conn
	jobs    []Job
	traces  map[int]trace.Series
	met     controllerMetrics
}

// controllerMetrics pre-resolves the controller's instruments; all nil
// without Config.Obs.
type controllerMetrics struct {
	calls           *obs.Counter   // testbed.calls
	transportErrors *obs.Counter   // testbed.transport_errors
	migrations      *obs.Counter   // testbed.migrations
	failedMoves     *obs.Counter   // testbed.failed_moves
	callSeconds     *obs.Histogram // testbed.call_seconds
}

func newControllerMetrics(o *obs.Observer) controllerMetrics {
	return controllerMetrics{
		calls:           o.Counter("testbed.calls"),
		transportErrors: o.Counter("testbed.transport_errors"),
		migrations:      o.Counter("testbed.migrations"),
		failedMoves:     o.Counter("testbed.failed_moves"),
		callSeconds:     o.Histogram("testbed.call_seconds", nil),
	}
}

// NewController assembles a controller. The cluster's PMs must match
// the agents one-to-one by id.
func NewController(cfg Config, cluster *placement.Cluster, placer placement.Placer,
	evictor placement.Evictor, conns map[int]Conn, jobs []Job) (*Controller, error) {
	if cluster == nil || placer == nil || evictor == nil {
		return nil, errors.New("testbed: cluster, placer and evictor are required")
	}
	cfg = cfg.withDefaults()
	for _, pm := range cluster.PMs() {
		if _, ok := conns[pm.ID]; !ok {
			return nil, fmt.Errorf("testbed: no agent connection for pm %d", pm.ID)
		}
	}
	c := &Controller{
		cfg:     cfg,
		cluster: cluster,
		placer:  placer,
		evictor: evictor,
		conns:   conns,
		jobs:    jobs,
		traces:  make(map[int]trace.Series, len(jobs)),
		met:     newControllerMetrics(cfg.Obs),
	}
	for _, j := range jobs {
		if j.VM == nil {
			return nil, errors.New("testbed: job without VM")
		}
		if _, dup := c.traces[j.VM.ID]; dup {
			return nil, fmt.Errorf("testbed: duplicate job id %d", j.VM.ID)
		}
		c.traces[j.VM.ID] = j.Trace
	}
	return c, nil
}

// Run drives the experiment and shuts the agents down afterwards.
func (c *Controller) Run() (Result, error) {
	var res Result
	for step := 0; step < c.cfg.Steps; step++ {
		if err := c.round(step, &res); err != nil {
			return res, err
		}
	}
	res.PMsUsed = c.cluster.MaxUsed
	if res.ActivePMSteps > 0 {
		res.SLOViolationPct = 100 * float64(res.ViolatedPMSteps) / float64(res.ActivePMSteps)
	}
	if err := c.shutdown(); err != nil {
		return res, err
	}
	return res, nil
}

func (c *Controller) round(step int, res *Result) error {
	// Departures then arrivals, mirroring the simulator's order.
	for _, j := range c.jobs {
		if j.End == step && j.End > 0 {
			if _, placed := c.cluster.Locate(j.VM.ID); placed {
				if err := c.kill(j.VM.ID); err != nil {
					return err
				}
			}
		}
	}
	for i := range c.jobs {
		j := &c.jobs[i]
		if j.Start != step {
			continue
		}
		pm, assign, err := c.placer.Place(c.cluster, j.VM, nil)
		if errors.Is(err, placement.ErrNoCapacity) {
			res.Rejected++
			continue
		}
		if err != nil {
			return fmt.Errorf("testbed: place job %d: %w", j.VM.ID, err)
		}
		if err := c.startOn(pm, j.VM, assign); err != nil {
			return err
		}
	}

	// Tick every active agent and react to the reported loads.
	active := append([]*placement.PM(nil), c.cluster.UsedPMs()...)
	for _, pm := range active {
		if !pm.Active() {
			continue
		}
		status, err := c.tick(pm.ID, step)
		if err != nil {
			return err
		}
		if err := c.handleStatus(pm, status, step, res); err != nil {
			return err
		}
	}
	return nil
}

func (c *Controller) handleStatus(pm *placement.PM, status *Status, step int, res *Result) error {
	gi := pm.Shape.GroupIndex(c.cfg.CPUGroup)
	if gi < 0 {
		return fmt.Errorf("testbed: pm %d has no group %q", pm.ID, c.cfg.CPUGroup)
	}
	lo, hi := pm.Shape.GroupRange(gi)
	capUnits := float64(pm.Shape.Group(gi).Cap)

	res.ActivePMSteps++
	violated := false
	var overloadedDims []int
	for d := lo; d < hi; d++ {
		if status.Load[d] >= capUnits-1e-9 {
			violated = true
		}
		if status.Load[d] > (*c.cfg.OverloadThreshold)*capUnits {
			overloadedDims = append(overloadedDims, d)
		}
	}
	if violated {
		res.ViolatedPMSteps++
	}
	if len(overloadedDims) == 0 {
		return nil
	}
	res.OverloadEvents++

	// Kill one job and continue it elsewhere — the paper's testbed
	// migration. One victim per round keeps the control loop simple;
	// a still-overloaded PM is handled again next round.
	victimID, ok := c.evictor.SelectVictim(pm, overloadedDims)
	if !ok {
		return nil
	}
	if err := c.kill(victimID); err != nil {
		return err
	}
	vm := c.jobVM(victimID)
	dest, assign, err := c.placer.Place(c.cluster, vm, pm)
	if err != nil {
		// Nowhere to continue the job: restart it on the source.
		res.FailedMoves++
		c.met.failedMoves.Inc()
		if assign := c.sourceAssign(pm, vm); assign != nil {
			return c.startOn(pm, vm, assign)
		}
		return nil
	}
	if err := c.startOn(dest, vm, assign); err != nil {
		return err
	}
	res.Migrations++
	c.met.migrations.Inc()
	return nil
}

func (c *Controller) jobVM(id int) *placement.VM {
	for i := range c.jobs {
		if c.jobs[i].VM.ID == id {
			return c.jobs[i].VM
		}
	}
	return nil
}

func (c *Controller) sourceAssign(pm *placement.PM, vm *placement.VM) resource.Assignment {
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		return nil
	}
	return resource.GreedyAssign(pm.Shape, pm.Used(), demand)
}

// startOn updates the mirror and instructs the agent.
func (c *Controller) startOn(pm *placement.PM, vm *placement.VM, assign resource.Assignment) error {
	if err := c.cluster.Host(pm, vm, assign); err != nil {
		return fmt.Errorf("testbed: host job %d on pm %d: %w", vm.ID, pm.ID, err)
	}
	reply, err := c.call(pm.ID, Message{Kind: KindStart, Job: &JobSpec{
		ID:     vm.ID,
		Assign: assign,
		Trace:  c.traces[vm.ID],
	}})
	if err != nil {
		return err
	}
	if reply.Kind != KindOK {
		return fmt.Errorf("testbed: agent %d rejected job %d: %s", pm.ID, vm.ID, reply.Err)
	}
	return nil
}

// kill removes the job from the mirror and the agent.
func (c *Controller) kill(jobID int) error {
	pm, ok := c.cluster.Locate(jobID)
	if !ok {
		return fmt.Errorf("testbed: job %d not placed", jobID)
	}
	if _, err := c.cluster.Release(jobID); err != nil {
		return err
	}
	reply, err := c.call(pm.ID, Message{Kind: KindKill, JobID: jobID})
	if err != nil {
		return err
	}
	if reply.Kind != KindOK {
		return fmt.Errorf("testbed: agent %d kill job %d: %s", pm.ID, jobID, reply.Err)
	}
	return nil
}

func (c *Controller) tick(pmID, step int) (*Status, error) {
	reply, err := c.call(pmID, Message{Kind: KindTick, Step: step})
	if err != nil {
		return nil, err
	}
	if reply.Kind != KindStatus || reply.Status == nil {
		return nil, fmt.Errorf("testbed: agent %d bad tick reply %v", pmID, reply.Kind)
	}
	return reply.Status, nil
}

func (c *Controller) call(pmID int, m Message) (Message, error) {
	conn := c.conns[pmID]
	c.met.calls.Inc()
	if c.met.callSeconds == nil {
		return c.roundTrip(conn, m)
	}
	start := time.Now()
	reply, err := c.roundTrip(conn, m)
	c.met.callSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		c.met.transportErrors.Inc()
	}
	return reply, err
}

func (c *Controller) roundTrip(conn Conn, m Message) (Message, error) {
	if err := conn.Send(m); err != nil {
		return Message{}, err
	}
	return conn.Recv()
}

func (c *Controller) shutdown() error {
	for _, pm := range c.cluster.PMs() {
		reply, err := c.call(pm.ID, Message{Kind: KindShutdown})
		if err != nil {
			return err
		}
		if reply.Kind != KindOK {
			return fmt.Errorf("testbed: agent %d shutdown: %s", pm.ID, reply.Err)
		}
	}
	return nil
}
