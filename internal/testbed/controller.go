package testbed

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/trace"
)

// Job is one workload unit submitted to the testbed: an emulated VM
// with a lease window, as in the paper's GENI experiment (jobs run on
// instances; killing and continuing a job on another instance emulates
// VM migration).
type Job struct {
	VM    *placement.VM
	Trace trace.Series
	// Start is the arrival step; End (exclusive) is the departure
	// step, 0 meaning "runs to the end of the experiment".
	Start int
	End   int
}

// DefaultCallRetries is how many times a failed call is retried before
// the agent is declared dead.
const DefaultCallRetries = 2

// DefaultRetryBackoff is the initial backoff before the first retry;
// it doubles on each subsequent retry.
const DefaultRetryBackoff = 2 * time.Millisecond

// Config parameterizes a testbed run.
type Config struct {
	// Steps is the number of control intervals (paper: 4 h at 10 s
	// per interval = 1440).
	Steps int
	// OverloadThreshold mirrors the simulator's 90% per-dimension
	// rule; nil selects 0.90 (set with opt.F).
	OverloadThreshold *float64
	// CPUGroup names the trace-driven group; default "cpu".
	CPUGroup string
	// CallTimeout bounds one control-protocol round trip (request plus
	// reply). Zero disables deadlines — safe for the in-memory
	// transport without fault injection, where an agent always
	// answers. Drop or delay faults require a timeout to be detected.
	CallTimeout time.Duration
	// CallRetries is how many times a failed round trip is retried
	// (with exponential backoff) before the agent is declared dead;
	// nil selects DefaultCallRetries. Set with opt.I — zero means fail
	// fast on the first error.
	CallRetries *int
	// RetryBackoff is the sleep before the first retry, doubling per
	// subsequent retry; 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Obs, when non-nil, records controller telemetry: per-request
	// control-protocol latency, transport errors, retries, timeouts,
	// dead agents and recovery placements (testbed.*).
	Obs *obs.Observer
	// Recorder, when non-nil, appends "testbed.round" spans (one per
	// control interval, labelled with the step index) and a closing
	// "testbed.run" span to the decision recording. Attach the same
	// recorder to the placer (placement.WithRecorder) for the decision
	// stream itself.
	Recorder *record.Recorder
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 1440
	}
	if c.OverloadThreshold == nil {
		c.OverloadThreshold = opt.F(0.90)
	}
	if c.CPUGroup == "" {
		c.CPUGroup = "cpu"
	}
	if c.CallRetries == nil {
		c.CallRetries = opt.I(DefaultCallRetries)
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Result mirrors the metrics of the paper's Figures 4 and 8, plus the
// fault-tolerance accounting of the emulated control plane.
type Result struct {
	PMsUsed         int
	Migrations      int
	FailedMoves     int
	Rejected        int
	SLOViolationPct float64
	ActivePMSteps   int
	ViolatedPMSteps int
	OverloadEvents  int
	// DeadAgents counts agents declared dead after exhausting call
	// retries; their PMs are retired from the mirror.
	DeadAgents int
	// Recovered counts jobs re-placed onto surviving PMs after their
	// agent died.
	Recovered int
	// Lost counts jobs that could not be recovered — no surviving PM
	// had capacity, an agent rejected the recovery start, or a failed
	// migration's restart slot vanished.
	Lost int
}

// Controller is the centralized scheduler of the emulated testbed. It
// keeps a local mirror of every agent's assignments (a
// placement.Cluster), drives lock-step rounds, and reacts to the
// loads the agents report. Agents that stop answering (after bounded
// retries) are declared dead: their mirror VMs are re-placed onto
// surviving PMs via the configured placer and the run continues.
type Controller struct {
	cfg     Config
	cluster *placement.Cluster
	placer  placement.Placer
	evictor placement.Evictor
	conns   map[int]Conn // pm id -> conn
	jobs    []Job
	traces  map[int]trace.Series
	met     controllerMetrics

	pms  []*placement.PM // inventory order, stable across retires
	seqs map[int]uint64  // pm id -> last issued request sequence
	dead map[int]bool    // pm id -> agent declared dead
}

// controllerMetrics pre-resolves the controller's instruments; all nil
// without Config.Obs.
type controllerMetrics struct {
	calls           *obs.Counter   // testbed.calls
	transportErrors *obs.Counter   // testbed.transport_errors
	retries         *obs.Counter   // testbed.retries
	timeouts        *obs.Counter   // testbed.timeouts
	migrations      *obs.Counter   // testbed.migrations
	failedMoves     *obs.Counter   // testbed.failed_moves
	deadAgents      *obs.Counter   // testbed.dead_agents
	recoveredJobs   *obs.Counter   // testbed.recovered_jobs
	lostJobs        *obs.Counter   // testbed.lost_jobs
	callSeconds     *obs.Histogram // testbed.call_seconds
}

func newControllerMetrics(o *obs.Observer) controllerMetrics {
	return controllerMetrics{
		calls:           o.Counter("testbed.calls"),
		transportErrors: o.Counter("testbed.transport_errors"),
		retries:         o.Counter("testbed.retries"),
		timeouts:        o.Counter("testbed.timeouts"),
		migrations:      o.Counter("testbed.migrations"),
		failedMoves:     o.Counter("testbed.failed_moves"),
		deadAgents:      o.Counter("testbed.dead_agents"),
		recoveredJobs:   o.Counter("testbed.recovered_jobs"),
		lostJobs:        o.Counter("testbed.lost_jobs"),
		callSeconds:     o.Histogram("testbed.call_seconds", nil),
	}
}

// agentDownError marks a call that exhausted its retries: the agent is
// unreachable and the caller should trigger dead-agent recovery rather
// than abort the run.
type agentDownError struct {
	pm  int
	err error
}

func (e *agentDownError) Error() string {
	return fmt.Sprintf("testbed: agent %d down: %v", e.pm, e.err)
}

func (e *agentDownError) Unwrap() error { return e.err }

// NewController assembles a controller. The cluster's PMs must match
// the agents one-to-one by id.
func NewController(cfg Config, cluster *placement.Cluster, placer placement.Placer,
	evictor placement.Evictor, conns map[int]Conn, jobs []Job) (*Controller, error) {
	if cluster == nil || placer == nil || evictor == nil {
		return nil, errors.New("testbed: cluster, placer and evictor are required")
	}
	cfg = cfg.withDefaults()
	for _, pm := range cluster.PMs() {
		if _, ok := conns[pm.ID]; !ok {
			return nil, fmt.Errorf("testbed: no agent connection for pm %d", pm.ID)
		}
	}
	c := &Controller{
		cfg:     cfg,
		cluster: cluster,
		placer:  placer,
		evictor: evictor,
		conns:   conns,
		jobs:    jobs,
		traces:  make(map[int]trace.Series, len(jobs)),
		met:     newControllerMetrics(cfg.Obs),
		pms:     append([]*placement.PM(nil), cluster.PMs()...),
		seqs:    make(map[int]uint64, len(conns)),
		dead:    make(map[int]bool),
	}
	for _, j := range jobs {
		if j.VM == nil {
			return nil, errors.New("testbed: job without VM")
		}
		if _, dup := c.traces[j.VM.ID]; dup {
			return nil, fmt.Errorf("testbed: duplicate job id %d", j.VM.ID)
		}
		c.traces[j.VM.ID] = j.Trace
	}
	return c, nil
}

// DeadAgents returns the ids of agents declared dead, sorted.
func (c *Controller) DeadAgents() []int {
	ids := make([]int, 0, len(c.dead))
	for id := range c.dead {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Run drives the experiment and shuts the agents down afterwards.
// Shutdown is best-effort and runs on every exit path, so a failed
// round never leaks live agent goroutines.
func (c *Controller) Run() (Result, error) {
	var res Result
	defer c.shutdown()
	rec := c.cfg.Recorder.Active()
	var runStart time.Time
	if rec {
		runStart = time.Now()
	}
	for step := 0; step < c.cfg.Steps; step++ {
		var roundStart time.Time
		if rec {
			roundStart = time.Now()
		}
		if err := c.round(step, &res); err != nil {
			return res, err
		}
		if rec {
			c.cfg.Recorder.RecordSpan("testbed.round", time.Since(roundStart).Nanoseconds(),
				map[string]string{"step": strconv.Itoa(step)})
		}
	}
	if rec {
		c.cfg.Recorder.RecordSpan("testbed.run", time.Since(runStart).Nanoseconds(),
			map[string]string{"steps": strconv.Itoa(c.cfg.Steps)})
	}
	res.PMsUsed = c.cluster.MaxUsed
	if res.ActivePMSteps > 0 {
		res.SLOViolationPct = 100 * float64(res.ViolatedPMSteps) / float64(res.ActivePMSteps)
	}
	return res, nil
}

func (c *Controller) round(step int, res *Result) error {
	// Departures then arrivals, mirroring the simulator's order.
	for _, j := range c.jobs {
		if j.End == step && j.End > 0 {
			if _, placed := c.cluster.Locate(j.VM.ID); placed {
				if err := c.kill(j.VM.ID); err != nil {
					// The job was departing anyway; a dead agent here
					// only orphans the PM's other jobs.
					if !c.recoverIfDown(err, res) {
						return err
					}
				}
			}
		}
	}
	for i := range c.jobs {
		j := &c.jobs[i]
		if j.Start != step {
			continue
		}
		pm, assign, err := c.placer.Place(c.cluster, j.VM, nil)
		if errors.Is(err, placement.ErrNoCapacity) {
			res.Rejected++
			continue
		}
		if err != nil {
			return fmt.Errorf("testbed: place job %d: %w", j.VM.ID, err)
		}
		if err := c.startOn(pm, j.VM, assign); err != nil {
			// Recovery re-places the arriving job together with the
			// dead agent's other mirror VMs.
			if !c.recoverIfDown(err, res) {
				return err
			}
		}
	}

	// Tick every active agent and react to the reported loads.
	active := append([]*placement.PM(nil), c.cluster.UsedPMs()...)
	for _, pm := range active {
		if c.dead[pm.ID] || !pm.Active() {
			continue
		}
		status, err := c.tick(pm.ID, step)
		if err != nil {
			if !c.recoverIfDown(err, res) {
				return err
			}
			continue
		}
		if err := c.handleStatus(pm, status, step, res); err != nil {
			if !c.recoverIfDown(err, res) {
				return err
			}
		}
	}
	return nil
}

func (c *Controller) handleStatus(pm *placement.PM, status *Status, step int, res *Result) error {
	gi := pm.Shape.GroupIndex(c.cfg.CPUGroup)
	if gi < 0 {
		return fmt.Errorf("testbed: pm %d has no group %q", pm.ID, c.cfg.CPUGroup)
	}
	lo, hi := pm.Shape.GroupRange(gi)
	capUnits := float64(pm.Shape.Group(gi).Cap)

	res.ActivePMSteps++
	violated := false
	var overloadedDims []int
	for d := lo; d < hi; d++ {
		if status.Load[d] >= capUnits-1e-9 {
			violated = true
		}
		if status.Load[d] > (*c.cfg.OverloadThreshold)*capUnits {
			overloadedDims = append(overloadedDims, d)
		}
	}
	if violated {
		res.ViolatedPMSteps++
	}
	if len(overloadedDims) == 0 {
		return nil
	}
	res.OverloadEvents++

	// Kill one job and continue it elsewhere — the paper's testbed
	// migration. One victim per round keeps the control loop simple;
	// a still-overloaded PM is handled again next round.
	victimID, ok := c.evictor.SelectVictim(pm, overloadedDims)
	if !ok {
		return nil
	}
	vm := c.jobVM(victimID)
	if vm == nil {
		// The mirror names a victim the job table does not know: skip
		// the migration rather than killing a job we cannot restart.
		return nil
	}
	if err := c.kill(victimID); err != nil {
		var down *agentDownError
		if errors.As(err, &down) {
			// The victim was already released from the mirror by kill;
			// recover it alongside the dead agent's remaining jobs.
			c.recoverAgent(down, res)
			c.replaceVMs([]*placement.VM{vm}, res)
			return nil
		}
		return err
	}
	dest, assign, err := c.placer.Place(c.cluster, vm, pm)
	if err != nil {
		// Nowhere to continue the job: restart it on the source.
		res.FailedMoves++
		c.met.failedMoves.Inc()
		if assign := c.sourceAssign(pm, vm); assign != nil {
			if err := c.startOn(pm, vm, assign); err != nil {
				if !c.recoverIfDown(err, res) {
					return err
				}
			}
			return nil
		}
		// The restart slot vanished: the job is gone from both mirror
		// and agent, so account it instead of dropping it silently.
		res.Lost++
		c.met.lostJobs.Inc()
		return nil
	}
	if err := c.startOn(dest, vm, assign); err != nil {
		if !c.recoverIfDown(err, res) {
			return err
		}
		return nil
	}
	res.Migrations++
	c.met.migrations.Inc()
	return nil
}

// recoverIfDown converts an agent-down error into recovery (and
// reports true); any other error is the caller's to propagate.
func (c *Controller) recoverIfDown(err error, res *Result) bool {
	var down *agentDownError
	if !errors.As(err, &down) {
		return false
	}
	c.recoverAgent(down, res)
	return true
}

// recoverAgent handles a dead agent: its mirror VMs are released, the
// PM is retired, and the orphaned jobs are re-placed onto surviving
// PMs via the configured placer (Algorithm 2 under PageRankVM).
func (c *Controller) recoverAgent(down *agentDownError, res *Result) {
	c.replaceVMs(c.markDead(down.pm, res), res)
}

// markDead declares pm's agent dead: the conn is closed (fencing the
// agent if it is merely slow), the mirror VMs are released and the PM
// is retired from the cluster. Returns the orphaned VMs in ascending
// id order; nil if the agent was already dead.
func (c *Controller) markDead(pmID int, res *Result) []*placement.VM {
	if c.dead[pmID] {
		return nil
	}
	c.dead[pmID] = true
	res.DeadAgents++
	c.met.deadAgents.Inc()
	_ = c.conns[pmID].Close()
	var pm *placement.PM
	for _, p := range c.pms {
		if p.ID == pmID {
			pm = p
			break
		}
	}
	if pm == nil {
		return nil
	}
	ids := make([]int, 0, len(pm.VMs()))
	for id := range pm.VMs() {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	orphans := make([]*placement.VM, 0, len(ids))
	for _, id := range ids {
		h, err := c.cluster.Release(id)
		if err != nil {
			continue
		}
		orphans = append(orphans, h.VM)
	}
	_ = c.cluster.Retire(pm)
	return orphans
}

// replaceVMs re-places orphaned jobs onto surviving PMs, counting each
// success as Recovered and each failure as Lost. A destination agent
// dying mid-recovery enqueues its own orphans.
func (c *Controller) replaceVMs(queue []*placement.VM, res *Result) {
	for len(queue) > 0 {
		vm := queue[0]
		queue = queue[1:]
		pm, assign, err := c.placer.Place(c.cluster, vm, nil)
		if err != nil {
			res.Lost++
			c.met.lostJobs.Inc()
			continue
		}
		if err := c.startOn(pm, vm, assign); err != nil {
			var down *agentDownError
			if errors.As(err, &down) {
				// The destination died too; its orphans (including vm,
				// hosted just before the failed call) rejoin the queue.
				queue = append(queue, c.markDead(down.pm, res)...)
				continue
			}
			// The agent rejected the recovery start: mirror rolled back
			// by startOn, job unrecoverable.
			res.Lost++
			c.met.lostJobs.Inc()
			continue
		}
		res.Recovered++
		c.met.recoveredJobs.Inc()
	}
}

func (c *Controller) jobVM(id int) *placement.VM {
	for i := range c.jobs {
		if c.jobs[i].VM.ID == id {
			return c.jobs[i].VM
		}
	}
	return nil
}

func (c *Controller) sourceAssign(pm *placement.PM, vm *placement.VM) resource.Assignment {
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		return nil
	}
	return resource.GreedyAssign(pm.Shape, pm.Used(), demand)
}

// startOn updates the mirror and instructs the agent. On an agent
// rejection the mirror entry is rolled back before returning, so
// mirror and agent never disagree about a job the agent refused.
func (c *Controller) startOn(pm *placement.PM, vm *placement.VM, assign resource.Assignment) error {
	if err := c.cluster.Host(pm, vm, assign); err != nil {
		return fmt.Errorf("testbed: host job %d on pm %d: %w", vm.ID, pm.ID, err)
	}
	reply, err := c.call(pm.ID, Message{Kind: KindStart, Job: &JobSpec{
		ID:     vm.ID,
		Assign: assign,
		Trace:  c.traces[vm.ID],
	}})
	if err != nil {
		return err
	}
	if reply.Kind != KindOK {
		_, _ = c.cluster.Release(vm.ID)
		return fmt.Errorf("testbed: agent %d rejected job %d: %s", pm.ID, vm.ID, reply.Err)
	}
	return nil
}

// kill removes the job from the mirror and the agent.
func (c *Controller) kill(jobID int) error {
	pm, ok := c.cluster.Locate(jobID)
	if !ok {
		return fmt.Errorf("testbed: job %d not placed", jobID)
	}
	if _, err := c.cluster.Release(jobID); err != nil {
		return err
	}
	reply, err := c.call(pm.ID, Message{Kind: KindKill, JobID: jobID})
	if err != nil {
		return err
	}
	if reply.Kind != KindOK {
		return fmt.Errorf("testbed: agent %d kill job %d: %s", pm.ID, jobID, reply.Err)
	}
	return nil
}

func (c *Controller) tick(pmID, step int) (*Status, error) {
	reply, err := c.call(pmID, Message{Kind: KindTick, Step: step})
	if err != nil {
		return nil, err
	}
	if reply.Kind != KindStatus || reply.Status == nil {
		return nil, fmt.Errorf("testbed: agent %d bad tick reply %v", pmID, reply.Kind)
	}
	return reply.Status, nil
}

// call performs one at-most-once request: the message is stamped with
// a per-connection sequence number and retried with exponential
// backoff on transport failure (the agent answers duplicates from its
// reply cache). Exhausted retries return an *agentDownError.
func (c *Controller) call(pmID int, m Message) (Message, error) {
	if c.dead[pmID] {
		return Message{}, &agentDownError{pm: pmID, err: errors.New("agent already dead")}
	}
	conn := c.conns[pmID]
	c.seqs[pmID]++
	m.Seq = c.seqs[pmID]
	retries := opt.OrInt(c.cfg.CallRetries, DefaultCallRetries)
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			time.Sleep(c.cfg.RetryBackoff << (attempt - 1))
		}
		var reply Message
		reply, err = c.timedRoundTrip(conn, m)
		if err == nil {
			return reply, nil
		}
		c.met.transportErrors.Inc()
		if errors.Is(err, os.ErrDeadlineExceeded) {
			c.met.timeouts.Inc()
		}
	}
	return Message{}, &agentDownError{pm: pmID, err: err}
}

func (c *Controller) timedRoundTrip(conn Conn, m Message) (Message, error) {
	c.met.calls.Inc()
	if c.met.callSeconds == nil {
		return c.roundTrip(conn, m)
	}
	start := time.Now()
	reply, err := c.roundTrip(conn, m)
	c.met.callSeconds.Observe(time.Since(start).Seconds())
	return reply, err
}

// roundTrip sends one request and waits for its reply, arming the
// conn's deadline when CallTimeout is set and discarding stale replies
// left over from abandoned attempts (their Seq is lower).
func (c *Controller) roundTrip(conn Conn, m Message) (Message, error) {
	if c.cfg.CallTimeout > 0 {
		if d, ok := conn.(deadlineSetter); ok {
			_ = d.SetDeadline(time.Now().Add(c.cfg.CallTimeout))
		}
	}
	if err := conn.Send(m); err != nil {
		return Message{}, err
	}
	for {
		reply, err := conn.Recv()
		if err != nil {
			return Message{}, err
		}
		if m.Seq != 0 && reply.Seq < m.Seq {
			continue // stale reply from an earlier timed-out attempt
		}
		return reply, nil
	}
}

// shutdown asks every surviving agent to exit and then closes every
// connection. Best-effort by design: a failed shutdown call only means
// the conn close terminates that agent's loop instead, so Run can
// always invoke it — including on error exits — without leaking agent
// goroutines.
func (c *Controller) shutdown() {
	for _, pm := range c.pms {
		if c.dead[pm.ID] {
			continue
		}
		_, _ = c.call(pm.ID, Message{Kind: KindShutdown})
	}
	for _, conn := range c.conns {
		_ = conn.Close()
	}
}
