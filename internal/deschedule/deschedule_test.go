package deschedule

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// Fixtures mirror the placement package's testbed: one "small" PM type
// with 4 cores of capacity 4 and two VM shapes.

const pmSmall = "small"

func smallShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func smallVMTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
}

func newVM(id int, typeName string) *placement.VM {
	var vt resource.VMType
	for _, t := range smallVMTypes() {
		if t.Name == typeName {
			vt = t
		}
	}
	return &placement.VM{ID: id, Type: typeName, Req: map[string]resource.VMType{pmSmall: vt}}
}

func newCluster(n int) *placement.Cluster {
	shape := smallShape()
	pms := make([]*placement.PM, n)
	for i := range pms {
		pms[i] = placement.NewPM(i, pmSmall, shape)
	}
	return placement.NewCluster(pms)
}

func smallRegistry(t *testing.T) *ranktable.Registry {
	t.Helper()
	table, err := ranktable.NewJoint(smallShape(), smallVMTypes(), ranktable.Options{})
	if err != nil {
		t.Fatalf("NewJoint: %v", err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)
	return reg
}

// mustHost pins a VM onto a specific PM with a greedy assignment.
func mustHost(t *testing.T, c *placement.Cluster, pm *placement.PM, vm *placement.VM) {
	t.Helper()
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		t.Fatalf("vm %d has no demand for pm type %s", vm.ID, pm.Type)
	}
	assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
	if assign == nil {
		t.Fatalf("vm %d does not fit pm %d", vm.ID, pm.ID)
	}
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatal(err)
	}
}

// vmSet snapshots vm id -> hosting PM id for conservation checks.
func vmSet(c *placement.Cluster) map[int]int {
	out := map[int]int{}
	for _, pm := range c.UsedPMs() {
		for id := range pm.VMs() {
			out[id] = pm.ID
		}
	}
	return out
}

func TestDrainPassConsolidates(t *testing.T) {
	c := newCluster(4)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	// Three PMs each hosting one [1,1]: fill 2/16 = 0.125, all under a
	// 0.3 drain threshold. A round must pack them onto fewer PMs.
	for i := 0; i < 3; i++ {
		mustHost(t, c, c.PMs()[i], newVM(i, "[1,1]"))
	}
	before := vmSet(c)

	e := New(p, Config{DrainBelow: 0.3})
	st := e.Rebalance(c)

	if st.DrainMoves == 0 || st.PMsFreed < 1 {
		t.Fatalf("stats %+v: drain pass freed nothing", st)
	}
	if c.NumUsed() >= 3 {
		t.Fatalf("still %d active PMs after drain round", c.NumUsed())
	}
	after := vmSet(c)
	if len(after) != len(before) {
		t.Fatalf("VM count changed: %d -> %d", len(before), len(after))
	}
	for id := range before {
		if _, ok := after[id]; !ok {
			t.Fatalf("vm %d lost during rebalance", id)
		}
	}
}

func TestRebalanceNeverOpensFreshPM(t *testing.T) {
	c := newCluster(6)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	rng := rand.New(rand.NewSource(7))
	id := 0
	for i := 0; i < 4; i++ {
		pm := c.PMs()[i]
		for j := 0; j <= rng.Intn(3); j++ {
			mustHost(t, c, pm, newVM(id, "[1,1]"))
			id++
		}
	}
	used := c.NumUsed()

	e := New(p, Config{DrainBelow: 0.5})
	for round := 0; round < 3; round++ {
		e.Rebalance(c)
		if c.NumUsed() > used {
			t.Fatalf("round %d grew active PMs %d -> %d", round, used, c.NumUsed())
		}
		used = c.NumUsed()
	}
}

func TestRebalanceBudget(t *testing.T) {
	c := newCluster(4)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	for i := 0; i < 3; i++ {
		mustHost(t, c, c.PMs()[i], newVM(i, "[1,1]"))
	}

	e := New(p, Config{DrainBelow: 0.5, MaxMovesPerRound: 1})
	st := e.Rebalance(c)
	if st.Moves > 1 {
		t.Fatalf("budget 1 but %d moves committed", st.Moves)
	}
	if !st.BudgetExhausted {
		t.Fatalf("stats %+v: spent budget not reported", st)
	}
}

func TestDrainIsAllOrNothing(t *testing.T) {
	c := newCluster(3)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	// The drain candidate hosts two VMs but the per-PM cap is 1: a
	// partial drain would strand one VM on a PM that stays powered, so
	// the engine must leave both in place and flag the skipped work.
	src := c.PMs()[0]
	mustHost(t, c, src, newVM(0, "[1,1]"))
	mustHost(t, c, src, newVM(1, "[1,1]"))
	// The destination sits at fill 0.5, above the threshold, so it is
	// never itself a drain candidate.
	mustHost(t, c, c.PMs()[1], newVM(2, "[1,1,1,1]"))
	mustHost(t, c, c.PMs()[1], newVM(3, "[1,1,1,1]"))

	e := New(p, Config{DrainBelow: 0.3, MaxMovesPerPM: 1, MinGainFrac: 1000})
	st := e.Rebalance(c)
	if st.DrainMoves != 0 {
		t.Fatalf("stats %+v: partial drain committed", st)
	}
	if !st.BudgetExhausted {
		t.Fatalf("stats %+v: skipped drain not reported as budget pressure", st)
	}
	if src.NumVMs() != 2 {
		t.Fatalf("source lost VMs: %d left", src.NumVMs())
	}
}

func TestRebalanceSkipsCordonedPM(t *testing.T) {
	c := newCluster(3)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	src := c.PMs()[0]
	mustHost(t, c, src, newVM(0, "[1,1]"))
	mustHost(t, c, c.PMs()[1], newVM(1, "[1,1]"))
	src.SetCordoned(true)

	e := New(p, Config{DrainBelow: 0.9})
	e.Rebalance(c)
	if src.NumVMs() != 1 {
		t.Fatal("cordoned PM was rebalanced; the drain endpoint owns it")
	}
	if !c.PMs()[1].Active() && !src.Active() {
		t.Fatal("both PMs emptied")
	}
}

func TestRebalanceDeterministic(t *testing.T) {
	run := func() ([]Move, string) {
		c := newCluster(8)
		p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(3))
		// Admit 24 mixed VMs through the placer, then release every
		// third to fragment the packing.
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 24; i++ {
			typ := "[1,1]"
			if rng.Intn(3) == 0 {
				typ = "[1,1,1,1]"
			}
			vm := newVM(i, typ)
			pm, assign, err := p.Place(c, vm, nil)
			if err != nil {
				continue
			}
			if err := c.Host(pm, vm, assign); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 24; i += 3 {
			_, _ = c.Release(i)
		}

		var moves []Move
		e := New(p, Config{DrainBelow: 0.4, OnMove: func(m Move) { moves = append(moves, m) }})
		for round := 0; round < 3; round++ {
			e.Rebalance(c)
		}
		// Deterministic fingerprint: the sorted final placement.
		final := vmSet(c)
		ids := make([]int, 0, len(final))
		for id := range final {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fp := ""
		for _, id := range ids {
			fp += fmt.Sprintf("%d:%d;", id, final[id])
		}
		return moves, fp
	}

	m1, fp1 := run()
	m2, fp2 := run()
	if fp1 != fp2 {
		t.Fatalf("final placements diverged:\n%s\n%s", fp1, fp2)
	}
	if len(m1) != len(m2) {
		t.Fatalf("move counts diverged: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		a, b := m1[i], m2[i]
		if a.VM != b.VM || a.From != b.From || a.To != b.To || a.Drain != b.Drain {
			t.Fatalf("move %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if len(m1) == 0 {
		t.Fatal("scenario produced no moves; determinism not exercised")
	}
}

func TestMovesRecordedAsReleasePlacePairs(t *testing.T) {
	c := newCluster(4)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	for i := 0; i < 3; i++ {
		mustHost(t, c, c.PMs()[i], newVM(i, "[1,1]"))
	}
	rec := record.NewCollector()
	e := New(p, Config{DrainBelow: 0.3, Recorder: rec})
	st := e.Rebalance(c)
	if st.Moves == 0 {
		t.Fatal("no moves; recording not exercised")
	}
	ops := rec.Ops()
	if len(ops) != 2*st.Moves {
		t.Fatalf("%d ops for %d moves; want release+place per move", len(ops), st.Moves)
	}
	for i := 0; i < len(ops); i += 2 {
		rel, pl := ops[i], ops[i+1]
		if rel.Kind != record.OpRelease || pl.Kind != record.OpPlace {
			t.Fatalf("op pair %d: kinds %q,%q", i/2, rel.Kind, pl.Kind)
		}
		if rel.VM != pl.VM {
			t.Fatalf("op pair %d: release vm %d, place vm %d", i/2, rel.VM, pl.VM)
		}
		if rel.PM == pl.PM {
			t.Fatalf("op pair %d: vm %d 'moved' to its own source pm %d", i/2, rel.VM, pl.PM)
		}
		if len(pl.Assign) == 0 {
			t.Fatalf("op pair %d: place op has no assignment", i/2)
		}
		if pl.Seq != rel.Seq+1 {
			t.Fatalf("op pair %d: seqs %d,%d not adjacent", i/2, rel.Seq, pl.Seq)
		}
	}
}

func TestRankPassRequiresGainMargin(t *testing.T) {
	c := newCluster(4)
	p := placement.NewPageRankVM(smallRegistry(t), placement.WithSeed(1))
	for i := 0; i < 6; i++ {
		pm, assign, err := p.Place(c, newVM(i, "[1,1]"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Host(pm, newVM(i, "[1,1]"), assign); err != nil {
			t.Fatal(err)
		}
	}
	// An impossible margin turns every rank move unprofitable; with the
	// drain pass off the round must be a pure no-op.
	e := New(p, Config{MinGainFrac: 1e9})
	before := vmSet(c)
	st := e.Rebalance(c)
	if st.Moves != 0 {
		t.Fatalf("stats %+v: moves committed against an impossible margin", st)
	}
	after := vmSet(c)
	for id, pm := range before {
		if after[id] != pm {
			t.Fatalf("vm %d moved %d -> %d in a no-op round", id, pm, after[id])
		}
	}
}
