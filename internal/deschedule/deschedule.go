// Package deschedule is the continuous rebalancer (descheduler): a
// deterministic, seeded engine that scans a placement.Cluster for
// fragmentation — underloaded PMs whose VMs all fit elsewhere, and
// VMs whose hosting profile ranks far below the best reachable
// profile — and migrates VMs toward higher-ranked profiles using the
// paper's Algorithm 2 scoring, under an explicit migration budget.
//
// The engine is admission's missing half: PageRankVM decides where a
// VM lands once, but churn drifts the cluster away from the rank
// tables' "developable profile" signal. A rebalance round runs two
// passes:
//
//  1. Drain pass (when Config.DrainBelow > 0): active PMs whose
//     requested-unit fill fraction sits below the threshold are
//     evacuated entirely — every hosted VM must find an already-active
//     destination — so the PM can power off. Only full evacuations are
//     attempted; a PM whose VM count exceeds the remaining budget
//     waits for a later round.
//  2. Rank pass: for each remaining VM (used-list order, ascending VM
//     id) the engine re-asks Algorithm 2 where the VM would land
//     today, and commits the move only when the destination is an
//     already-active PM whose accommodation score beats
//     re-accommodating on the source by the MinGainFrac margin.
//     Moves toward fresh (unused) PMs are always rejected, so a round
//     can only preserve or reduce the active PM count.
//
// Every committed move is logged as a release op followed by a place
// op in the internal/obs/record format (the serve daemon's WAL shape),
// so golden replay and WAL folds cover rebalancing with no new op
// kinds.
//
// Determinism: rounds iterate the used list in list order and hosted
// VMs in ascending id, all tie-breaking happens inside the seeded
// placer, and no wall clock or unseeded randomness feeds a decision —
// two engines over identical clusters with identically seeded placers
// plan identical moves, for any rank-table build worker count.
package deschedule

import (
	"sort"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
)

// Engine defaults, chosen to bound live-migration pressure: a round
// moves at most 16 VMs and never more than 4 off one source PM
// (egress bandwidth is per-host), and a rank move must improve the
// accommodation score by at least 1%.
const (
	DefaultMaxMovesPerRound = 16
	DefaultMaxMovesPerPM    = 4
	DefaultMinGainFrac      = 0.01
)

// Config parameterizes an Engine. The zero value selects the
// documented defaults with the drain pass disabled.
type Config struct {
	// MaxMovesPerRound is the round's total migration budget
	// (default 16).
	MaxMovesPerRound int
	// MaxMovesPerPM caps the moves leaving any single source PM in one
	// round — a stand-in for per-host live-migration concurrency
	// (default 4).
	MaxMovesPerPM int
	// MinGainFrac is the relative accommodation-score improvement a
	// rank move must clear: destination score > source score ×
	// (1 + MinGainFrac). Default 0.01. Drain moves are exempt —
	// freeing the PM is their gain.
	MinGainFrac float64
	// DrainBelow enables the drain pass: an active PM whose
	// requested-unit fill fraction is below this threshold is a
	// candidate for full evacuation. Zero disables the pass.
	DrainBelow float64
	// Obs receives the deschedule.* instruments; nil disables them.
	Obs *obs.Observer
	// Recorder, when non-nil, logs every committed move as a release
	// op followed by a place op (the PR 6 record format).
	Recorder *record.Recorder
	// OnMove, when non-nil, is called after each committed move — the
	// serve daemon's WAL/location-directory hook. It runs under
	// whatever lock protects the cluster, so it must not block.
	OnMove func(Move)
}

func (c Config) withDefaults() Config {
	if c.MaxMovesPerRound <= 0 {
		c.MaxMovesPerRound = DefaultMaxMovesPerRound
	}
	if c.MaxMovesPerPM <= 0 {
		c.MaxMovesPerPM = DefaultMaxMovesPerPM
	}
	if c.MinGainFrac <= 0 {
		c.MinGainFrac = DefaultMinGainFrac
	}
	return c
}

// Move is one committed migration.
type Move struct {
	// VM and VMType identify the migrated instance.
	VM     int
	VMType string
	// From and To are the source and destination PM ids; ToType is
	// the destination's catalog type.
	From   int
	To     int
	ToType string
	// Assign is the concrete anti-collocation assignment committed on
	// the destination.
	Assign resource.Assignment
	// Score is the accommodation score on the destination; Gain is
	// Score minus the score of re-accommodating on the source (Score
	// itself when the source profile was outside the rank table).
	Score float64
	Gain  float64
	// Drain marks a move made by the drain pass rather than the rank
	// pass.
	Drain bool
}

// RoundStats summarizes one rebalance round.
type RoundStats struct {
	// Scanned counts the VMs the round considered moving.
	Scanned int
	// Moves is the committed total; DrainMoves and RankMoves split it
	// by pass.
	Moves      int
	DrainMoves int
	RankMoves  int
	// PMsFreed is the drop in active PM count over the round.
	PMsFreed int
	// RankGain sums the per-move score gains.
	RankGain float64
	// BudgetExhausted reports that the round consumed its full
	// MaxMovesPerRound budget (or skipped a drain for lack of it) —
	// more rebalancing work remained than the budget allowed.
	BudgetExhausted bool
}

// Add accumulates o into s — the serve daemon sums per-shard rounds
// into one summary.
func (s *RoundStats) Add(o RoundStats) {
	s.Scanned += o.Scanned
	s.Moves += o.Moves
	s.DrainMoves += o.DrainMoves
	s.RankMoves += o.RankMoves
	s.PMsFreed += o.PMsFreed
	s.RankGain += o.RankGain
	s.BudgetExhausted = s.BudgetExhausted || o.BudgetExhausted
}

// metrics pre-resolves the engine's instruments; all nil (and every
// call a no-op branch) when Config.Obs is unset.
type metrics struct {
	rounds          *obs.Counter   // deschedule.rounds
	moves           *obs.Counter   // deschedule.moves
	drainMoves      *obs.Counter   // deschedule.drain_moves
	rankMoves       *obs.Counter   // deschedule.rank_moves
	pmsFreed        *obs.Counter   // deschedule.pms_freed
	budgetExhausted *obs.Counter   // deschedule.budget_exhausted
	rankGain        *obs.Histogram // deschedule.rank_gain
	roundSecs       *obs.Histogram // deschedule.round_seconds
}

func newMetrics(o *obs.Observer) metrics {
	return metrics{
		rounds:          o.Counter("deschedule.rounds"),
		moves:           o.Counter("deschedule.moves"),
		drainMoves:      o.Counter("deschedule.drain_moves"),
		rankMoves:       o.Counter("deschedule.rank_moves"),
		pmsFreed:        o.Counter("deschedule.pms_freed"),
		budgetExhausted: o.Counter("deschedule.budget_exhausted"),
		rankGain:        o.Histogram("deschedule.rank_gain", obs.ExpBuckets(1e-9, 10, 12)),
		roundSecs:       o.Histogram("deschedule.round_seconds", obs.DefSecondsBuckets()),
	}
}

// Engine plans and executes rebalance rounds over one cluster. It
// shares the cluster's single-threaded discipline: callers serialize
// Rebalance with every other cluster access (the serve daemon runs it
// under the owning shard's lock; the simulator is single-threaded).
type Engine struct {
	placer *placement.PageRankVM
	cfg    Config
	met    metrics
}

// New builds an engine around the placer whose rank tables and seeded
// tie-breaking the moves should follow — the same placer instance that
// admits VMs to the cluster, so rebalance decisions draw from the one
// rng stream that keeps runs reproducible.
func New(placer *placement.PageRankVM, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{placer: placer, cfg: cfg, met: newMetrics(cfg.Obs)}
}

// Rebalance runs one round against the cluster and returns its stats.
func (e *Engine) Rebalance(c *placement.Cluster) RoundStats {
	start := time.Now()
	var st RoundStats
	budget := e.cfg.MaxMovesPerRound
	usedBefore := c.NumUsed()
	// movesFrom enforces the per-source cap; received marks PMs that
	// gained a VM this round, which the round never drains or empties
	// afterwards (prevents intra-round shuffling). Lookup only — never
	// ranged over.
	movesFrom := make(map[int]int)
	received := make(map[int]bool)

	if e.cfg.DrainBelow > 0 {
		e.drainPass(c, &budget, movesFrom, received, &st)
	}
	e.rankPass(c, &budget, movesFrom, received, &st)

	st.PMsFreed = usedBefore - c.NumUsed()
	if budget <= 0 {
		st.BudgetExhausted = true
	}
	e.met.rounds.Inc()
	e.met.moves.Add(int64(st.Moves))
	e.met.drainMoves.Add(int64(st.DrainMoves))
	e.met.rankMoves.Add(int64(st.RankMoves))
	e.met.pmsFreed.Add(int64(st.PMsFreed))
	if st.BudgetExhausted {
		e.met.budgetExhausted.Inc()
	}
	e.met.roundSecs.Observe(time.Since(start).Seconds())
	return st
}

// drainPass evacuates underloaded PMs entirely, emptiest first. Only
// full drains are attempted: every hosted VM needs an active
// destination and the whole PM must fit the remaining budget and the
// per-source cap, so a drain either frees its PM or (on a mid-drain
// placement failure) stops with the stragglers re-hosted in place.
func (e *Engine) drainPass(c *placement.Cluster, budget *int, movesFrom map[int]int, received map[int]bool, st *RoundStats) {
	type cand struct {
		pm   *placement.PM
		fill float64
	}
	var cands []cand
	for _, pm := range c.UsedPMs() {
		if pm.Cordoned() {
			continue
		}
		fill := float64(pm.Used().Sum()) / float64(pm.Shape.TotalCapacity())
		if fill < e.cfg.DrainBelow {
			cands = append(cands, cand{pm: pm, fill: fill})
		}
	}
	// Emptiest first — the cheapest PMs to free; stable sort keeps
	// used-list order among equals.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].fill < cands[j].fill })

	for _, cd := range cands {
		pm := cd.pm
		if !pm.Active() || received[pm.ID] {
			continue
		}
		n := pm.NumVMs()
		if n > *budget || n > e.cfg.MaxMovesPerPM-movesFrom[pm.ID] {
			st.BudgetExhausted = true
			continue
		}
		moved := e.drainPM(c, pm, received, st)
		*budget -= moved
		movesFrom[pm.ID] += moved
	}
}

// drainPM moves the PM's VMs (ascending id) onto active destinations,
// stopping at the first VM with none; the failed VM is re-hosted where
// it was. Returns the number of committed moves.
func (e *Engine) drainPM(c *placement.Cluster, src *placement.PM, received map[int]bool, st *RoundStats) int {
	moved := 0
	for _, id := range sortedVMIDs(src) {
		st.Scanned++
		h, err := c.Release(id)
		if err != nil {
			break
		}
		srcScore, srcOK := e.placer.ScoreOn(src, h.VM)
		dest, assign, err := e.placer.Place(c, h.VM, src)
		if err != nil || !dest.Active() {
			rehost(c, src, h)
			break
		}
		destScore, _ := e.placer.ScoreOn(dest, h.VM)
		if err := c.Host(dest, h.VM, assign); err != nil {
			rehost(c, src, h)
			break
		}
		received[dest.ID] = true
		moved++
		st.Moves++
		st.DrainMoves++
		gain := destScore
		if srcOK {
			gain = destScore - srcScore
		}
		e.emit(Move{
			VM: id, VMType: h.VM.Type,
			From: src.ID, To: dest.ID, ToType: dest.Type,
			Assign: assign, Score: destScore, Gain: gain, Drain: true,
		})
	}
	return moved
}

// rankPass re-asks Algorithm 2 where each VM would land today and
// moves it when an already-active destination clears the gain margin.
func (e *Engine) rankPass(c *placement.Cluster, budget *int, movesFrom map[int]int, received map[int]bool, st *RoundStats) {
	// Snapshot the used list: moves mutate it mid-pass.
	active := append([]*placement.PM(nil), c.UsedPMs()...)
	for _, pm := range active {
		if *budget <= 0 {
			return
		}
		if pm.Cordoned() || received[pm.ID] {
			continue
		}
		for _, id := range sortedVMIDs(pm) {
			if *budget <= 0 {
				return
			}
			if movesFrom[pm.ID] >= e.cfg.MaxMovesPerPM {
				break
			}
			st.Scanned++
			if gain, ok := e.tryRankMove(c, pm, id, received); ok {
				*budget--
				movesFrom[pm.ID]++
				st.Moves++
				st.RankMoves++
				st.RankGain += gain
			}
			if !pm.Active() {
				break // the move emptied the source
			}
		}
	}
}

// tryRankMove tentatively releases the VM, asks the placer for today's
// placement (excluding the source), and commits it when the
// destination is active and clears the gain margin; otherwise the VM
// is re-hosted exactly where it was.
func (e *Engine) tryRankMove(c *placement.Cluster, src *placement.PM, vmID int, received map[int]bool) (float64, bool) {
	h, err := c.Release(vmID)
	if err != nil {
		return 0, false
	}
	srcScore, srcOK := e.placer.ScoreOn(src, h.VM)
	dest, assign, err := e.placer.Place(c, h.VM, src)
	if err != nil || !dest.Active() {
		rehost(c, src, h)
		return 0, false
	}
	destScore, destOK := e.placer.ScoreOn(dest, h.VM)
	if !destOK {
		rehost(c, src, h)
		return 0, false
	}
	// A source profile outside the rank table (srcOK false) always
	// loses to a scored destination: the VM currently sits on an
	// undevelopable profile.
	if srcOK && destScore <= srcScore*(1+e.cfg.MinGainFrac) {
		rehost(c, src, h)
		return 0, false
	}
	if err := c.Host(dest, h.VM, assign); err != nil {
		rehost(c, src, h)
		return 0, false
	}
	received[dest.ID] = true
	gain := destScore
	if srcOK {
		gain = destScore - srcScore
	}
	e.emit(Move{
		VM: vmID, VMType: h.VM.Type,
		From: src.ID, To: dest.ID, ToType: dest.Type,
		Assign: assign, Score: destScore, Gain: gain,
	})
	return gain, true
}

// emit logs a committed move (release+place ops when a recorder is
// attached), fires the OnMove hook, and feeds the gain histogram.
func (e *Engine) emit(m Move) {
	if e.cfg.Recorder.Active() {
		e.cfg.Recorder.RecordOp(record.Op{
			Kind:   record.OpRelease,
			VM:     m.VM,
			VMType: m.VMType,
			PM:     m.From,
		})
		e.cfg.Recorder.RecordOp(record.Op{
			Kind:   record.OpPlace,
			VM:     m.VM,
			VMType: m.VMType,
			PM:     m.To,
			PMType: m.ToType,
			Assign: toOpAssign(m.Assign),
			Score:  m.Score,
		})
	}
	if e.cfg.OnMove != nil {
		e.cfg.OnMove(m)
	}
	e.met.rankGain.Observe(m.Gain)
}

// rehost puts a released VM back on its source with its original
// assignment (always feasible: the resources were just freed).
func rehost(c *placement.Cluster, pm *placement.PM, h placement.Hosted) {
	if err := c.Host(pm, h.VM, h.Assign); err != nil {
		// The source had the capacity a moment ago; failing here is a
		// bookkeeping bug worth crashing loudly on.
		panic("deschedule: rehost failed: " + err.Error())
	}
}

// sortedVMIDs returns a PM's hosted VM ids ascending — the
// deterministic iteration order for everything that walks a hosted
// set.
func sortedVMIDs(pm *placement.PM) []int {
	vms := pm.VMs()
	ids := make([]int, 0, len(vms))
	for id := range vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// toOpAssign converts a concrete assignment to its op encoding.
func toOpAssign(a resource.Assignment) []record.OpAssign {
	if len(a) == 0 {
		return nil
	}
	out := make([]record.OpAssign, len(a))
	for i, du := range a {
		out[i] = record.OpAssign{Dim: du.Dim, Units: du.Units}
	}
	return out
}
