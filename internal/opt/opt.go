// Package opt holds the optional-value helpers the config structs use
// for float fields whose zero value selects a default.
//
// A plain float64 field cannot distinguish "caller did not set this"
// from "caller set this to 0", so defaulting it forces a sentinel
// comparison (damping == 0) that the floateq analyzer forbids on
// floats. Optional float fields are *float64 instead: nil means unset
// (take the default), a pointer — built inline with opt.F — means that
// exact value, zero included.
//
//	cfg := pagerank.Options{Damping: opt.F(0.9)}
//	damping := opt.Or(cfg.Damping, pagerank.DefaultDamping)
package opt

// F returns a pointer to v, for setting optional fields inline.
func F(v float64) *float64 { return &v }

// Or returns *p, or def when p is nil (the field was left unset).
func Or(p *float64, def float64) float64 {
	if p == nil {
		return def
	}
	return *p
}

// I returns a pointer to v, for optional int fields whose zero value
// is meaningful (e.g. "zero retries" vs "default retries").
func I(v int) *int { return &v }

// OrInt returns *p, or def when p is nil (the field was left unset).
func OrInt(p *int, def int) int {
	if p == nil {
		return def
	}
	return *p
}
