package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition format version
// this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders every instrument in the Prometheus text exposition
// format (version 0.0.4): counters as `counter`, gauges as `gauge`,
// histograms as `histogram` with cumulative `_bucket{le="..."}` series,
// a final `le="+Inf"` bucket, and `_sum`/`_count`. Metric names are
// sanitized (dots and other invalid runes become underscores) and
// prefixed with "prvm_", so `placement.place_calls` is scraped as
// `prvm_placement_place_calls`. Nil-safe: a nil Observer writes
// nothing.
func (o *Observer) WriteProm(w io.Writer) error {
	if o == nil {
		return nil
	}
	return writeProm(w, o.Snapshot())
}

func writeProm(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := promName(n)
		fmt.Fprintf(&b, "# HELP %s Counter %s.\n", m, promEscapeHelp(n))
		fmt.Fprintf(&b, "# TYPE %s counter\n", m)
		fmt.Fprintf(&b, "%s %d\n", m, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := promName(n)
		fmt.Fprintf(&b, "# HELP %s Gauge %s.\n", m, promEscapeHelp(n))
		fmt.Fprintf(&b, "# TYPE %s gauge\n", m)
		fmt.Fprintf(&b, "%s %d\n", m, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		m := promName(n)
		fmt.Fprintf(&b, "# HELP %s Histogram %s.\n", m, promEscapeHelp(n))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		// Bucket counts are stored per-interval; Prometheus buckets are
		// cumulative counts of observations <= the bound.
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", m, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes an instrument name into a valid Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*) under the repo's prvm_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("prvm_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text: backslashes and line feeds per
// the exposition format spec.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromEscapeLabel escapes a label value: backslash, double-quote and
// line feed per the exposition format spec.
func PromEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// promFloat renders a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
