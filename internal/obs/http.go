package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observer over HTTP:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/metrics.json   indented JSON snapshot of every instrument
//	/events         retained trace events (when sink is a *RingSink)
//	/debug/vars     the standard expvar page (memstats, cmdline)
//	/debug/pprof/*  the net/http/pprof profiles
//
// sink may be nil; pass the observer's RingSink to expose /events.
func Handler(o *Observer, sink *RingSink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = o.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.WriteJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var events []Event
		if sink != nil {
			events = sink.Events()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "pagerankvm telemetry: /metrics /metrics.json /events /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve starts the telemetry endpoint on addr (":0" picks an ephemeral
// port) in a background goroutine and returns the bound address plus a
// stop function that closes the listener and all active connections,
// then waits for the serve goroutine to exit. Callers that want the
// endpoint for the remaining process lifetime simply never call stop.
func Serve(addr string, o *Observer, sink *RingSink) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o, sink)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	stop := func() {
		_ = srv.Close()
		<-done
	}
	return ln.Addr().String(), stop, nil
}
