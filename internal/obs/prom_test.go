package obs

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func TestWritePromFormat(t *testing.T) {
	o := New()
	o.Counter("placement.place_calls").Add(42)
	o.Gauge("sim.active_pms").Set(7)
	h := o.Histogram("sim.place_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := o.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	for _, want := range []string{
		"# TYPE prvm_placement_place_calls counter",
		"prvm_placement_place_calls 42",
		"# TYPE prvm_sim_active_pms gauge",
		"prvm_sim_active_pms 7",
		"# TYPE prvm_sim_place_seconds histogram",
		`prvm_sim_place_seconds_bucket{le="0.001"} 1`,
		`prvm_sim_place_seconds_bucket{le="0.01"} 3`,
		`prvm_sim_place_seconds_bucket{le="0.1"} 4`,
		`prvm_sim_place_seconds_bucket{le="+Inf"} 5`,
		"prvm_sim_place_seconds_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "prvm_sim_place_seconds_sum 5.055") {
		t.Errorf("sum missing or wrong:\n%s", body)
	}

	// Every non-comment line must match the sample syntax.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
	}
}

func TestWritePromNil(t *testing.T) {
	var o *Observer
	var buf bytes.Buffer
	if err := o.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil observer wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"placement.place_calls":   "prvm_placement_place_calls",
		"a.b-c/d":                 "prvm_a_b_c_d",
		"ranktable.build_seconds": "prvm_ranktable_build_seconds",
		"with space":              "prvm_with_space",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEscapeLabel(t *testing.T) {
	if got := PromEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escaped = %q", got)
	}
}

func TestMetricsEndpointContentType(t *testing.T) {
	o := New()
	o.Counter("c").Inc()
	srv := httptest.NewServer(Handler(o, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content-type = %q, want %q", ct, PromContentType)
	}
}

func TestQuantileEdges(t *testing.T) {
	single := NewHistogram([]float64{1, 10, 100})
	single.Observe(5)
	sSingle := single.Snapshot()

	equal := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 9; i++ {
		equal.Observe(7)
	}
	sEqual := equal.Snapshot()

	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64
	}{
		{"single q0", sSingle, 0, 5},
		{"single q50", sSingle, 0.5, 5},
		{"single q100", sSingle, 1, 5},
		{"single q below range", sSingle, -3, 5},
		{"single q above range", sSingle, 7, 5},
		{"all-equal q0", sEqual, 0, 7},
		{"all-equal q50", sEqual, 0.5, 7},
		{"all-equal q99", sEqual, 0.99, 7},
		{"all-equal q100", sEqual, 1, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}

	t.Run("NaN q", func(t *testing.T) {
		if got := sSingle.Quantile(math.NaN()); !math.IsNaN(got) {
			t.Fatalf("Quantile(NaN) = %v, want NaN", got)
		}
	})

	t.Run("skewed snapshot degrades to bounds", func(t *testing.T) {
		// A writer that bumped count but had not CASed min/max yet:
		// the sentinels survive in the snapshot. Quantiles must stay
		// finite, inside the occupied bucket.
		s := sSingle
		s.Min = math.Inf(1)
		s.Max = math.Inf(-1)
		for _, q := range []float64{0, 0.5, 1} {
			got := s.Quantile(q)
			if math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("Quantile(%v) = %v on skewed snapshot", q, got)
			}
			// 5 lands in bucket (1, 10]; without exact min/max the
			// estimate must stay within those bounds.
			if got < 1 || got > 10 {
				t.Fatalf("Quantile(%v) = %v outside occupied bucket (1, 10]", q, got)
			}
		}
	})

	t.Run("skewed overflow tail", func(t *testing.T) {
		over := NewHistogram([]float64{1, 10})
		over.Observe(50)
		s := over.Snapshot()
		s.Min = math.Inf(1)
		s.Max = math.Inf(-1)
		if got := s.Quantile(1); got != 10 {
			t.Fatalf("overflow quantile without max = %v, want last bound 10", got)
		}
	})
}
