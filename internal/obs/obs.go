// Package obs is the runtime telemetry layer of the reproduction:
// lock-free counters and gauges, fixed-bucket histograms with
// percentile export, and a span-style event sink for structured
// placement-decision tracing.
//
// The design goal is that instrumentation costs ~nothing when
// disabled. Every accessor is safe on a nil *Observer (it returns a
// nil instrument) and every instrument method is safe on a nil
// receiver (it is a single predictable branch), so hot paths hold
// pre-resolved instrument pointers and never test "is telemetry on"
// themselves:
//
//	met := struct{ scanned *obs.Counter }{scanned: o.Counter("x")}
//	...
//	met.scanned.Add(n) // no-op branch when o was nil
//
// Instruments are identified by dotted names ("placement.pms_scanned")
// and registered on first use; the same name always resolves to the
// same instrument, so independent layers share totals. See README.md
// ("Observability") for the metrics catalog.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current total; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Observer is a registry of named instruments plus an optional event
// sink. The zero value is not useful — construct with New. A nil
// *Observer is the disabled state: all lookups return nil instruments.
type Observer struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	sink atomic.Pointer[sinkHolder]
}

type sinkHolder struct{ s EventSink }

// New returns an empty observer with no sink attached.
func New() *Observer {
	return &Observer{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil receiver.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil receiver.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later callers get the
// existing instrument regardless of bounds). Returns nil on a nil
// receiver.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		o.hists[name] = h
	}
	return h
}

// SetSink attaches (or, with nil, detaches) the event sink.
func (o *Observer) SetSink(s EventSink) {
	if o == nil {
		return
	}
	if s == nil {
		o.sink.Store(nil)
		return
	}
	o.sink.Store(&sinkHolder{s: s})
}

// TraceActive reports whether an event sink is attached — hot paths
// use it to skip assembling event fields entirely when tracing is off.
func (o *Observer) TraceActive() bool {
	return o != nil && o.sink.Load() != nil
}

// Emit sends an event to the attached sink, stamping it if the caller
// left Time zero. No-op when the observer is nil or no sink is set.
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	h := o.sink.Load()
	if h == nil {
		return
	}
	h.s.Emit(e.stamped())
}

// Snapshot is a point-in-time copy of every registered instrument,
// shaped for JSON export.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// emptySnapshot returns a Snapshot with every section allocated, the
// shape a disabled (nil) observer exports.
func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
}

// Snapshot captures all instruments. Safe (and empty) on nil.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return emptySnapshot()
	}
	s := emptySnapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range o.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range o.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. A nil observer
// writes the empty snapshot, so -metrics-out always yields valid JSON.
func (o *Observer) WriteJSON(w io.Writer) error {
	if o == nil {
		return encodeSnapshot(w, emptySnapshot())
	}
	return encodeSnapshot(w, o.Snapshot())
}

func encodeSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: write json: %w", err)
	}
	return nil
}

// WriteFile dumps the snapshot to path — the -metrics-out hook of the
// commands, for benchmark trajectory tracking. A nil observer writes
// the empty snapshot.
func (o *Observer) WriteFile(path string) error {
	if o == nil {
		return writeSnapshotFile(path, emptySnapshot())
	}
	return writeSnapshotFile(path, o.Snapshot())
}

func writeSnapshotFile(path string, s Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := encodeSnapshot(f, s); err != nil {
		_ = f.Close()
		return err
	}
	// On a write path the close error is the write error: buffered
	// bytes flush here, so dropping it could report a truncated
	// snapshot as success.
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// Names returns the sorted instrument names of every kind, mainly for
// tests and the text dump.
func (o *Observer) Names() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, 0, len(o.counters)+len(o.gauges)+len(o.hists))
	for n := range o.counters {
		names = append(names, n)
	}
	for n := range o.gauges {
		names = append(names, n)
	}
	for n := range o.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
