package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket value histogram safe for concurrent
// writers. Bucket i counts observations v with bounds[i-1] < v <=
// bounds[i]; one extra overflow bucket counts v > bounds[last]. Sum,
// min and max are tracked exactly (CAS loops over float bits), so the
// mean is exact and only the quantiles are bucket-interpolated.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, starts +Inf
	max    atomic.Uint64 // float64 bits, starts -Inf
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds. Nil or empty bounds select DefSecondsBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefSecondsBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefSecondsBuckets is the default latency bucket set: exponential
// from 1µs to ~8.4s (24 buckets, factor 2).
func DefSecondsBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// ExpBuckets returns n exponentially spaced bounds start, start*factor,
// start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	casFloat(&h.min, v, func(cur float64) bool { return v < cur })
	casFloat(&h.max, v, func(cur float64) bool { return v > cur })
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

func casFloat(a *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := a.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// export: per-bucket counts plus derived mean and quantiles. (Bucket
// counts are read without a global lock; concurrent writers can skew a
// snapshot by a few in-flight observations, which is fine for
// monitoring.)
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot captures the histogram. Zero-valued on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
		s.Mean = s.Sum / float64(s.Count)
		s.P50 = s.Quantile(0.50)
		s.P95 = s.Quantile(0.95)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// Quantile estimates the q-th quantile by linear interpolation inside
// the bucket holding the target rank, clamped to the exact observed
// [Min, Max]. q is clamped to [0, 1], so a single observation (or an
// all-equal stream) answers every quantile with that value. NaN when
// empty or q is NaN. A concurrency-skewed snapshot (Count > 0 with the
// min/max sentinels still at ±Inf) degrades gracefully to bucket
// bounds instead of returning infinities.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	minOK := s.Min <= s.Max // false when a sentinel survived the race
	target := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := math.Inf(-1)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := math.Inf(1)
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if minOK {
				lo = math.Max(lo, s.Min)
				hi = math.Min(hi, s.Max)
			}
			// Underflow / overflow buckets have one open side; without
			// an exact min/max, collapse to the known bound.
			if math.IsInf(lo, -1) {
				lo = hi
			}
			if math.IsInf(hi, 1) {
				hi = lo
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	if minOK {
		return s.Max
	}
	return s.Bounds[len(s.Bounds)-1]
}
