package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	c := o.Counter("x")
	if c != nil {
		t.Fatal("nil observer returned a counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := o.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := o.Histogram("z", nil)
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	o.Emit(Event{Name: "e"})
	o.SetSink(NewRingSink(4))
	if o.TraceActive() {
		t.Fatal("nil observer trace active")
	}
	snap := o.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil observer snapshot non-empty")
	}
}

func TestCounterGaugeIdentity(t *testing.T) {
	o := New()
	a := o.Counter("placement.calls")
	b := o.Counter("placement.calls")
	if a != b {
		t.Fatal("same name resolved to different counters")
	}
	a.Inc()
	b.Add(2)
	if got := o.Counter("placement.calls").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := o.Gauge("pms")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106.7) > 1e-9 {
		t.Fatalf("sum = %v, want 106.7", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	wantCounts := []int64{1, 2, 1, 1} // (-inf,1], (1,2], (2,4], overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if q := s.Quantile(0); q < s.Min || q > s.Max {
		t.Fatalf("q0 = %v outside [min,max]", q)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Fatalf("q1 = %v, want max %v", q, s.Max)
	}
	if s.P50 < s.Min || s.P50 > s.Max || s.P99 < s.P50 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v", s.P50, s.P99)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	want = []float64{0, 0.5, 1}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

func TestRingSink(t *testing.T) {
	o := New()
	ring := NewRingSink(2)
	o.SetSink(ring)
	if !o.TraceActive() {
		t.Fatal("sink attached but trace inactive")
	}
	for i := 0; i < 3; i++ {
		o.Emit(Event{Name: "place", Fields: []Field{F("i", i)}})
	}
	events := ring.Events()
	if len(events) != 2 || ring.Total() != 3 {
		t.Fatalf("ring kept %d (total %d), want 2 (total 3)", len(events), ring.Total())
	}
	// Oldest-first: events 1 then 2 remain after 0 is evicted.
	if events[0].Fields[0].Val.(int) != 1 || events[1].Fields[0].Val.(int) != 2 {
		t.Fatalf("ring order wrong: %+v", events)
	}
	if events[0].Time.IsZero() {
		t.Fatal("event not stamped")
	}
	o.SetSink(nil)
	if o.TraceActive() {
		t.Fatal("trace active after detach")
	}
	o.Emit(Event{Name: "dropped"})
	if ring.Total() != 3 {
		t.Fatal("emit after detach reached sink")
	}
}

func TestWriterSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	s.Emit(Event{Name: "evict", Fields: []Field{F("pm", 3), F("vm", 9)}}.stamped())
	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad JSONL %q: %v", line, err)
	}
	if m["event"] != "evict" || m["pm"].(float64) != 3 || m["vm"].(float64) != 9 {
		t.Fatalf("fields lost: %v", m)
	}
}

func TestSnapshotJSON(t *testing.T) {
	o := New()
	o.Counter("placement.place_calls").Add(42)
	o.Gauge("sim.active_pms").Set(7)
	o.Histogram("sim.place_seconds", nil).Observe(0.001)
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["placement.place_calls"] != 42 {
		t.Fatalf("counter lost: %v", snap.Counters)
	}
	if snap.Gauges["sim.active_pms"] != 7 {
		t.Fatalf("gauge lost: %v", snap.Gauges)
	}
	h := snap.Histograms["sim.place_seconds"]
	if h.Count != 1 || h.Sum != 0.001 {
		t.Fatalf("histogram lost: %+v", h)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	o := New()
	o.Counter("c").Inc()
	ring := NewRingSink(8)
	o.SetSink(ring)
	o.Emit(Event{Name: "place", Fields: []Field{F("vm", 1)}})
	srv := httptest.NewServer(Handler(o, ring))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "prvm_c 1") {
		t.Fatalf("/metrics missing Prometheus counter: %s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"c": 1`) {
		t.Fatalf("/metrics.json missing counter: %s", body)
	}
	if body := get("/events"); !strings.Contains(body, `"event": "place"`) {
		t.Fatalf("/events missing event: %s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatal("/debug/vars missing memstats")
	}
}

func TestServeEphemeral(t *testing.T) {
	o := New()
	o.Counter("x").Inc()
	addr, stop, err := Serve("127.0.0.1:0", o, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}

	// stop must close the listener (new connections refused) and join
	// the serve goroutine — the endpoint is no longer a leak.
	stop()
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after stop")
	}
	stop() // idempotent: a second stop must not hang or panic
}
