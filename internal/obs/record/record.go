// Package record is the decision record/replay layer of the
// reproduction (DESIGN.md §11): a versioned, self-describing JSONL
// format capturing every placement decision Algorithm 2 makes — the
// request, the candidate PM set with scores, anti-collocation and
// capacity rejections, the chosen PM, the tie-break path, the
// fast-vs-legacy flag — plus span-style phase timings (rank-table
// build, candidate scan, constraint check, winner bind).
//
// A recording is replayable: its header carries the run configuration
// (trace, seed, VM count, ...), so cmd/prvm-replay can re-run the same
// seeded experiment through the current code and verify bit-identical
// decisions (a golden regression), or diff two recordings decision by
// decision. Timings and the fast-path flag are observability metadata,
// never part of decision identity — a fast-path and a legacy recording
// of the same seed diff clean.
//
// Like internal/obs, the package follows a nil-receiver contract: a
// nil *Recorder is the disabled state and every method on it is a
// no-op branch, so instrumented layers hold the pointer and call it
// unconditionally (enforced by prvm-lint's obsnilguard).
package record

import (
	"math"
)

// Format identification, written into every recording's header line.
const (
	FormatName = "prvm-decision-record"
	// FormatVersion is bumped on any incompatible schema change;
	// readers reject versions they do not understand.
	FormatVersion = 1
)

// Header is the first JSONL line of a recording: the format marker,
// the schema version, and the run configuration needed to replay.
type Header struct {
	Format  string  `json:"format"`
	Version int     `json:"version"`
	Meta    RunMeta `json:"meta"`
}

// RunMeta captures the configuration of the recorded run — enough for
// cmd/prvm-replay to reconstruct and re-run it deterministically.
// Kind selects the replay driver; "sim" replays through
// experiments.ReplayRecordedSim. Free-form context goes in Labels.
type RunMeta struct {
	// Kind is the replay driver: "sim" for a recorded simulation run,
	// anything else for recordings that only support diff/phases.
	Kind string `json:"kind"`
	// Trace is the workload trace name ("planetlab", "google").
	Trace string `json:"trace,omitempty"`
	// Seed drives workload generation and the placer's tie-breaking.
	Seed int64 `json:"seed,omitempty"`
	// NumVMs is the request-stream size.
	NumVMs int `json:"num_vms,omitempty"`
	// PMsPerType sizes the inventory (per Table II type).
	PMsPerType int `json:"pms_per_type,omitempty"`
	// Steps is the number of monitoring intervals (0 = the default
	// 24 h horizon).
	Steps int `json:"steps,omitempty"`
	// Algorithm names the placer ("PageRankVM").
	Algorithm string `json:"algorithm,omitempty"`
	// NoFastPath records that the run forced the string-key
	// enumeration path (placement.WithoutFastPath).
	NoFastPath bool `json:"no_fast_path,omitempty"`
	// RebalanceEvery, when positive, records that the run enabled the
	// descheduler: one rebalance round every that many monitoring
	// intervals (internal/deschedule).
	RebalanceEvery int `json:"rebalance_every,omitempty"`
	// RebalanceBudget is the descheduler's per-round migration budget
	// (MaxMovesPerRound; 0 = the engine default).
	RebalanceBudget int `json:"rebalance_budget,omitempty"`
	// RebalancePMBudget caps moves leaving any single PM per round
	// (MaxMovesPerPM; 0 = the engine default).
	RebalancePMBudget int `json:"rebalance_pm_budget,omitempty"`
	// RebalanceDrainBelow is the fill fraction under which the
	// descheduler tries to evacuate a PM entirely (0 disables the
	// drain pass).
	RebalanceDrainBelow float64 `json:"rebalance_drain_below,omitempty"`
	// Labels carries free-form context (host, git revision, ...).
	Labels map[string]string `json:"labels,omitempty"`
}

// Candidate statuses: why a scanned PM did or did not stay in the
// running for a decision.
const (
	// StatusScored: the PM was feasible and its best accommodation
	// was scored.
	StatusScored = "scored"
	// StatusExcluded: the PM was the migration source (exclude arg).
	StatusExcluded = "excluded"
	// StatusNoFit: capacity or anti-collocation rejection
	// (resource.Fits said no).
	StatusNoFit = "no_fit"
	// StatusNoDemand: the VM type has no quantized demand on this PM
	// type.
	StatusNoDemand = "no_demand"
	// StatusNoProfile: the accommodation left the rank table (no
	// feasible successor profile scored).
	StatusNoProfile = "no_profile"
	// StatusCordoned: the PM is cordoned for a maintenance drain and
	// accepts no new placements.
	StatusCordoned = "cordoned"
)

// Candidate is one PM examined while placing one VM.
type Candidate struct {
	// PM is the candidate PM id.
	PM int `json:"pm"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Score is the best accommodation score (StatusScored only).
	Score float64 `json:"score,omitempty"`
	// Profiles is the number of candidate profiles enumerated or
	// counted for this PM.
	Profiles int `json:"profiles,omitempty"`
	// Unused marks a candidate from the unused-PM fallback scan
	// (Algorithm 2 lines 17-24).
	Unused bool `json:"unused,omitempty"`
}

// Phases are the span-style per-decision phase timings, in
// nanoseconds. They are observability metadata: never compared by
// Equivalent, and omitted from the stream when phase capture is off.
type Phases struct {
	// ScanNs is the candidate scan: the whole used-list (and, on
	// fallback, unused-list) loop including scoring.
	ScanNs int64 `json:"scan_ns"`
	// CheckNs is the constraint check: time inside capacity /
	// anti-collocation feasibility tests (a subset of ScanNs).
	CheckNs int64 `json:"check_ns"`
	// BindNs is the winner bind: materializing and aligning the
	// chosen PM's concrete assignment.
	BindNs int64 `json:"bind_ns"`
}

// Decision is one placement decision. Identity fields (everything a
// replay must reproduce bit-for-bit) come first; Fast, Phases and Seq
// are metadata.
type Decision struct {
	// Seq is the position in the recording's event stream, assigned
	// by the Recorder: 0,1,2,... with no gaps.
	Seq int64 `json:"seq"`
	// VM and VMType identify the request.
	VM     int    `json:"vm"`
	VMType string `json:"vm_type"`
	// PM is the chosen PM id, -1 when the request was rejected
	// (ErrNoCapacity).
	PM int `json:"pm"`
	// PMType is the chosen PM's type ("" on rejection).
	PMType string `json:"pm_type,omitempty"`
	// Score is the winning accommodation score (0 when the decision
	// opened a fresh PM or rejected).
	Score float64 `json:"score"`
	// Scanned and Profiles count examined PMs and enumerated
	// candidate profiles.
	Scanned  int `json:"scanned"`
	Profiles int `json:"profiles"`
	// Ties is the number of candidates tied at the winning score;
	// TiedPMs lists them (present when Ties > 1) — the tie-break
	// path the seeded reservoir sample chose among.
	Ties    int   `json:"ties"`
	TiedPMs []int `json:"tied_pms,omitempty"`
	// Opened marks a decision that powered on an unused PM.
	Opened bool `json:"opened,omitempty"`
	// Rejected marks a no-capacity rejection.
	Rejected bool `json:"rejected,omitempty"`
	// Candidates is the full examined-PM set, in scan order.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Fast records whether the id-indexed fast path served the
	// winning score (metadata, not identity).
	Fast bool `json:"fast,omitempty"`
	// Phases carries the span timings when phase capture is on
	// (metadata, not identity).
	Phases *Phases `json:"phases,omitempty"`
}

// Span is a named span-style timing outside the per-decision phases —
// rank-table builds, simulation ticks, whole runs.
type Span struct {
	// Seq shares the recording-wide sequence with decisions.
	Seq int64 `json:"seq"`
	// Name is the span name ("ranktable.build", "sim.tick",
	// "sim.run").
	Name string `json:"name"`
	// Ns is the span duration in nanoseconds.
	Ns int64 `json:"ns"`
	// Labels carries span context (group name, step index, ...).
	Labels map[string]string `json:"labels,omitempty"`
}

// Line-type discriminators (the "t" field of every post-header line).
const (
	lineDecision = "d"
	lineSpan     = "s"
)

// Equivalent reports whether two decisions are the same placement
// decision: every identity field equal, float scores compared bitwise
// (the repo's fast-vs-legacy contract is bit-identity, not tolerance).
// Seq, Fast and Phases are metadata and not compared.
func Equivalent(a, b Decision) bool {
	if a.VM != b.VM || a.VMType != b.VMType || a.PM != b.PM || a.PMType != b.PMType {
		return false
	}
	if math.Float64bits(a.Score) != math.Float64bits(b.Score) {
		return false
	}
	if a.Scanned != b.Scanned || a.Profiles != b.Profiles || a.Ties != b.Ties {
		return false
	}
	if a.Opened != b.Opened || a.Rejected != b.Rejected {
		return false
	}
	if len(a.TiedPMs) != len(b.TiedPMs) {
		return false
	}
	for i := range a.TiedPMs {
		if a.TiedPMs[i] != b.TiedPMs[i] {
			return false
		}
	}
	if len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Candidates {
		if !candidateEqual(a.Candidates[i], b.Candidates[i]) {
			return false
		}
	}
	return true
}

func candidateEqual(a, b Candidate) bool {
	return a.PM == b.PM && a.Status == b.Status && a.Profiles == b.Profiles &&
		a.Unused == b.Unused &&
		math.Float64bits(a.Score) == math.Float64bits(b.Score)
}
