package record

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Recorder appends decisions and spans to one recording, assigning the
// recording-wide sequence numbers. It is safe for concurrent use:
// sequence assignment and the write happen under one lock, so the
// output stream is always strictly seq-ordered with no gaps, whatever
// the caller interleaving.
//
// A nil *Recorder is the disabled state — every method is a no-op
// branch — so instrumented layers hold the pointer unconditionally,
// exactly like the internal/obs instruments.
type Recorder struct {
	mu  sync.Mutex
	seq int64
	err error

	// JSONL sink (nil in collector mode).
	enc    *json.Encoder
	bw     *bufio.Writer
	gz     *gzip.Writer
	closer io.Closer

	// Collector sink (replay verification, tests).
	collect   bool
	decisions []Decision
	spans     []Span
	ops       []Op

	ndec, nspan, nop int64
}

// decisionLine / spanLine add the "t" discriminator to a record
// without duplicating the payload fields.
type decisionLine struct {
	T string `json:"t"`
	Decision
}

type spanLine struct {
	T string `json:"t"`
	Span
}

// NewWriter starts a recording streamed as JSON lines to w, writing
// the versioned header immediately.
func NewWriter(w io.Writer, meta RunMeta) (*Recorder, error) {
	r := &Recorder{}
	bw := bufio.NewWriterSize(w, 1<<16)
	r.bw = bw
	r.enc = json.NewEncoder(bw)
	if err := r.enc.Encode(Header{Format: FormatName, Version: FormatVersion, Meta: meta}); err != nil {
		return nil, fmt.Errorf("record: write header: %w", err)
	}
	return r, nil
}

// Create starts a recording in a new file at path. A ".gz" suffix
// selects gzip framing: the JSONL stream is written through a
// compress/gzip writer, and Close flushes both layers.
func Create(path string, meta RunMeta) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	r, err := NewWriter(w, meta)
	if err != nil {
		_ = f.Close() // cleanup on the error path; the header error is the story
		return nil, err
	}
	r.gz = gz
	r.closer = f
	return r, nil
}

// NewCollector starts an in-memory recording — the replay driver's
// sink, and the cheapest way to capture a decision stream in tests.
func NewCollector() *Recorder {
	return &Recorder{collect: true}
}

// Active reports whether recording is enabled — instrumented hot paths
// use it to skip assembling candidate sets and phase timings entirely.
func (r *Recorder) Active() bool { return r != nil }

// RecordDecision appends d, overwriting d.Seq with the next sequence
// number. The argument's slices are not retained: callers may reuse
// their Candidates/TiedPMs scratch buffers.
func (r *Recorder) RecordDecision(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d.Seq = r.seq
	r.seq++
	r.ndec++
	if r.collect {
		d.Candidates = append([]Candidate(nil), d.Candidates...)
		d.TiedPMs = append([]int(nil), d.TiedPMs...)
		if d.Phases != nil {
			ph := *d.Phases
			d.Phases = &ph
		}
		r.decisions = append(r.decisions, d)
		return
	}
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(decisionLine{T: lineDecision, Decision: d}); err != nil {
		r.err = fmt.Errorf("record: write decision: %w", err)
	}
}

// RecordSpan appends a named span timing of ns nanoseconds. labels may
// be nil; it is not retained in JSONL mode but is in collector mode,
// so callers must not mutate it afterwards.
func (r *Recorder) RecordSpan(name string, ns int64, labels map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Span{Seq: r.seq, Name: name, Ns: ns, Labels: labels}
	r.seq++
	r.nspan++
	if r.collect {
		r.spans = append(r.spans, s)
		return
	}
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(spanLine{T: lineSpan, Span: s}); err != nil {
		r.err = fmt.Errorf("record: write span: %w", err)
	}
}

// Decisions returns the collected decisions (collector mode; nil
// otherwise). The slice is shared — callers must not modify it.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decisions
}

// Spans returns the collected spans (collector mode; nil otherwise).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// Counts returns how many decisions and spans were recorded.
func (r *Recorder) Counts() (decisions, spans int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ndec, r.nspan
}

// NextSeq returns the sequence number the next recorded entry will be
// assigned. The serve daemon reads it under quiesced shards to stamp a
// snapshot cut: every op with a smaller seq is reflected in the
// snapshot, every later one must be replayed on top.
func (r *Recorder) NextSeq() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// SetNextSeq moves the sequence counter so the next entry is assigned
// seq. It exists for WAL segment continuation — a rotated segment
// starts numbering where its predecessor stopped, keeping the
// recording-wide seq order global across segment files — and must only
// be called before the first entry is recorded.
func (r *Recorder) SetNextSeq(seq int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = seq
}

// Flush pushes all buffered entries to the underlying writer. A
// recorder buffers aggressively (64 KiB) for batch throughput; callers
// with a durability barrier — the serve daemon acknowledging a batch
// of placements — flush once per batch rather than per entry.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *Recorder) flushLocked() error {
	if r.bw != nil {
		if err := r.bw.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: flush: %w", err)
		}
	}
	if r.gz != nil {
		if err := r.gz.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: flush gzip: %w", err)
		}
	}
	return r.err
}

// Sync flushes and then forces the bytes to stable storage when the
// recorder owns a file (Create); on a plain writer it degrades to
// Flush. This is the fsync half of the WAL durability contract —
// without it a flush only reaches the OS page cache.
func (r *Recorder) Sync() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.flushLocked(); err != nil {
		return err
	}
	if f, ok := r.closer.(*os.File); ok {
		if err := f.Sync(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: sync: %w", err)
		}
	}
	return r.err
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes the buffered stream, closes the gzip layer and the
// underlying file (when Create opened one), and returns the first
// error seen.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bw != nil {
		if err := r.bw.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: flush: %w", err)
		}
	}
	if r.gz != nil {
		if err := r.gz.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: close gzip: %w", err)
		}
	}
	if r.closer != nil {
		if err := r.closer.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("record: close: %w", err)
		}
	}
	return r.err
}
