package record

import (
	"bytes"
	"sync"
	"testing"
)

// TestRecorderConcurrentSeqOrder hammers one Recorder from many
// goroutines and asserts the contract the replay layer depends on:
// the recorded stream is strictly seq-ordered, gap-free, and loses
// nothing, regardless of caller interleaving. Run under -race.
func TestRecorderConcurrentSeqOrder(t *testing.T) {
	const (
		workers = 8
		perW    = 200
	)
	run := func(t *testing.T, r *Recorder) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					if i%10 == 9 {
						r.RecordSpan("sim.tick", int64(i), nil)
						continue
					}
					r.RecordDecision(Decision{VM: w*perW + i, VMType: "m3.large", PM: w, Score: 0.5})
				}
			}(w)
		}
		wg.Wait()
	}

	t.Run("collector", func(t *testing.T) {
		r := NewCollector()
		run(t, r)
		ds, ss := r.Decisions(), r.Spans()
		checkSeqs(t, ds, ss, workers*perW)
	})

	t.Run("jsonl", func(t *testing.T) {
		var buf bytes.Buffer
		r, err := NewWriter(&buf, RunMeta{Kind: "test"})
		if err != nil {
			t.Fatal(err)
		}
		run(t, r)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		_, ds, ss, err := ReadAllFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		checkSeqs(t, ds, ss, workers*perW)
		// JSONL lines must also be physically ordered: the stream is
		// written under the same lock that assigns seq, so re-reading
		// yields monotone sequence numbers without sorting.
		last := int64(-1)
		for _, d := range ds {
			if d.Seq <= last {
				// Decisions interleave with spans, so only assert
				// monotonicity within the decision stream here; the
				// merged check below covers the rest.
				t.Fatalf("decision stream out of order: %d after %d", d.Seq, last)
			}
			last = d.Seq
		}
	})
}

// checkSeqs asserts the merged decision+span stream covers exactly
// 0..total-1 with no duplicates or gaps.
func checkSeqs(t *testing.T, ds []Decision, ss []Span, total int) {
	t.Helper()
	if got := len(ds) + len(ss); got != total {
		t.Fatalf("lost events: %d + %d != %d", len(ds), len(ss), total)
	}
	seen := make([]bool, total)
	mark := func(seq int64) {
		if seq < 0 || seq >= int64(total) {
			t.Fatalf("seq %d out of range [0, %d)", seq, total)
		}
		if seen[seq] {
			t.Fatalf("duplicate seq %d", seq)
		}
		seen[seq] = true
	}
	for _, d := range ds {
		mark(d.Seq)
	}
	for _, s := range ss {
		mark(s.Seq)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("gap at seq %d", i)
		}
	}
}
