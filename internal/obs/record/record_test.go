package record

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleMeta() RunMeta {
	return RunMeta{
		Kind:       "sim",
		Trace:      "planetlab",
		Seed:       42,
		NumVMs:     40,
		PMsPerType: 2,
		Steps:      12,
		Algorithm:  "PageRankVM",
		Labels:     map[string]string{"origin": "test"},
	}
}

func sampleDecision(vm, pm int, score float64) Decision {
	return Decision{
		VM:       vm,
		VMType:   "m3.large",
		PM:       pm,
		PMType:   "E5-2670",
		Score:    score,
		Scanned:  3,
		Profiles: 7,
		Ties:     2,
		TiedPMs:  []int{pm, pm + 1},
		Fast:     true,
		Phases:   &Phases{ScanNs: 1200, CheckNs: 300, BindNs: 90},
		Candidates: []Candidate{
			{PM: pm, Status: StatusScored, Score: score, Profiles: 4},
			{PM: pm + 1, Status: StatusScored, Score: score, Profiles: 3},
			{PM: pm + 2, Status: StatusNoFit},
		},
	}
}

func TestRoundTripJSONL(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewWriter(&buf, sampleMeta())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	r.RecordDecision(sampleDecision(0, 5, 0.25))
	r.RecordSpan("ranktable.build", 1500, map[string]string{"group": "cpu"})
	r.RecordDecision(sampleDecision(1, 6, 0.5))
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ndec, nspan := r.Counts()
	if ndec != 2 || nspan != 1 {
		t.Fatalf("Counts = (%d, %d), want (2, 1)", ndec, nspan)
	}

	hdr, ds, ss, err := ReadAllFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAllFrom: %v", err)
	}
	if hdr.Format != FormatName || hdr.Version != FormatVersion {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Meta.Trace != "planetlab" || hdr.Meta.Seed != 42 || hdr.Meta.Labels["origin"] != "test" {
		t.Fatalf("meta = %+v", hdr.Meta)
	}
	if len(ds) != 2 || len(ss) != 1 {
		t.Fatalf("got %d decisions, %d spans", len(ds), len(ss))
	}
	// Stream order and the recording-wide sequence: d0=0, span=1, d1=2.
	if ds[0].Seq != 0 || ss[0].Seq != 1 || ds[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d, %d", ds[0].Seq, ss[0].Seq, ds[1].Seq)
	}
	want := sampleDecision(0, 5, 0.25)
	if !Equivalent(ds[0], want) {
		t.Fatalf("round-tripped decision not equivalent:\n got %+v\nwant %+v", ds[0], want)
	}
	if ds[0].Phases == nil || ds[0].Phases.ScanNs != 1200 {
		t.Fatalf("phases lost in round trip: %+v", ds[0].Phases)
	}
	if !ds[0].Fast {
		t.Fatal("fast flag lost in round trip")
	}
	if ss[0].Name != "ranktable.build" || ss[0].Ns != 1500 || ss[0].Labels["group"] != "cpu" {
		t.Fatalf("span = %+v", ss[0])
	}
}

func TestRoundTripGzipFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"run.jsonl", "run.jsonl.gz"} {
		path := filepath.Join(dir, name)
		r, err := Create(path, sampleMeta())
		if err != nil {
			t.Fatalf("Create(%s): %v", name, err)
		}
		for i := 0; i < 50; i++ {
			r.RecordDecision(sampleDecision(i, i%4, float64(i)/100))
		}
		r.RecordSpan("sim.run", 99, nil)
		if err := r.Close(); err != nil {
			t.Fatalf("Close(%s): %v", name, err)
		}

		hdr, ds, ss, err := ReadAll(path)
		if err != nil {
			t.Fatalf("ReadAll(%s): %v", name, err)
		}
		if hdr.Meta.Kind != "sim" {
			t.Fatalf("%s: header meta = %+v", name, hdr.Meta)
		}
		if len(ds) != 50 || len(ss) != 1 {
			t.Fatalf("%s: got %d decisions, %d spans", name, len(ds), len(ss))
		}
		for i, d := range ds {
			if d.Seq != int64(i) {
				t.Fatalf("%s: decision %d has seq %d", name, i, d.Seq)
			}
			if !Equivalent(d, sampleDecision(i, i%4, float64(i)/100)) {
				t.Fatalf("%s: decision %d not equivalent", name, i)
			}
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", "", "empty recording"},
		{"not json", "hello\n", "parse header"},
		{"wrong format", `{"format":"other","version":1}` + "\n", "not a"},
		{"future version", `{"format":"prvm-decision-record","version":99}` + "\n", "unsupported format version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestReaderSkipsUnknownLineTypes(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewWriter(&buf, RunMeta{Kind: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	r.RecordDecision(sampleDecision(0, 1, 0.5))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Splice an unknown future line kind and a blank line between the
	// header and the decision; both must be skipped without error.
	parts := bytes.SplitN(buf.Bytes(), []byte("\n"), 2)
	var spliced bytes.Buffer
	spliced.Write(parts[0])
	spliced.WriteString("\n" + `{"t":"future-kind","x":1}` + "\n\n")
	spliced.Write(parts[1])
	_, ds, _, err := ReadAllFrom(bytes.NewReader(spliced.Bytes()))
	if err != nil {
		t.Fatalf("ReadAllFrom: %v", err)
	}
	if len(ds) != 1 {
		t.Fatalf("decision lost among unknown lines: %d", len(ds))
	}
}

func TestGzipSniffing(t *testing.T) {
	// A gzip stream written without the .gz suffix hint must still be
	// readable: the reader sniffs magic bytes, not file names.
	var raw bytes.Buffer
	gz := gzip.NewWriter(&raw)
	r, err := NewWriter(gz, sampleMeta())
	if err != nil {
		t.Fatal(err)
	}
	r.RecordDecision(sampleDecision(7, 2, 0.125))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	_, ds, _, err := ReadAllFrom(&raw)
	if err != nil {
		t.Fatalf("ReadAllFrom(gzip): %v", err)
	}
	if len(ds) != 1 || ds[0].VM != 7 {
		t.Fatalf("got %+v", ds)
	}
}

func TestEquivalentSemantics(t *testing.T) {
	base := sampleDecision(3, 9, 0.75)
	t.Run("metadata ignored", func(t *testing.T) {
		other := sampleDecision(3, 9, 0.75)
		other.Seq = 99
		other.Fast = false
		other.Phases = nil
		if !Equivalent(base, other) {
			t.Fatal("seq/fast/phases must be metadata, not identity")
		}
	})
	t.Run("identity fields compared", func(t *testing.T) {
		mutate := map[string]func(*Decision){
			"vm":            func(d *Decision) { d.VM++ },
			"vm type":       func(d *Decision) { d.VMType = "c3.xlarge" },
			"pm":            func(d *Decision) { d.PM++ },
			"pm type":       func(d *Decision) { d.PMType = "other" },
			"score bit":     func(d *Decision) { d.Score = math.Nextafter(d.Score, 1) },
			"scanned":       func(d *Decision) { d.Scanned++ },
			"profiles":      func(d *Decision) { d.Profiles++ },
			"ties":          func(d *Decision) { d.Ties++ },
			"tied pms":      func(d *Decision) { d.TiedPMs = []int{1} },
			"opened":        func(d *Decision) { d.Opened = !d.Opened },
			"rejected":      func(d *Decision) { d.Rejected = !d.Rejected },
			"cand missing":  func(d *Decision) { d.Candidates = d.Candidates[:1] },
			"cand status":   func(d *Decision) { d.Candidates[0].Status = StatusNoFit },
			"cand score":    func(d *Decision) { d.Candidates[1].Score++ },
			"cand unused":   func(d *Decision) { d.Candidates[0].Unused = true },
			"cand profiles": func(d *Decision) { d.Candidates[0].Profiles++ },
		}
		for name, f := range mutate {
			other := sampleDecision(3, 9, 0.75)
			f(&other)
			if Equivalent(base, other) {
				t.Errorf("%s change must break equivalence", name)
			}
		}
	})
	t.Run("negative zero differs from zero bitwise", func(t *testing.T) {
		a := sampleDecision(1, 1, 0)
		b := sampleDecision(1, 1, math.Copysign(0, -1))
		if Equivalent(a, b) {
			t.Fatal("scores compare bitwise: -0 != +0")
		}
	})
}

func TestDiff(t *testing.T) {
	mk := func(n int) []Decision {
		out := make([]Decision, n)
		for i := range out {
			out[i] = sampleDecision(i, i%3, float64(i)/8)
		}
		return out
	}
	t.Run("clean", func(t *testing.T) {
		s := Diff(mk(10), mk(10))
		if !s.Clean() || s.First != nil || s.Divergent != 0 {
			t.Fatalf("summary = %+v", s)
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "zero divergences") {
			t.Fatalf("report = %q", buf.String())
		}
	})
	t.Run("score divergence", func(t *testing.T) {
		a, b := mk(10), mk(10)
		b[4].Score += 0.5
		b[4].PM = 99
		s := Diff(a, b)
		if s.Clean() || s.Divergent != 1 {
			t.Fatalf("summary = %+v", s)
		}
		if s.First == nil || s.First.Index != 4 {
			t.Fatalf("first = %+v", s.First)
		}
		if s.MaxScoreDelta != 0.5 {
			t.Fatalf("max score delta = %g", s.MaxScoreDelta)
		}
		wantVMs := []int{4}
		if len(s.VMs) != 1 || s.VMs[0] != wantVMs[0] {
			t.Fatalf("VMs = %v", s.VMs)
		}
		// Both chosen PMs count as affected.
		if len(s.PMs) != 2 || s.PMs[0] != 1 || s.PMs[1] != 99 {
			t.Fatalf("PMs = %v", s.PMs)
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		s := Diff(mk(5), mk(7))
		if s.Divergent != 2 || s.First == nil || s.First.Index != 5 || s.First.A != nil {
			t.Fatalf("summary = %+v first=%+v", s, s.First)
		}
	})
	t.Run("sample cap", func(t *testing.T) {
		a, b := mk(100), mk(100)
		for i := range b {
			b[i].PM = 1000 + i
		}
		s := Diff(a, b)
		if s.Divergent != 100 || len(s.Samples) != maxDivergenceSamples {
			t.Fatalf("divergent=%d samples=%d", s.Divergent, len(s.Samples))
		}
	})
}

func TestSummarizePhases(t *testing.T) {
	ds := make([]Decision, 4)
	for i := range ds {
		ds[i] = sampleDecision(i, 0, 0.5)
		ds[i].Phases = &Phases{ScanNs: int64(1000 * (i + 1)), CheckNs: 100, BindNs: 10}
	}
	ds = append(ds, Decision{VM: 9}) // no phases — skipped
	spans := []Span{
		{Name: "ranktable.build", Ns: 2_000_000},
		{Name: "ranktable.build", Ns: 4_000_000},
		{Name: "sim.run", Ns: 9_000_000},
	}
	sums := SummarizePhases(ds, spans)
	byName := map[string]PhaseSummary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	if s := byName["place.scan"]; s.Count != 4 || s.Max != 4000e-9 {
		t.Fatalf("place.scan = %+v", s)
	}
	if s := byName["ranktable.build"]; s.Count != 2 || s.Max != 4e-3 {
		t.Fatalf("ranktable.build = %+v", s)
	}
	if s := byName["sim.run"]; s.Count != 1 || s.P50 != 9e-3 || s.P99 != 9e-3 {
		t.Fatalf("single-sample percentiles must all equal the sample: %+v", s)
	}
	// Sorted by name.
	for i := 1; i < len(sums); i++ {
		if sums[i-1].Name >= sums[i].Name {
			t.Fatalf("not sorted: %v", sums)
		}
	}
	var buf bytes.Buffer
	if err := WritePhases(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "place.scan") {
		t.Fatalf("table = %q", buf.String())
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Active() {
		t.Fatal("nil recorder must report inactive")
	}
	r.RecordDecision(Decision{})
	r.RecordSpan("x", 1, nil)
	if d := r.Decisions(); d != nil {
		t.Fatalf("Decisions = %v", d)
	}
	if s := r.Spans(); s != nil {
		t.Fatalf("Spans = %v", s)
	}
	if nd, ns := r.Counts(); nd != 0 || ns != 0 {
		t.Fatalf("Counts = %d, %d", nd, ns)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var rd *Reader
	if h := rd.Header(); h.Format != "" {
		t.Fatalf("nil reader header = %+v", h)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("nil reader Next err = %v", err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorCopiesScratch(t *testing.T) {
	r := NewCollector()
	d := sampleDecision(0, 1, 0.5)
	cands := d.Candidates
	tied := d.TiedPMs
	r.RecordDecision(d)
	// Mutate the caller's scratch buffers; the collected copy must not
	// see it.
	cands[0].PM = -77
	tied[0] = -77
	d.Phases.ScanNs = -77
	got := r.Decisions()[0]
	if got.Candidates[0].PM == -77 || got.TiedPMs[0] == -77 || got.Phases.ScanNs == -77 {
		t.Fatalf("collector aliased caller scratch: %+v", got)
	}
}
