package record

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Reader iterates one recording: the header, then decisions and spans
// in stream order. Gzip framing is auto-detected from the magic bytes,
// so callers never need to know how the file was written.
type Reader struct {
	hdr     Header
	sc      *bufio.Scanner
	line    int
	closers []io.Closer
}

// Open reads the recording at path.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		_ = f.Close() // cleanup on the error path; the open error is the story
		return nil, err
	}
	r.closers = append(r.closers, f)
	return r, nil
}

// NewReader reads a recording from src, sniffing gzip framing.
func NewReader(src io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("record: gzip: %w", err)
		}
		return newReader(gz, gz)
	}
	return newReader(br, nil)
}

func newReader(src io.Reader, c io.Closer) (*Reader, error) {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	r := &Reader{sc: sc}
	if c != nil {
		r.closers = append(r.closers, c)
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("record: read header: %w", err)
		}
		return nil, fmt.Errorf("record: empty recording")
	}
	r.line = 1
	if err := json.Unmarshal(sc.Bytes(), &r.hdr); err != nil {
		return nil, fmt.Errorf("record: parse header: %w", err)
	}
	if r.hdr.Format != FormatName {
		return nil, fmt.Errorf("record: not a %s file (format %q)", FormatName, r.hdr.Format)
	}
	if r.hdr.Version != FormatVersion {
		return nil, fmt.Errorf("record: unsupported format version %d (reader speaks %d)", r.hdr.Version, FormatVersion)
	}
	return r, nil
}

// Header returns the recording's header.
func (r *Reader) Header() Header {
	if r == nil {
		return Header{}
	}
	return r.hdr
}

// Entry is one post-header line: exactly one of Decision, Span or Op
// is non-nil.
type Entry struct {
	Decision *Decision
	Span     *Span
	Op       *Op
}

// Next returns the next entry, or io.EOF at the end of the stream.
func (r *Reader) Next() (Entry, error) {
	if r == nil {
		return Entry{}, io.EOF
	}
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return Entry{}, fmt.Errorf("record: line %d: %w", r.line, err)
			}
			return Entry{}, io.EOF
		}
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return Entry{}, fmt.Errorf("record: line %d: %w", r.line, err)
		}
		switch probe.T {
		case lineDecision:
			var d Decision
			if err := json.Unmarshal(raw, &d); err != nil {
				return Entry{}, fmt.Errorf("record: line %d: %w", r.line, err)
			}
			return Entry{Decision: &d}, nil
		case lineSpan:
			var s Span
			if err := json.Unmarshal(raw, &s); err != nil {
				return Entry{}, fmt.Errorf("record: line %d: %w", r.line, err)
			}
			return Entry{Span: &s}, nil
		case lineOp:
			var o Op
			if err := json.Unmarshal(raw, &o); err != nil {
				return Entry{}, fmt.Errorf("record: line %d: %w", r.line, err)
			}
			return Entry{Op: &o}, nil
		default:
			// Unknown line types are skipped, not fatal: future
			// versions may add record kinds without breaking old
			// readers of the same major format version.
			continue
		}
	}
}

// Close releases the underlying file and gzip layers.
func (r *Reader) Close() error {
	if r == nil {
		return nil
	}
	var first error
	for _, c := range r.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReadAll loads a whole recording: header, decisions and spans in
// stream order.
func ReadAll(path string) (Header, []Decision, []Span, error) {
	r, err := Open(path)
	if err != nil {
		return Header{}, nil, nil, err
	}
	h, decs, spans, err := drain(r)
	if cerr := r.Close(); err == nil && cerr != nil {
		err = cerr // a close failure can mean a truncated gzip stream
	}
	return h, decs, spans, err
}

// ReadAllFrom is ReadAll over an arbitrary stream.
func ReadAllFrom(src io.Reader) (Header, []Decision, []Span, error) {
	r, err := NewReader(src)
	if err != nil {
		return Header{}, nil, nil, err
	}
	h, decs, spans, err := drain(r)
	if cerr := r.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return h, decs, spans, err
}

func drain(r *Reader) (Header, []Decision, []Span, error) {
	var (
		ds []Decision
		ss []Span
	)
	for {
		e, err := r.Next()
		if err == io.EOF {
			return r.Header(), ds, ss, nil
		}
		if err != nil {
			return r.Header(), ds, ss, err
		}
		if e.Decision != nil {
			ds = append(ds, *e.Decision)
		} else if e.Span != nil {
			ss = append(ss, *e.Span)
		}
	}
}
