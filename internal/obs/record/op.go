package record

import "fmt"

// OpAssign is one committed unit of an op's assignment: Units resource
// units landed on global dimension index Dim of the hosting PM's
// shape. It mirrors resource.DimUnits with stable JSON field names so
// the WAL format does not depend on struct-field capitalization.
type OpAssign struct {
	Dim   int `json:"dim"`
	Units int `json:"units"`
}

// Op is one applied cluster mutation — the write-ahead-log entry shape
// of the serve daemon (internal/serve, DESIGN.md §14). Where Decision
// captures *why* a placement was chosen (the candidate set, scores,
// tie path), Op captures *what* was committed: enough to re-apply the
// mutation to a fresh cluster and reach bit-identical state. A WAL is
// an ordinary recording whose post-header lines are ops ("t":"o"), so
// it shares the versioned header, the gzip framing, the seq discipline
// and the readers of every other recording; readers that predate ops
// skip the lines (unknown line types are non-fatal by design).
//
// Replay contract: applying the ops of a recording in ascending Seq
// order to the inventory named by the header reconstructs the exact
// cluster state — per-PM used vectors, hosted-VM sets, concrete
// anti-collocation assignments, and (because ops touching one PM are
// logged in apply order) the used/unused list orders.
type Op struct {
	// Seq is the position in the recording's event stream, assigned by
	// the Recorder — shared with decisions and spans, gapless per
	// recording. Snapshot cuts are expressed against it: a snapshot
	// taken at seq S reflects exactly the ops with Seq < S.
	Seq int64 `json:"seq"`
	// Kind is OpPlace, OpRelease or OpRetire.
	Kind string `json:"kind"`
	// VM and VMType identify the VM instance being placed or released.
	VM     int    `json:"vm"`
	VMType string `json:"vm_type,omitempty"`
	// PM is the hosting PM: the destination of a place, the current
	// host of a release.
	PM int `json:"pm"`
	// PMType is the hosting PM's catalog type name.
	PMType string `json:"pm_type,omitempty"`
	// Assign is the concrete anti-collocation assignment committed by a
	// place: which dimension of the PM received each demanded unit.
	// Releases omit it (the cluster knows what the VM holds).
	Assign []OpAssign `json:"assign,omitempty"`
	// Score is the winning accommodation score of a place (metadata:
	// replay applies Assign, it never re-scores).
	Score float64 `json:"score,omitempty"`
	// Opened marks a place that powered on a previously unused PM
	// (metadata).
	Opened bool `json:"opened,omitempty"`
}

// Op kinds. An eviction/migration is deliberately not its own kind: it
// is logged as a release followed by a place, each self-contained, so
// replay needs no compound-operation logic and a crash between the two
// halves leaves a consistent (merely un-migrated) state.
const (
	// OpPlace: VM hosted on PM with the recorded assignment.
	OpPlace = "place"
	// OpRelease: VM released from PM, its resources returned.
	OpRelease = "release"
	// OpRetire: PM permanently removed from the inventory — the final
	// op of a maintenance drain, logged only after every hosted VM was
	// moved off (each move its own release+place pair). VM fields are
	// unused.
	OpRetire = "retire"
)

// lineOp is the "t" discriminator of an op line.
const lineOp = "o"

type opLine struct {
	T string `json:"t"`
	Op
}

// RecordOp appends op, overwriting op.Seq with the next sequence
// number, and returns the assigned seq (-1 on a nil/disabled
// recorder). Callers needing the seq durable before acknowledging —
// the serve daemon's WAL discipline — follow up with Flush or Sync.
func (r *Recorder) RecordOp(op Op) int64 {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	op.Seq = r.seq
	r.seq++
	r.nop++
	if r.collect {
		op.Assign = append([]OpAssign(nil), op.Assign...)
		r.ops = append(r.ops, op)
		return op.Seq
	}
	if r.err != nil {
		return op.Seq
	}
	if err := r.enc.Encode(opLine{T: lineOp, Op: op}); err != nil {
		r.err = fmt.Errorf("record: write op: %w", err)
	}
	return op.Seq
}

// Ops returns the collected ops (collector mode; nil otherwise). The
// slice is shared — callers must not modify it.
func (r *Recorder) Ops() []Op {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops
}
