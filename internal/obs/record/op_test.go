package record

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Ops round-trip through the JSONL stream with seq numbers shared with
// decisions and spans, and readers surface them as Entry.Op.
func TestOpRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewWriter(&buf, RunMeta{Kind: "serve-wal"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	seq0 := r.RecordOp(Op{Kind: OpPlace, VM: 7, VMType: "m3.large", PM: 3, PMType: "M3",
		Assign: []OpAssign{{Dim: 0, Units: 1}, {Dim: 2, Units: 1}}, Score: 0.5, Opened: true})
	r.RecordSpan("serve.batch", 123, nil)
	seq2 := r.RecordOp(Op{Kind: OpRelease, VM: 7, PM: 3})
	if seq0 != 0 || seq2 != 2 {
		t.Fatalf("op seqs = %d, %d; want 0, 2", seq0, seq2)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var ops []Op
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if e.Op != nil {
			ops = append(ops, *e.Op)
		}
	}
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[0].Kind != OpPlace || ops[0].VM != 7 || ops[0].PM != 3 || !ops[0].Opened {
		t.Errorf("place op mangled: %+v", ops[0])
	}
	if len(ops[0].Assign) != 2 || ops[0].Assign[1] != (OpAssign{Dim: 2, Units: 1}) {
		t.Errorf("assign mangled: %+v", ops[0].Assign)
	}
	if ops[1].Kind != OpRelease || ops[1].Seq != 2 {
		t.Errorf("release op mangled: %+v", ops[1])
	}
}

// A pre-op reader (simulated by a stream holding an unknown line type)
// must skip op lines rather than fail — the same forward-compatibility
// the reader grants all unknown "t" values.
func TestOpUnknownLineSkipped(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewWriter(&buf, RunMeta{Kind: "serve-wal"})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	r.RecordOp(Op{Kind: OpPlace, VM: 1, PM: 0})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	stream := bytes.Replace(buf.Bytes(), []byte(`{"t":"o"`), []byte(`{"t":"zz"`), 1)
	rd, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("Next on unknown-only stream = %v, want EOF", err)
	}
}

// SetNextSeq continues the recording-wide sequence across WAL segment
// files, and Sync survives on a file-backed recorder.
func TestOpSegmentContinuation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-1.jsonl")
	r, err := Create(path, RunMeta{Kind: "serve-wal"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	r.SetNextSeq(41)
	if got := r.NextSeq(); got != 41 {
		t.Fatalf("NextSeq = %d, want 41", got)
	}
	if seq := r.RecordOp(Op{Kind: OpPlace, VM: 9, PM: 1}); seq != 41 {
		t.Fatalf("continued seq = %d, want 41", seq)
	}
	if err := r.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// The synced bytes are readable before Close — the crash-recovery
	// property the WAL depends on.
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("read synced wal: %v (%d bytes)", err, len(data))
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rd, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() { _ = rd.Close() }()
	e, err := rd.Next()
	if err != nil || e.Op == nil {
		t.Fatalf("Next = %+v, %v; want op", e, err)
	}
	if e.Op.Seq != 41 {
		t.Fatalf("op seq = %d, want 41", e.Op.Seq)
	}
}

// Collector mode retains ops with copied assignment slices, so callers
// may reuse scratch buffers (the RecordDecision contract extends to
// ops).
func TestOpCollector(t *testing.T) {
	r := NewCollector()
	scratch := []OpAssign{{Dim: 1, Units: 2}}
	r.RecordOp(Op{Kind: OpPlace, VM: 1, PM: 0, Assign: scratch})
	scratch[0] = OpAssign{Dim: 9, Units: 9}
	ops := r.Ops()
	if len(ops) != 1 || ops[0].Assign[0] != (OpAssign{Dim: 1, Units: 2}) {
		t.Fatalf("collector retained aliased scratch: %+v", ops)
	}
}
