package record

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pagerankvm/internal/metrics"
)

// Divergence is one decision-level mismatch between two recordings.
type Divergence struct {
	// Index is the position in the decision streams (both streams are
	// indexed by decision order, ignoring spans).
	Index int
	// A and B are the diverging decisions; one side is nil when a
	// stream ended early.
	A, B *Decision
	// ScoreDelta is |A.Score - B.Score| when both sides exist.
	ScoreDelta float64
}

// String renders the divergence for the prvm-replay diff report: the
// decision index, the affected VM, and the two sides' PM choices with
// full-precision scores (one-sided when a stream ended early).
func (d Divergence) String() string {
	switch {
	case d.A == nil:
		return fmt.Sprintf("#%d: only in B: vm %d -> pm %d", d.Index, d.B.VM, d.B.PM)
	case d.B == nil:
		return fmt.Sprintf("#%d: only in A: vm %d -> pm %d", d.Index, d.A.VM, d.A.PM)
	default:
		return fmt.Sprintf("#%d: vm %d: A pm %d (score %.17g) vs B pm %d (score %.17g)",
			d.Index, d.A.VM, d.A.PM, d.A.Score, d.B.PM, d.B.Score)
	}
}

// maxDivergenceSamples bounds how many divergences a summary retains;
// counts keep accumulating past it.
const maxDivergenceSamples = 20

// DiffSummary aggregates a decision-by-decision comparison of two
// recordings.
type DiffSummary struct {
	// ADecisions and BDecisions are the stream lengths.
	ADecisions, BDecisions int
	// Divergent is the number of diverging positions.
	Divergent int
	// First is the first divergence (nil when clean) — the step where
	// two algorithm variants stopped agreeing.
	First *Divergence
	// MaxScoreDelta is the largest |score_A - score_B| across
	// divergences where both sides exist.
	MaxScoreDelta float64
	// VMs and PMs are the sorted distinct VM ids and (chosen) PM ids
	// involved in divergences.
	VMs, PMs []int
	// Samples retains the first maxDivergenceSamples divergences.
	Samples []Divergence
}

// Clean reports a divergence-free comparison.
func (s DiffSummary) Clean() bool { return s.Divergent == 0 }

// Diff compares two decision streams position by position using
// Equivalent (bitwise on scores; timings, seq and fast-path flags are
// metadata and ignored).
func Diff(a, b []Decision) DiffSummary {
	s := DiffSummary{ADecisions: len(a), BDecisions: len(b)}
	vms := map[int]bool{}
	pms := map[int]bool{}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var da, db *Decision
		if i < len(a) {
			da = &a[i]
		}
		if i < len(b) {
			db = &b[i]
		}
		if da != nil && db != nil && Equivalent(*da, *db) {
			continue
		}
		div := Divergence{Index: i, A: da, B: db}
		if da != nil && db != nil {
			div.ScoreDelta = math.Abs(da.Score - db.Score)
			if div.ScoreDelta > s.MaxScoreDelta {
				s.MaxScoreDelta = div.ScoreDelta
			}
		}
		for _, d := range []*Decision{da, db} {
			if d == nil {
				continue
			}
			vms[d.VM] = true
			if d.PM >= 0 {
				pms[d.PM] = true
			}
		}
		s.Divergent++
		if s.First == nil {
			first := div
			s.First = &first
		}
		if len(s.Samples) < maxDivergenceSamples {
			s.Samples = append(s.Samples, div)
		}
	}
	s.VMs = sortedKeys(vms)
	s.PMs = sortedKeys(pms)
	return s
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Write renders the summary for humans: verdict, first divergence,
// affected entities, samples.
func (s DiffSummary) Write(w io.Writer) error {
	if s.Clean() {
		_, err := fmt.Fprintf(w, "OK: %d decisions, zero divergences\n", s.ADecisions)
		return err
	}
	fmt.Fprintf(w, "DIVERGED: %d of max(%d, %d) decisions differ\n", s.Divergent, s.ADecisions, s.BDecisions)
	if s.First != nil {
		fmt.Fprintf(w, "first divergence at decision %s\n", s.First)
	}
	fmt.Fprintf(w, "max score delta: %.17g\n", s.MaxScoreDelta)
	fmt.Fprintf(w, "affected VMs (%d): %s\n", len(s.VMs), previewInts(s.VMs, 16))
	fmt.Fprintf(w, "affected PMs (%d): %s\n", len(s.PMs), previewInts(s.PMs, 16))
	for _, d := range s.Samples {
		fmt.Fprintf(w, "  %s\n", d)
	}
	if s.Divergent > len(s.Samples) {
		fmt.Fprintf(w, "  ... %d more\n", s.Divergent-len(s.Samples))
	}
	return nil
}

func previewInts(xs []int, max int) string {
	if len(xs) <= max {
		return fmt.Sprint(xs)
	}
	return fmt.Sprintf("%v...", xs[:max])
}

// PhaseSummary is the latency distribution of one phase or span across
// a recording, in seconds.
type PhaseSummary struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
	Mean  float64 `json:"mean_seconds"`
}

// SummarizePhases computes per-phase latency percentiles over the
// per-decision phase timings (scan/check/bind) and every named span in
// the recording, sorted by name.
func SummarizePhases(decisions []Decision, spans []Span) []PhaseSummary {
	samples := map[string][]float64{}
	add := func(name string, ns int64) {
		samples[name] = append(samples[name], float64(ns)/1e9)
	}
	for i := range decisions {
		ph := decisions[i].Phases
		if ph == nil {
			continue
		}
		add("place.scan", ph.ScanNs)
		add("place.check", ph.CheckNs)
		add("place.bind", ph.BindNs)
	}
	for i := range spans {
		add(spans[i].Name, spans[i].Ns)
	}
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]PhaseSummary, 0, len(names))
	for _, n := range names {
		xs := samples[n]
		out = append(out, PhaseSummary{
			Name:  n,
			Count: len(xs),
			P50:   metrics.Percentile(xs, 50),
			P95:   metrics.Percentile(xs, 95),
			P99:   metrics.Percentile(xs, 99),
			Max:   metrics.Percentile(xs, 100),
			Mean:  metrics.Mean(xs),
		})
	}
	return out
}

// WritePhases renders phase summaries as an aligned table in
// microseconds.
func WritePhases(w io.Writer, sums []PhaseSummary) error {
	if len(sums) == 0 {
		_, err := fmt.Fprintln(w, "no phase timings recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %8s %10s %10s %10s %10s %10s\n",
		"phase", "count", "p50(µs)", "p95(µs)", "p99(µs)", "max(µs)", "mean(µs)"); err != nil {
		return err
	}
	for _, s := range sums {
		us := func(sec float64) float64 { return sec * 1e6 }
		if _, err := fmt.Fprintf(w, "%-24s %8d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			s.Name, s.Count, us(s.P50), us(s.P95), us(s.P99), us(s.Max), us(s.Mean)); err != nil {
			return err
		}
	}
	return nil
}
