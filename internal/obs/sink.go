package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured trace record — a placement decision, an
// eviction, a table build. Fields keep insertion order so traces read
// the way the emitting layer wrote them.
type Event struct {
	Name   string
	Time   time.Time
	Fields []Field
}

// Field is one key/value pair of an event.
type Field struct {
	Key string
	Val any
}

// F builds a Field; the emit-site shorthand.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

func (e Event) stamped() Event {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	return e
}

// MarshalJSON renders the event as a flat object: name, time, then
// the fields in order.
func (e Event) MarshalJSON() ([]byte, error) {
	var buf []byte
	buf = append(buf, '{')
	appendKV := func(key string, val any) error {
		if len(buf) > 1 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(key)
		if err != nil {
			return err
		}
		v, err := json.Marshal(val)
		if err != nil {
			return err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
		return nil
	}
	if err := appendKV("event", e.Name); err != nil {
		return nil, err
	}
	if err := appendKV("time", e.Time.Format(time.RFC3339Nano)); err != nil {
		return nil, err
	}
	for _, f := range e.Fields {
		if err := appendKV(f.Key, f.Val); err != nil {
			return nil, err
		}
	}
	buf = append(buf, '}')
	return buf, nil
}

// EventSink receives emitted events. Implementations must be safe for
// concurrent Emit calls.
type EventSink interface {
	Emit(Event)
}

// RingSink keeps the most recent events in a fixed-capacity ring — the
// backing store of the HTTP /events endpoint.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRingSink returns a sink retaining the last capacity events
// (capacity <= 0 selects 1024).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements EventSink. No-op on a nil receiver.
func (r *RingSink) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Events returns the retained events, oldest first; nil on a nil
// receiver.
func (r *RingSink) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were ever emitted (including evicted
// ones).
func (r *RingSink) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriterSink streams events as JSON lines to w, serializing writers.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit implements EventSink. No-op on a nil receiver.
func (s *WriterSink) Emit(e Event) {
	if s == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s\n", b)
}

// TeeSink fans an event out to several sinks.
type TeeSink []EventSink

// Emit implements EventSink.
func (t TeeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
