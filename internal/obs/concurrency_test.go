package obs

import (
	"math"
	"sync"
	"testing"
)

// The satellite concurrency coverage: hammer every instrument kind
// from many goroutines (run under -race via `make check`) and verify
// exact totals — the CAS loops must not lose updates.

func TestConcurrentCounters(t *testing.T) {
	const goroutines, perG = 16, 10_000
	o := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve by name inside the goroutine: registration
			// itself must also be race-free.
			c := o.Counter("hammer.count")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := o.Counter("hammer.count").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentHistogram(t *testing.T) {
	const goroutines, perG = 8, 5_000
	o := New()
	bounds := ExpBuckets(1, 2, 10)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := o.Histogram("hammer.hist", bounds)
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 1000)
			}
		}()
	}
	wg.Wait()
	s := o.Histogram("hammer.hist", bounds).Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	// Sum of 0/1000 .. (N-1)/1000 — exact because float adds of these
	// magnitudes stay well inside 53 bits only approximately; allow a
	// tiny relative tolerance for the CAS float accumulation order.
	n := float64(goroutines * perG)
	want := n * (n - 1) / 2 / 1000
	if math.Abs(s.Sum-want) > 1e-6*want {
		t.Fatalf("sum = %v, want ~%v", s.Sum, want)
	}
	if s.Min != 0 || s.Max != (n-1)/1000 {
		t.Fatalf("min/max = %v/%v, want 0/%v", s.Min, s.Max, (n-1)/1000)
	}
}

func TestConcurrentGaugeAndSnapshot(t *testing.T) {
	const goroutines, perG = 8, 2_000
	o := New()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gauge := o.Gauge("hammer.gauge")
			for i := 0; i < perG; i++ {
				gauge.Add(1)
			}
		}()
	}
	// Snapshot concurrently with the writers — must not race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = o.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := o.Gauge("hammer.gauge").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentEmit(t *testing.T) {
	const goroutines, perG = 8, 500
	o := New()
	ring := NewRingSink(64)
	o.SetSink(ring)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				o.Emit(Event{Name: "e", Fields: []Field{F("i", i)}})
			}
		}()
	}
	wg.Wait()
	if ring.Total() != goroutines*perG {
		t.Fatalf("emitted %d, want %d", ring.Total(), goroutines*perG)
	}
	if len(ring.Events()) != 64 {
		t.Fatalf("ring holds %d, want 64", len(ring.Events()))
	}
}
