// Package analysis is the static-analysis layer of the reproduction: a
// small, dependency-free re-implementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a package
// loader, used to enforce domain invariants the Go compiler cannot see:
//
//   - detrand: no global math/rand state in non-test code — simulations
//     and 2-choice sampling must draw from an injected seeded
//     *rand.Rand so experiments stay reproducible (EXPERIMENTS.md).
//   - floateq: no ==/!= on floating-point operands — PageRank scores
//     and utilizations are floats; equality on them is either a bug or
//     a disguised "unset" sentinel that belongs in an explicit option.
//   - obsnilguard: every exported pointer-receiver method of
//     internal/obs starts with a nil-receiver guard, preserving the
//     "disabled instrumentation is one branch" contract.
//   - veclen: resource.Vec values with provably different dimension
//     counts must not meet in an element-wise operation — one dimension
//     per physical core/disk is the paper's anti-collocation encoding.
//   - lockscope: mutex Lock/RLock in internal/sim and internal/testbed
//     must pair with a deferred Unlock in the same function.
//
// The x/tools module is deliberately not a dependency (the module has
// none); the subset implemented here — an Analyzer struct with a Run
// hook over a type-checked Pass, // want `regexp` fixture tests, and a
// multichecker driver (cmd/prvm-lint) — is API-compatible enough that
// migrating to the real go/analysis later is mechanical. See
// DESIGN.md §8 and README.md ("Static analysis") for the catalog and
// for how to add an analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. It mirrors the x/tools
// go/analysis Analyzer surface that the suite needs.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //prvmlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is the invariant,
	// the rest explains why it holds.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	allow map[allowKey]bool
}

// Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //prvmlint:allow directive
// on the same or the preceding line suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow[allowKey{position.Filename, position.Line, p.Analyzer.Name}] ||
		p.allow[allowKey{position.Filename, position.Line - 1, p.Analyzer.Name}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

type allowKey struct {
	file string
	line int
	name string
}

// allowDirective matches "//prvmlint:allow name1,name2 optional reason".
var allowDirective = regexp.MustCompile(`^//prvmlint:allow\s+([a-z0-9_,]+)`)

// collectAllows indexes every //prvmlint:allow directive of the package
// by (file, line, analyzer). A directive suppresses findings on its own
// line and on the line below it, so it works both as a trailing comment
// and as a standalone line above the construct.
func collectAllows(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	allow := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					allow[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return allow
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Analyzer errors (not findings) abort.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
				allow:     allow,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
