package analysis

import (
	"go/ast"
	"go/types"
)

// Errswallow flags call statements that silently drop an error result.
//
// This is the PR 5 silent-job-loss shape: a dispatch failure whose
// error went nowhere, so jobs vanished without a trace until the
// dead-agent sweep found the hole. A call used as a bare statement
// (or deferred) discards every result; when one of those results is an
// error, the failure path is invisible — no log line, no counter, no
// propagation.
//
// The fix is always one of three, in order of preference: propagate
// the error, record it (obs counter or log), or discard it explicitly
// with `_ = f()` so the drop is a visible decision rather than an
// accident. The analyzer treats the explicit discard as sanctioned —
// it only flags the bare statement form.
//
// Writers that are documented never to fail (fmt print family,
// bytes.Buffer, strings.Builder) are exempt: their error results exist
// only to satisfy io interfaces.
var Errswallow = &Analyzer{
	Name: "errswallow",
	Doc:  "bare call statements must not discard error results; propagate, record, or discard with _ =",
	Run:  runErrswallow,
}

func runErrswallow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkErrswallowCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkErrswallowCall(pass, s.Call, "deferred ")
			}
			return true
		})
	}
	return nil
}

func checkErrswallowCall(pass *Pass, call *ast.CallExpr, form string) {
	if !returnsError(pass, call) || errswallowExempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall discards its error result; propagate it, record it, or discard explicitly with _ =", form)
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// errswallowExempt reports whether the callee's error result is
// vestigial: the fmt print family and the in-memory writers whose
// documentation guarantees a nil error.
func errswallowExempt(pass *Pass, call *ast.CallExpr) bool {
	if calleePackage(pass, call) == "fmt" && fmtPrintFuncs[calleeName(pass, call)] {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := exprType(pass, sel.X)
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}
