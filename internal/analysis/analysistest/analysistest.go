// Package analysistest runs an analyzer over a GOPATH-style fixture
// tree and checks its diagnostics against // want `regexp` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// dependency-free internal/analysis framework.
//
// Fixture layout: <testdata>/src/<pkgpath>/*.go. A fixture line that
// should trigger a finding carries a trailing comment:
//
//	rand.Intn(6) // want `global rand\.Intn`
//
// Every diagnostic must be matched by a want on its line and every
// want must be matched by a diagnostic; both directions fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pagerankvm/internal/analysis"
)

// wantRe matches the expectation comment: // want `re` or // want "re",
// with one or more patterns.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and reports any mismatch between diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	for _, path := range paths {
		pkg, err := analysis.LoadFixture(srcRoot, path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, d := range diags {
			if !matchWant(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", a.Name, w.file, w.line, w.re)
			}
		}
	}
}

func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range wantPattern.FindAllString(m[1], -1) {
					var pattern string
					if strings.HasPrefix(raw, "`") {
						pattern = strings.Trim(raw, "`")
					} else {
						unquoted, err := strconv.Unquote(raw)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
						}
						pattern = unquoted
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
