package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// Load loads and type-checks the non-test Go files of the packages
// matching patterns (e.g. "./..."), resolved in dir's module. It shells
// out to `go list -deps -export` so every dependency — standard library
// and intra-module alike — is imported from compiler export data, which
// works offline and never re-type-checks the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := &exportImporter{gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})}

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info})
	}
	return pkgs, nil
}

// exportImporter resolves "unsafe" specially and everything else from
// export data.
type exportImporter struct{ gc types.Importer }

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// LoadFixture loads the single fixture package in srcRoot/<path>
// (GOPATH-style testdata layout). Imports resolve first against
// sibling fixture packages under srcRoot, then against the standard
// library, type-checked from source — fixtures have no export data.
func LoadFixture(srcRoot, path string) (*Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:    fset,
		srcRoot: srcRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  make(map[string]*Package),
	}
	pkg, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// fixtureImporter type-checks testdata packages recursively from
// source, falling back to the standard library importer.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	loaded  map[string]*Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(im.srcRoot, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

func (im *fixtureImporter) load(path string) (*Package, error) {
	if pkg, ok := im.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %q: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture %q: no Go files in %s", path, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check fixture %q: %w", path, err)
	}
	pkg := &Package{Fset: im.fset, Syntax: files, Types: tpkg, TypesInfo: info}
	im.loaded[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
