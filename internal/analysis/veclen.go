package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Veclen flags element-wise resource.Vec operations whose operands
// provably have different dimension counts.
//
// A Vec carries one integer per physical dimension — per core, per
// disk — and the anti-collocation encoding of the paper depends on
// every Vec of a shape having exactly the shape's dimension count.
// The element-wise methods (Add, Sub, LE, Equal) panic or silently
// return false on mismatched lengths; both are programming errors that
// should not wait for a run to surface. The analyzer proves lengths
// for composite literals, make calls with constant size (including a
// dim constant imported from another package), conversions of
// provable operands, and local variables with a single provable
// definition that are never reassigned or address-taken. When both
// sides of an element-wise call (a one-Vec-argument method on a Vec
// receiver) or an index expression are provable and disagree, it
// reports.
var Veclen = &Analyzer{
	Name: "veclen",
	Doc:  "flag resource.Vec operations with provably mismatched dimension counts",
	Run:  runVeclen,
}

func runVeclen(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkVeclenFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkVeclenFunc analyzes one function body (function literals are
// visited as part of the enclosing body — slice lengths don't change
// across closure boundaries, so one environment is sound here because
// invalidation already covers any reassignment wherever it occurs).
func checkVeclenFunc(pass *Pass, body *ast.BlockStmt) {
	env := buildLenEnv(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkElementwiseCall(pass, env, e)
		case *ast.IndexExpr:
			checkVecIndex(pass, env, e)
		}
		return true
	})
}

// checkElementwiseCall reports method calls vec.M(other) where both the
// Vec-typed receiver and the single Vec-typed argument have provable,
// different lengths.
func checkElementwiseCall(pass *Pass, env map[types.Object]int, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if !isVecType(selection.Recv()) || !isVecType(exprType(pass, call.Args[0])) {
		return
	}
	recvLen, ok1 := provableLen(pass, env, sel.X)
	argLen, ok2 := provableLen(pass, env, call.Args[0])
	if ok1 && ok2 && recvLen != argLen {
		pass.Reportf(call.Pos(),
			"resource.Vec dimension mismatch in %s: receiver has %d dims, argument has %d — vectors from different shapes",
			sel.Sel.Name, recvLen, argLen)
	}
}

// checkVecIndex reports v[i] where v is a Vec with provable length and
// i is a constant outside [0, len).
func checkVecIndex(pass *Pass, env map[types.Object]int, ix *ast.IndexExpr) {
	if !isVecType(exprType(pass, ix.X)) {
		return
	}
	tv, ok := pass.TypesInfo.Types[ix.Index]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	idx, exact := constant.Int64Val(tv.Value)
	if !exact {
		return
	}
	n, ok := provableLen(pass, env, ix.X)
	if !ok {
		return
	}
	if idx < 0 || idx >= int64(n) {
		pass.Reportf(ix.Pos(),
			"resource.Vec index %d out of range for a %d-dimension vector", idx, n)
	}
}

// isVecType reports whether t is (an alias of, or pointer to) the
// named type Vec declared in a package named "resource".
func isVecType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Vec" && obj.Pkg() != nil && obj.Pkg().Name() == "resource"
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// buildLenEnv maps local Vec variables to a proven length: the variable
// must have exactly one defining assignment with a directly provable
// RHS and must never be reassigned or address-taken afterwards.
// Resolution iterates so chains like v := w propagate.
func buildLenEnv(pass *Pass, body *ast.BlockStmt) map[types.Object]int {
	defs := make(map[types.Object]ast.Expr) // candidate single definition
	dead := make(map[types.Object]bool)     // invalidated variables

	kill := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				dead[obj] = true
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[id]
					// Defs maps type-switch symbolic variables to nil.
					if !ok || obj == nil || !isVecType(obj.Type()) {
						continue
					}
					if _, seen := defs[obj]; seen {
						dead[obj] = true // redefinition (shadow reuse)
						continue
					}
					defs[obj] = s.Rhs[i]
				}
			} else {
				for _, lhs := range s.Lhs {
					kill(lhs) // plain reassignment (incl. v = append(v, ...))
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				kill(s.X) // address taken: anything may mutate it
			}
		case *ast.RangeStmt:
			kill(s.Key)
			kill(s.Value)
		}
		return true
	})

	env := make(map[types.Object]int)
	for changed := true; changed; {
		changed = false
		for obj, rhs := range defs {
			if dead[obj] {
				continue
			}
			if _, done := env[obj]; done {
				continue
			}
			if n, ok := provableLen(pass, env, rhs); ok {
				env[obj] = n
				changed = true
			}
		}
	}
	for obj := range dead {
		delete(env, obj)
	}
	return env
}

// provableLen computes the length of a Vec-valued expression when it
// can be established syntactically.
func provableLen(pass *Pass, env map[types.Object]int, e ast.Expr) (int, bool) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return provableLen(pass, env, x.X)
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(x); obj != nil {
			if n, ok := env[obj]; ok {
				return n, true
			}
		}
		return 0, false
	case *ast.CompositeLit:
		if !isVecType(exprType(pass, x)) {
			return 0, false
		}
		return compositeLen(pass, x)
	case *ast.CallExpr:
		// make(Vec, n[, cap]) with constant n.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 2 {
			if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
				if tv, ok := pass.TypesInfo.Types[x.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if n, exact := constant.Int64Val(tv.Value); exact && n >= 0 {
						return int(n), true
					}
				}
			}
			return 0, false
		}
		// Conversion Vec(expr) of a provable operand.
		if len(x.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return provableLen(pass, env, x.Args[0])
			}
		}
		return 0, false
	}
	return 0, false
}

// compositeLen computes the length of a slice composite literal,
// honoring constant keyed elements (Vec{3: 1} has length 4).
func compositeLen(pass *Pass, lit *ast.CompositeLit) (int, bool) {
	n := 0
	next := 0
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			tv, ok := pass.TypesInfo.Types[kv.Key]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return 0, false
			}
			k, exact := constant.Int64Val(tv.Value)
			if !exact {
				return 0, false
			}
			next = int(k) + 1
		} else {
			next++
		}
		if next > n {
			n = next
		}
	}
	return n, true
}
