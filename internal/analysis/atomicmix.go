package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix flags struct fields that are accessed both through
// sync/atomic and through plain loads or stores in the same package.
//
// Mixing the two breaks the memory model both ways: a plain read can
// observe a torn or stale value concurrently with atomic writers, and
// a plain write can be lost under an atomic read-modify-write. The
// race detector only catches the mix when both sides actually collide
// during a test run; the analyzer catches it from the source. Once a
// field is touched by atomic.AddInt64/LoadUint32/CompareAndSwap/...,
// every access must go through sync/atomic (an atomically-published
// snapshot read under a mutex carries //prvmlint:allow atomicmix with
// the invariant that makes it safe).
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields used with sync/atomic must not also have plain loads or stores",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	atomicFields := make(map[types.Object]bool)
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				sel := addrOfSelector(arg)
				if sel == nil {
					continue
				}
				if obj := fieldObject(pass, sel); obj != nil {
					atomicFields[obj] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package; this plain access races with the atomic ones",
				obj.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the callee is a sync/atomic function.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addrOfSelector unwraps &x.f (possibly parenthesized) to the x.f
// selector, or nil.
func addrOfSelector(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// fieldObject resolves a selector to the struct-field variable it
// names, or nil when the selector is not a field access.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
