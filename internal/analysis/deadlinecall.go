package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deadlinecall requires blocking transport calls in the testbed to sit
// on a deadline-armed path.
//
// PR 5's fault model only works because every control-protocol round
// trip is bounded: Config.CallTimeout arms the conn's deadline before
// Send/Recv, so a dropped message becomes a timeout (and a retry, and
// eventually dead-agent recovery) instead of a controller hung forever
// on a Recv that no one will answer. A new blocking call that skips
// the arming step silently reintroduces the hang.
//
// Within internal/testbed, the analyzer flags calls to Send/Recv on
// testbed connection types and Read/Write on net.Conn, unless
//
//   - the enclosing function also calls SetDeadline (or the Read/Write
//     variants) — the controller's roundTrip shape, or
//   - the enclosing method's receiver itself has a SetDeadline method
//     — transport wrappers (chanConn, gobConn, faultConn) forward
//     calls whose deadline the caller armed.
//
// Deliberately unbounded calls (the agent loop blocking for the next
// command, fenced by conn Close) carry //prvmlint:allow deadlinecall
// with the reason.
var Deadlinecall = &Analyzer{
	Name: "deadlinecall",
	Doc:  "testbed Send/Recv/Read/Write must be on a path that arms a deadline",
	Run:  runDeadlinecall,
}

// deadlinecallPkg scopes the analyzer to the testbed (by import path in
// this module, by package name in fixtures).
func deadlinecallPkg(pkg *types.Package) bool {
	return strings.HasSuffix(pkg.Path(), "internal/testbed") || pkg.Name() == "testbed"
}

var deadlineSetters = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func runDeadlinecall(pass *Pass) error {
	if !deadlinecallPkg(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && hasSetDeadline(pass, fd.Recv.List[0].Type) {
				continue // transport wrapper: the caller arms the deadline
			}
			checkDeadlineBody(pass, fd.Body)
		}
	}
	return nil
}

// hasSetDeadline reports whether the receiver type's method set
// includes SetDeadline.
func hasSetDeadline(pass *Pass, recv ast.Expr) bool {
	t := exprType(pass, recv)
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if deadlineSetters[ms.At(i).Obj().Name()] {
			return true
		}
	}
	return false
}

// checkDeadlineBody flags blocking transport calls in one function
// body unless a deadline-arming call is present in the same body
// (nested literals included: DialTCPPair's accept goroutine belongs to
// the dial's deadline discipline).
func checkDeadlineBody(pass *Pass, body *ast.BlockStmt) {
	armed := false
	var blocking []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if deadlineSetters[sel.Sel.Name] {
			armed = true
			return true
		}
		if isBlockingTransportCall(pass, sel) {
			blocking = append(blocking, call)
		}
		return true
	})
	if armed {
		return
	}
	for _, call := range blocking {
		sel := call.Fun.(*ast.SelectorExpr)
		pass.Reportf(call.Pos(),
			"%s.%s() blocks with no deadline armed in this function; arm SetDeadline from Config.CallTimeout or the call can hang forever",
			types.ExprString(sel.X), sel.Sel.Name)
	}
}

// isBlockingTransportCall reports whether sel names a blocking
// transport method: Send/Recv declared in a testbed package, or
// Read/Write on a net.Conn.
func isBlockingTransportCall(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch sel.Sel.Name {
	case "Send", "Recv":
		return deadlinecallPkg(fn.Pkg())
	case "Read", "Write":
		if fn.Pkg().Path() != "net" {
			return false
		}
		return isNetConn(exprType(pass, sel.X))
	}
	return false
}

func isNetConn(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Conn" && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}
