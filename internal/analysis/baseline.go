package analysis

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Baseline support: a checked-in inventory of pre-existing findings
// that the gate tolerates until the code they sit on is touched.
//
// An entry is one line, tab-separated:
//
//	file<TAB>analyzer<TAB>message
//
// with '#' comments and blank lines ignored. Line numbers are
// deliberately absent: an edit far above a baselined finding must not
// resurrect it. Editing the flagged construct itself either removes
// the finding (the entry goes stale — an error, so the baseline
// shrinks monotonically) or changes its message (the new finding is
// unbaselined — also an error). Both directions fail closed.
//
// Entries are counted, not set-matched: two identical findings in one
// file need two identical lines, so deleting one of two baselined
// constructs still shrinks the baseline.

// BaselineEntry identifies one tolerated finding.
type BaselineEntry struct {
	File     string // slash-separated, relative to the lint root
	Analyzer string
	Message  string
}

func (e BaselineEntry) String() string {
	return e.File + "\t" + e.Analyzer + "\t" + e.Message
}

// ParseBaseline parses the baseline format. Order is irrelevant;
// duplicate lines accumulate.
func ParseBaseline(data []byte) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want file<TAB>analyzer<TAB>message, got %q", i+1, line)
		}
		entries = append(entries, BaselineEntry{File: parts[0], Analyzer: parts[1], Message: parts[2]})
	}
	return entries, nil
}

// FormatBaseline renders diagnostics as a baseline file. rel maps a
// diagnostic's (absolute) filename to the stable relative form stored
// in the baseline.
func FormatBaseline(diags []Diagnostic, rel func(string) string) []byte {
	var buf bytes.Buffer
	buf.WriteString("# prvm-lint baseline: pre-existing findings tolerated until their code is touched.\n")
	buf.WriteString("# One per line: file<TAB>analyzer<TAB>message. Regenerate: make lint-baseline.\n")
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		e := BaselineEntry{File: rel(d.Pos.Filename), Analyzer: d.Analyzer, Message: d.Message}
		lines = append(lines, e.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// ApplyBaseline consumes one baseline entry per matching diagnostic
// and returns the diagnostics left unmatched plus the entries that
// matched nothing (stale — the finding they tolerated is gone).
func ApplyBaseline(diags []Diagnostic, entries []BaselineEntry, rel func(string) string) (remaining []Diagnostic, stale []BaselineEntry) {
	budget := make(map[BaselineEntry]int, len(entries))
	for _, e := range entries {
		budget[e]++
	}
	for _, d := range diags {
		e := BaselineEntry{File: rel(d.Pos.Filename), Analyzer: d.Analyzer, Message: d.Message}
		if budget[e] > 0 {
			budget[e]--
			continue
		}
		remaining = append(remaining, d)
	}
	for _, e := range entries {
		if budget[e] > 0 {
			budget[e]--
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].String() < stale[j].String() })
	return remaining, stale
}
