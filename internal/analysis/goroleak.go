package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak flags `go` statements that spawn a goroutine with no
// visible completion or cancellation mechanism.
//
// The testbed control plane (PR 5) fixed goroutine leaks by hand:
// agent loops that outlived their conns, accept goroutines holding
// half-open sockets. The common factor was a goroutine nothing could
// wait for or stop. The analyzer requires every spawned goroutine to
// carry at least one lifecycle signal:
//
//   - a sync.WaitGroup method call (Done/Add) in the body,
//   - a channel operation — send, receive, close, or select — in the
//     body (completion channels, done channels, result channels),
//   - a context.Context value in scope of the body, or
//   - for `go f(args...)` on a named function: a channel, context or
//     *sync.WaitGroup among the arguments (the callee owns the
//     signal).
//
// A goroutine with none of these cannot be joined, cannot be
// cancelled, and leaks silently when its work outlives the caller —
// under sustained traffic that is an unbounded goroutine (and often
// conn) leak. Intentional process-lifetime goroutines carry a
// //prvmlint:allow goroleak with a reason.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "go statements need a WaitGroup, channel operation, or context reachable in scope",
	Run:  runGoroleak,
}

func runGoroleak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !hasLifecycleSignal(pass, lit.Body) && !hasLifecycleArg(pass, g.Call) {
					pass.Reportf(g.Pos(),
						"goroutine has no WaitGroup, channel operation, or context: nothing can wait for it or stop it")
				}
				return true
			}
			if !hasLifecycleArg(pass, g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine call passes no WaitGroup, channel, or context: nothing can wait for it or stop it")
			}
			return true
		})
	}
	return nil
}

// hasLifecycleSignal reports whether body contains a WaitGroup call, a
// channel operation, a select, or a context.Context use. Nested
// function literals count: a completion signal sent from a helper
// closure still fences the goroutine.
func hasLifecycleSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if isChanType(exprType(pass, s.X)) {
				found = true
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if isBuiltinCall(pass, s, "close") {
				found = true
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
					(fn.Name() == "Done" || fn.Name() == "Add" || fn.Name() == "Wait") {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[s]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasLifecycleArg reports whether the call's arguments (or method
// receiver) include a channel, a context.Context, or a *sync.WaitGroup
// — the callee is then assumed to manage the goroutine's lifecycle.
func hasLifecycleArg(pass *Pass, call *ast.CallExpr) bool {
	exprs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		t := exprType(pass, e)
		if isChanType(t) || isContextType(t) || isWaitGroupPtr(t) {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
