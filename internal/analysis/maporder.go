package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags ranging over a map where the loop body produces
// order-sensitive results.
//
// Go randomizes map iteration order per range statement, so any value
// computed inside a map range that depends on visit order differs
// between two runs of the same binary with the same seed. That breaks
// the decision-stream contract the golden-replay gate (DESIGN.md §11)
// enforces: Algorithm 2 must produce one canonical decision sequence
// per seed, bit for bit. Three body shapes are order-sensitive:
//
//   - appending to a slice declared outside the loop — unless the
//     slice is later passed to a sort call in the same function (the
//     canonical collect-then-sort fix, which the analyzer recognizes
//     and leaves alone);
//   - floating-point accumulation (+=, -=, *=, /= on float operands,
//     including indexed element updates): float arithmetic is not
//     associative, so the accumulated value depends on visit order
//     even when the set of contributions is identical;
//   - emitting output or recording decisions (fmt print family calls,
//     methods of the internal/obs/record recorder): the stream order
//     becomes the map order.
//
// Integer accumulation is exact and commutative, map/set building has
// no order, and both stay legal.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding slices, float accumulators, output or the decision recorder is order-dependent",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMaporderFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkMaporderFunc scans one function body (closures are visited as
// part of it: the sorted-later exemption must see sorts wherever they
// happen in the function).
func checkMaporderFunc(pass *Pass, body *ast.BlockStmt) {
	sorted := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(exprType(pass, rng.X)) {
			return true
		}
		checkMaporderBody(pass, rng, sorted)
		return true
	})
}

// sortedSlices collects the objects of slices passed to a sort or
// slices call anywhere in the function — appends into them from a map
// range are the deliberate collect-then-sort idiom.
func sortedSlices(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if pkg := calleePackage(pass, call); pkg != "sort" && pkg != "slices" {
			return true
		}
		if obj := identObject(pass, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// checkMaporderBody reports the order-sensitive constructs of one
// map-range body. Nested function literals are skipped: they usually
// run outside the loop (deferred, spawned), and when they do run
// inside, the enclosing assignment or call is still visible here.
func checkMaporderBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// A nested map range is checked on its own by
			// checkMaporderFunc; descending into it here would
			// report its body twice.
			if isMapType(exprType(pass, s.X)) {
				return false
			}
		case *ast.AssignStmt:
			checkMaporderAssign(pass, rng, s, sorted)
		case *ast.CallExpr:
			checkMaporderCall(pass, s)
		}
		return true
	})
}

func checkMaporderAssign(pass *Pass, rng *ast.RangeStmt, s *ast.AssignStmt, sorted map[types.Object]bool) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) — order-dependent unless x is sorted later
		// or lives entirely inside one iteration (declared in the loop
		// body, so every visit starts it fresh).
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass, call, "append") || i >= len(s.Lhs) {
				continue
			}
			obj := identObject(pass, s.Lhs[i])
			if obj == nil || sorted[obj] {
				continue
			}
			if obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
				continue
			}
			pass.Reportf(s.Pos(),
				"append to %s inside map iteration is order-dependent; collect and sort, or range over sorted keys",
				obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Float accumulation: not associative, so the sum depends on
		// the (random) visit order. Integer accumulation is exact.
		if len(s.Lhs) == 1 && isFloatType(exprType(pass, s.Lhs[0])) {
			pass.Reportf(s.Pos(),
				"floating-point accumulation inside map iteration is order-dependent (float addition is not associative); iterate sorted keys")
		}
	}
}

func checkMaporderCall(pass *Pass, call *ast.CallExpr) {
	// fmt print family: the output order becomes the map order.
	if pkg := calleePackage(pass, call); pkg == "fmt" {
		if fn := calleeName(pass, call); fmtPrintFuncs[fn] {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration emits output in map order; iterate sorted keys", fn)
		}
		return
	}
	// Recorder writes: the decision/span stream order becomes the map
	// order, which the golden-replay diff will flag one recording later.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			if recv := fn.Pkg(); recv != nil && recv.Name() == "record" {
				pass.Reportf(call.Pos(),
					"recorder call %s inside map iteration writes the stream in map order; iterate sorted keys", fn.Name())
			}
		}
	}
}

var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// identObject resolves e (possibly parenthesized) to the object of a
// plain identifier; nil for anything more complex.
func identObject(pass *Pass, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// calleePackage returns the import-path-less package name of a pkg.F
// call, or "" when the callee is not a package-level selector.
func calleePackage(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pkg.Imported().Name()
	}
	return ""
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, builtin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return builtin
}
