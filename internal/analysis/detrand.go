package analysis

import (
	"go/ast"
	"go/types"
)

// Detrand forbids the global math/rand source in non-test code.
//
// The experiments pipeline (EXPERIMENTS.md) promises bit-for-bit
// reproducible runs from a seed, and the 2-choice sampling and
// tie-breaking paths of the placer consume randomness on the placement
// hot path. A single call to a top-level math/rand function — which
// draws from the process-global, externally seedable source — breaks
// that promise silently. Constructors (rand.New, rand.NewSource,
// rand.NewZipf) stay legal: they are exactly how an injected seeded
// *rand.Rand is built.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand functions; inject a seeded *rand.Rand instead",
	Run:  runDetrand,
}

// detrandAllowed lists the math/rand (and /v2) package-level names that
// construct explicit generators rather than consuming the global one.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // type or var reference (rand.Rand, rand.Source)
			}
			if detrandAllowed[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global rand.%s draws from the shared math/rand source; use an injected seeded *rand.Rand (see EXPERIMENTS.md reproducibility contract)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
