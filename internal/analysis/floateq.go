package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point operands.
//
// PageRank scores, absorption values and utilizations are float64;
// exact equality on them is either a latent bug (two mathematically
// equal scores rarely compare equal after independent float
// arithmetic) or a disguised "unset" sentinel (damping == 0), which
// belongs in an explicit option (*float64 or a set-flag) instead.
//
// Two idioms stay legal: comparing an expression with itself (the
// standard NaN test, x != x) and fully constant comparisons, which the
// compiler folds. Anything else needs a //prvmlint:allow floateq
// directive with a reason — and production code should not need one.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point operands; order them or make sentinels explicit",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo, be.X) && !isFloat(pass.TypesInfo, be.Y) {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[be]; ok && tv.Value != nil {
				return true // constant-folded: no runtime float comparison
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x — the NaN idiom
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison (%s); use an ordered comparison, math.Abs tolerance, or an explicit set-flag/pointer option for sentinels",
				be.Op, types.ExprString(be))
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
