package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc flags allocating constructs inside functions annotated
// //prvm:hotpath.
//
// The PR 3 fast path holds one placement candidate evaluation at
// ~25ns and 0 allocs/op; a single allocation in ScoreOn or a CSR
// kernel is a 2-10x regression plus GC pressure that the serve daemon
// will pay on every request. The benchmark catches a regression after
// the fact; the annotation plus this analyzer catches it at lint time
// and marks the contract in the source, where the next editor sees it.
//
// In an annotated function the analyzer flags:
//
//   - the allocating builtins make, new, and append;
//   - slice, map, and pointer (&T{...}) composite literals;
//   - string concatenation (+ / += on strings builds a new string);
//   - string <-> []byte / []rune conversions (they copy);
//   - function literals (closures capture to the heap);
//   - arguments converted to interface types at a call site
//     (interface boxing escapes the value).
//
// Deliberate allocations — a result slice documented "allocate only
// the returned value", an append into caller scratch via dst[:0] —
// carry //prvmlint:allow hotalloc with the reason. The annotation is
// advisory for the compiler but binding for the linter: annotate only
// functions the bench suite holds at 0 allocs/op.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//prvm:hotpath functions must not allocate: no make/new/append, literals, string concat, boxing, or closures",
	Run:  runHotalloc,
}

// hotpathDirective marks a function as allocation-free. Written with
// no space after // so it reads as a directive, not prose.
const hotpathDirective = "prvm:hotpath"

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotallocBody(pass, fd)
		}
	}
	return nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotallocBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(),
				"closure in hotpath function %s allocates (captured variables escape)", name)
			return false
		case *ast.CompositeLit:
			switch types.Unalias(exprType(pass, e)).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal in hotpath function %s allocates", name)
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal in hotpath function %s allocates", name)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal in hotpath function %s allocates", name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(exprType(pass, e.X)) {
				pass.Reportf(e.Pos(), "string concatenation in hotpath function %s allocates", name)
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(exprType(pass, e.Lhs[0])) {
				pass.Reportf(e.Pos(), "string concatenation in hotpath function %s allocates", name)
			}
		case *ast.CallExpr:
			checkHotallocCall(pass, e, name)
		}
		return true
	})
}

func checkHotallocCall(pass *Pass, call *ast.CallExpr, name string) {
	for _, b := range []string{"make", "new", "append"} {
		if isBuiltinCall(pass, call, b) {
			pass.Reportf(call.Pos(), "%s in hotpath function %s allocates", b, name)
			return
		}
	}
	if isStringByteConversion(pass, call) {
		pass.Reportf(call.Pos(), "string/[]byte conversion in hotpath function %s copies", name)
		return
	}
	checkHotallocBoxing(pass, call, name)
}

// isStringByteConversion reports a T(x) conversion between string and
// []byte or []rune — both directions copy.
func isStringByteConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst, src := tv.Type, exprType(pass, call.Args[0])
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

// checkHotallocBoxing flags arguments whose parameter type is an
// interface while the argument's type is concrete — the conversion
// boxes the value onto the heap.
func checkHotallocBoxing(pass *Pass, call *ast.CallExpr, name string) {
	sig, ok := types.Unalias(exprType(pass, call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis != token.NoPos)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := exprType(pass, arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"argument boxed into interface %s in hotpath function %s allocates", pt.String(), name)
	}
}

// paramTypeAt returns the declared type of argument i, unwrapping the
// variadic element type; nil when the index is out of range (builtin
// or erroneous call).
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return nil // passing the slice through, no per-element boxing
		}
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
