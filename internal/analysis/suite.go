package analysis

// All is the prvm-lint suite: every domain-invariant analyzer, in the
// order diagnostics are attributed. cmd/prvm-lint runs all of them;
// `make lint` (folded into `make check`) fails the merge gate on any
// finding.
var All = []*Analyzer{
	Detrand,
	Floateq,
	Obsnilguard,
	Veclen,
	Lockscope,
	Maporder,
	Goroleak,
	Deadlinecall,
	Errswallow,
	Atomicmix,
	Hotalloc,
	Doccomment,
}
