package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockscope requires every mutex acquisition in the simulator and the
// testbed to pair with a deferred release in the same function.
//
// internal/sim and internal/testbed are the long-running, concurrent
// parts of the system (the testbed controller and agents exchange
// messages over goroutines; the simulator is driven under -race in the
// merge gate). A Lock whose Unlock is manual leaks the lock on any
// early return or panic between the two calls — the bug class that
// deadlocks a datacenter controller instead of crashing it. The
// analyzer flags sync.Mutex/RWMutex Lock and RLock calls with no
// matching `defer <same receiver>.Unlock()` / `.RUnlock()` in the same
// function body (function literals are separate functions).
var Lockscope = &Analyzer{
	Name: "lockscope",
	Doc:  "sim/testbed mutex Lock calls must have a deferred Unlock in the same function",
	Run:  runLockscope,
}

// lockscopePkg reports whether the package is in the analyzer's scope:
// the simulator and testbed packages (by import path in this module, by
// package name in fixtures).
func lockscopePkg(pkg *types.Package) bool {
	path, name := pkg.Path(), pkg.Name()
	return strings.HasSuffix(path, "internal/sim") || strings.HasSuffix(path, "internal/testbed") ||
		name == "sim" || name == "testbed"
}

func runLockscope(pass *Pass) error {
	if !lockscopePkg(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockscopeBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockscopeBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockPairs maps an acquire method to its release.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

// checkLockscopeBody inspects one function body, skipping nested
// function literals (they are their own scope and checked separately).
func checkLockscopeBody(pass *Pass, body *ast.BlockStmt) {
	type lock struct {
		call *ast.CallExpr
		recv string // receiver expression text, e.g. "s.mu"
		name string // Lock or RLock
	}
	var locks []lock
	deferred := make(map[string]bool) // "recv.Unlock" present as defer

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if recv, name, ok := syncLockCall(pass, s.Call); ok {
				deferred[recv+"."+name] = true
			}
			return false // a deferred Lock() would be nonsense; don't double-count
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, name, ok := syncLockCall(pass, call); ok {
					if _, isAcquire := lockPairs[name]; isAcquire {
						locks = append(locks, lock{call: call, recv: recv, name: name})
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, l := range locks {
		release := lockPairs[l.name]
		if !deferred[l.recv+"."+release] {
			pass.Reportf(l.call.Pos(),
				"%s.%s() without `defer %s.%s()` in the same function; an early return or panic leaks the lock",
				l.recv, l.name, l.recv, release)
		}
	}
}

// syncLockCall reports whether call is a sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock method call, returning the receiver
// expression text and the method name.
func syncLockCall(pass *Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}
