package analysis_test

import (
	"testing"

	"pagerankvm/internal/analysis"
	"pagerankvm/internal/analysis/analysistest"
)

// Each fixture package reproduces at least one violation shape that the
// suite found (and that was fixed) in the real codebase, alongside the
// idioms the analyzer must stay silent on.

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detrand, "detrandtest")
}

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Floateq, "floateqtest")
}

func TestObsnilguard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsnilguard, "obs")
}

// The recorder package (internal/obs/record) is under the same
// contract: a nil *Recorder is "recording disabled".
func TestObsnilguardRecorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsnilguard, "record")
}

func TestVeclen(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Veclen, "veclentest")
}

func TestLockscope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockscope, "sim")
}

// TestSuiteCleanOnSelf runs every analyzer over the analysis package
// itself via the module loader — a smoke test for Load and a guard
// against the linters violating their own invariants.
func TestSuiteCleanOnSelf(t *testing.T) {
	pkgs, err := analysis.Load(".", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
