package analysis_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pagerankvm/internal/analysis"
	"pagerankvm/internal/analysis/analysistest"
)

// Each fixture package reproduces at least one violation shape that the
// suite found (and that was fixed) in the real codebase, alongside the
// idioms the analyzer must stay silent on.

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detrand, "detrandtest")
}

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Floateq, "floateqtest")
}

func TestObsnilguard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsnilguard, "obs")
}

// The recorder package (internal/obs/record) is under the same
// contract: a nil *Recorder is "recording disabled".
func TestObsnilguardRecorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsnilguard, "record")
}

func TestVeclen(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Veclen, "veclentest")
}

func TestLockscope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockscope, "sim")
}

// The maporder fixture is deliberately a two-file package: wants and
// diagnostics must be collected package-wide.
func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Maporder, "maporder")
}

// The goroleak fixture imports the lifecycle fixture package:
// channel/context/WaitGroup arguments are recognized by type across
// the package boundary.
func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Goroleak, "goroleak")
}

func TestDeadlinecall(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Deadlinecall, "testbed")
}

func TestErrswallow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Errswallow, "errswallow")
}

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Atomicmix, "atomicmix")
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hotalloc, "hotalloc")
}

// The doccomment fixture is named lattice: the analyzer is gated on
// the core-package names and must fire there.
func TestDoccomment(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Doccomment, "lattice")
}

// TestAllowNamesExactAnalyzers proves //prvmlint:allow suppresses
// exactly the analyzers it names. The allowtest fixture repeats one
// statement that trips both deadlinecall and errswallow: once with no
// directive (both report), once naming only errswallow (deadlinecall
// survives), once naming both (silence).
func TestAllowNamesExactAnalyzers(t *testing.T) {
	pkg, err := analysis.LoadFixture(filepath.Join("testdata", "src"), "allowtest")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg},
		[]*analysis.Analyzer{analysis.Deadlinecall, analysis.Errswallow})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byLine := make(map[int][]string)
	for _, d := range diags {
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d.Analyzer)
	}
	if len(diags) != 3 || len(byLine) != 2 {
		t.Fatalf("want 3 diagnostics on 2 lines (control: both; one-name: deadlinecall), got %v", diags)
	}
	var sawBoth, sawSurvivor bool
	for line, names := range byLine {
		sort.Strings(names)
		switch strings.Join(names, "+") {
		case "deadlinecall+errswallow":
			sawBoth = true
		case "deadlinecall":
			sawSurvivor = true
		default:
			t.Errorf("line %d: unexpected analyzer set %v", line, names)
		}
	}
	if !sawBoth || !sawSurvivor {
		t.Errorf("want one line reported by both analyzers and one by deadlinecall alone, got %v", byLine)
	}
}

// TestSuiteCleanOnSelf runs every analyzer over the analysis package
// itself via the module loader — a smoke test for Load and a guard
// against the linters violating their own invariants.
func TestSuiteCleanOnSelf(t *testing.T) {
	pkgs, err := analysis.Load(".", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
