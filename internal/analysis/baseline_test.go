package analysis_test

import (
	"go/token"
	"strings"
	"testing"

	"pagerankvm/internal/analysis"
)

func diag(file string, line int, name, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: name,
		Message:  msg,
	}
}

func ident(f string) string { return f }

func TestBaselineRoundTrip(t *testing.T) {
	diags := []analysis.Diagnostic{
		diag("b.go", 30, "errswallow", "call discards its error result"),
		diag("a.go", 10, "maporder", "append to out inside map iteration"),
	}
	data := analysis.FormatBaseline(diags, ident)
	entries, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 entries, got %v", entries)
	}
	remaining, stale := analysis.ApplyBaseline(diags, entries, ident)
	if len(remaining) != 0 || len(stale) != 0 {
		t.Fatalf("round trip should fully match: remaining=%v stale=%v", remaining, stale)
	}
}

// Line numbers are not part of the match: a finding that moved still
// hits its baseline entry.
func TestBaselineIgnoresLineNumbers(t *testing.T) {
	entries, err := analysis.ParseBaseline(analysis.FormatBaseline(
		[]analysis.Diagnostic{diag("a.go", 10, "goroleak", "goroutine has no signal")}, ident))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	moved := []analysis.Diagnostic{diag("a.go", 99, "goroleak", "goroutine has no signal")}
	remaining, stale := analysis.ApplyBaseline(moved, entries, ident)
	if len(remaining) != 0 || len(stale) != 0 {
		t.Fatalf("moved finding should still match: remaining=%v stale=%v", remaining, stale)
	}
}

// Entries are counted, not set-matched: deleting one of two identical
// baselined findings leaves a stale entry.
func TestBaselineCounts(t *testing.T) {
	two := []analysis.Diagnostic{
		diag("a.go", 5, "errswallow", "call discards its error result"),
		diag("a.go", 9, "errswallow", "call discards its error result"),
	}
	entries, err := analysis.ParseBaseline(analysis.FormatBaseline(two, ident))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}

	remaining, stale := analysis.ApplyBaseline(two[:1], entries, ident)
	if len(remaining) != 0 {
		t.Errorf("one of two findings fixed: nothing should remain, got %v", remaining)
	}
	if len(stale) != 1 {
		t.Errorf("one of two findings fixed: exactly one entry goes stale, got %v", stale)
	}

	three := append(two, diag("a.go", 40, "errswallow", "call discards its error result"))
	remaining, stale = analysis.ApplyBaseline(three, entries, ident)
	if len(remaining) != 1 || len(stale) != 0 {
		t.Errorf("third identical finding exceeds the budget: remaining=%v stale=%v", remaining, stale)
	}
}

func TestBaselineStaleAndNew(t *testing.T) {
	entries, err := analysis.ParseBaseline([]byte(
		"# comment\n\nold.go\tmaporder\tappend to out inside map iteration\n"))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	diags := []analysis.Diagnostic{diag("new.go", 3, "hotalloc", "make in hotpath function f allocates")}
	remaining, stale := analysis.ApplyBaseline(diags, entries, ident)
	if len(remaining) != 1 || remaining[0].Analyzer != "hotalloc" {
		t.Errorf("unbaselined finding must survive, got %v", remaining)
	}
	if len(stale) != 1 || stale[0].File != "old.go" {
		t.Errorf("unmatched entry must be stale, got %v", stale)
	}
}

func TestBaselineParseErrors(t *testing.T) {
	if _, err := analysis.ParseBaseline([]byte("no tabs here\n")); err == nil {
		t.Error("malformed line should fail to parse")
	}
	if _, err := analysis.ParseBaseline([]byte("f.go\tonlyone\n")); err == nil {
		t.Error("two-field line should fail to parse")
	}
	entries, err := analysis.ParseBaseline([]byte("# only comments\n\n"))
	if err != nil || len(entries) != 0 {
		t.Errorf("comment-only baseline: want empty, got %v, %v", entries, err)
	}
	if !strings.HasPrefix(string(analysis.FormatBaseline(nil, ident)), "#") {
		t.Error("formatted baseline should start with its header comment")
	}
}
