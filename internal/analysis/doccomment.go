package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Doccomment enforces godoc coverage on the core library packages.
//
// The reproduction's packages are its public face: lattice, pagerank,
// ranktable, placement, resource, obs, record and serve together form
// the pipeline README.md documents, and `go doc` on any of them must
// explain the symbol, not echo its signature. Every exported top-level
// symbol therefore needs a doc comment, and — per the godoc
// convention — the comment's first word must be the symbol's name so
// the rendered index reads as prose ("Fits reports whether...").
//
// Three shapes satisfy the rule:
//
//   - a comment directly on the declaration, starting with the name;
//   - for a one-spec type/const/var declaration, the comment on the
//     enclosing `type`/`const`/`var` keyword;
//   - for a grouped const/var block, a comment on the group: the block
//     documents a family ("Sentinel errors surfaced by..."), so
//     per-name first-word checks are waived inside it.
//
// Methods on unexported types are skipped (godoc hides them), as are
// struct fields and interface methods (the type's doc owns those).
// The analyzer only fires in the core packages named above — commands,
// experiments and the analysis layer itself document at their own
// discretion. Pre-existing debt is tolerated via docs.allow (the
// docs-check gate) using the standard baseline format.
var Doccomment = &Analyzer{
	Name: "doccomment",
	Doc:  "exported symbols of the core library packages need godoc comments starting with the symbol name",
	Run:  runDoccomment,
}

// doccommentPackages gates the analyzer: package names of the core
// library pipeline (README.md "Architecture").
var doccommentPackages = map[string]bool{
	"lattice":   true,
	"pagerank":  true,
	"ranktable": true,
	"placement": true,
	"resource":  true,
	"obs":       true,
	"record":    true,
	"serve":     true,
}

func runDoccomment(pass *Pass) error {
	if !doccommentPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
	return nil
}

// checkFuncDoc reports an exported function or method without a
// conventional doc comment.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !exportedReceiver(d.Recv) {
		return // godoc hides methods of unexported types
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
	}
	reportDoc(pass, d.Pos(), d.Doc, kind, d.Name.Name, true)
}

// checkGenDoc reports exported names of one type/const/var declaration
// that no comment covers.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	// The keyword comment covers a single spec as if it were the
	// spec's own; on a group it documents the family.
	single := len(d.Specs) == 1 && !d.Lparen.IsValid()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && single {
				doc = d.Doc
			}
			reportDoc(pass, s.Pos(), doc, "type", s.Name.Name, true)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				doc := s.Doc
				strict := true
				if doc == nil {
					// The group comment documents the family; don't
					// demand each member's name leads it.
					doc, strict = d.Doc, single
				}
				reportDoc(pass, name.Pos(), doc, declKind(d), name.Name, strict)
				break // one finding per spec line
			}
		}
	}
}

// reportDoc files the finding for one symbol: missing comment, or
// (when strict) a comment that does not lead with the symbol's name.
func reportDoc(pass *Pass, pos token.Pos, doc *ast.CommentGroup, kind, name string, strict bool) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		pass.Reportf(pos, "exported %s %s lacks a doc comment", kind, name)
		return
	}
	if !strict {
		return
	}
	if first := firstWord(doc.Text()); first != name {
		pass.Reportf(pos, "doc comment for %s %s should start with %q, not %q", kind, name, name, first)
	}
}

// declKind names a GenDecl's keyword for diagnostics.
func declKind(d *ast.GenDecl) string {
	if d.Tok == token.CONST {
		return "const"
	}
	return "var"
}

// exportedReceiver reports whether the method's receiver base type is
// exported, unwrapping pointers and type parameters.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// firstWord returns the first whitespace-delimited word of a doc
// comment's text, with a trailing period or comma stripped so "Fits,
// the..." still matches.
func firstWord(text string) string {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return ""
	}
	return strings.TrimRight(fields[0], ".,:;")
}
