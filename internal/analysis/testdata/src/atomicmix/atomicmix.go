// Package atomicmix (fixture) exercises the atomicmix analyzer: once a
// field is touched through sync/atomic, every access must be — a plain
// load can observe a torn value and a plain store can be lost under a
// concurrent atomic read-modify-write.
package atomicmix

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) readAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) read() int64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counter) clear() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

// misses is only ever accessed plainly — no atomics, no finding.
func (c *counter) miss() {
	c.misses++
}

type gauge struct {
	val uint32
}

func (g *gauge) set(v uint32) {
	atomic.StoreUint32(&g.val, v)
}

func (g *gauge) snapshot() uint32 {
	return g.val //prvmlint:allow atomicmix — read under the registry mutex; all writers hold it too, fixture
}
