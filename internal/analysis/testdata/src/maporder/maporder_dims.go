package maporder

import "slices"

// Second file of the fixture package: the bug shape the analyzer was
// built for — per-dimension float loads accumulated while ranging over
// a VM map (the simulator's actualCPU) — plus the slices.Sort spelling
// of collect-then-sort.

type usage struct {
	dim   int
	units float64
}

func loads(vms map[int][]usage, load []float64) {
	for _, dus := range vms {
		for _, du := range dus {
			load[du.dim] += du.units // want `floating-point accumulation inside map iteration`
		}
	}
}

// Nested map ranges report each finding once — the inner range is
// checked on its own, not re-reported per enclosing level.
func nested(groups map[string]map[string]int) []string {
	var out []string
	for _, inner := range groups {
		for k := range inner {
			out = append(out, k) // want `append to out inside map iteration is order-dependent`
		}
	}
	return out
}

// A slice declared inside the loop body starts fresh every visit —
// its element order never observes the map order.
func perKey(m map[string][]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		out[k] = len(evens)
	}
	return out
}

func ids(vms map[int][]usage) []int {
	out := make([]int, 0, len(vms))
	for id := range vms {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
