// Package maporder (fixture) exercises the maporder analyzer: Go
// randomizes map iteration order, so order-sensitive loop bodies break
// the one-canonical-decision-stream-per-seed contract. The fixture is
// deliberately split across two files — the framework must collect
// diagnostics and wants package-wide, not per file.
package maporder

import (
	"fmt"
	"sort"

	"record"
)

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration is order-dependent`
	}
	return out
}

// sortedKeys is the canonical fix: collect, then sort. The analyzer
// sees the sort call and stays silent.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside map iteration`
	}
	return sum
}

// count accumulates integers: exact and commutative, so visit order
// cannot change the result.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration emits output in map order`
	}
}

func recordAll(r *record.Recorder, m map[string]int64) {
	for _, seq := range m {
		r.RecordDecision(seq) // want `recorder call RecordDecision inside map iteration writes the stream in map order`
	}
}

func allowedSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //prvmlint:allow maporder — tolerance-checked aggregate; order immaterial
	}
	return sum
}

// build writes into a map: the destination has no order either.
func build(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}
