// Package record (fixture) exercises the obsnilguard analyzer on the
// decision recorder: internal/obs/record extends the telemetry layer's
// nil-receiver contract — a nil *Recorder means "recording disabled" —
// so placement hot paths call RecordDecision/RecordSpan
// unconditionally and every exported pointer-receiver method must open
// with a nil guard.
package record

type Recorder struct {
	seq int64
	err error
}

// The recorder bug shape the guard prevents: an unguarded sink method
// would panic the placement hot path the moment recording is disabled.
func (r *Recorder) RecordSpan(name string, ns int64) { r.seq++ } // want `\(\*Recorder\)\.RecordSpan must start with .if r == nil`

func (r *Recorder) RecordDecision(seq int64) {
	if r == nil {
		return
	}
	r.seq = seq
}

// A guard as the leftmost operand of the returned expression also
// proves the contract — Active is exactly this shape in the real
// package.
func (r *Recorder) Active() bool {
	return r != nil
}

func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

func (*Recorder) Reset() {} // want `unnamed pointer receiver`

// Value receivers cannot be nil; unexported methods are internal.
func (r Recorder) Seq() int64      { return r.seq }
func (r *Recorder) bump(n int64)   { r.seq += n }
func (r *Recorder) flushLocked()   {}
func (r *Recorder) writeHeader()   {}
func (r *Recorder) encodeLine(any) {}
