// Package goroleak (fixture) exercises the goroleak analyzer: every go
// statement needs a lifecycle signal — a WaitGroup, a channel
// operation, or a context — or nothing can wait for the goroutine or
// stop it.
package goroleak

import (
	"context"
	"sync"

	"lifecycle"
)

func bare() {
	go func() { // want `goroutine has no WaitGroup, channel operation, or context`
		work()
	}()
}

func waited(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func doneChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

func results() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return out
}

func cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// consumer's goroutine ends when jobs is closed — ranging over a
// channel is a lifecycle signal.
func consumer(jobs chan int) {
	go func() {
		for j := range jobs {
			use(j)
		}
	}()
}

func named() {
	go work() // want `goroutine call passes no WaitGroup, channel, or context`
}

// Named calls that hand a signal to the callee are the callee's
// responsibility.
func namedWithSignal(jobs chan int, wg *sync.WaitGroup) {
	go drain(jobs)
	go tracked(wg)
}

// Lifecycle arguments are detected by type across package boundaries.
func crossPackage(done chan struct{}) {
	go lifecycle.Pump(done)
	go lifecycle.Fire() // want `goroutine call passes no WaitGroup, channel, or context`
}

func allowedForever() {
	go work() //prvmlint:allow goroleak — process-lifetime pump, fixture
}

func work()                   {}
func compute() int            { return 1 }
func use(int)                 {}
func drain(chan int)          {}
func tracked(*sync.WaitGroup) {}
