// Package resource (fixture) mirrors the module's resource.Vec shape
// for the veclen analyzer: a dimension vector with element-wise
// methods that require equal lengths.
package resource

// Dims is a representative shape dimension count.
const Dims = 4

type Vec []int

func (v Vec) Add(o Vec) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + o[i]
	}
	return out
}

func (v Vec) LE(o Vec) bool {
	for i := range v {
		if v[i] > o[i] {
			return false
		}
	}
	return true
}
