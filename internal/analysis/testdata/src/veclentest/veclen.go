// Package veclentest exercises the veclen analyzer: element-wise
// resource.Vec operations and index expressions whose operands have
// provably different dimension counts.
package veclentest

import "resource"

func literals() {
	a := resource.Vec{1, 2}
	b := resource.Vec{1, 2, 3}
	_ = a.Add(b) // want `receiver has 2 dims, argument has 3`
	_ = a.LE(b)  // want `receiver has 2 dims, argument has 3`

	c := make(resource.Vec, 2)
	_ = a.Add(c) // both two-dimensional: fine
}

func makeAndConst() {
	wide := make(resource.Vec, resource.Dims)
	narrow := resource.Vec{7}
	_ = wide.Add(narrow) // want `receiver has 4 dims, argument has 1`
	_ = wide.Add(make(resource.Vec, resource.Dims))
}

func keyedLiteral() {
	sparse := resource.Vec{3: 9}                     // keyed element: length 4
	_ = sparse.Add(resource.Vec{1, 2, 3})            // want `receiver has 4 dims, argument has 3`
	_ = sparse.LE(make(resource.Vec, resource.Dims)) // fine
}

func indexing() {
	v := resource.Vec{1, 2, 3}
	_ = v[2] // in range: fine
	_ = v[3] // want `index 3 out of range for a 3-dimension vector`
}

func conversion() {
	raw := []int{1, 2}
	v := resource.Vec(raw) // conversion of an unprovable operand
	_ = v
	w := resource.Vec(resource.Vec{1, 2, 3})
	_ = w[5] // want `index 5 out of range for a 3-dimension vector`
}

// Reassignment, address-taking, and range variables invalidate the
// proof — the analyzer stays silent rather than guessing.
func conservative(vecs []resource.Vec) {
	v := resource.Vec{1, 2}
	v = make(resource.Vec, 9)
	_ = v[5] // two assignments: length unprovable, no report

	u := resource.Vec{1}
	grow(&u)
	_ = u[3] // address taken: no report

	for _, e := range vecs {
		_ = e.Add(resource.Vec{1, 2, 3}) // range variable: no report
	}
}

func grow(v *resource.Vec) { *v = append(*v, 0) }
