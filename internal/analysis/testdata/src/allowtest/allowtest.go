// Package testbed (fixture allowtest) holds a statement that violates
// two analyzers at once — deadlinecall and errswallow both fire on a
// bare c.Send — so the framework test can prove //prvmlint:allow
// suppresses exactly the analyzers it names, not the whole line.
package testbed

type Msg struct{ ID uint64 }

type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
}

// Control carries no directive: both analyzers report this line.
func Control(c Conn) {
	c.Send(Msg{ID: 1})
}

// AllowOne names only errswallow: deadlinecall must still report.
func AllowOne(c Conn) {
	c.Send(Msg{ID: 2}) //prvmlint:allow errswallow — fixture: only errswallow is named
}

// AllowBoth names both: the line goes quiet.
func AllowBoth(c Conn) {
	c.Send(Msg{ID: 3}) //prvmlint:allow deadlinecall,errswallow — fixture: both named
}
