// Package detrandtest exercises the detrand analyzer: top-level
// math/rand functions draw from the shared global source and break the
// reproducibility contract; injected *rand.Rand values are fine.
package detrandtest

import "math/rand"

func globalDraws(vms []int) int {
	rand.Seed(42)                             // want `global rand\.Seed`
	rand.Shuffle(len(vms), func(i, j int) {}) // want `global rand\.Shuffle`
	if rand.Float64() < 0.5 {                 // want `global rand\.Float64`
		return rand.Intn(6) // want `global rand\.Intn`
	}
	return 0
}

func injected(rng *rand.Rand) int {
	return rng.Intn(6) // method on an injected generator: fine
}

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are the fix, not the bug
}

// Type and variable references to the package are not draws.
var _ rand.Source
var defaultRNG *rand.Rand = rand.New(rand.NewSource(1))
