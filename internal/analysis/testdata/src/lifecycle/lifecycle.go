// Package lifecycle (fixture) exports lifecycle-carrying helpers for
// the goroleak fixture: the channel, context, and WaitGroup parameters
// cross a package boundary before the analyzer inspects the go
// statement, so detection must work from types, not syntax.
package lifecycle

import (
	"context"
	"sync"
)

// Pump drains work until done closes.
func Pump(done chan struct{}) { <-done }

// Serve runs until ctx is cancelled.
func Serve(ctx context.Context) { <-ctx.Done() }

// Track signals wg when finished.
func Track(wg *sync.WaitGroup) { wg.Done() }

// Fire has no lifecycle parameter at all.
func Fire() {}
