// Package sim (fixture) exercises the lockscope analyzer: every mutex
// acquisition in the simulator/testbed packages must pair with a
// deferred release in the same function.
package sim

import "sync"

type state struct {
	mu sync.Mutex
	n  int
}

func (s *state) good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *state) manualUnlock() int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) without .defer s\.mu\.Unlock\(\)`
	n := s.n
	s.mu.Unlock()
	return n
}

type registry struct {
	mu sync.RWMutex
	m  map[int]int
}

func (r *registry) goodRead(k int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *registry) wrongPair(k int) int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) without .defer r\.mu\.RUnlock\(\)`
	defer r.mu.Unlock()
	return r.m[k]
}

// Function literals are their own scope: a deferred unlock inside a
// closure does not cover an acquisition outside it, and vice versa.
func (s *state) closures(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
	}()

	s.mu.Lock() // want `s\.mu\.Lock\(\) without .defer s\.mu\.Unlock\(\)`
	f := func() {
		defer s.mu.Unlock() // deferred in the closure, not in closures()
	}
	f()
}
