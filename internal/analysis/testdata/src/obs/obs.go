// Package obs (fixture) exercises the obsnilguard analyzer: every
// exported pointer-receiver method in the observability package must
// open with a nil-receiver guard so a nil *Observer disables telemetry
// instead of panicking inside the placement hot path.
package obs

type Counter struct{ v int64 }

// The pre-fix internal/obs bug shape: Inc delegated to a nil-safe Add
// without its own guard, so the analyzer cannot see the contract hold.
func (c *Counter) Inc() { c.add(1) } // want `\(\*Counter\)\.Inc must start with .if c == nil`

func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// A guard as the leftmost operand of the returned expression also
// proves the contract.
func (c *Counter) Positive() bool {
	return c != nil && c.v > 0
}

func (c *Counter) Zero() bool {
	return c == nil || c.v == 0
}

func (*Counter) Reset() {} // want `unnamed pointer receiver`

// Value receivers cannot be nil; unexported methods are internal.
func (c Counter) Snapshot() int64 { return c.v }
func (c *Counter) add(d int64)    { c.v += d }
