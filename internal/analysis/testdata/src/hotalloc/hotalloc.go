// Package hotalloc (fixture) exercises the hotalloc analyzer:
// functions annotated //prvm:hotpath must not allocate — the
// annotation pins the same 0 allocs/op invariant the bench smoke
// measures on the real fast path.
package hotalloc

type point struct{ x, y int }

// score is the fixture's ScoreOn analogue: index math and float
// arithmetic only — nothing to report.
//
//prvm:hotpath
func score(vals, w []float64) float64 {
	var s float64
	for i, v := range vals {
		s += v * w[i]
	}
	return s
}

//prvm:hotpath
func collect(n int) []int {
	out := make([]int, 0, n) // want `make in hotpath function collect allocates`
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append in hotpath function collect allocates`
	}
	return out
}

//prvm:hotpath
func literals() ([]int, map[string]int, *point) {
	s := []int{1, 2}      // want `slice literal in hotpath function literals allocates`
	m := map[string]int{} // want `map literal in hotpath function literals allocates`
	p := &point{x: 1}     // want `&composite literal in hotpath function literals allocates`
	return s, m, p
}

//prvm:hotpath
func label(name string) string {
	return name + ":pm" // want `string concatenation in hotpath function label allocates`
}

//prvm:hotpath
func keyBytes(k string) []byte {
	return []byte(k) // want `string/\[\]byte conversion in hotpath function keyBytes copies`
}

//prvm:hotpath
func closed(vals []float64) func() float64 {
	return func() float64 { return vals[0] } // want `closure in hotpath function closed allocates`
}

//prvm:hotpath
func boxed(v int) {
	sink(v) // want `argument boxed into interface`
}

func sink(interface{}) {}

// cold is not annotated: it may allocate freely.
func cold(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fill appends into caller scratch — deliberate, documented at the
// site, amortized zero-alloc.
//
//prvm:hotpath
func fill(dst, src []int32) []int32 {
	return append(dst[:0], src...) //prvmlint:allow hotalloc — caller scratch; amortized zero-alloc, fixture
}
