// Package testbed (fixture) exercises the deadlinecall analyzer:
// blocking Send/Recv on the control protocol must sit on a path that
// arms a deadline, the controller's roundTrip shape, or a dropped
// message hangs the caller forever.
package testbed

import "time"

type Msg struct{ ID uint64 }

type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

type deadlineSetter interface {
	SetDeadline(time.Time) error
}

// roundTrip arms the deadline before blocking — the sanctioned shape.
func roundTrip(c Conn, deadline time.Time) (Msg, error) {
	if d, ok := c.(deadlineSetter); ok {
		_ = d.SetDeadline(deadline)
	}
	if err := c.Send(Msg{ID: 1}); err != nil {
		return Msg{}, err
	}
	return c.Recv()
}

// fireAndForget blocks forever if the peer is gone.
func fireAndForget(c Conn) {
	_ = c.Send(Msg{ID: 2}) // want `c\.Send\(\) blocks with no deadline armed`
}

func collectReply(c Conn) (Msg, error) {
	return c.Recv() // want `c\.Recv\(\) blocks with no deadline armed`
}

// wireConn is a transport wrapper: it exposes SetDeadline itself, so
// its forwarding methods run under whatever deadline the caller armed
// — the analyzer skips the whole method set.
type wireConn struct {
	inner Conn
	arm   func(time.Time) error
}

func (w *wireConn) SetDeadline(t time.Time) error { return w.arm(t) }
func (w *wireConn) Send(m Msg) error              { return w.inner.Send(m) }
func (w *wireConn) Recv() (Msg, error)            { return w.inner.Recv() }
func (w *wireConn) Close() error                  { return w.inner.Close() }

// agentLoop deliberately blocks for the next command; conn Close is
// what unblocks it. The directive records that decision.
func agentLoop(c Conn) {
	for {
		if _, err := c.Recv(); err != nil { //prvmlint:allow deadlinecall — blocks for next command; conn Close unblocks
			return
		}
	}
}
