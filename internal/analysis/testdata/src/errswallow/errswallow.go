// Package errswallow (fixture) exercises the errswallow analyzer: a
// call used as a bare statement discards every result, and when one of
// them is an error the failure path is invisible — the PR 5
// silent-job-loss shape.
package errswallow

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func cleanup(f *os.File) {
	f.Close() // want `call discards its error result`
}

func deferred(f *os.File) error {
	defer f.Close() // want `deferred call discards its error result`
	return scan(f)
}

// The explicit discard is a visible decision, not an accident.
func explicit(f *os.File) {
	_ = f.Close()
}

func propagated(f *os.File) error {
	return f.Close()
}

// Writers documented never to fail are exempt: their error results
// exist only to satisfy io interfaces.
func prints(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")
	buf.WriteString("x")
	sb.WriteString("y")
}

func allowedClose(f *os.File) {
	f.Close() //prvmlint:allow errswallow — read-only fd; close cannot lose data, fixture
}

// Calls with no error result are never the analyzer's business.
func silent(sb *strings.Builder) {
	sb.Reset()
}

func scan(*os.File) error { return nil }
