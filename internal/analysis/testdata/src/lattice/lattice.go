// Package lattice (fixture) exercises the doccomment analyzer: the
// package name is on the analyzer's core-package list, so exported
// symbols here must carry godoc comments that lead with their name.
package lattice

// Node is a documented exported type: no finding.
type Node struct {
	// ID needs no comment: struct fields are the type doc's job.
	ID int
}

// Size reports the documented-method happy path.
func (n *Node) Size() int { return 1 }

func (n *Node) Depth() int { return 0 } // want `exported method Depth lacks a doc comment`

// The first word is "Builds", not "Grow": godoc renders this as prose
// that never names the symbol.
func (n *Node) Grow() {} // want `doc comment for method Grow should start with "Grow", not "The"`

type Edge struct{} // want `exported type Edge lacks a doc comment`

// helper is unexported: never checked.
func helper() {}

// method of an unexported type: godoc hides it, no finding.
type internalSet struct{}

func (internalSet) Add() {}

// MaxDepth bounds lattice construction (single var, keyword comment).
var MaxDepth = 16

var DefaultFanout = 4 // want `exported var DefaultFanout lacks a doc comment`

// Profile-lattice tuning knobs: a documented group waives the
// per-name first-word rule.
const (
	MinFanout = 2
	// MaxFanout has its own comment too; still fine.
	MaxFanout = 8
)

const (
	UnitCap = 1 // want `exported const UnitCap lacks a doc comment`
)

// Build is documented, so the unexported helper it calls stays silent.
func Build(n int) *Node {
	helper()
	_ = internalSet{}
	return &Node{ID: n}
}
