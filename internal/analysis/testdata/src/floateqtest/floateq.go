// Package floateqtest exercises the floateq analyzer. The first case
// reproduces the pre-fix internal/ranktable bug verbatim: a float
// zero-as-default sentinel that made an explicit RewardExponent of 0
// indistinguishable from "use the default".
package floateqtest

type options struct {
	Damping   float64
	RewardExp float64
}

func damping(o options) float64 {
	if o.Damping == 0 { // want `floating-point == comparison`
		return 0.85
	}
	return o.Damping
}

func exactMatch(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func mixed32(x float32) bool {
	return x == 1.0 // want `floating-point == comparison`
}

func isNaN(x float64) bool {
	return x != x // the NaN idiom compares an expression to itself: fine
}

func intCompare(a, b int) bool { return a == b }

const eps = 1e-9

func constFolded() bool { return eps == 1e-9 } // evaluated at compile time: fine

func deliberately(a float64) bool {
	return a == 1.0 //prvmlint:allow floateq
}
