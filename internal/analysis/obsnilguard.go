package analysis

import (
	"go/ast"
	"go/token"
)

// Obsnilguard enforces the telemetry layer's nil-receiver contract.
//
// internal/obs promises that a nil *Observer (and every nil instrument
// it hands out) is the disabled state: hot paths hold pre-resolved
// instrument pointers and call them unconditionally, so every exported
// pointer-receiver method must begin by dispatching on a nil receiver.
// Two shapes satisfy the contract:
//
//	func (c *Counter) Add(n int64) {
//		if c == nil { return }   // guard statement
//		...
//	}
//
//	func (o *Observer) TraceActive() bool {
//		return o != nil && ...   // guard as the leftmost conjunct
//	}
//
// The analyzer only fires in packages named "obs" or "record" — the
// decision recorder (internal/obs/record) extends the same contract:
// a nil *Recorder is "recording disabled", so hot paths call
// RecordDecision/RecordSpan unconditionally. It is not a general
// style rule.
var Obsnilguard = &Analyzer{
	Name: "obsnilguard",
	Doc:  "exported pointer-receiver methods in internal/obs and internal/obs/record must start with a nil-receiver guard",
	Run:  runObsnilguard,
}

func runObsnilguard(pass *Pass) error {
	if name := pass.Pkg.Name(); name != "obs" && name != "record" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: cannot be nil
			}
			_ = star
			recv := receiverName(fd)
			if recv == "" || recv == "_" {
				pass.Reportf(fd.Pos(),
					"exported method %s has an unnamed pointer receiver and cannot nil-guard it; name the receiver and guard",
					fd.Name.Name)
				continue
			}
			if len(fd.Body.List) > 0 && isNilGuard(fd.Body.List[0], recv) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"exported method (*%s).%s must start with `if %s == nil` (telemetry nil-receiver contract)",
				receiverTypeName(fd), fd.Name.Name, recv)
		}
	}
	return nil
}

func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if star, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return "?"
}

// isNilGuard reports whether stmt is a recognized nil-receiver guard
// for the receiver named recv.
func isNilGuard(stmt ast.Stmt, recv string) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		// if recv == nil { ...; return }
		if !isRecvNilCheck(s.Cond, recv, token.EQL) {
			return false
		}
		if len(s.Body.List) == 0 {
			return false
		}
		_, isReturn := s.Body.List[len(s.Body.List)-1].(*ast.ReturnStmt)
		return isReturn
	case *ast.ReturnStmt:
		// return recv != nil && ...   (or: return recv == nil || ...)
		if len(s.Results) != 1 {
			return false
		}
		e := leftmostOperand(s.Results[0])
		return isRecvNilCheck(e, recv, token.NEQ) || isRecvNilCheck(e, recv, token.EQL)
	}
	return false
}

// leftmostOperand descends the left spine of &&/|| chains.
func leftmostOperand(e ast.Expr) ast.Expr {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		be, ok := e.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LAND && be.Op != token.LOR) {
			return e
		}
		e = be.X
	}
}

// isRecvNilCheck reports whether e is `recv <op> nil` (either operand
// order) for op == or !=.
func isRecvNilCheck(e ast.Expr, recv string, op token.Token) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	return (isIdent(be.X, recv) && isIdent(be.Y, "nil")) ||
		(isIdent(be.X, "nil") && isIdent(be.Y, recv))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
