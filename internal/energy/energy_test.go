package energy

import (
	"math"
	"testing"
	"time"
)

func TestTableIIIBreakpoints(t *testing.T) {
	tests := []struct {
		model *Model
		give  float64
		want  float64
	}{
		{model: E52670(), give: 0.0, want: 337.3},
		{model: E52670(), give: 0.2, want: 349.2},
		{model: E52670(), give: 0.4, want: 363.6},
		{model: E52670(), give: 0.6, want: 378.0},
		{model: E52670(), give: 0.8, want: 396.0},
		{model: E52670(), give: 1.0, want: 417.6},
		{model: E52680(), give: 0.0, want: 394.4},
		{model: E52680(), give: 0.2, want: 408.3},
		{model: E52680(), give: 0.4, want: 425.2},
		{model: E52680(), give: 0.6, want: 442.0},
		{model: E52680(), give: 0.8, want: 463.1},
		{model: E52680(), give: 1.0, want: 488.3},
	}
	for _, tt := range tests {
		if got := tt.model.Power(tt.give); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s.Power(%v) = %v, want %v", tt.model.Name(), tt.give, got, tt.want)
		}
	}
}

func TestPowerInterpolation(t *testing.T) {
	m := E52670()
	// Midway between 0.0 (337.3) and 0.2 (349.2).
	want := (337.3 + 349.2) / 2
	if got := m.Power(0.1); math.Abs(got-want) > 1e-9 {
		t.Errorf("Power(0.1) = %v, want %v", got, want)
	}
}

func TestPowerClamped(t *testing.T) {
	m := E52680()
	if got := m.Power(-0.5); got != 394.4 {
		t.Errorf("Power(-0.5) = %v", got)
	}
	if got := m.Power(2); got != 488.3 {
		t.Errorf("Power(2) = %v", got)
	}
}

func TestPowerMonotone(t *testing.T) {
	for _, m := range []*Model{E52670(), E52680()} {
		prev := -1.0
		for u := 0.0; u <= 1.0001; u += 0.01 {
			p := m.Power(u)
			if p < prev {
				t.Fatalf("%s not monotone at u=%v", m.Name(), u)
			}
			prev = p
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel("x", map[float64]float64{0: 1}); err == nil {
		t.Error("accepted single breakpoint")
	}
	if _, err := NewModel("x", map[float64]float64{0.1: 1, 0.9: 2}); err == nil {
		t.Error("accepted breakpoints not spanning [0,1]")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"E5-2670", "E5-2680"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("E5-9999"); err == nil {
		t.Error("accepted unknown model")
	}
}

func TestBreakpointsCopy(t *testing.T) {
	m := E52670()
	u, w := m.Breakpoints()
	if len(u) != 6 || len(w) != 6 {
		t.Fatalf("breakpoints %d/%d", len(u), len(w))
	}
	u[0] = 99
	w[0] = 99
	if m.Power(0) != 337.3 {
		t.Fatal("Breakpoints aliases internals")
	}
}

func TestMeter(t *testing.T) {
	var meter Meter
	m := E52670()
	// One hour idle: 337.3 W * 3600 s.
	meter.Accumulate(m, 0, time.Hour)
	wantJ := 337.3 * 3600
	if math.Abs(meter.Joules()-wantJ) > 1e-6 {
		t.Fatalf("Joules = %v, want %v", meter.Joules(), wantJ)
	}
	if math.Abs(meter.KWh()-wantJ/3.6e6) > 1e-12 {
		t.Fatalf("KWh = %v", meter.KWh())
	}
	// Energy is monotone.
	meter.Accumulate(m, 1, 5*time.Minute)
	if meter.Joules() <= wantJ {
		t.Fatal("energy not monotone")
	}
}
