// Package energy implements the paper's Table III power model: power
// consumption of the M3 (Intel Xeon E5-2670) and C3 (E5-2680) hosts as
// a piecewise-linear function of CPU utilization, and the cumulative
// energy accounting used by the Figure 5 experiments.
package energy

import (
	"fmt"
	"sort"
	"time"
)

// Model maps CPU utilization in [0, 1] to power draw in watts by
// linear interpolation between measured breakpoints.
type Model struct {
	name  string
	utils []float64 // ascending, includes 0 and 1
	watts []float64
}

// NewModel builds a model from breakpoint pairs. Breakpoints are
// sorted; at least two are required, and the first/last must cover 0
// and 1.
func NewModel(name string, points map[float64]float64) (*Model, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("energy: model %q needs at least 2 breakpoints", name)
	}
	m := &Model{name: name}
	for u := range points {
		m.utils = append(m.utils, u)
	}
	sort.Float64s(m.utils)
	// Power clamps u into [0,1], so the breakpoints must cover that
	// interval: the first at or below 0, the last at or above 1.
	if m.utils[0] > 0 || m.utils[len(m.utils)-1] < 1 {
		return nil, fmt.Errorf("energy: model %q breakpoints must span [0,1]", name)
	}
	m.watts = make([]float64, len(m.utils))
	for i, u := range m.utils {
		m.watts[i] = points[u]
	}
	return m, nil
}

// Name returns the model name (the Table III column header).
func (m *Model) Name() string { return m.name }

// Power returns the interpolated power draw in watts at CPU
// utilization u (clamped into [0, 1]).
func (m *Model) Power(u float64) float64 {
	if u <= 0 {
		return m.watts[0]
	}
	if u >= 1 {
		return m.watts[len(m.watts)-1]
	}
	// SearchFloat64s returns the smallest i with utils[i] >= u; when
	// the breakpoint sits strictly above u, interpolate from the one
	// below, otherwise utils[i] is an exact hit.
	i := sort.SearchFloat64s(m.utils, u)
	if m.utils[i] > u {
		lo, hi := i-1, i
		frac := (u - m.utils[lo]) / (m.utils[hi] - m.utils[lo])
		return m.watts[lo] + frac*(m.watts[hi]-m.watts[lo])
	}
	return m.watts[i]
}

// Breakpoints returns the (utilization, watts) pairs in ascending
// utilization order — the Table III row for this model.
func (m *Model) Breakpoints() (utils, watts []float64) {
	u := make([]float64, len(m.utils))
	w := make([]float64, len(m.watts))
	copy(u, m.utils)
	copy(w, m.watts)
	return u, w
}

// Table III of the paper: power consumption (W) versus CPU utilization
// for the two host processors.
var (
	tableE52670 = map[float64]float64{
		0.0: 337.3, 0.2: 349.2, 0.4: 363.6, 0.6: 378.0, 0.8: 396.0, 1.0: 417.6,
	}
	tableE52680 = map[float64]float64{
		0.0: 394.4, 0.2: 408.3, 0.4: 425.2, 0.6: 442.0, 0.8: 463.1, 1.0: 488.3,
	}
)

// E52670 returns the Table III model for the M3 host's processor.
func E52670() *Model {
	m, err := NewModel("E5-2670", tableE52670)
	if err != nil {
		panic(err) // static table, validated by tests
	}
	return m
}

// E52680 returns the Table III model for the C3 host's processor.
func E52680() *Model {
	m, err := NewModel("E5-2680", tableE52680)
	if err != nil {
		panic(err)
	}
	return m
}

// ByName returns the Table III model with the given name.
func ByName(name string) (*Model, error) {
	switch name {
	case "E5-2670":
		return E52670(), nil
	case "E5-2680":
		return E52680(), nil
	default:
		return nil, fmt.Errorf("energy: unknown power model %q", name)
	}
}

// Meter accumulates energy over a simulation. Only active PMs consume
// power; an idle (off) PM consumes none, which is the whole point of
// consolidation.
type Meter struct {
	joules float64
}

// Accumulate adds the energy of one PM running at CPU utilization u
// for the given interval under model m.
func (e *Meter) Accumulate(m *Model, u float64, interval time.Duration) {
	e.joules += m.Power(u) * interval.Seconds()
}

// Joules returns the total accumulated energy.
func (e *Meter) Joules() float64 { return e.joules }

// KWh returns the total in kilowatt-hours, the unit of Figure 5.
func (e *Meter) KWh() float64 { return e.joules / 3.6e6 }
