package network

import (
	"testing"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

const pmType = "host"

func hostShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func vmTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
	}
}

func newVM(id int) *placement.VM {
	return &placement.VM{ID: id, Type: "[1,1]", Req: map[string]resource.VMType{pmType: vmTypes()[0]}}
}

func newCluster(n int) *placement.Cluster {
	shape := hostShape()
	pms := make([]*placement.PM, n)
	for i := range pms {
		pms[i] = placement.NewPM(i, pmType, shape)
	}
	return placement.NewCluster(pms)
}

func netPlacer(t *testing.T, topo *Topology, tr *Traffic) *Placer {
	t.Helper()
	table, err := ranktable.NewJoint(hostShape(), vmTypes(), ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmType, table)
	return &Placer{
		Inner:   placement.NewPageRankVM(reg, placement.WithSeed(1)),
		Topo:    topo,
		Traffic: tr,
	}
}

func TestTopology(t *testing.T) {
	c := newCluster(5)
	topo, err := NewTopology(c.PMs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumRacks() != 3 {
		t.Fatalf("racks = %d", topo.NumRacks())
	}
	for pm, wantRack := range map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2} {
		if r, ok := topo.Rack(pm); !ok || r != wantRack {
			t.Errorf("Rack(%d) = %d, %v", pm, r, ok)
		}
	}
	if err := topo.Validate(c); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopology(c.PMs(), 0); err == nil {
		t.Fatal("accepted zero rack size")
	}
}

func TestTopologyValidateMissing(t *testing.T) {
	c := newCluster(2)
	topo, err := NewTopology(c.PMs()[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(c); err == nil {
		t.Fatal("missing rack undetected")
	}
}

func TestTraffic(t *testing.T) {
	tr := NewTraffic()
	tr.Add(1, 2, 5)
	tr.Add(2, 1, 3) // symmetric accumulation
	tr.Add(3, 3, 9) // self-traffic ignored
	tr.Add(1, 4, -1)
	if got := tr.Between(1, 2); got != 8 {
		t.Fatalf("Between = %v", got)
	}
	if got := tr.Between(2, 1); got != 8 {
		t.Fatalf("Between reversed = %v", got)
	}
	peers := tr.Peers(1)
	if len(peers) != 1 || peers[2] != 8 {
		t.Fatalf("Peers = %v", peers)
	}
}

func TestTenantTraffic(t *testing.T) {
	tr := TenantTraffic([][]int{{1, 2, 3}, {7, 8}}, 2)
	if tr.Between(1, 2) != 2 || tr.Between(1, 3) != 2 || tr.Between(2, 3) != 2 {
		t.Fatal("intra-tenant flows missing")
	}
	if tr.Between(1, 7) != 0 {
		t.Fatal("cross-tenant flow present")
	}
}

func TestCrossRack(t *testing.T) {
	c := newCluster(4)
	topo, err := NewTopology(c.PMs(), 2) // racks {0,1}, {2,3}
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTraffic()
	tr.Add(0, 1, 10)
	tr.Add(0, 2, 4)

	host := func(vmID, pmID int) {
		vm := newVM(vmID)
		pm := c.PMs()[pmID]
		demand, _ := vm.DemandOn(pmType)
		assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	host(0, 0)
	host(1, 1) // same rack as vm0
	host(2, 3) // other rack
	if got := CrossRack(c, topo, tr); got != 4 {
		t.Fatalf("CrossRack = %v, want 4", got)
	}
}

// The decorator keeps a VM with its peers when a same-rack PM offers a
// near-equal rank score.
func TestPlacerPrefersPeerRack(t *testing.T) {
	c := newCluster(4)
	topo, err := NewTopology(c.PMs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenantTraffic([][]int{{0, 1}}, 10)
	p := netPlacer(t, topo, tr)

	// Seed vm0 on rack-1 (pm 2); make rack-0's pm 0 used too so both
	// racks offer used PMs with identical profiles.
	host := func(vmID, pmID int) {
		vm := newVM(vmID)
		pm := c.PMs()[pmID]
		demand, _ := vm.DemandOn(pmType)
		assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	host(0, 2)
	host(99, 0)

	pm, assign, err := p.Place(c, newVM(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	rack, _ := topo.Rack(pm.ID)
	if rack != 1 {
		t.Fatalf("vm 1 placed on rack %d (pm %d), want rack 1 with its peer", rack, pm.ID)
	}
	if err := c.Host(pm, newVM(1), assign); err != nil {
		t.Fatal(err)
	}
	if got := CrossRack(c, topo, tr); got != 0 {
		t.Fatalf("CrossRack = %v, want 0", got)
	}
}

// Without traffic peers the decorator defers to the inner placer.
func TestPlacerNoPeersDefersToInner(t *testing.T) {
	c := newCluster(2)
	topo, err := NewTopology(c.PMs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := netPlacer(t, topo, NewTraffic())
	pm, assign, err := p.Place(c, newVM(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm == nil || assign == nil {
		t.Fatal("no placement")
	}
	if p.Name() != "PageRankVM-net" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// The tolerance guards rank quality: a same-rack PM whose best profile
// scores far below the inner choice is rejected.
func TestPlacerToleranceGuardsQuality(t *testing.T) {
	c := newCluster(4)
	topo, err := NewTopology(c.PMs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenantTraffic([][]int{{0, 1}}, 10)
	p := netPlacer(t, topo, tr)
	p.Tolerance = opt.F(1e-9) // effectively: only exact ties may move

	// vm0's rack-1 host is nearly full and badly shaped; rack-0 has a
	// clean empty profile the inner placer will prefer.
	host := func(vmID, pmID int, units []int) {
		vm := &placement.VM{ID: vmID, Type: "x", Req: map[string]resource.VMType{
			pmType: resource.NewVMType("x", resource.Demand{Group: "cpu", Units: units}),
		}}
		pm := c.PMs()[pmID]
		demand, _ := vm.DemandOn(pmType)
		assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
		if assign == nil {
			t.Fatalf("seed vm %d does not fit", vmID)
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	host(0, 2, []int{4, 4, 4, 3}) // rack 1, nearly full dead-endish
	host(99, 0, []int{1, 1})      // rack 0, clean

	pm, _, err := p.Place(c, newVM(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	rack, _ := topo.Rack(pm.ID)
	if rack != 0 {
		t.Fatalf("tolerance violated: placed on rack %d", rack)
	}
}

func TestCrossRackSkipsUnplaced(t *testing.T) {
	c := newCluster(2)
	topo, err := NewTopology(c.PMs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTraffic()
	tr.Add(0, 1, 10)
	// Neither VM placed: no cross traffic counted.
	if got := CrossRack(c, topo, tr); got != 0 {
		t.Fatalf("CrossRack = %v", got)
	}
}

func TestPlacerPropagatesInnerError(t *testing.T) {
	c := newCluster(1)
	topo, err := NewTopology(c.PMs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := netPlacer(t, topo, NewTraffic())
	// Fill the only PM.
	for i := 0; i < 8; i++ {
		vm := newVM(100 + i)
		pm, assign, err := p.Place(c, vm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := p.Place(c, newVM(999), nil); err == nil {
		t.Fatal("expected no-capacity error")
	}
}

func TestPlacerHonorsExclude(t *testing.T) {
	c := newCluster(2)
	topo, err := NewTopology(c.PMs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenantTraffic([][]int{{0, 1}}, 5)
	p := netPlacer(t, topo, tr)
	src := c.PMs()[0]
	// Peer on the excluded PM: the decorator must not pull the VM there.
	vm0 := newVM(0)
	demand, _ := vm0.DemandOn(pmType)
	if err := c.Host(src, vm0, resource.GreedyAssign(src.Shape, src.Used(), demand)); err != nil {
		t.Fatal(err)
	}
	pm, _, err := p.Place(c, newVM(1), src)
	if err != nil {
		t.Fatal(err)
	}
	if pm == src {
		t.Fatal("excluded PM chosen")
	}
}

func TestPlacerMissingRankerForCandidate(t *testing.T) {
	// A cluster with a PM type absent from the registry: scoring that
	// candidate fails gracefully and the base decision stands.
	shape := hostShape()
	table, err := ranktable.NewJoint(shape, vmTypes(), ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmType, table)
	pms := []*placement.PM{
		placement.NewPM(0, pmType, shape),
		placement.NewPM(1, "ghost", shape),
	}
	c := placement.NewCluster(pms)
	topo, err := NewTopology(pms, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := TenantTraffic([][]int{{0, 1}}, 5)
	p := &Placer{
		Inner:   placement.NewPageRankVM(reg, placement.WithSeed(1)),
		Topo:    topo,
		Traffic: tr,
	}
	vm := newVM(0)
	pm, assign, err := p.Place(c, vm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Type != pmType {
		t.Fatalf("placed on unranked pm type %s", pm.Type)
	}
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Place(c, newVM(1), nil); err != nil {
		t.Fatal(err)
	}
}
