// Package network implements the paper's stated future work
// ("incorporating network infrastructure in designing PageRankVM in
// order to achieve bandwidth efficiency"): a two-level datacenter
// topology (PMs grouped into racks behind top-of-rack uplinks), a
// tenant traffic model, and a placement decorator that breaks
// near-ties in the PageRank score toward the PM that adds the least
// cross-rack traffic.
package network

import (
	"errors"
	"fmt"
	"sort"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
)

// Topology maps PMs to racks. Traffic between VMs in the same rack
// stays below the ToR switch; traffic between racks crosses the
// oversubscribed core, which is what the extension minimizes.
type Topology struct {
	rackOf map[int]int // pm id -> rack id
	racks  int
}

// NewTopology assigns the PMs of a cluster to racks round-robin by
// inventory order (adjacent PMs share a rack), rackSize PMs per rack.
func NewTopology(pms []*placement.PM, rackSize int) (*Topology, error) {
	if rackSize <= 0 {
		return nil, errors.New("network: rack size must be positive")
	}
	t := &Topology{rackOf: make(map[int]int, len(pms))}
	for i, pm := range pms {
		t.rackOf[pm.ID] = i / rackSize
	}
	t.racks = (len(pms) + rackSize - 1) / rackSize
	return t, nil
}

// Rack returns the rack of a PM id.
func (t *Topology) Rack(pmID int) (int, bool) {
	r, ok := t.rackOf[pmID]
	return r, ok
}

// NumRacks returns the rack count.
func (t *Topology) NumRacks() int { return t.racks }

// Traffic records the expected bandwidth (in arbitrary units, e.g.
// Mbps) exchanged between VM pairs. Tenants typically generate most
// traffic among their own VMs.
type Traffic struct {
	flows map[[2]int]float64
}

// NewTraffic returns an empty traffic matrix.
func NewTraffic() *Traffic {
	return &Traffic{flows: make(map[[2]int]float64)}
}

// Add accumulates rate units of traffic between VMs a and b
// (symmetric).
func (tr *Traffic) Add(a, b int, rate float64) {
	if a == b || rate <= 0 {
		return
	}
	if a > b {
		a, b = b, a
	}
	tr.flows[[2]int{a, b}] += rate
}

// Between returns the traffic between two VMs.
func (tr *Traffic) Between(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return tr.flows[[2]int{a, b}]
}

// Peers returns every VM exchanging traffic with vm and the rates.
func (tr *Traffic) Peers(vm int) map[int]float64 {
	out := make(map[int]float64)
	for pair, rate := range tr.flows {
		switch vm {
		case pair[0]:
			out[pair[1]] = rate
		case pair[1]:
			out[pair[0]] = rate
		}
	}
	return out
}

// CrossRack sums the traffic crossing rack boundaries under the
// cluster's current assignment — the bandwidth-efficiency metric of
// the extension. Flows involving unplaced VMs are skipped.
func CrossRack(c *placement.Cluster, topo *Topology, tr *Traffic) float64 {
	// Sum in sorted pair order: float addition is not associative, so
	// a map-order sum would differ bit-for-bit between runs.
	pairs := make([][2]int, 0, len(tr.flows))
	for pair := range tr.flows {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	total := 0.0
	for _, pair := range pairs {
		rate := tr.flows[pair]
		pmA, okA := c.Locate(pair[0])
		pmB, okB := c.Locate(pair[1])
		if !okA || !okB {
			continue
		}
		rackA, _ := topo.Rack(pmA.ID)
		rackB, _ := topo.Rack(pmB.ID)
		if rackA != rackB {
			total += rate
		}
	}
	return total
}

// Placer decorates an inner placer (normally PageRankVM) with
// bandwidth awareness: it asks the inner placer for its decision, then
// scans the used PMs of the *same rack-affinity class* — PMs in racks
// already hosting the VM's traffic peers — and, when one of them
// accommodates the VM with an inner-score within Tolerance of the
// inner choice, places there instead. Rank quality is preserved up to
// Tolerance; cross-rack traffic drops.
type Placer struct {
	// Inner is the rank-driven placer whose decisions are refined.
	Inner *placement.PageRankVM
	// Topo is the rack topology.
	Topo *Topology
	// Traffic is the VM communication matrix.
	Traffic *Traffic
	// Tolerance is the admissible relative score loss; nil selects the
	// default 0.1 (set with opt.F — opt.F(0) admits only exact ties).
	Tolerance *float64
}

var _ placement.Placer = (*Placer)(nil)

// Name implements placement.Placer.
func (p *Placer) Name() string { return "PageRankVM-net" }

// Place implements placement.Placer.
func (p *Placer) Place(c *placement.Cluster, vm *placement.VM, exclude *placement.PM) (*placement.PM, resource.Assignment, error) {
	basePM, baseAssign, err := p.Inner.Place(c, vm, exclude)
	if err != nil {
		return nil, nil, err
	}
	baseScore, ok := p.score(basePM, baseAssign)
	if !ok {
		return basePM, baseAssign, nil
	}

	// Racks where this VM's peers already run, weighted by rate.
	// Accumulate per-rack sums in sorted peer order: rackTraffic feeds
	// the gain comparisons below, so a map-order float sum would let
	// the chosen PM differ between runs of the same seed.
	peers := p.Traffic.Peers(vm.ID)
	peerIDs := make([]int, 0, len(peers))
	for peer := range peers {
		peerIDs = append(peerIDs, peer)
	}
	sort.Ints(peerIDs)
	rackTraffic := make(map[int]float64)
	for _, peer := range peerIDs {
		if pm, placed := c.Locate(peer); placed {
			if rack, ok := p.Topo.Rack(pm.ID); ok {
				rackTraffic[rack] += peers[peer]
			}
		}
	}
	if len(rackTraffic) == 0 {
		return basePM, baseAssign, nil
	}
	baseRack, _ := p.Topo.Rack(basePM.ID)

	tolerance := opt.Or(p.Tolerance, 0.1)
	var (
		bestPM     = basePM
		bestAssign = baseAssign
		bestGain   = rackTraffic[baseRack] // traffic kept in-rack
	)
	for _, pm := range c.UsedPMs() {
		if pm == exclude || pm == basePM || !pm.Fits(vm) {
			continue
		}
		rack, ok := p.Topo.Rack(pm.ID)
		if !ok || rackTraffic[rack] <= bestGain {
			continue
		}
		assign, score := p.bestAssign(pm, vm)
		if assign == nil || score < baseScore*(1-tolerance) {
			continue
		}
		bestPM, bestAssign, bestGain = pm, assign, rackTraffic[rack]
	}
	return bestPM, bestAssign, nil
}

// score evaluates the inner ranker on the profile that assign produces
// on pm.
func (p *Placer) score(pm *placement.PM, assign resource.Assignment) (float64, bool) {
	result := pm.Used().Add(assign.Vec(pm.Shape))
	ranker, ok := p.Inner.Ranker(pm.Type)
	if !ok {
		return 0, false
	}
	return ranker.Score(result)
}

// bestAssign returns pm's best accommodation of vm and its score.
func (p *Placer) bestAssign(pm *placement.PM, vm *placement.VM) (resource.Assignment, float64) {
	ranker, ok := p.Inner.Ranker(pm.Type)
	if !ok {
		return nil, 0
	}
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		return nil, 0
	}
	var (
		best      resource.Assignment
		bestScore = -1.0
	)
	for _, pl := range resource.Placements(pm.Shape, pm.Used(), demand) {
		if s, ok := ranker.Score(pl.Result); ok && s > bestScore {
			best, bestScore = pl.Assign, s
		}
	}
	return best, bestScore
}

// TenantTraffic builds an all-pairs traffic matrix within each tenant
// group: groups lists the VM ids of each tenant, rate is the pairwise
// bandwidth.
func TenantTraffic(groups [][]int, rate float64) *Traffic {
	tr := NewTraffic()
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				tr.Add(g[i], g[j], rate)
			}
		}
	}
	return tr
}

// Validate checks that every PM of the cluster has a rack.
func (t *Topology) Validate(c *placement.Cluster) error {
	for _, pm := range c.PMs() {
		if _, ok := t.rackOf[pm.ID]; !ok {
			return fmt.Errorf("network: pm %d has no rack", pm.ID)
		}
	}
	return nil
}
