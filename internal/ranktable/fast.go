package ranktable

import "pagerankvm/internal/resource"

// TypeRef is an opaque, ranker-specific handle for a VM type resolved
// by ResolveType. It is only meaningful with the ranker that issued it.
type TypeRef struct{ id int32 }

// FastRanker is the integer-indexed scoring interface Algorithm 2's hot
// loop uses. Instead of enumerating resource.Placements and hashing
// canonical profile keys per candidate PM, the placer resolves each
// PM's profile to lattice node ids once (cached until the PM mutates,
// see placement.PM) and each VM type to a TypeRef once per batch; a
// candidate's best accommodation is then a single precomputed-table
// read.
//
// All methods are safe for concurrent readers and allocation-free on
// the hit path. Fast reports whether the fast path is available at all
// — deserialized tables, over-large lattices and type sets the ranker
// cannot decompose return false, and callers fall back to the
// string-key Ranker methods (which remain exactly equivalent).
type FastRanker interface {
	Ranker
	// Fast reports whether the id-indexed methods below are usable.
	Fast() bool
	// NodeIDs resolves a (not necessarily canonical) profile to the
	// ranker's node ids, appending to dst[:0]. One id for a joint
	// table; one id per resource group for a factored ranker. ok is
	// false when the profile is outside the lattice.
	NodeIDs(p resource.Vec, dst []int32) ([]int32, bool)
	// ResolveType resolves a VM type to a handle for BestMove and
	// Materialize. ok is false when the type is unknown to the ranker,
	// its demands differ from the registered type of the same name, or
	// the ranker cannot serve it from precomputed moves.
	ResolveType(vt resource.VMType) (TypeRef, bool)
	// BestMove returns the best score reachable from the profile ids by
	// placing one VM of the resolved type, along with the number of
	// distinct candidate profiles. ok is false when the type cannot be
	// placed on the profile. The score and count are bitwise/exactly
	// what a scan over resource.Placements + Score would produce.
	BestMove(ids []int32, ref TypeRef) (score float64, count int, ok bool)
	// Materialize returns a representative anti-collocation assignment
	// realizing BestMove's score, in canonical coordinates (the
	// caller translates to the PM's actual dimension order; see
	// placement.alignAssign). The assignment aliases a shared arena
	// and must not be modified.
	Materialize(ids []int32, ref TypeRef) (resource.Assignment, bool)
	// ScoreIDs returns the score of the profile identified by ids —
	// the id-indexed equivalent of Score/ScoreKey.
	ScoreIDs(ids []int32) (float64, bool)
}

var (
	_ FastRanker = (*Table)(nil)
	_ FastRanker = (*Factored)(nil)
)

// Fast reports whether the table carries its lattice and id-indexed
// scores (tables rebuilt from serialized form do not), and — when the
// lattice has active VM types — the precomputed move table.
func (t *Table) Fast() bool {
	if t.space == nil || t.ids == nil {
		return false
	}
	return t.space.NumTypes() == 0 || t.best != nil
}

// NodeIDs resolves p to its single lattice node id.
//
//prvm:hotpath
func (t *Table) NodeIDs(p resource.Vec, dst []int32) ([]int32, bool) {
	if t.space == nil || len(p) != t.shape.NumDims() {
		return nil, false
	}
	id := t.space.Index(p)
	if id < 0 {
		return nil, false
	}
	//prvmlint:allow hotalloc — appends into the caller's reused buffer; steady state never grows it
	return append(dst[:0], int32(id)), true
}

// ResolveType resolves vt against the lattice's active type set,
// verifying the demands match the registered type of the same name.
func (t *Table) ResolveType(vt resource.VMType) (TypeRef, bool) {
	if t.best == nil {
		return TypeRef{}, false
	}
	tid := t.space.TypeIndex(vt.Name)
	if tid < 0 || !t.space.TypeAt(tid).Equal(vt) {
		return TypeRef{}, false
	}
	return TypeRef{id: int32(tid)}, true
}

// BestMove reads the precomputed argmax for (node, type).
//
//prvm:hotpath
func (t *Table) BestMove(ids []int32, ref TypeRef) (float64, int, bool) {
	m := t.best[int(ids[0])*t.space.NumTypes()+int(ref.id)]
	if m.arg < 0 {
		return 0, 0, false
	}
	return m.score, int(m.count), true
}

// Materialize returns the winning move's representative assignment.
func (t *Table) Materialize(ids []int32, ref TypeRef) (resource.Assignment, bool) {
	m := t.best[int(ids[0])*t.space.NumTypes()+int(ref.id)]
	if m.arg < 0 {
		return nil, false
	}
	return t.space.TypedAssign(int(ids[0]), int(ref.id))[m.arg], true
}

// ScoreIDs returns the score of node ids[0].
//
//prvm:hotpath
func (t *Table) ScoreIDs(ids []int32) (float64, bool) {
	if t.ids == nil || len(ids) != 1 || int(ids[0]) >= len(t.ids) {
		return 0, false
	}
	return t.ids[ids[0]], true
}

// Fast reports whether every group table carries its id-indexed form.
func (f *Factored) Fast() bool { return f.fast }

// NodeIDs resolves p to one node id per resource group (the factored
// profile coordinates).
//
//prvm:hotpath
func (f *Factored) NodeIDs(p resource.Vec, dst []int32) ([]int32, bool) {
	if !f.fast || len(p) != f.shape.NumDims() {
		return nil, false
	}
	dst = dst[:0]
	for gi, tb := range f.groups {
		id := tb.space.Index(f.shape.Project(p, gi))
		if id < 0 {
			return nil, false
		}
		//prvmlint:allow hotalloc — appends into the caller's reused buffer; steady state never grows it
		dst = append(dst, int32(id))
	}
	return dst, true
}

// ResolveType resolves vt against the bindings precomputed at build
// time, verifying the demands match the registered type.
func (f *Factored) ResolveType(vt resource.VMType) (TypeRef, bool) {
	if !f.fast {
		return TypeRef{}, false
	}
	ti, ok := f.typeIdx[vt.Name]
	if !ok || !f.feas[ti] || !f.types[ti].Equal(vt) {
		return TypeRef{}, false
	}
	return TypeRef{id: int32(ti)}, true
}

// BestMove multiplies the per-group best scores in ascending group
// order — the exact multiplication chain Score performs for the
// winning placement, so the result is bitwise identical to a scan over
// resource.Placements. Per-group placements are independent, so the
// joint candidate count is the product of the group counts and the
// joint maximum factors into per-group maxima (float multiplication is
// monotone on non-negative operands, so this holds bitwise, not just
// in real arithmetic).
//
//prvm:hotpath
func (f *Factored) BestMove(ids []int32, ref TypeRef) (float64, int, bool) {
	ti := int(ref.id)
	gtid := f.gtid[ti]
	score := 1.0
	count := 1
	for gi, tb := range f.groups {
		tid := gtid[gi]
		if tid < 0 {
			// Type does not touch this group: the group profile is
			// unchanged and contributes its own score as a factor.
			score *= tb.ids[ids[gi]]
			continue
		}
		m := tb.best[int(ids[gi])*tb.space.NumTypes()+int(tid)]
		if m.arg < 0 {
			return 0, 0, false
		}
		score *= m.score
		count *= int(m.count)
	}
	return score, count, true
}

// Materialize concatenates the winning per-group assignments, shifting
// each group's dimensions to their joint-shape positions. The result
// is freshly allocated (group arenas cannot be aliased across groups).
func (f *Factored) Materialize(ids []int32, ref TypeRef) (resource.Assignment, bool) {
	ti := int(ref.id)
	vt := f.types[ti]
	out := make(resource.Assignment, 0, vt.TotalUnits())
	for _, g := range f.dem[ti] {
		gi := int(g)
		tb := f.groups[gi]
		tid := f.gtid[ti][gi]
		m := tb.best[int(ids[gi])*tb.space.NumTypes()+int(tid)]
		if m.arg < 0 {
			return nil, false
		}
		ga := tb.space.TypedAssign(int(ids[gi]), int(tid))[m.arg]
		lo, _ := f.shape.GroupRange(gi)
		for _, du := range ga {
			out = append(out, resource.DimUnits{Dim: lo + du.Dim, Units: du.Units})
		}
	}
	return out, true
}

// ScoreIDs multiplies the per-group scores in ascending group order
// (bitwise identical to Score on the corresponding joint profile).
//
//prvm:hotpath
func (f *Factored) ScoreIDs(ids []int32) (float64, bool) {
	if !f.fast || len(ids) != len(f.groups) {
		return 0, false
	}
	score := 1.0
	for gi, tb := range f.groups {
		if int(ids[gi]) >= len(tb.ids) {
			return 0, false
		}
		score *= tb.ids[ids[gi]]
	}
	return score, true
}
