// Package ranktable turns the PageRank scores of Algorithm 1 into the
// Profile→PageRank score table that Algorithm 2 consults during VM
// placement.
//
// Two rankers are provided:
//
//   - Joint runs Algorithm 1 on the full (canonical) profile lattice of
//     a PM shape. It is exact but only feasible for moderate shapes.
//   - Factored runs Algorithm 1 once per resource group on the group's
//     own sub-lattice with the VM types projected onto the group, and
//     scores a profile as the product of its group scores. This scales
//     to large PM types (the paper's Table II) at the cost of ignoring
//     cross-group demand coupling; the ablation benchmark
//     BenchmarkAblationJointVsFactored quantifies the difference.
package ranktable

import (
	"fmt"
	"sort"
	"time"

	"pagerankvm/internal/lattice"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/pagerank"
	"pagerankvm/internal/resource"
)

// Ranker scores PM usage profiles. Implementations are safe for
// concurrent readers after construction.
type Ranker interface {
	// Shape returns the PM shape the ranker was built for.
	Shape() *resource.Shape
	// Score returns the rank of a (not necessarily canonical) profile.
	// ok is false when the profile is outside the lattice.
	Score(p resource.Vec) (score float64, ok bool)
	// ScoreKey returns the rank for a canonical profile key.
	ScoreKey(key string) (score float64, ok bool)
}

// BuildStats summarizes a table build.
type BuildStats struct {
	Nodes      int
	Edges      int
	Iterations int
	Converged  bool
}

// Table is a concrete Profile→score table over one lattice (either the
// joint lattice or one group's sub-lattice).
type Table struct {
	shape  *resource.Shape
	scores map[string]float64
	stats  BuildStats

	// hits/misses count Score lookups when the table was built with
	// Options.Obs; nil (free) otherwise.
	hits, misses *obs.Counter
}

var _ Ranker = (*Table)(nil)

// Mode selects the rank semantics applied to the profile graph. The
// paper's Algorithm 1 is internally inconsistent — the literal Equ.
// (12) (votes flow from a profile to the profiles reachable by adding
// a VM) produces orderings that contradict the paper's own worked
// examples (Figure 2, Section III-B); ranking on the reversed graph
// matches the examples but degenerates to worst-fit placement. The
// closing sentence of Section V-B states what the rank is supposed to
// mean: "the probability that this profile can reach the best profile
// or high resource utilization". ModeAbsorption implements exactly
// that — the damped absorption value of a random walk over the
// profile graph (see pagerank.AbsorptionValues) — reproduces every
// worked example in the paper, and consolidates. It is the default;
// the PageRank modes remain for the interpretation ablation
// (BenchmarkAblationRankMode). See DESIGN.md for the full discussion.
type Mode int

const (
	// ModeAbsorption ranks a profile by the damped expected terminal
	// utilization of a random walk that repeatedly accommodates a
	// feasible VM (default; matches the paper's examples and claims).
	ModeAbsorption Mode = iota
	// ModeReversePR runs PageRank with votes flowing from a profile
	// to the profiles that can develop into it.
	ModeReversePR
	// ModeForwardPR is the literal reading of Equ. (12).
	ModeForwardPR
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeForwardPR:
		return "forward-pr"
	case ModeReversePR:
		return "reverse-pr"
	default:
		return "absorption"
	}
}

// DefaultRewardExponent sharpens the terminal-utilization reward of
// ModeAbsorption (see pagerank.AbsorptionValues).
const DefaultRewardExponent = 8

// Options configures table construction.
type Options struct {
	// PageRank configures the Algorithm 1 iteration (the Damping
	// field is shared by ModeAbsorption's walk).
	PageRank pagerank.Options
	// Mode selects the rank semantics; the zero value is
	// ModeAbsorption.
	Mode Mode
	// RewardExponent is ModeAbsorption's terminal reward sharpening;
	// nil selects DefaultRewardExponent (set with opt.F).
	RewardExponent *float64
	// DisableBPRU skips the line-19 discount in the PageRank modes
	// (for the BPRU ablation); ModeAbsorption ignores it, since the
	// dead-end discount is inherent to the absorption value.
	DisableBPRU bool
	// Obs, when non-nil, records build cost (ranktable.* metrics),
	// score-lookup hit/miss counts, and the Algorithm 1 convergence
	// stats (pagerank.* metrics).
	Obs *obs.Observer
}

// NewJoint builds the exact Profile→score table for shape under the
// given VM-type set (Algorithm 1 on the full canonical lattice).
func NewJoint(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Table, error) {
	start := time.Now()
	space, err := lattice.New(shape, vmTypes)
	if err != nil {
		return nil, fmt.Errorf("ranktable: joint lattice: %w", err)
	}
	t, err := fromSpace(space, opts)
	if err != nil {
		return nil, err
	}
	if o := opts.Obs; o != nil {
		o.Counter("ranktable.builds").Inc()
		o.Counter("ranktable.nodes").Add(int64(t.stats.Nodes))
		o.Counter("ranktable.edges").Add(int64(t.stats.Edges))
		if t.stats.Converged {
			o.Counter("ranktable.converged_builds").Inc()
		}
		o.Histogram("ranktable.build_seconds", nil).Observe(time.Since(start).Seconds())
	}
	return t, nil
}

func fromSpace(space *lattice.Space, opts Options) (*Table, error) {
	fwd := make([][]int32, space.Len())
	for i := range fwd {
		fwd[i] = space.Succ(i)
	}
	utils := space.Utils()

	var (
		scores []float64
		res    pagerank.Result
		err    error
	)
	switch opts.Mode {
	case ModeAbsorption:
		damping := opt.Or(opts.PageRank.Damping, pagerank.DefaultDamping)
		rewardExp := opt.Or(opts.RewardExponent, DefaultRewardExponent)
		scores, err = pagerank.AbsorptionValues(fwd, utils, damping, rewardExp)
		res = pagerank.Result{Converged: true}
	case ModeForwardPR, ModeReversePR:
		votes := fwd
		if opts.Mode == ModeReversePR {
			votes = reverse(fwd)
		}
		propts := opts.PageRank
		if propts.Obs == nil {
			propts.Obs = opts.Obs
		}
		res, err = pagerank.Ranks(votes, propts)
		if err == nil {
			scores = res.Ranks
			if !opts.DisableBPRU {
				var bpru []float64
				bpruStart := time.Now()
				bpru, err = pagerank.BPRU(fwd, utils)
				if opts.Obs != nil {
					opts.Obs.Histogram("pagerank.bpru_seconds", nil).
						Observe(time.Since(bpruStart).Seconds())
				}
				if err == nil {
					discounted := make([]float64, len(scores))
					for i, r := range scores {
						discounted[i] = r * bpru[i]
					}
					scores = discounted
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %d", opts.Mode)
	}
	if err != nil {
		return nil, fmt.Errorf("ranktable: %w", err)
	}

	t := &Table{
		shape:  space.Shape(),
		scores: make(map[string]float64, space.Len()),
		hits:   opts.Obs.Counter("ranktable.score_hits"),
		misses: opts.Obs.Counter("ranktable.score_misses"),
		stats: BuildStats{
			Nodes:      space.Len(),
			Edges:      space.Edges(),
			Iterations: res.Iterations,
			Converged:  res.Converged,
		},
	}
	for i := 0; i < space.Len(); i++ {
		t.scores[t.shape.KeyCanon(space.Node(i))] = scores[i]
	}
	return t, nil
}

// Shape returns the PM shape of the table.
func (t *Table) Shape() *resource.Shape { return t.shape }

// Stats returns build diagnostics.
func (t *Table) Stats() BuildStats { return t.stats }

// Len returns the number of profiles in the table.
func (t *Table) Len() int { return len(t.scores) }

// Score returns the rank of profile p.
func (t *Table) Score(p resource.Vec) (float64, bool) {
	if len(p) != t.shape.NumDims() {
		t.misses.Inc()
		return 0, false
	}
	s, ok := t.scores[t.shape.Key(p)]
	t.countLookup(ok)
	return s, ok
}

// ScoreKey returns the rank for a canonical profile key.
func (t *Table) ScoreKey(key string) (float64, bool) {
	s, ok := t.scores[key]
	t.countLookup(ok)
	return s, ok
}

// countLookup tallies a lookup outcome; both counters are nil (and the
// calls free) unless the table was built with Options.Obs.
func (t *Table) countLookup(ok bool) {
	if ok {
		t.hits.Inc()
	} else {
		t.misses.Inc()
	}
}

// Entry pairs a canonical profile with its score, for inspection and
// reporting (Figure 1 reproduction).
type Entry struct {
	Profile resource.Vec
	Score   float64
}

// Top returns the n highest-scoring profiles, ties broken by profile
// order, descending by score.
func (t *Table) Top(n int) []Entry {
	entries := make([]Entry, 0, len(t.scores))
	for key, score := range t.scores {
		entries = append(entries, Entry{Profile: decodeKey(key), Score: score})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score > entries[j].Score {
			return true
		}
		if entries[i].Score < entries[j].Score {
			return false
		}
		return entries[i].Profile.String() < entries[j].Profile.String()
	})
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

// reverse flips every edge of the graph.
func reverse(succ [][]int32) [][]int32 {
	rev := make([][]int32, len(succ))
	for i, out := range succ {
		for _, j := range out {
			rev[j] = append(rev[j], int32(i))
		}
	}
	return rev
}

func decodeKey(key string) resource.Vec {
	v := make(resource.Vec, len(key))
	for i := 0; i < len(key); i++ {
		v[i] = int(key[i])
	}
	return v
}

// Factored scores profiles as the product of independent per-group
// tables.
type Factored struct {
	shape  *resource.Shape
	groups []*Table // indexed by group, nil when no VM type touches it
}

var _ Ranker = (*Factored)(nil)

// NewFactored builds one table per resource group of shape, with the
// VM-type set projected onto each group.
func NewFactored(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Factored, error) {
	f := &Factored{
		shape:  shape,
		groups: make([]*Table, shape.NumGroups()),
	}
	for gi := 0; gi < shape.NumGroups(); gi++ {
		sub := shape.SubShape(gi)
		var projected []resource.VMType
		for _, vt := range vmTypes {
			if p, ok := vt.Project(shape.Group(gi).Name); ok {
				projected = append(projected, p)
			}
		}
		table, err := NewJoint(sub, projected, opts)
		if err != nil {
			return nil, fmt.Errorf("ranktable: group %q: %w", shape.Group(gi).Name, err)
		}
		f.groups[gi] = table
	}
	return f, nil
}

// Shape returns the PM shape of the ranker.
func (f *Factored) Shape() *resource.Shape { return f.shape }

// GroupTable returns the table for group gi.
func (f *Factored) GroupTable(gi int) *Table { return f.groups[gi] }

// Score returns the product of the per-group scores of p.
func (f *Factored) Score(p resource.Vec) (float64, bool) {
	if len(p) != f.shape.NumDims() {
		return 0, false
	}
	score := 1.0
	for gi, table := range f.groups {
		sub := f.shape.Project(p, gi)
		s, ok := table.Score(sub)
		if !ok {
			return 0, false
		}
		score *= s
	}
	return score, true
}

// ScoreKey decodes a canonical joint key and scores it.
func (f *Factored) ScoreKey(key string) (float64, bool) {
	if len(key) != f.shape.NumDims() {
		return 0, false
	}
	return f.Score(decodeKey(key))
}
