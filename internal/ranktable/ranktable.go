// Package ranktable turns the PageRank scores of Algorithm 1 into the
// Profile→PageRank score table that Algorithm 2 consults during VM
// placement.
//
// Two rankers are provided:
//
//   - Joint runs Algorithm 1 on the full (canonical) profile lattice of
//     a PM shape. It is exact but only feasible for moderate shapes.
//   - Factored runs Algorithm 1 once per resource group on the group's
//     own sub-lattice with the VM types projected onto the group, and
//     scores a profile as the product of its group scores. This scales
//     to large PM types (the paper's Table II) at the cost of ignoring
//     cross-group demand coupling; the ablation benchmark
//     BenchmarkAblationJointVsFactored quantifies the difference.
package ranktable

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pagerankvm/internal/lattice"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/pagerank"
	"pagerankvm/internal/resource"
)

// Ranker scores PM usage profiles. Implementations are safe for
// concurrent readers after construction.
type Ranker interface {
	// Shape returns the PM shape the ranker was built for.
	Shape() *resource.Shape
	// Score returns the rank of a (not necessarily canonical) profile.
	// ok is false when the profile is outside the lattice.
	Score(p resource.Vec) (score float64, ok bool)
	// ScoreKey returns the rank for a canonical profile key.
	ScoreKey(key string) (score float64, ok bool)
}

// BuildStats summarizes a table build.
type BuildStats struct {
	Nodes      int
	Edges      int
	Iterations int
	Converged  bool
}

// Table is a concrete Profile→score table over one lattice (either the
// joint lattice or one group's sub-lattice).
//
// Scores live in a dense []float64 indexed by lattice node id — the
// form every hot lookup uses (see fast.go). The string-keyed map is
// retained only for serialization, Top and the compatibility Score/
// ScoreKey shims.
type Table struct {
	shape  *resource.Shape
	scores map[string]float64 // canonical key -> score (serialization/debug)
	ids    []float64          // score by node id (nil for loaded tables)
	space  *lattice.Space     // nil for loaded tables
	best   []move             // argmax per (node id, type id); see buildBest
	stats  BuildStats

	// hits/misses count Score lookups when the table was built with
	// Options.Obs; nil (free) otherwise.
	hits, misses *obs.Counter
}

// move is the precomputed answer to "what is the best accommodation of
// VM type t from profile node i": the index of the winning successor
// in the lattice's typed list, the number of candidate profiles, and
// the winning score. One move per (node, type) makes Algorithm 2's
// per-candidate work a single array read.
type move struct {
	arg   int32 // index into lattice.TypedSucc(i, t); -1 when the type cannot be placed
	count int32
	score float64
}

var _ Ranker = (*Table)(nil)

// Mode selects the rank semantics applied to the profile graph. The
// paper's Algorithm 1 is internally inconsistent — the literal Equ.
// (12) (votes flow from a profile to the profiles reachable by adding
// a VM) produces orderings that contradict the paper's own worked
// examples (Figure 2, Section III-B); ranking on the reversed graph
// matches the examples but degenerates to worst-fit placement. The
// closing sentence of Section V-B states what the rank is supposed to
// mean: "the probability that this profile can reach the best profile
// or high resource utilization". ModeAbsorption implements exactly
// that — the damped absorption value of a random walk over the
// profile graph (see pagerank.AbsorptionValues) — reproduces every
// worked example in the paper, and consolidates. It is the default;
// the PageRank modes remain for the interpretation ablation
// (BenchmarkAblationRankMode). See DESIGN.md for the full discussion.
type Mode int

const (
	// ModeAbsorption ranks a profile by the damped expected terminal
	// utilization of a random walk that repeatedly accommodates a
	// feasible VM (default; matches the paper's examples and claims).
	ModeAbsorption Mode = iota
	// ModeReversePR runs PageRank with votes flowing from a profile
	// to the profiles that can develop into it.
	ModeReversePR
	// ModeForwardPR is the literal reading of Equ. (12).
	ModeForwardPR
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeForwardPR:
		return "forward-pr"
	case ModeReversePR:
		return "reverse-pr"
	default:
		return "absorption"
	}
}

// DefaultRewardExponent sharpens the terminal-utilization reward of
// ModeAbsorption (see pagerank.AbsorptionValues).
const DefaultRewardExponent = 8

// Options configures table construction.
type Options struct {
	// PageRank configures the Algorithm 1 iteration (the Damping
	// field is shared by ModeAbsorption's walk).
	PageRank pagerank.Options
	// Mode selects the rank semantics; the zero value is
	// ModeAbsorption.
	Mode Mode
	// RewardExponent is ModeAbsorption's terminal reward sharpening;
	// nil selects DefaultRewardExponent (set with opt.F).
	RewardExponent *float64
	// DisableBPRU skips the line-19 discount in the PageRank modes
	// (for the BPRU ablation); ModeAbsorption ignores it, since the
	// dead-end discount is inherent to the absorption value.
	DisableBPRU bool
	// Obs, when non-nil, records build cost (ranktable.* metrics),
	// score-lookup hit/miss counts, and the Algorithm 1 convergence
	// stats (pagerank.* metrics).
	Obs *obs.Observer
	// Recorder, when non-nil, appends a "ranktable.build" span per
	// table build to the decision recording (one per group table for
	// NewFactored, labelled with the group name).
	Recorder *record.Recorder
	// WireWorkers caps the goroutines wiring lattice successor edges;
	// zero selects GOMAXPROCS (see lattice.Options.Workers). Output is
	// identical for every worker count.
	WireWorkers int
	// Cache, when non-nil, deduplicates builds: NewJoint and
	// NewFactored consult it by canonical shape, VM-type set and
	// options fingerprint, and build only on a miss (singleflight; see
	// Cache). Heterogeneous-fleet registries should share one Cache so
	// each distinct table — and each distinct per-group sub-table —
	// builds exactly once.
	Cache *Cache
}

// NewJoint builds the exact Profile→score table for shape under the
// given VM-type set (Algorithm 1 on the full canonical lattice).
// With Options.Cache set, the build is served from or recorded into
// the cache.
func NewJoint(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Table, error) {
	if opts.Cache != nil {
		return opts.Cache.Joint(shape, vmTypes, opts)
	}
	return buildJoint(shape, vmTypes, opts)
}

func buildJoint(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Table, error) {
	start := time.Now()
	space, err := lattice.NewSpace(shape, vmTypes, lattice.Options{Workers: opts.WireWorkers})
	if err != nil {
		return nil, fmt.Errorf("ranktable: joint lattice: %w", err)
	}
	t, err := fromSpace(space, opts)
	if err != nil {
		return nil, err
	}
	if o := opts.Obs; o != nil {
		o.Counter("ranktable.builds").Inc()
		o.Counter("ranktable.nodes").Add(int64(t.stats.Nodes))
		o.Counter("ranktable.edges").Add(int64(t.stats.Edges))
		if t.stats.Converged {
			o.Counter("ranktable.converged_builds").Inc()
		}
		o.Histogram("ranktable.build_seconds", nil).Observe(time.Since(start).Seconds())
	}
	opts.Recorder.RecordSpan("ranktable.build", time.Since(start).Nanoseconds(),
		map[string]string{"mode": opts.Mode.String()})
	return t, nil
}

func fromSpace(space *lattice.Space, opts Options) (*Table, error) {
	g := pagerank.CSR{Offsets: space.SuccOffsets(), Edges: space.SuccArena()}
	utils := space.Utils()

	var (
		scores []float64
		res    pagerank.Result
		err    error
	)
	switch opts.Mode {
	case ModeAbsorption:
		damping := opt.Or(opts.PageRank.Damping, pagerank.DefaultDamping)
		rewardExp := opt.Or(opts.RewardExponent, DefaultRewardExponent)
		scores, err = pagerank.AbsorptionValuesCSR(g, utils, damping, rewardExp)
		res = pagerank.Result{Converged: true}
	case ModeForwardPR, ModeReversePR:
		votes := g
		if opts.Mode == ModeReversePR {
			votes = g.Reverse()
		}
		propts := opts.PageRank
		if propts.Obs == nil {
			propts.Obs = opts.Obs
		}
		res, err = pagerank.RanksCSR(votes, propts)
		if err == nil {
			scores = res.Ranks
			if !opts.DisableBPRU {
				var bpru []float64
				bpruStart := time.Now()
				bpru, err = pagerank.BPRUCSR(g, utils)
				if opts.Obs != nil {
					opts.Obs.Histogram("pagerank.bpru_seconds", nil).
						Observe(time.Since(bpruStart).Seconds())
				}
				if err == nil {
					discounted := make([]float64, len(scores))
					for i, r := range scores {
						discounted[i] = r * bpru[i]
					}
					scores = discounted
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %d", opts.Mode)
	}
	if err != nil {
		return nil, fmt.Errorf("ranktable: %w", err)
	}

	// No string-keyed map is materialized here: with the space at hand,
	// Score/ScoreKey resolve node ids arithmetically (lattice.Index) and
	// read the dense ids vector, which is both faster and allocation-
	// free. The map exists only on tables that need it — loaded tables
	// (no space) and Save, which builds it on demand (scoresMap).
	t := &Table{
		shape:  space.Shape(),
		ids:    scores,
		space:  space,
		hits:   opts.Obs.Counter("ranktable.score_hits"),
		misses: opts.Obs.Counter("ranktable.score_misses"),
		stats: BuildStats{
			Nodes:      space.Len(),
			Edges:      space.Edges(),
			Iterations: res.Iterations,
			Converged:  res.Converged,
		},
	}
	t.buildBest()
	return t, nil
}

// scoresMap returns the canonical-key score map, building it from the
// lattice when the table was constructed in memory (loaded tables
// carry the map directly).
func (t *Table) scoresMap() map[string]float64 {
	if t.scores != nil || t.space == nil {
		return t.scores
	}
	m := make(map[string]float64, t.space.Len())
	for i := 0; i < t.space.Len(); i++ {
		m[t.shape.KeyCanon(t.space.Node(i))] = t.ids[i]
	}
	return m
}

// buildBest precomputes, for every (node, active VM type) pair, the
// argmax of the id-indexed scores over the lattice's typed successor
// list. Ties keep the first maximum in enumeration order — the same
// winner a linear scan over resource.Placements picks.
func (t *Table) buildBest() {
	sp := t.space
	if sp == nil || !sp.HasTyped() {
		return
	}
	n, nt := sp.Len(), sp.NumTypes()
	if nt == 0 {
		return
	}
	t.best = make([]move, n*nt)
	for i := 0; i < n; i++ {
		for ty := 0; ty < nt; ty++ {
			succ := sp.TypedSucc(i, ty)
			m := move{arg: -1, count: int32(len(succ))}
			for k, j := range succ {
				if s := t.ids[j]; m.arg < 0 || s > m.score {
					m.arg, m.score = int32(k), s
				}
			}
			t.best[i*nt+ty] = m
		}
	}
}

// Shape returns the PM shape of the table.
func (t *Table) Shape() *resource.Shape { return t.shape }

// Stats returns build diagnostics.
func (t *Table) Stats() BuildStats { return t.stats }

// Len returns the number of profiles in the table.
func (t *Table) Len() int {
	if t.space != nil {
		return t.space.Len()
	}
	return len(t.scores)
}

// Score returns the rank of profile p.
func (t *Table) Score(p resource.Vec) (float64, bool) {
	if t.space != nil {
		id := t.space.Index(p) // handles length mismatch and out-of-lattice
		if id < 0 {
			t.misses.Inc()
			return 0, false
		}
		t.hits.Inc()
		return t.ids[id], true
	}
	if len(p) != t.shape.NumDims() {
		t.misses.Inc()
		return 0, false
	}
	s, ok := t.scores[t.shape.Key(p)]
	t.countLookup(ok)
	return s, ok
}

// ScoreKey returns the rank for a canonical profile key.
func (t *Table) ScoreKey(key string) (float64, bool) {
	if t.space != nil {
		id := t.space.IndexKey(key)
		if id < 0 {
			t.misses.Inc()
			return 0, false
		}
		t.hits.Inc()
		return t.ids[id], true
	}
	s, ok := t.scores[key]
	t.countLookup(ok)
	return s, ok
}

// countLookup tallies a lookup outcome; both counters are nil (and the
// calls free) unless the table was built with Options.Obs.
func (t *Table) countLookup(ok bool) {
	if ok {
		t.hits.Inc()
	} else {
		t.misses.Inc()
	}
}

// Entry pairs a canonical profile with its score, for inspection and
// reporting (Figure 1 reproduction).
type Entry struct {
	Profile resource.Vec
	Score   float64
}

// Top returns the n highest-scoring profiles, ties broken by profile
// order, descending by score.
func (t *Table) Top(n int) []Entry {
	var entries []Entry
	if t.space != nil {
		entries = make([]Entry, 0, t.space.Len())
		for i := 0; i < t.space.Len(); i++ {
			entries = append(entries, Entry{Profile: t.space.Node(i).Clone(), Score: t.ids[i]})
		}
	} else {
		entries = make([]Entry, 0, len(t.scores))
		for key, score := range t.scores {
			entries = append(entries, Entry{Profile: decodeKey(key), Score: score})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score > entries[j].Score {
			return true
		}
		if entries[i].Score < entries[j].Score {
			return false
		}
		return entries[i].Profile.String() < entries[j].Profile.String()
	})
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	return entries
}

func decodeKey(key string) resource.Vec {
	v := make(resource.Vec, len(key))
	for i := 0; i < len(key); i++ {
		v[i] = int(key[i])
	}
	return v
}

// Factored scores profiles as the product of independent per-group
// tables.
type Factored struct {
	shape  *resource.Shape
	groups []*Table // indexed by group, nil when no VM type touches it

	// Fast-path type bindings, built once from the VM-type set the
	// ranker was constructed with (see fast.go). For registered type t:
	// gtid[t][gi] is the group table's type id (or -1 when the type
	// does not touch group gi) and dem[t] lists the shape group index
	// of each demand, in demand order, for assignment materialization.
	types   []resource.VMType
	typeIdx map[string]int
	gtid    [][]int32
	dem     [][]int32
	feas    []bool // false: missing demand group or duplicate-group demands — fast path declines
	fast    bool
}

var _ Ranker = (*Factored)(nil)

// NewFactored builds one table per resource group of shape, with the
// VM-type set projected onto each group. Groups build in parallel —
// each goroutine writes only its own slot, so the result (and the
// first error, by group order) is deterministic. With Options.Cache
// set, the whole ranker and each per-group table are served from or
// recorded into the cache — two PM types sharing a group geometry
// share the group's build.
func NewFactored(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Factored, error) {
	if opts.Cache != nil {
		return opts.Cache.Factored(shape, vmTypes, opts)
	}
	return buildFactored(shape, vmTypes, opts)
}

func buildFactored(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Factored, error) {
	ng := shape.NumGroups()
	f := &Factored{
		shape:  shape,
		groups: make([]*Table, ng),
	}
	errs := make([]error, ng)
	var wg sync.WaitGroup
	for gi := 0; gi < ng; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			start := time.Now()
			sub := shape.SubShape(gi)
			var projected []resource.VMType
			for _, vt := range vmTypes {
				if p, ok := vt.Project(shape.Group(gi).Name); ok {
					projected = append(projected, p)
				}
			}
			// Group builds span under the group's name instead of the
			// generic NewJoint span (the recorder is concurrency-safe,
			// so parallel group builds interleave cleanly).
			gopts := opts
			gopts.Recorder = nil
			table, err := NewJoint(sub, projected, gopts)
			if err != nil {
				errs[gi] = fmt.Errorf("ranktable: group %q: %w", shape.Group(gi).Name, err)
				return
			}
			f.groups[gi] = table
			opts.Recorder.RecordSpan("ranktable.build", time.Since(start).Nanoseconds(),
				map[string]string{"mode": opts.Mode.String(), "group": shape.Group(gi).Name})
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	f.bindTypes(vmTypes)
	return f, nil
}

// bindTypes resolves every VM type of the build set against the group
// tables, precomputing the per-group type ids and demand layout the
// fast path indexes by.
func (f *Factored) bindTypes(vmTypes []resource.VMType) {
	f.fast = true
	for _, tb := range f.groups {
		if !tb.Fast() {
			f.fast = false
			return
		}
	}
	f.typeIdx = make(map[string]int, len(vmTypes))
	for _, vt := range vmTypes {
		if _, dup := f.typeIdx[vt.Name]; dup {
			continue
		}
		ti := len(f.types)
		f.typeIdx[vt.Name] = ti
		f.types = append(f.types, vt)

		gtid := make([]int32, f.shape.NumGroups())
		for gi := range gtid {
			gtid[gi] = -1
		}
		dem := make([]int32, 0, len(vt.Demands))
		feasible := true
		seenGroup := make(map[string]bool, len(vt.Demands))
		for _, d := range vt.Demands {
			gi := f.shape.GroupIndex(d.Group)
			if gi < 0 || seenGroup[d.Group] {
				// A missing group means the type never fits; a
				// duplicate group breaks the per-group independence
				// the factored decomposition relies on. Both fall
				// back to the enumeration path.
				feasible = false
				break
			}
			seenGroup[d.Group] = true
			if len(d.Units) > 0 {
				tid := f.groups[gi].space.TypeIndex(vt.Name)
				if tid < 0 {
					feasible = false
					break
				}
				gtid[gi] = int32(tid)
				dem = append(dem, int32(gi))
			}
		}
		f.gtid = append(f.gtid, gtid)
		f.dem = append(f.dem, dem)
		f.feas = append(f.feas, feasible)
	}
}

// Shape returns the PM shape of the ranker.
func (f *Factored) Shape() *resource.Shape { return f.shape }

// GroupTable returns the table for group gi.
func (f *Factored) GroupTable(gi int) *Table { return f.groups[gi] }

// Score returns the product of the per-group scores of p.
func (f *Factored) Score(p resource.Vec) (float64, bool) {
	if len(p) != f.shape.NumDims() {
		return 0, false
	}
	score := 1.0
	for gi, table := range f.groups {
		sub := f.shape.Project(p, gi)
		s, ok := table.Score(sub)
		if !ok {
			return 0, false
		}
		score *= s
	}
	return score, true
}

// ScoreKey decodes a canonical joint key and scores it.
func (f *Factored) ScoreKey(key string) (float64, bool) {
	if len(key) != f.shape.NumDims() {
		return 0, false
	}
	return f.Score(decodeKey(key))
}
