package ranktable

import (
	"encoding/gob"
	"fmt"
	"io"

	"pagerankvm/internal/resource"
)

// tableWire is the gob wire format of a Table. Scores are keyed by the
// canonical byte-string keys.
type tableWire struct {
	Groups []resource.Group
	Scores map[string]float64
	Stats  BuildStats
}

// Save writes the table to w in gob format. Building a large table is
// much slower than loading one, so production deployments build once
// (the paper: "the graph and Profile-PageRank score table are
// relatively stable during a certain period of time") and distribute
// the serialized table.
func (t *Table) Save(w io.Writer) error {
	groups := make([]resource.Group, t.shape.NumGroups())
	for i := range groups {
		groups[i] = t.shape.Group(i)
	}
	wire := tableWire{Groups: groups, Scores: t.scoresMap(), Stats: t.stats}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("ranktable: save: %w", err)
	}
	return nil
}

// LoadTable reads a table previously written by Save.
func LoadTable(r io.Reader) (*Table, error) {
	var wire tableWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ranktable: load: %w", err)
	}
	shape, err := resource.NewShape(wire.Groups...)
	if err != nil {
		return nil, fmt.Errorf("ranktable: load: %w", err)
	}
	if wire.Scores == nil {
		wire.Scores = make(map[string]float64)
	}
	return &Table{shape: shape, scores: wire.Scores, stats: wire.Stats}, nil
}

// Registry maps PM type names to their rankers. A datacenter with
// heterogeneous PM types (Table II: M3 and C3) holds one ranker per
// type. Registry is not safe for concurrent mutation; build it up
// front.
type Registry struct {
	rankers map[string]Ranker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{rankers: make(map[string]Ranker)}
}

// Add registers a ranker under a PM type name, replacing any previous
// entry.
func (r *Registry) Add(pmType string, ranker Ranker) {
	r.rankers[pmType] = ranker
}

// Get returns the ranker for a PM type name.
func (r *Registry) Get(pmType string) (Ranker, bool) {
	ranker, ok := r.rankers[pmType]
	return ranker, ok
}

// Len returns the number of registered PM types.
func (r *Registry) Len() int { return len(r.rankers) }
