package ranktable

import (
	"math"
	"sync"
	"testing"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/resource"
)

func cacheShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func cacheTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[2]", resource.Demand{Group: "cpu", Units: []int{2}}),
	}
}

func TestCacheHitReturnsSameTable(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Cache: c}
	a, err := NewJoint(cacheShape(), cacheTypes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJoint(cacheShape(), cacheTypes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned a different table for an identical build")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(0, nil)
	base := Options{Cache: c}
	if _, err := NewJoint(cacheShape(), cacheTypes(), base); err != nil {
		t.Fatal(err)
	}
	// Every output-affecting knob must change the key.
	variants := []Options{
		{Cache: c, Mode: ModeReversePR},
		{Cache: c, Mode: ModeForwardPR},
		{Cache: c, RewardExponent: opt.F(2)},
		{Cache: c, DisableBPRU: true},
	}
	variants[0].PageRank.MaxIter = 0
	for i, o := range variants {
		if _, err := NewJoint(cacheShape(), cacheTypes(), o); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	damped := Options{Cache: c}
	damped.PageRank.Damping = opt.F(0.5)
	if _, err := NewJoint(cacheShape(), cacheTypes(), damped); err != nil {
		t.Fatal(err)
	}
	// A different shape and a different VM-type set also miss.
	other := resource.MustShape(resource.Group{Name: "cpu", Dims: 3, Cap: 4})
	if _, err := NewJoint(other, cacheTypes(), base); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJoint(cacheShape(), cacheTypes()[:1], base); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Fatalf("distinct builds produced %d cache hits", st.Hits)
	}
	if st.Misses != 8 {
		t.Fatalf("misses = %d, want 8", st.Misses)
	}
	// Output-invariant knobs must NOT change the key.
	same := Options{Cache: c, WireWorkers: 3, Obs: obs.New()}
	if _, err := NewJoint(cacheShape(), cacheTypes(), same); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("WireWorkers/Obs changed the cache key (hits = %d)", got.Hits)
	}
}

// TestCacheKeyTypeOrder pins that the VM-type order is part of the
// key: order fixes the union successor order, hence the float
// summation order, hence the bitwise scores.
func TestCacheKeyTypeOrder(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Cache: c}
	types := cacheTypes()
	if _, err := NewJoint(cacheShape(), types, opts); err != nil {
		t.Fatal(err)
	}
	reversed := []resource.VMType{types[1], types[0]}
	if _, err := NewJoint(cacheShape(), reversed, opts); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("type order did not discriminate: %+v", st)
	}
}

// TestCacheSingleflight hammers one key from many goroutines; the
// build must run exactly once and every caller must get that build.
// Run under -race (the hotpath CI job does) this also proves the
// concurrent-build path is data-race free.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Cache: c}
	const callers = 16
	tables := make([]*Table, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tb, err := NewJoint(cacheShape(), cacheTypes(), opts)
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tb
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if tables[i] != tables[0] {
			t.Fatal("concurrent callers got distinct tables")
		}
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("build ran %d times, want 1", st.Misses)
	}
}

func TestCacheEvictsLRUByCount(t *testing.T) {
	c := NewCache(2, nil)
	opts := Options{Cache: c}
	shapes := []*resource.Shape{
		resource.MustShape(resource.Group{Name: "cpu", Dims: 2, Cap: 2}),
		resource.MustShape(resource.Group{Name: "cpu", Dims: 2, Cap: 3}),
		resource.MustShape(resource.Group{Name: "cpu", Dims: 2, Cap: 4}),
	}
	ty := cacheTypes()[:1]
	if _, err := NewJoint(shapes[0], ty, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJoint(shapes[1], ty, opts); err != nil {
		t.Fatal(err)
	}
	// Touch shape 0 so shape 1 is the LRU, then overflow with shape 2.
	if _, err := NewJoint(shapes[0], ty, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJoint(shapes[2], ty, opts); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	// Shape 0 must still be cached; shape 1 must rebuild.
	if _, err := NewJoint(shapes[0], ty, opts); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != 2 {
		t.Fatalf("hits = %d, want 2 (recently-used entry evicted?)", got)
	}
	if _, err := NewJoint(shapes[1], ty, opts); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (LRU entry survived eviction?)", got)
	}
}

// TestCacheErrorNotCached: failed builds must be forgotten so a later
// call retries instead of replaying the error forever.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Cache: c, Mode: Mode(99)}
	if _, err := NewJoint(cacheShape(), cacheTypes(), opts); err == nil {
		t.Fatal("bogus mode built successfully")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed build left %d entries in the cache", st.Entries)
	}
	if _, err := NewJoint(cacheShape(), cacheTypes(), opts); err == nil {
		t.Fatal("bogus mode built successfully on retry")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("failed build was served from cache: %+v", st)
	}
}

// TestCacheFactoredGroupDedup: two PM types with overlapping group
// geometry must share the overlapping per-group sub-tables — that is
// the heterogeneous-fleet win the cache exists for.
func TestCacheFactoredGroupDedup(t *testing.T) {
	c := NewCache(0, nil)
	opts := Options{Cache: c}
	types := []resource.VMType{
		resource.NewVMType("vm",
			resource.Demand{Group: "cpu", Units: []int{1, 1}},
			resource.Demand{Group: "mem", Units: []int{2}},
		),
	}
	shapeA := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 3, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 8},
	)
	shapeB := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 3, Cap: 4}, // same cpu geometry as A
		resource.Group{Name: "mem", Dims: 1, Cap: 16},
	)
	fa, err := NewFactored(shapeA, types, opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFactored(shapeB, types, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fa.GroupTable(0) != fb.GroupTable(0) {
		t.Fatal("identical cpu sub-lattices were built twice")
	}
	if fa.GroupTable(1) == fb.GroupTable(1) {
		t.Fatal("distinct mem sub-lattices were wrongly shared")
	}
	// 2 factored keys + 3 distinct group keys (cpu shared), no hits at
	// the factored level, 1 hit at the cpu group level.
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 5 {
		t.Fatalf("stats = %+v, want 1 hit / 5 misses", st)
	}
	// The shared table must score identically through both rankers.
	p := resource.Vec{1, 1, 0}
	sa, oka := fa.GroupTable(0).Score(p)
	sb, okb := fb.GroupTable(0).Score(p)
	if !oka || !okb || math.Float64bits(sa) != math.Float64bits(sb) {
		t.Fatalf("shared group table scores differ: %v/%v %v/%v", sa, oka, sb, okb)
	}
}

// TestCacheUncachedBitwiseEqual: a cached build must be bitwise the
// uncached build — the cache only changes when work happens, never
// what it produces.
func TestCacheUncachedBitwiseEqual(t *testing.T) {
	cached, err := NewJoint(cacheShape(), cacheTypes(), Options{Cache: NewCache(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewJoint(cacheShape(), cacheTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Len() != plain.Len() {
		t.Fatalf("len %d vs %d", cached.Len(), plain.Len())
	}
	for i := range plain.ids {
		if math.Float64bits(cached.ids[i]) != math.Float64bits(plain.ids[i]) {
			t.Fatalf("score %d differs bitwise: %v vs %v", i, cached.ids[i], plain.ids[i])
		}
	}
}

func TestCacheObsCounters(t *testing.T) {
	o := obs.New()
	c := NewCache(0, o)
	opts := Options{Cache: c}
	if _, err := NewJoint(cacheShape(), cacheTypes(), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJoint(cacheShape(), cacheTypes(), opts); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("ranktable.cache_hits").Value(); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}
	if got := o.Counter("ranktable.cache_misses").Value(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1", got)
	}
}
