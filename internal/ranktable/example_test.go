package ranktable_test

import (
	"fmt"

	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// Heterogeneous fleets repeat shape geometry across PM types (Amazon's
// M3 and C3 share the cpu and disk group layout), so registry builds
// ask for identical tables more than once. A shared Cache builds each
// distinct (shape, VM-type set, options) table exactly once; the
// second request is a pointer-identical hit.
func ExampleCache() {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	vmTypes := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[2]", resource.Demand{Group: "cpu", Units: []int{2}}),
	}

	cache := ranktable.NewCache(0, nil) // 0 = default eviction bound
	opts := ranktable.Options{Cache: cache}

	a, err := ranktable.NewJoint(shape, vmTypes, opts)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	b, err := ranktable.NewJoint(shape, vmTypes, opts)
	if err != nil {
		fmt.Println("build:", err)
		return
	}

	st := cache.Stats()
	fmt.Println("same table:", a == b)
	fmt.Printf("hits=%d misses=%d entries=%d\n", st.Hits, st.Misses, st.Entries)
	// Output:
	// same table: true
	// hits=1 misses=1 entries=1
}
