package ranktable

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pagerankvm/internal/resource"
)

func multiGroupShape() *resource.Shape {
	return resource.MustShape(
		resource.Group{Name: "cpu", Dims: 3, Cap: 3},
		resource.Group{Name: "mem", Dims: 1, Cap: 4},
	)
}

func multiGroupTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("a",
			resource.Demand{Group: "cpu", Units: []int{1, 1}},
			resource.Demand{Group: "mem", Units: []int{1}},
		),
		resource.NewVMType("b",
			resource.Demand{Group: "cpu", Units: []int{2}},
		),
		resource.NewVMType("c",
			resource.Demand{Group: "mem", Units: []int{2}},
		),
	}
}

// checkFastAgainstStrings pins every id-indexed answer to the
// string-key path it replaces: ScoreIDs vs ScoreKey on every node of
// the (joint) lattice, and BestMove/Materialize vs a manual scan over
// resource.Placements. Scores must be bitwise equal, not just close.
func checkFastAgainstStrings(t *testing.T, fr FastRanker, shape *resource.Shape, vmTypes []resource.VMType, profiles []resource.Vec) {
	t.Helper()
	if !fr.Fast() {
		t.Fatal("ranker does not offer the fast path")
	}
	var ids []int32
	for _, p := range profiles {
		var ok bool
		ids, ok = fr.NodeIDs(p, ids)
		if !ok {
			t.Fatalf("NodeIDs failed for in-lattice profile %v", p)
		}
		want, ok := fr.Score(p)
		if !ok {
			t.Fatalf("Score failed for %v", p)
		}
		got, ok := fr.ScoreIDs(ids)
		if !ok {
			t.Fatalf("ScoreIDs failed for %v", p)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ScoreIDs(%v) = %v, Score = %v (not bitwise equal)", p, got, want)
		}

		for _, vt := range vmTypes {
			ref, ok := fr.ResolveType(vt)
			if !ok {
				t.Fatalf("ResolveType(%s) failed", vt.Name)
			}
			pls := resource.Placements(shape, p, vt)
			bestScore, found := -1.0, false
			for _, pl := range pls {
				s, ok := fr.Score(pl.Result)
				if !ok {
					t.Fatalf("Score failed for successor %v", pl.Result)
				}
				if s > bestScore {
					bestScore, found = s, true
				}
			}
			score, count, ok := fr.BestMove(ids, ref)
			if ok != found {
				t.Fatalf("BestMove(%v, %s) ok = %v, enumeration found = %v", p, vt.Name, ok, found)
			}
			if !found {
				continue
			}
			if count != len(pls) {
				t.Fatalf("BestMove(%v, %s) count = %d, want %d", p, vt.Name, count, len(pls))
			}
			if math.Float64bits(score) != math.Float64bits(bestScore) {
				t.Fatalf("BestMove(%v, %s) = %v, enumeration max = %v (not bitwise equal)", p, vt.Name, score, bestScore)
			}
			assign, ok := fr.Materialize(ids, ref)
			if !ok {
				t.Fatalf("Materialize(%v, %s) failed after successful BestMove", p, vt.Name)
			}
			canon := shape.Canon(p)
			result := canon.Add(assign.Vec(shape))
			if !shape.Valid(result) {
				t.Fatalf("Materialize(%v, %s) assignment %v overflows", p, vt.Name, assign)
			}
			s, ok := fr.Score(result)
			if !ok || math.Float64bits(s) != math.Float64bits(score) {
				t.Fatalf("Materialize(%v, %s) yields profile scoring %v, BestMove scored %v", p, vt.Name, s, score)
			}
		}
	}
}

func latticeProfiles(t *testing.T, shape *resource.Shape) []resource.Vec {
	t.Helper()
	// Walk the box [0..cap]^dims and keep one representative per
	// canonical class plus non-canonical permutations (NodeIDs must
	// canonicalize).
	caps := shape.Capacity()
	var out []resource.Vec
	cur := make(resource.Vec, shape.NumDims())
	var gen func(d int)
	gen = func(d int) {
		if d == len(cur) {
			out = append(out, cur.Clone())
			return
		}
		for v := 0; v <= caps[d]; v++ {
			cur[d] = v
			gen(d + 1)
		}
	}
	gen(0)
	return out
}

func TestTableFastPath(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	table, err := NewJoint(shape, paperVMTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkFastAgainstStrings(t, table, shape, paperVMTypes(), latticeProfiles(t, shape))
}

func TestFactoredFastPath(t *testing.T) {
	shape := multiGroupShape()
	f, err := NewFactored(shape, multiGroupTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkFastAgainstStrings(t, f, shape, multiGroupTypes(), latticeProfiles(t, shape))
}

func TestFastPathRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		groups := []resource.Group{
			{Name: "cpu", Dims: 1 + rng.Intn(3), Cap: 2 + rng.Intn(2)},
			{Name: "mem", Dims: 1 + rng.Intn(2), Cap: 2 + rng.Intn(3)},
		}
		shape := resource.MustShape(groups...)
		var types []resource.VMType
		for k := 0; k < 1+rng.Intn(3); k++ {
			var demands []resource.Demand
			for _, g := range groups {
				if rng.Intn(3) == 0 {
					continue
				}
				units := make([]int, 1+rng.Intn(g.Dims))
				for u := range units {
					units[u] = 1 + rng.Intn(g.Cap)
				}
				demands = append(demands, resource.Demand{Group: g.Name, Units: units})
			}
			if len(demands) == 0 {
				demands = append(demands, resource.Demand{Group: "cpu", Units: []int{1}})
			}
			types = append(types, resource.NewVMType(string(rune('a'+k)), demands...))
		}
		profiles := latticeProfiles(t, shape)

		joint, err := NewJoint(shape, types, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFastAgainstStrings(t, joint, shape, types, profiles)

		factored, err := NewFactored(shape, types, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFastAgainstStrings(t, factored, shape, types, profiles)
	}
}

// TestResolveTypeRejectsImpostor: a type resolving by name but with
// different demands must be refused (the fast path would silently
// serve precomputed moves for the wrong demand otherwise).
func TestResolveTypeRejectsImpostor(t *testing.T) {
	table := paperTable(t)
	impostor := resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{2, 2}})
	if _, ok := table.ResolveType(impostor); ok {
		t.Fatal("ResolveType accepted a type whose demands differ from the registered one")
	}
	if _, ok := table.ResolveType(resource.NewVMType("unknown")); ok {
		t.Fatal("ResolveType accepted an unknown type")
	}
}

// TestLoadedTableIsSlow: tables rebuilt from serialized bytes have no
// lattice, so they must decline the fast path (and the placer falls
// back to string scoring).
func TestLoadedTableIsSlow(t *testing.T) {
	table := paperTable(t)
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fast() {
		t.Fatal("deserialized table claims the fast path")
	}
	if _, ok := loaded.NodeIDs(resource.Vec{0, 0, 0, 0}, nil); ok {
		t.Fatal("deserialized table resolved node ids")
	}
}

// TestNewFactoredParallelDeterministic: the concurrent per-group
// builds must produce identical tables regardless of scheduling, and
// identical to each other across repeated builds.
func TestNewFactoredParallelDeterministic(t *testing.T) {
	shape := multiGroupShape()
	ref, err := NewFactored(shape, multiGroupTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		got, err := NewFactored(shape, multiGroupTypes(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for gi := 0; gi < shape.NumGroups(); gi++ {
			if !reflect.DeepEqual(got.groups[gi].ids, ref.groups[gi].ids) {
				t.Fatalf("rep %d: group %d id-scores differ across builds", rep, gi)
			}
			if !reflect.DeepEqual(got.groups[gi].scores, ref.groups[gi].scores) {
				t.Fatalf("rep %d: group %d score maps differ across builds", rep, gi)
			}
			if !reflect.DeepEqual(got.groups[gi].best, ref.groups[gi].best) {
				t.Fatalf("rep %d: group %d move tables differ across builds", rep, gi)
			}
		}
		if !reflect.DeepEqual(got.gtid, ref.gtid) || !reflect.DeepEqual(got.dem, ref.dem) ||
			!reflect.DeepEqual(got.feas, ref.feas) {
			t.Fatalf("rep %d: type bindings differ across builds", rep)
		}
	}
}
