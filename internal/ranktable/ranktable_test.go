package ranktable

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pagerankvm/internal/resource"
)

func paperVMTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
}

func paperTable(t *testing.T) *Table {
	t.Helper()
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	table, err := NewJoint(shape, paperVMTypes(), Options{})
	if err != nil {
		t.Fatalf("NewJoint: %v", err)
	}
	return table
}

func TestJointBuildStats(t *testing.T) {
	table := paperTable(t)
	stats := table.Stats()
	if stats.Nodes != 70 {
		t.Errorf("Nodes = %d, want 70", stats.Nodes)
	}
	if stats.Edges == 0 {
		t.Error("Edges = 0")
	}
	if !stats.Converged {
		t.Error("PageRank did not converge")
	}
	if table.Len() != 70 {
		t.Errorf("Len = %d, want 70", table.Len())
	}
}

// The paper's Figure 2 claim: with VM types {[1,1],[1,1,1,1]} on a
// [4,4,4,4]-capacity PM, profile [3,3,3,3] has higher quality than
// [4,4,2,2] because it has more ways to develop to the best profile.
func TestJointFigure2Ordering(t *testing.T) {
	table := paperTable(t)
	balanced, ok := table.Score(resource.Vec{3, 3, 3, 3})
	if !ok {
		t.Fatal("no score for [3,3,3,3]")
	}
	skewed, ok := table.Score(resource.Vec{4, 4, 2, 2})
	if !ok {
		t.Fatal("no score for [4,4,2,2]")
	}
	if balanced <= skewed {
		t.Fatalf("score([3,3,3,3])=%v should exceed score([4,4,2,2])=%v", balanced, skewed)
	}
}

// The motivating example of Section III-B: after accommodating a VM,
// [3,3,2,2] is the better host option than [4,3,3,3], because
// [4,3,3,3] can never develop to the best profile (BPRU discount).
func TestJointMotivationOrdering(t *testing.T) {
	table := paperTable(t)
	good, _ := table.Score(resource.Vec{3, 3, 2, 2})
	bad, _ := table.Score(resource.Vec{4, 3, 3, 3})
	if good <= bad {
		t.Fatalf("score([3,3,2,2])=%v should exceed score([4,3,3,3])=%v", good, bad)
	}
}

// Under the default absorption mode the rank is the damped
// probability-like value of reaching the best profile: the best
// profile itself sits at the top, dead ends are discounted, and the
// empty profile ranks low (it is many damped steps away from full).
func TestJointRankStructure(t *testing.T) {
	table := paperTable(t)
	top := table.Top(1)
	if len(top) != 1 {
		t.Fatalf("Top(1) returned %d entries", len(top))
	}
	if !top[0].Profile.Equal(resource.Vec{4, 4, 4, 4}) {
		t.Fatalf("top profile = %v, want the best profile", top[0].Profile)
	}
	best, _ := table.Score(resource.Vec{4, 4, 4, 4})
	deadEnd, _ := table.Score(resource.Vec{3, 4, 4, 4})
	if best <= deadEnd {
		t.Fatalf("best profile %v should outrank dead end %v", best, deadEnd)
	}
	empty, _ := table.Score(resource.Vec{0, 0, 0, 0})
	nearFull, _ := table.Score(resource.Vec{3, 3, 3, 3})
	if empty >= nearFull {
		t.Fatalf("empty profile %v should rank below a clean near-full profile %v", empty, nearFull)
	}
}

// Known absorption values on the paper's Figure 2 lattice with
// d = 0.85, rewardExp = 8 (hand-computed in DESIGN.md):
// V([4,4,3,3]) = 0.85, V([3,3,3,3]) = 0.85*(0.85+1)/2 = 0.78625,
// V([4,4,2,2]) = 0.85^2 = 0.7225.
func TestJointAbsorptionKnownValues(t *testing.T) {
	table := paperTable(t)
	tests := []struct {
		give resource.Vec
		want float64
	}{
		{give: resource.Vec{4, 4, 4, 4}, want: 1},
		{give: resource.Vec{4, 4, 3, 3}, want: 0.85},
		{give: resource.Vec{3, 3, 3, 3}, want: 0.78625},
		{give: resource.Vec{4, 4, 2, 2}, want: 0.7225},
	}
	for _, tt := range tests {
		got, ok := table.Score(tt.give)
		if !ok {
			t.Fatalf("no score for %v", tt.give)
		}
		if diff := got - tt.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("score(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// The PageRank modes are the literal (and reversed) Equ. (12)
// readings; they exist for the interpretation ablation and produce
// different orderings (the forward one fails the paper's own Figure 2
// comparison — see DESIGN.md).
func TestJointPageRankModesDiffer(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	fwd, err := NewJoint(shape, paperVMTypes(), Options{Mode: ModeForwardPR})
	if err != nil {
		t.Fatal(err)
	}
	balanced, _ := fwd.Score(resource.Vec{3, 3, 3, 3})
	skewed, _ := fwd.Score(resource.Vec{4, 4, 2, 2})
	if balanced >= skewed {
		t.Fatalf("forward mode unexpectedly matches Figure 2: %v vs %v", balanced, skewed)
	}
	rev, err := NewJoint(shape, paperVMTypes(), Options{Mode: ModeReversePR})
	if err != nil {
		t.Fatal(err)
	}
	balanced, _ = rev.Score(resource.Vec{3, 3, 3, 3})
	skewed, _ = rev.Score(resource.Vec{4, 4, 2, 2})
	if balanced <= skewed {
		t.Fatalf("reverse mode should match Figure 2: %v vs %v", balanced, skewed)
	}
	if ModeForwardPR.String() != "forward-pr" || ModeReversePR.String() != "reverse-pr" ||
		ModeAbsorption.String() != "absorption" {
		t.Error("Mode.String broken")
	}
}

func TestJointScoresPermutationInvariant(t *testing.T) {
	table := paperTable(t)
	a, okA := table.Score(resource.Vec{4, 2, 3, 1})
	b, okB := table.Score(resource.Vec{1, 2, 3, 4})
	if !okA || !okB || a != b {
		t.Fatalf("permuted profiles score differently: %v vs %v", a, b)
	}
}

func TestJointScoreOutOfLattice(t *testing.T) {
	table := paperTable(t)
	if _, ok := table.Score(resource.Vec{5, 0, 0, 0}); ok {
		t.Error("scored out-of-capacity profile")
	}
	if _, ok := table.Score(resource.Vec{1, 1}); ok {
		t.Error("scored wrong-length profile")
	}
	if _, ok := table.ScoreKey("zzz"); ok {
		t.Error("scored bogus key")
	}
}

func TestJointScoresPositive(t *testing.T) {
	table := paperTable(t)
	for _, e := range table.Top(0) {
		if e.Score < 0 {
			t.Fatalf("negative score for %v: %v", e.Profile, e.Score)
		}
	}
}

func TestDisableBPRU(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	with, err := NewJoint(shape, paperVMTypes(), Options{Mode: ModeReversePR})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewJoint(shape, paperVMTypes(), Options{Mode: ModeReversePR, DisableBPRU: true})
	if err != nil {
		t.Fatal(err)
	}
	// [4,3,3,3] is a dead end (cannot reach the best profile):
	// BPRU < 1 discounts it, so the raw rank must strictly exceed the
	// discounted score.
	raw, _ := without.Score(resource.Vec{4, 3, 3, 3})
	discounted, _ := with.Score(resource.Vec{4, 3, 3, 3})
	if discounted >= raw {
		t.Fatalf("BPRU discount missing: discounted=%v raw=%v", discounted, raw)
	}
	// The best profile has BPRU exactly 1: identical scores up to
	// normalization drift... the ranks themselves are identical runs,
	// so equality holds exactly.
	rawBest, _ := without.Score(resource.Vec{4, 4, 4, 4})
	discBest, _ := with.Score(resource.Vec{4, 4, 4, 4})
	if rawBest != discBest {
		t.Fatalf("best profile should be undiscounted: %v vs %v", discBest, rawBest)
	}
}

func TestFactoredMatchesJointOnSingleGroup(t *testing.T) {
	// With a single group, Factored and Joint must agree exactly.
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	joint, err := NewJoint(shape, paperVMTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	factored, err := NewFactored(shape, paperVMTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := make(resource.Vec, 4)
		for i := range p {
			p[i] = r.Intn(5)
		}
		a, okA := joint.Score(p)
		b, okB := factored.Score(p)
		return okA == okB && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFactoredMultiGroup(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 2, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 4},
	)
	types := []resource.VMType{
		resource.NewVMType("a",
			resource.Demand{Group: "cpu", Units: []int{1, 1}},
			resource.Demand{Group: "mem", Units: []int{1}},
		),
		resource.NewVMType("b", resource.Demand{Group: "mem", Units: []int{2}}),
	}
	f, err := NewFactored(shape, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, ok := f.Score(resource.Vec{4, 4, 4})
	if !ok {
		t.Fatal("no score for full profile")
	}
	if full <= 0 {
		t.Fatalf("full profile score = %v", full)
	}
	// Better-balanced cpu beats skewed cpu at equal mem.
	bal, _ := f.Score(resource.Vec{2, 2, 2})
	skew, _ := f.Score(resource.Vec{4, 0, 2})
	if bal <= skew {
		t.Fatalf("balanced=%v should beat skewed=%v", bal, skew)
	}
	if _, ok := f.Score(resource.Vec{1, 1}); ok {
		t.Error("scored wrong-length profile")
	}
	if _, ok := f.Score(resource.Vec{5, 0, 0}); ok {
		t.Error("scored out-of-lattice profile")
	}
	if _, ok := f.ScoreKey("xy"); ok {
		t.Error("ScoreKey accepted wrong-length key")
	}
	if f.GroupTable(0) == nil || f.GroupTable(1) == nil {
		t.Error("missing group tables")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	table := paperTable(t)
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if loaded.Len() != table.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), table.Len())
	}
	for _, e := range table.Top(0) {
		got, ok := loaded.Score(e.Profile)
		if !ok || got != e.Score {
			t.Fatalf("score mismatch for %v: %v vs %v", e.Profile, got, e.Score)
		}
	}
	if loaded.Stats() != table.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", loaded.Stats(), table.Stats())
	}
}

func TestLoadTableGarbage(t *testing.T) {
	if _, err := LoadTable(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("LoadTable accepted garbage")
	}
}

func TestRegistry(t *testing.T) {
	table := paperTable(t)
	reg := NewRegistry()
	if reg.Len() != 0 {
		t.Fatal("new registry not empty")
	}
	reg.Add("M3", table)
	got, ok := reg.Get("M3")
	if !ok || got != Ranker(table) {
		t.Fatal("Get(M3) failed")
	}
	if _, ok := reg.Get("C3"); ok {
		t.Fatal("Get(C3) unexpectedly found")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}
}

func TestTopOrdering(t *testing.T) {
	table := paperTable(t)
	top := table.Top(10)
	if len(top) != 10 {
		t.Fatalf("Top(10) returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("Top not sorted at %d", i)
		}
	}
}
