package ranktable

// Shape-keyed table cache (DESIGN.md §13). Heterogeneous fleets hold
// PMs of several types whose shapes — and even individual resource
// groups — overlap (Amazon's M3 and C3 share the cpu and disk group
// geometry), so without a cache every registry build re-runs identical
// lattice wiring and rank iterations once per PM type. The cache
// builds each distinct (shape, VM-type set, options) table exactly
// once, with singleflight semantics: concurrent requests for the same
// key share one build instead of racing duplicate work.
//
// The key is a byte string: a kind tag ('J' joint, 'F' factored), the
// canonical shape (group names, dims, caps in order), the VM types in
// the given order (order is semantic — it fixes the union successor
// order and therefore the float summation order of the scores), and a
// fingerprint of every output-affecting option (mode, damping,
// epsilon, max iterations, reward exponent, BPRU toggle). Obs,
// Recorder, WireWorkers and Cache itself are excluded: they never
// change the table's contents (wiring is deterministic for any worker
// count). A consequence worth knowing: a cache hit does not re-emit
// build spans or build metrics for the second caller's Recorder/Obs.
//
// The hit path is allocation-free: the key is assembled in a stack
// buffer and looked up via the compiler's map[string(bytes)]
// optimization, and waiting on a completed build is a receive from an
// already-closed channel.

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/resource"
)

// DefaultCacheEntries is the eviction bound of NewCache(0): eviction
// is by completed-entry count, not bytes, because table footprints are
// shape-dependent and the caller picking the bound knows its fleet.
const DefaultCacheEntries = 64

// cacheKeyBufSize sizes the stack key buffer of the lookup fast path.
// Production keys stay under it (a dozen three-demand VM types on a
// three-group shape fingerprint to ~900 bytes); longer keys fall back
// to one heap allocation.
const cacheKeyBufSize = 1024

// Cache deduplicates rank-table builds by shape, VM-type set and
// options. Safe for concurrent use. The zero value is not usable; call
// NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	clock   int64 // LRU tick, advanced under mu
	max     int

	// Own counters back Stats() even without an observer; the obs
	// instruments mirror them for metric exposition.
	nHits, nMisses, nEvictions int64 // under mu

	hits, misses, evictions *obs.Counter
	buildSeconds            *obs.Histogram
}

// cacheEntry is one in-flight or completed build. done is closed when
// the build finishes; table/factored/err are written before the close
// and never after, so waiters read them without the cache lock.
type cacheEntry struct {
	done     chan struct{}
	table    *Table
	factored *Factored
	err      error
	lastUse  int64 // LRU tick of the latest lookup, read/written under mu
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64 // lookups served from a completed or in-flight build
	Misses    int64 // lookups that started a build
	Evictions int64
	Entries   int // completed + in-flight entries currently held
}

// NewCache returns a cache evicting least-recently-used completed
// entries beyond maxEntries (0 selects DefaultCacheEntries). The
// observer, when non-nil, feeds ranktable.cache_* counters and the
// cache_build_seconds histogram.
func NewCache(maxEntries int, o *obs.Observer) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		entries:      make(map[string]*cacheEntry, maxEntries),
		max:          maxEntries,
		hits:         o.Counter("ranktable.cache_hits"),
		misses:       o.Counter("ranktable.cache_misses"),
		evictions:    o.Counter("ranktable.cache_evictions"),
		buildSeconds: o.Histogram("ranktable.cache_build_seconds", nil),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.nHits,
		Misses:    c.nMisses,
		Evictions: c.nEvictions,
		Entries:   len(c.entries),
	}
}

// Joint returns the joint table for (shape, vmTypes, opts), building
// it at most once per key. Concurrent callers with the same key share
// the build.
//
//prvm:hotpath
func (c *Cache) Joint(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Table, error) {
	var arr [cacheKeyBufSize]byte
	key := appendCacheKey(arr[:0], 'J', shape, vmTypes, opts)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return e.table, nil
	}
	opts.Cache = nil // build directly; re-entering the cache would deadlock on this key
	start := time.Now()
	t, err := buildJoint(shape, vmTypes, opts)
	e.table, e.err = t, err
	c.finish(key, e, err, time.Since(start))
	return t, err
}

// Factored returns the factored ranker for (shape, vmTypes, opts),
// building it at most once per key. The per-group joint builds inside
// a factored miss still go through the cache, so group sub-lattices
// shared between PM types (same group geometry and projected demands)
// are also built exactly once.
//
//prvm:hotpath
func (c *Cache) Factored(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Factored, error) {
	var arr [cacheKeyBufSize]byte
	key := appendCacheKey(arr[:0], 'F', shape, vmTypes, opts)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return e.factored, nil
	}
	opts.Cache = c // keep for the group joints; buildFactored itself never consults it
	start := time.Now()
	f, err := buildFactored(shape, vmTypes, opts)
	e.factored, e.err = f, err
	c.finish(key, e, err, time.Since(start))
	return f, err
}

// lookup returns the entry for key and whether it already existed.
// When absent, an in-flight entry is registered under the key and the
// caller owns the build; every other caller blocks on entry.done.
//
//prvm:hotpath
func (c *Cache) lookup(key []byte) (*cacheEntry, bool) {
	c.mu.Lock()
	//prvmlint:allow hotalloc — map-index string(bytes) is the compiler's no-copy form
	if e, ok := c.entries[string(key)]; ok {
		c.clock++
		e.lastUse = c.clock
		c.nHits++
		c.mu.Unlock()
		c.hits.Inc()
		return e, true
	}
	//prvmlint:allow hotalloc — miss path: registering the in-flight build
	e := &cacheEntry{done: make(chan struct{})}
	c.clock++
	e.lastUse = c.clock
	//prvmlint:allow hotalloc — miss path: the stored key must outlive the stack buffer
	c.entries[string(key)] = e
	c.nMisses++
	c.mu.Unlock()
	c.misses.Inc()
	return e, false
}

// finish publishes a build result: waiters are released, failed builds
// are forgotten (so a later call retries instead of caching the
// error), and completed entries beyond the bound evict the least
// recently used completed entry.
func (c *Cache) finish(key []byte, e *cacheEntry, err error, took time.Duration) {
	close(e.done)
	c.buildSeconds.Observe(took.Seconds())
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		delete(c.entries, string(key))
		return
	}
	for len(c.entries) > c.max {
		var (
			oldKey string
			oldest *cacheEntry
		)
		for k, cand := range c.entries {
			select {
			case <-cand.done: // only completed entries are evictable
			default:
				continue
			}
			if cand == e {
				continue // never evict the entry just inserted
			}
			if oldest == nil || cand.lastUse < oldest.lastUse {
				oldKey, oldest = k, cand
			}
		}
		if oldest == nil {
			return // everything else is in flight; over-budget until they land
		}
		delete(c.entries, oldKey)
		c.nEvictions++
		c.evictions.Inc()
	}
}

// appendCacheKey assembles the build fingerprint into dst. Strings are
// length-prefixed (two bytes, big-endian) so distinct structures can
// never collide; floats are their IEEE bit patterns with an explicit
// presence byte distinguishing nil (defaulted) pointers from set ones.
//
//prvm:hotpath
func appendCacheKey(dst []byte, kind byte, shape *resource.Shape, vmTypes []resource.VMType, opts Options) []byte {
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	dst = append(dst, kind)
	dst = appendUint32(dst, uint32(shape.NumGroups()))
	for gi := 0; gi < shape.NumGroups(); gi++ {
		g := shape.Group(gi)
		dst = appendString(dst, g.Name)
		dst = appendUint32(dst, uint32(g.Dims))
		dst = appendUint32(dst, uint32(g.Cap))
	}
	dst = appendUint32(dst, uint32(len(vmTypes)))
	for _, vt := range vmTypes {
		dst = appendString(dst, vt.Name)
		dst = appendUint32(dst, uint32(len(vt.Demands)))
		for _, d := range vt.Demands {
			dst = appendString(dst, d.Group)
			dst = appendUint32(dst, uint32(len(d.Units)))
			for _, u := range d.Units {
				dst = appendUint32(dst, uint32(u))
			}
		}
	}
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	dst = append(dst, byte(opts.Mode))
	dst = appendOptFloat(dst, opts.PageRank.Damping)
	dst = appendOptFloat(dst, opts.PageRank.Epsilon)
	dst = appendUint32(dst, uint32(opts.PageRank.MaxIter))
	dst = appendOptFloat(dst, opts.RewardExponent)
	if opts.DisableBPRU {
		//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
		dst = append(dst, 1)
	} else {
		//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
		dst = append(dst, 0)
	}
	return dst
}

//prvm:hotpath
func appendString(dst []byte, s string) []byte {
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	dst = append(dst, byte(len(s)>>8), byte(len(s)))
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	return append(dst, s...)
}

//prvm:hotpath
func appendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	return append(dst, b[0], b[1], b[2], b[3])
}

//prvm:hotpath
func appendOptFloat(dst []byte, f *float64) []byte {
	if f == nil {
		//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
		return append(dst, 0)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(*f))
	//prvmlint:allow hotalloc — appends spill to the heap only past cacheKeyBufSize
	return append(dst, 1, b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7])
}
