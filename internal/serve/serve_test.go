package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
)

// Shared test fixtures: the Amazon catalog and its rank-table registry
// are immutable and safe for concurrent readers, so every test reuses
// one build.
var (
	envOnce sync.Once
	envCat  *experiments.Catalog
	envReg  *ranktable.Registry
	envErr  error
)

func testEnv(t *testing.T) (*experiments.Catalog, *ranktable.Registry) {
	t.Helper()
	envOnce.Do(func() {
		envCat, envErr = experiments.AmazonCatalog()
		if envErr != nil {
			return
		}
		envReg, envErr = envCat.BuildRegistry(ranktable.Options{})
	})
	if envErr != nil {
		t.Fatalf("test env: %v", envErr)
	}
	return envCat, envReg
}

// newTestServer builds a server over pmsPerType PMs of each Table II
// type. dir == "" means in-memory.
func newTestServer(t *testing.T, dir string, shards, pmsPerType int) *Server {
	t.Helper()
	cat, reg := testEnv(t)
	cluster := cat.BuildCluster(pmsPerType)
	s, err := New(Config{
		Rankers: reg,
		PMs:     cluster.PMs(),
		NewVM:   cat.NewVM,
		Shards:  shards,
		DataDir: dir,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// postJSON posts body to url and decodes the response into out,
// returning the status code.
func postJSON(t *testing.T, client *http.Client, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestPlaceReleaseEvictHTTP(t *testing.T) {
	s := newTestServer(t, "", 4, 8)
	defer func() { _ = s.Close() }()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := ts.Client()

	// Place a batch of VMs; every response must carry a committed seq.
	seqs := map[int64]bool{}
	for i := 0; i < 40; i++ {
		var pr PlaceResponse
		code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.large"}, &pr)
		if code != http.StatusOK {
			t.Fatalf("place vm %d: status %d", i, code)
		}
		if pr.Duplicate || pr.Seq < 0 || seqs[pr.Seq] {
			t.Fatalf("place vm %d: bad response %+v", i, pr)
		}
		if len(pr.Assign) == 0 {
			t.Fatalf("place vm %d: empty assignment", i)
		}
		seqs[pr.Seq] = true
	}

	// Idempotent replay: same id again is a duplicate, no new seq.
	var dup PlaceResponse
	if code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: 7, Type: "m3.large"}, &dup); code != http.StatusOK {
		t.Fatalf("duplicate place: status %d", code)
	}
	if !dup.Duplicate || dup.Seq != -1 {
		t.Fatalf("duplicate place: %+v", dup)
	}

	// Cluster status agrees.
	var cl ClusterResponse
	if code := getJSON(t, c, ts.URL+"/v1/cluster?vms=1", &cl); code != http.StatusOK {
		t.Fatalf("cluster: status %d", code)
	}
	if cl.VMs != 40 || len(cl.Placements) != 40 {
		t.Fatalf("cluster reports %d VMs, %d placements; want 40", cl.VMs, len(cl.Placements))
	}

	// Release one, then releasing again is a 404.
	var rr ReleaseResponse
	if code := postJSON(t, c, ts.URL+"/v1/release", ReleaseRequest{VM: 3}, &rr); code != http.StatusOK {
		t.Fatalf("release: status %d", code)
	}
	if rr.VM != 3 || rr.Seq < 0 {
		t.Fatalf("release response: %+v", rr)
	}
	var er ErrorResponse
	if code := postJSON(t, c, ts.URL+"/v1/release", ReleaseRequest{VM: 3}, &er); code != http.StatusNotFound {
		t.Fatalf("double release: status %d (%+v)", code, er)
	}
	if er.Code != "not_placed" {
		t.Fatalf("double release code = %q", er.Code)
	}

	// Evict a VM off a used PM; it must land elsewhere.
	var cl2 ClusterResponse
	getJSON(t, c, ts.URL+"/v1/cluster?vms=1", &cl2)
	src := cl2.Placements[0].PM
	var ev EvictResponse
	if code := postJSON(t, c, ts.URL+"/v1/evict", EvictRequest{PM: src}, &ev); code != http.StatusOK {
		t.Fatalf("evict: status %d", code)
	}
	if ev.From != src || ev.To == src {
		t.Fatalf("evict response: %+v", ev)
	}

	// Unknown VM type is a 400.
	if code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: 999, Type: "nope"}, &er); code != http.StatusBadRequest {
		t.Fatalf("unknown type: status %d", code)
	}

	// Health reports ok and a positive next seq.
	var hr HealthResponse
	if code := getJSON(t, c, ts.URL+"/healthz", &hr); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hr.Status != "ok" || hr.NextSeq == 0 {
		t.Fatalf("healthz: %+v", hr)
	}
}

// Concurrent places of the same VM id must admit exactly one; the rest
// are duplicates pointing at the same PM.
func TestPlaceIdempotentUnderConcurrency(t *testing.T) {
	s := newTestServer(t, "", 4, 4)
	defer func() { _ = s.Close() }()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const racers = 16
	results := make([]PlaceResponse, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(PlaceRequest{VM: 42, Type: "c3.large"})
			resp, err := ts.Client().Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			_ = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	wg.Wait()

	placed := 0
	pmSet := map[int]bool{}
	for _, r := range results {
		if !r.Duplicate {
			placed++
		}
		pmSet[r.PM] = true
	}
	if placed != 1 {
		t.Fatalf("%d racers won; want exactly 1", placed)
	}
	if len(pmSet) != 1 {
		t.Fatalf("racers saw different PMs: %v", pmSet)
	}
}

// Filling a tiny inventory must end in no_capacity 409s, after
// forwarding tried every shard.
func TestNoCapacityAfterForwarding(t *testing.T) {
	s := newTestServer(t, "", 2, 1) // 2 PMs total
	defer func() { _ = s.Close() }()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := ts.Client()

	saw409 := false
	for i := 0; i < 50 && !saw409; i++ {
		var er ErrorResponse
		code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.2xlarge"}, &er)
		switch code {
		case http.StatusOK:
		case http.StatusConflict:
			if er.Code != "no_capacity" {
				t.Fatalf("409 code = %q", er.Code)
			}
			saw409 = true
		default:
			t.Fatalf("place %d: status %d", i, code)
		}
	}
	if !saw409 {
		t.Fatal("never saw no_capacity on a 2-PM inventory")
	}
}

// stateFingerprint captures everything recovery promises to restore
// bit-identically: per-shard list orders, watermarks, per-PM profiles
// and hosted assignments.
func stateFingerprint(s *Server) string {
	var b bytes.Buffer
	for _, sh := range s.shards {
		sh.mu.Lock()
		fmt.Fprintf(&b, "shard %d maxused %d\nused:", sh.idx, sh.cluster.MaxUsed)
		for _, pm := range sh.cluster.UsedPMs() {
			fmt.Fprintf(&b, " %d", pm.ID)
		}
		fmt.Fprintf(&b, "\nunused:")
		for _, pm := range sh.cluster.UnusedPMs() {
			fmt.Fprintf(&b, " %d", pm.ID)
		}
		fmt.Fprintln(&b)
		for _, pm := range sh.cluster.UsedPMs() {
			fmt.Fprintf(&b, "pm %d used %v\n", pm.ID, pm.Used())
			vms := pm.VMs()
			for _, id := range sortedVMIDs(pm) {
				h := vms[id]
				fmt.Fprintf(&b, "  vm %d %s assign %v\n", id, h.VM.Type, h.Assign)
			}
		}
		sh.mu.Unlock()
	}
	return b.String()
}

// A sequentially driven server, killed without a final snapshot, must
// recover to a bit-identical state: same list orders, same profiles,
// same assignments. A mid-run snapshot exercises the snapshot + WAL
// tail path rather than pure replay.
func TestKillRecoverBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 3, 12)
	ts := httptest.NewServer(s)
	c := ts.Client()

	types := []string{"m3.medium", "m3.large", "c3.large", "c3.xlarge", "m3.xlarge"}
	for i := 0; i < 120; i++ {
		var pr PlaceResponse
		if code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: types[i%len(types)]}, &pr); code != http.StatusOK {
			t.Fatalf("place %d: status %d", i, code)
		}
		if i%7 == 3 {
			postJSON(t, c, ts.URL+"/v1/release", ReleaseRequest{VM: i - 2}, nil)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for i := 120; i < 180; i++ {
		var pr PlaceResponse
		if code := postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: types[i%len(types)]}, &pr); code != http.StatusOK {
			t.Fatalf("place %d: status %d", i, code)
		}
	}
	want := stateFingerprint(s)
	wantSeq := s.NextSeq()
	ts.Close()
	s.Kill()

	r := newTestServer(t, dir, 3, 12)
	defer func() { _ = r.Close() }()
	if got := stateFingerprint(r); got != want {
		t.Fatalf("recovered state differs from pre-kill state:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	info := r.Recovery()
	if info.NextSeq != wantSeq {
		t.Fatalf("recovered next seq %d, want %d", info.NextSeq, wantSeq)
	}
	if info.SnapshotSeq == 0 {
		t.Fatal("recovery ignored the mid-run snapshot")
	}
	if info.ReplayedOps == 0 {
		t.Fatal("recovery replayed no WAL tail")
	}
}

// A snapshot cut garbage-collects the segments and snapshots it
// supersedes.
func TestSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 2, 4)
	ts := httptest.NewServer(s)
	c := ts.Client()
	for i := 0; i < 20; i++ {
		postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.medium"}, nil)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot 1: %v", err)
	}
	for i := 20; i < 40; i++ {
		postJSON(t, c, ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.medium"}, nil)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot 2: %v", err)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want 1 live segment after final snapshot, got %v", segs)
	}
	snap, ok, err := loadLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load snapshot: ok=%v err=%v", ok, err)
	}
	if start, _ := segmentStart(segs[0]); start != snap.Seq {
		t.Fatalf("live segment starts at %d, snapshot cut at %d", start, snap.Seq)
	}
}

// Graceful Close must leave a state that recovers without replaying any
// ops (the final snapshot covers everything).
func TestGracefulCloseRecoversFromSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 2, 4)
	ts := httptest.NewServer(s)
	for i := 0; i < 15; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "c3.large"}, nil)
	}
	want := stateFingerprint(s)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := newTestServer(t, dir, 2, 4)
	defer func() { _ = r.Close() }()
	if got := stateFingerprint(r); got != want {
		t.Fatalf("recovered state differs after graceful close")
	}
	if info := r.Recovery(); info.ReplayedOps != 0 || info.SnapshotSeq == 0 {
		t.Fatalf("graceful recovery should be snapshot-only: %+v", info)
	}
}

// Recovery must refuse a shard-count change: list orders are per-shard
// and do not survive re-sharding.
func TestRecoveryRefusesReshard(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 2, 4)
	ts := httptest.NewServer(s)
	for i := 0; i < 5; i++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.medium"}, nil)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	cat, reg := testEnv(t)
	cluster := cat.BuildCluster(4)
	_, err := New(Config{Rankers: reg, PMs: cluster.PMs(), NewVM: cat.NewVM, Shards: 3, DataDir: dir})
	if err == nil {
		t.Fatal("New accepted a shard-count change over an existing data dir")
	}
}

func BenchmarkSubmitPlace(b *testing.B) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cluster := cat.BuildCluster(512)
	s, err := New(Config{Rankers: reg, PMs: cluster.PMs(), NewVM: cat.NewVM, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	types := []string{"m3.medium", "m3.large", "c3.large"}
	var nextID atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := int(nextID.Add(1))
			vm, err := cat.NewVM(id, types[id%len(types)])
			if err != nil {
				b.Fatal(err)
			}
			res := s.submitPlace(vm, nil)
			if res.err != nil && !errors.Is(res.err, placement.ErrNoCapacity) {
				b.Fatal(res.err)
			}
		}
	})
}
