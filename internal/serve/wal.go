package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pagerankvm/internal/obs/record"
)

// walPrefix / walSuffix frame a segment file name: wal-<first seq,
// 16 digits>.jsonl. Naming segments by their first seq makes the
// snapshot cut a pure file-name comparison — every segment whose name
// is < the snapshot seq is fully reflected in the snapshot.
const (
	walPrefix = "wal-"
	walSuffix = ".jsonl"
)

// segmentName renders the file name of the segment starting at seq.
func segmentName(seq int64) string {
	return fmt.Sprintf("%s%016d%s", walPrefix, seq, walSuffix)
}

// segmentStart parses a segment file name back to its starting seq,
// reporting whether name is a segment at all.
func segmentStart(name string) (int64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix)
	seq, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the WAL segment file names in dir in ascending
// start-seq order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: list wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := segmentStart(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width digits: lexical order == seq order
	return names, nil
}

// wal is the daemon's write-ahead log: one active record.Recorder
// segment whose op lines carry the recording-wide seq, rotated at
// snapshot cuts so old segments become garbage-collectable.
//
// Locking: appendOp is called under the owning shard's lock, which is
// what makes per-PM WAL order equal apply order; wal.mu only serializes
// appenders on different shards against each other and against
// flush/rotate. Lock order is shard.mu -> wal.mu, never the reverse.
type wal struct {
	mu    sync.Mutex
	dir   string // "" = discard mode (no durability)
	fsync bool
	rec   *record.Recorder
}

// walMeta stamps WAL segment headers so recordings are self-describing
// when inspected with the prvm-replay tooling.
func walMeta(startSeq int64) record.RunMeta {
	return record.RunMeta{
		Kind:   "serve-wal",
		Labels: map[string]string{"start_seq": strconv.FormatInt(startSeq, 10)},
	}
}

// openWAL opens a fresh segment starting at startSeq in dir, or a
// discard-mode wal when dir is empty (seqs are still assigned so the
// API behaves identically, but nothing persists).
func openWAL(dir string, startSeq int64, fsync bool) (*wal, error) {
	w := &wal{dir: dir, fsync: fsync}
	if dir == "" {
		rec, err := record.NewWriter(io.Discard, walMeta(startSeq))
		if err != nil {
			return nil, fmt.Errorf("serve: open wal: %w", err)
		}
		rec.SetNextSeq(startSeq)
		w.rec = rec
		return w, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	rec, err := record.Create(filepath.Join(dir, segmentName(startSeq)), walMeta(startSeq))
	if err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	rec.SetNextSeq(startSeq)
	// The header itself must be durable before any op is acknowledged
	// against this segment, or a crash could leave an unparseable file
	// ahead of acknowledged ops in a later segment.
	if err := rec.Sync(); err != nil {
		_ = rec.Close() // the sync error is the story
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	w.rec = rec
	return w, nil
}

// appendOp appends one op and returns its assigned seq. The caller must
// hold the lock of the shard the op mutates and must call flush before
// acknowledging.
func (w *wal) appendOp(op record.Op) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rec.RecordOp(op)
}

// flush is the durability barrier: buffered ops reach the OS (and
// stable storage when fsync is configured). Called once per batch, off
// the shard locks.
func (w *wal) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fsync {
		return w.rec.Sync()
	}
	return w.rec.Flush()
}

// nextSeq returns the seq the next appended op will be assigned.
func (w *wal) nextSeq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rec.NextSeq()
}

// rotate closes the active segment and opens a new one starting at
// cutSeq. The caller (snapshot) must have quiesced all shards, so no
// append can interleave; cutSeq must equal the current next seq.
func (w *wal) rotate(cutSeq int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dir == "" {
		return nil
	}
	if err := w.rec.Close(); err != nil {
		return fmt.Errorf("serve: rotate wal: %w", err)
	}
	rec, err := record.Create(filepath.Join(w.dir, segmentName(cutSeq)), walMeta(cutSeq))
	if err != nil {
		return fmt.Errorf("serve: rotate wal: %w", err)
	}
	rec.SetNextSeq(cutSeq)
	if err := rec.Sync(); err != nil {
		_ = rec.Close() // the sync error is the story
		return fmt.Errorf("serve: rotate wal: %w", err)
	}
	w.rec = rec
	return nil
}

// close flushes and closes the active segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rec.Close()
}

// readSegmentOps streams the ops of one segment to fn in file order,
// starting the scan at the segment's header. A decode error with
// tolerateTail set is treated as a torn tail — the scan stops and
// truncated is reported — which is only legal for the final segment of
// a recovery scan; earlier segments were sealed by rotation and must
// parse completely.
func readSegmentOps(path string, tolerateTail bool, fn func(record.Op) error) (truncated bool, err error) {
	r, err := record.Open(path)
	if err != nil {
		if tolerateTail {
			// A crash can tear even the header of a just-rotated
			// segment; nothing acknowledged can live in it.
			return true, nil
		}
		return false, err
	}
	defer func() { _ = r.Close() }() // read-only close; scan error is the story
	for {
		e, nerr := r.Next()
		if nerr == io.EOF {
			return false, nil
		}
		if nerr != nil {
			if tolerateTail {
				return true, nil
			}
			return false, nerr
		}
		if e.Op == nil {
			continue
		}
		if ferr := fn(*e.Op); ferr != nil {
			return false, ferr
		}
	}
}
