package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pagerankvm/internal/deschedule"
)

// fillToCapacity places VMs of one type until the server returns 409,
// so no PM in the inventory can host another instance of it. Returns
// the placed ids.
func fillToCapacity(t *testing.T, ts *httptest.Server, vmType string) []int {
	t.Helper()
	var placed []int
	for i := 0; i < 10000; i++ {
		var pr PlaceResponse
		code := postJSON(t, ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: i, Type: vmType}, &pr)
		switch code {
		case http.StatusOK:
			placed = append(placed, i)
		case http.StatusConflict:
			return placed
		default:
			t.Fatalf("place vm %d: status %d", i, code)
		}
	}
	t.Fatal("cluster never filled")
	return nil
}

// An evict with every destination full must compensate: the victim is
// restored to its source with a place op, the client sees 409, and the
// WAL carries exactly the release + compensating place — verified by
// seq arithmetic and by kill/recover against an independent fold.
func TestEvictCompensationRestoresVictim(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 2, 1)
	ts := httptest.NewServer(s)

	placed := fillToCapacity(t, ts, "m3.medium")
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}

	// Locate a victim and its host.
	var before ClusterResponse
	getJSON(t, ts.Client(), ts.URL+"/v1/cluster?vms=1", &before)
	victim := before.Placements[0].VM
	srcPM := before.Placements[0].PM

	var er ErrorResponse
	code := postJSON(t, ts.Client(), ts.URL+"/v1/evict", EvictRequest{PM: srcPM, VM: &victim}, &er)
	if code != http.StatusConflict || er.Code != "no_capacity" {
		t.Fatalf("evict on a full cluster: status %d code %q", code, er.Code)
	}

	// Exactly two ops hit the WAL: the release and the compensating
	// place. Anything else means the restore path miscounts.
	var after ClusterResponse
	getJSON(t, ts.Client(), ts.URL+"/v1/cluster?vms=1", &after)
	if got := after.NextSeq - before.NextSeq; got != 2 {
		t.Fatalf("evict compensation appended %d ops, want 2 (release + place)", got)
	}
	if len(after.Placements) != len(before.Placements) {
		t.Fatalf("placement count changed: %d -> %d", len(before.Placements), len(after.Placements))
	}
	restored := false
	for _, p := range after.Placements {
		if p.VM == victim {
			restored = p.PM == srcPM
		}
	}
	if !restored {
		t.Fatalf("victim %d not restored to pm %d", victim, srcPM)
	}

	// The WAL must fold to the same state the server holds after a
	// crash: the compensation pair cancels out.
	ts.CloseClientConnections()
	s.Kill()
	ts.Close()
	want := foldDataDir(t, dir)
	r := newTestServer(t, dir, 2, 1)
	defer func() { _ = r.Close() }()
	diffPlacements(t, want, serverPlacements(r))
	if fv, ok := want[victim]; !ok || fv.PM != srcPM {
		t.Fatalf("fold has victim %d at %+v, want pm %d", victim, fv, srcPM)
	}
}

// TestKillRecoverAfterDrainAndRebalance drives the maintenance-drain
// and descheduler paths, then kills the server and verifies recovery
// against an independent fold of the snapshot + WAL: the retirement is
// durable, rebalance moves replay, and the recovered server keeps
// serving. Run under -race this also exercises the drain and rebalance
// locking against concurrent traffic.
func TestKillRecoverAfterDrainAndRebalance(t *testing.T) {
	dir := t.TempDir()
	cat, reg := testEnv(t)
	newServer := func() *Server {
		s, err := New(Config{
			Rankers:       reg,
			PMs:           cat.BuildCluster(6).PMs(),
			NewVM:         cat.NewVM,
			Shards:        2,
			DataDir:       dir,
			SnapshotEvery: 32,
			Rebalance:     deschedule.Config{DrainBelow: 0.3, MaxMovesPerRound: 8},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	s := newServer()
	ts := httptest.NewServer(s)

	// Phase 1: concurrent place/release traffic racing descheduler
	// rounds and a snapshot.
	types := []string{"m3.medium", "m3.large", "c3.large", "m3.xlarge"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 15; i++ {
				vm := w*1000 + i
				if code := post(ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: vm, Type: types[rng.Intn(len(types))]}); code == http.StatusOK && rng.Intn(2) == 0 {
					post(ts.Client(), ts.URL+"/v1/release", ReleaseRequest{VM: vm})
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := s.RebalanceNow(); err != nil {
				t.Errorf("RebalanceNow: %v", err)
			}
		}
		_ = s.Snapshot()
	}()
	wg.Wait()

	// Phase 2: a quiesced maintenance drain — deterministic 200 with
	// this much headroom.
	var cl ClusterResponse
	getJSON(t, ts.Client(), ts.URL+"/v1/cluster?vms=1", &cl)
	if len(cl.Placements) == 0 {
		t.Fatal("no placements to drain")
	}
	target := cl.Placements[0].PM
	var dr DrainResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/drain", DrainRequest{PM: target}, &dr); code != http.StatusOK {
		var er ErrorResponse
		postJSON(t, ts.Client(), ts.URL+"/v1/drain", DrainRequest{PM: target}, &er)
		t.Fatalf("drain pm %d: status %d (retry: %q %q)", target, code, er.Code, er.Error)
	}
	if !dr.Retired || dr.Seq == 0 {
		t.Fatalf("drain response %+v", dr)
	}
	var er ErrorResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/evict", EvictRequest{PM: target}, &er); code != http.StatusNotFound || er.Code != "unknown_pm" {
		t.Fatalf("evict on retired pm: status %d code %q", code, er.Code)
	}
	getJSON(t, ts.Client(), ts.URL+"/v1/cluster", &cl)
	if cl.Retired != 1 {
		t.Fatalf("Retired = %d, want 1", cl.Retired)
	}

	// Phase 3: more traffic plus one rebalance round after the retire,
	// so the WAL tail interleaves ordinary ops with the drain's.
	for i := 0; i < 10; i++ {
		post(ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: 90000 + i, Type: "m3.medium"})
	}
	if _, err := s.RebalanceNow(); err != nil {
		t.Fatalf("RebalanceNow after drain: %v", err)
	}

	ts.CloseClientConnections()
	s.Kill()
	ts.Close()

	want := foldDataDir(t, dir)
	for id, fv := range want {
		if fv.PM == target {
			t.Fatalf("fold places vm %d on retired pm %d", id, target)
		}
	}

	r := newServer()
	defer func() { _ = r.Close() }()
	diffPlacements(t, want, serverPlacements(r))

	// The retirement survived: the PM is out of every shard's inventory.
	retired := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		if _, ok := sh.pms[target]; ok {
			t.Errorf("retired pm %d back in shard %d inventory", target, sh.idx)
		}
		retired += len(sh.retired)
		sh.mu.Unlock()
	}
	if retired != 1 {
		t.Fatalf("recovered server reports %d retired PMs, want 1", retired)
	}

	// And it keeps serving: place, rebalance, and drain all still work.
	ts2 := httptest.NewServer(r)
	defer ts2.Close()
	var pr PlaceResponse
	if code := postJSON(t, ts2.Client(), ts2.URL+"/v1/place", PlaceRequest{VM: 777777, Type: "m3.medium"}, &pr); code != http.StatusOK {
		t.Fatalf("post-recovery place: status %d", code)
	}
	if _, err := r.RebalanceNow(); err != nil {
		t.Fatalf("post-recovery RebalanceNow: %v", err)
	}
	getJSON(t, ts2.Client(), ts2.URL+"/v1/cluster?vms=1", &cl)
	if cl.Retired != 1 || len(cl.Placements) != len(want)+1 {
		t.Fatalf("post-recovery cluster: retired %d, %d placements (fold %d + 1)", cl.Retired, len(cl.Placements), len(want))
	}
}
