// Package serve turns the placement library into a long-running
// placement-as-a-service daemon: an HTTP/JSON API over sharded cluster
// state with write-ahead-log durability and snapshot-based crash
// recovery (DESIGN.md §14, API.md).
//
// Concurrency model. The placement types (placement.Cluster,
// placement.PageRankVM) are single-threaded by design; the daemon gets
// parallelism by partitioning the PM inventory into shards keyed by a
// hash of the PM id, each shard owning an independent cluster, placer
// and mutex. Placement requests are routed to a home shard by VM-id
// hash, admitted through a per-shard batcher that drains the queue
// through the fast path in one critical section, and forwarded to the
// next shard when the home shard has no capacity.
//
// Durability model. Every accepted mutation is appended to a WAL — an
// ordinary internal/obs/record recording whose entries are record.Op
// lines — under the owning shard's lock, so per-PM WAL order equals
// apply order. A request is acknowledged only after the batch's ops are
// flushed (and fsynced when configured). Periodic snapshots bound
// replay time; recovery loads the newest snapshot and replays the WAL
// tail, reconstructing bit-identical cluster state including the
// used/unused list orders Algorithm 2 is sensitive to.
package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pagerankvm/internal/deschedule"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// Config parameterizes a Server. Rankers, PMs and NewVM are required;
// zero values elsewhere select the documented defaults.
type Config struct {
	// Rankers resolves a PM type to its rank table (shared, read-only;
	// ranktable rankers are safe for concurrent readers).
	Rankers *ranktable.Registry
	// PMs is the PM inventory. Inventory order is preserved per shard:
	// shard i's cluster sees its PMs in the order they appear here.
	PMs []*placement.PM
	// NewVM materializes a placement request for a VM instance of a
	// catalog type — typically experiments.Catalog.NewVM. It is called
	// on the request path and during recovery, and must be safe for
	// concurrent use.
	NewVM func(id int, vmType string) (*placement.VM, error)
	// Shards is the number of state shards (default 4).
	Shards int
	// Seed seeds each shard's placer rng (tie-breaking); shard i uses
	// Seed+i. Default 1.
	Seed int64
	// DataDir enables durability: WAL segments and snapshots live here.
	// Empty means in-memory only (no WAL, no recovery), in which case
	// acknowledged seqs are still assigned but nothing is persisted.
	DataDir string
	// Fsync forces an fsync after every batch flush. Off by default:
	// the default barrier is a buffered flush to the OS page cache,
	// which survives process crashes but not machine crashes.
	Fsync bool
	// BatchMax bounds how many queued placements one critical section
	// admits (default 64).
	BatchMax int
	// BatchWait holds a batch open for a timed window after the first
	// request arrives. The default (0) is greedy group commit: a batch
	// is whatever has queued up by the time the previous commit
	// finished, which adds no idle latency and still batches under
	// load. Set a positive window only when an fsync-bound WAL makes
	// larger batches worth the wait.
	BatchWait time.Duration
	// QueueDepth is the per-shard admission queue capacity (default
	// 1024). A full queue rejects with 503.
	QueueDepth int
	// SnapshotEvery triggers a snapshot after that many WAL ops
	// (default 65536; 0 keeps the default, negative disables periodic
	// snapshots — a final snapshot is still cut on graceful Close).
	SnapshotEvery int64
	// Obs receives the daemon's metrics; nil disables instrumentation.
	Obs *obs.Observer
	// Sink, when non-nil, backs the /events endpoint.
	Sink *obs.RingSink
	// RebalanceEvery, when positive, runs a background descheduler
	// round (RebalanceNow) at that period. Zero disables the loop;
	// RebalanceNow stays available for operator- or test-driven rounds.
	RebalanceEvery time.Duration
	// Rebalance parameterizes the per-shard descheduler engines
	// (budgets, gain margin, drain threshold). Obs defaults to this
	// Config's Obs; Recorder and OnMove are owned by the daemon (moves
	// go to the WAL) and must be left unset.
	Rebalance deschedule.Config
}

// locEntry is the global VM directory value: which shard and PM host a
// placed VM. It exists so duplicate detection and release routing never
// need to lock a shard just to find out where a VM lives.
type locEntry struct {
	shard int
	pm    int
}

// shard is one partition of the datacenter: a cluster over a subset of
// the PM inventory, a dedicated placer (placer binding caches and rngs
// are not concurrency-safe), and the admission queue its batcher
// drains. All cluster and placer access happens under mu.
type shard struct {
	idx     int
	mu      sync.Mutex
	cluster *placement.Cluster
	placer  *placement.PageRankVM
	pms     map[int]*placement.PM // by PM id, for replay and evict routing
	queue   chan *placeReq
	engine  *deschedule.Engine
	// retired lists PM ids drained out of this shard's inventory, in
	// retirement order. It is part of durable state: snapshots carry it
	// so recovery re-retires before re-hosting.
	retired []int
}

// serveMetrics bundles the daemon's obs instruments.
type serveMetrics struct {
	placeReqs   *obs.Counter
	placeDups   *obs.Counter
	placeRejs   *obs.Counter
	releaseReqs *obs.Counter
	evictReqs   *obs.Counter
	drainReqs   *obs.Counter
	forwards    *obs.Counter
	walErrors   *obs.Counter
	snapshots   *obs.Counter
	batchSize   *obs.Histogram
	placeSecs   *obs.Histogram
	requestSecs *obs.Histogram
	drainSecs   *obs.Histogram
}

// Server is the placement daemon: sharded cluster state, a WAL, and an
// http.Handler exposing the v1 API. Create one with New, serve it with
// net/http, stop it with Close (graceful: final snapshot) or Kill
// (crash simulation: no snapshot, WAL is the only truth).
type Server struct {
	cfg    Config
	shards []*shard
	loc    sync.Map // vm id (int) -> locEntry
	wal    *wal
	mux    *http.ServeMux
	met    serveMetrics

	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	walBroken atomic.Bool

	// drainMu serializes maintenance drains: a drain cordons its PM and
	// walks every hosted VM through the admission path, and two
	// concurrent drains could deadlock capacity against each other.
	drainMu sync.Mutex

	snapInFlight atomic.Bool
	opsSinceSnap atomic.Int64
	snapCh       chan struct{}

	recovered RecoveryInfo
}

// RecoveryInfo summarizes what New reconstructed from DataDir.
type RecoveryInfo struct {
	// SnapshotSeq is the seq the loaded snapshot was cut at (0 when no
	// snapshot existed).
	SnapshotSeq int64 `json:"snapshot_seq"`
	// ReplayedOps counts WAL ops applied on top of the snapshot.
	ReplayedOps int `json:"replayed_ops"`
	// NextSeq is the first seq the recovered server will assign.
	NextSeq int64 `json:"next_seq"`
	// VMs is the number of placed VMs after recovery.
	VMs int `json:"vms"`
	// Truncated reports that the final WAL segment ended in a torn line
	// (a crash mid-write); the torn suffix was discarded. Torn entries
	// were never acknowledged — the flush barrier acknowledges only
	// fully written ops — so discarding them is correct, not lossy.
	Truncated bool `json:"truncated,omitempty"`
}

// New builds a Server: partitions the inventory into shards, recovers
// state from cfg.DataDir when set (snapshot + WAL tail replay), opens a
// fresh WAL segment, and starts the per-shard batchers.
func New(cfg Config) (*Server, error) {
	if cfg.Rankers == nil || cfg.NewVM == nil || len(cfg.PMs) == 0 {
		return nil, fmt.Errorf("serve: Rankers, PMs and NewVM are required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 65536
	}

	s := &Server{cfg: cfg, stop: make(chan struct{}), snapCh: make(chan struct{}, 1)}
	s.initMetrics(cfg.Obs)

	// Partition the inventory. Within a shard, PMs keep inventory order
	// — the unused-list order Algorithm 2's open step scans.
	perShard := make([][]*placement.PM, cfg.Shards)
	for _, pm := range cfg.PMs {
		i := int(hashID(pm.ID) % uint32(cfg.Shards))
		perShard[i] = append(perShard[i], pm)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i, pms := range perShard {
		sh := &shard{
			idx:     i,
			cluster: placement.NewCluster(pms),
			placer: placement.NewPageRankVM(cfg.Rankers,
				placement.WithSeed(cfg.Seed+int64(i)),
				placement.WithObserver(cfg.Obs)),
			pms:   make(map[int]*placement.PM, len(pms)),
			queue: make(chan *placeReq, cfg.QueueDepth),
		}
		for _, pm := range pms {
			sh.pms[pm.ID] = pm
		}
		s.shards[i] = sh
	}

	// One descheduler engine per shard, sharing the shard's placer so
	// rebalance moves draw from the same rank tables and seeded rng as
	// admission. OnMove runs inside Rebalance — under the shard lock —
	// so the appendOp calls follow the shard.mu -> wal.mu lock order.
	for _, sh := range s.shards {
		sh := sh
		rcfg := cfg.Rebalance
		if rcfg.Obs == nil {
			rcfg.Obs = cfg.Obs
		}
		rcfg.Recorder = nil
		rcfg.OnMove = func(m deschedule.Move) {
			s.wal.appendOp(record.Op{
				Kind:   record.OpRelease,
				VM:     m.VM,
				VMType: m.VMType,
				PM:     m.From,
			})
			s.wal.appendOp(record.Op{
				Kind:   record.OpPlace,
				VM:     m.VM,
				VMType: m.VMType,
				PM:     m.To,
				PMType: m.ToType,
				Assign: toOpAssign(m.Assign),
				Score:  m.Score,
			})
			s.loc.Store(m.VM, locEntry{shard: sh.idx, pm: m.To})
		}
		sh.engine = deschedule.New(sh.placer, rcfg)
	}

	nextSeq := int64(0)
	if cfg.DataDir != "" {
		info, err := s.recover(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.recovered = info
		nextSeq = info.NextSeq
	}
	w, err := openWAL(cfg.DataDir, nextSeq, cfg.Fsync)
	if err != nil {
		return nil, err
	}
	s.wal = w

	s.mux = http.NewServeMux()
	s.routes()

	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.batcher(sh, s.stop)
	}
	if cfg.DataDir != "" && cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.snapshotter(s.stop)
	}
	if cfg.RebalanceEvery > 0 {
		s.wg.Add(1)
		go s.rebalancer(cfg.RebalanceEvery, s.stop)
	}
	return s, nil
}

// rebalancer runs one descheduler round per period until shutdown.
func (s *Server) rebalancer(period time.Duration, stop <-chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_, _ = s.RebalanceNow() // errors surface via serve.wal_errors / healthz
		case <-stop:
			return
		}
	}
}

// RebalanceNow runs one descheduler round on every shard and returns
// the summed stats. Each shard's round runs under its lock (rebalancing
// never crosses shards — admission's ring forwarding handles cross-shard
// spill), its release+place op pairs go through the WAL via the
// engines' OnMove hook, and the round is flushed before the next shard
// starts. Refused while shutting down or after a WAL failure.
func (s *Server) RebalanceNow() (deschedule.RoundStats, error) {
	var total deschedule.RoundStats
	select {
	case <-s.stop:
		return total, errShutdown
	default:
	}
	if s.walBroken.Load() {
		return total, errWALFailed
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.engine.Rebalance(sh.cluster)
		var ferr error
		if st.Moves > 0 {
			// Flushing under the shard lock follows the shard.mu ->
			// wal.mu lock order; the moves must be durable before the
			// shard accepts interleaving mutations.
			ferr = s.wal.flush()
		}
		sh.mu.Unlock()
		if ferr != nil {
			s.walBroken.Store(true)
			s.met.walErrors.Inc()
			return total, errWALFailed
		}
		s.noteOps(int64(2 * st.Moves))
		total.Add(st)
	}
	return total, nil
}

// snapshotter cuts a snapshot whenever the commit paths signal that
// SnapshotEvery ops have accumulated since the last cut. Running it on
// a dedicated goroutine keeps the (all-shard-quiescing) cut off the
// batcher and handler paths.
func (s *Server) snapshotter(stop <-chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-s.snapCh:
			_ = s.Snapshot() // errors surface via serve.wal_errors / healthz on the next mutation
		case <-stop:
			return
		}
	}
}

// noteOps accumulates committed-op counts toward the periodic snapshot
// trigger.
func (s *Server) noteOps(n int64) {
	if n <= 0 || s.cfg.DataDir == "" || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.opsSinceSnap.Add(n) >= s.cfg.SnapshotEvery {
		select {
		case s.snapCh <- struct{}{}:
		default: // a cut is already pending
		}
	}
}

func (s *Server) initMetrics(o *obs.Observer) {
	s.met = serveMetrics{
		placeReqs:   o.Counter("serve.place_requests"),
		placeDups:   o.Counter("serve.place_duplicates"),
		placeRejs:   o.Counter("serve.place_rejected"),
		releaseReqs: o.Counter("serve.release_requests"),
		evictReqs:   o.Counter("serve.evict_requests"),
		drainReqs:   o.Counter("serve.drain_requests"),
		forwards:    o.Counter("serve.place_forwards"),
		walErrors:   o.Counter("serve.wal_errors"),
		snapshots:   o.Counter("serve.snapshots"),
		batchSize:   o.Histogram("serve.batch_size", obs.LinearBuckets(1, 8, 16)),
		placeSecs:   o.Histogram("serve.place_seconds", obs.DefSecondsBuckets()),
		requestSecs: o.Histogram("serve.request_seconds", obs.DefSecondsBuckets()),
		drainSecs:   o.Histogram("deschedule.drain_seconds", obs.DefSecondsBuckets()),
	}
}

// Recovery returns what New reconstructed from the data directory (the
// zero value for a fresh or in-memory server).
func (s *Server) Recovery() RecoveryInfo { return s.recovered }

// NextSeq returns the seq the next accepted op will be assigned.
func (s *Server) NextSeq() int64 { return s.wal.nextSeq() }

// NumShards returns the number of state shards the server runs.
func (s *Server) NumShards() int { return len(s.shards) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close shuts the server down gracefully: batchers drain, a final
// snapshot is cut (when durable), and the WAL is closed.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	var err error
	if s.cfg.DataDir != "" && !s.walBroken.Load() {
		err = s.Snapshot()
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// Kill stops the server abruptly, skipping the final snapshot: the WAL
// alone must carry the state into the next startup. It exists for
// crash-recovery testing.
func (s *Server) Kill() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	_ = s.wal.close() // a torn tail is the scenario under test
}

// hashID spreads integer ids across shards (FNV-1a over the little-
// endian bytes).
func hashID(id int) uint32 {
	h := uint32(2166136261)
	v := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= uint32(v & 0xff)
		h *= 16777619
		v >>= 8
	}
	return h
}

// pmShard returns the shard index owning a PM id.
func (s *Server) pmShard(pmID int) int { return int(hashID(pmID) % uint32(len(s.shards))) }

// vmShard returns a VM id's home shard — where its placement is tried
// first.
func (s *Server) vmShard(vmID int) int { return int(hashID(vmID) % uint32(len(s.shards))) }

// toOpAssign converts a concrete assignment to its WAL encoding.
func toOpAssign(a resource.Assignment) []record.OpAssign {
	if len(a) == 0 {
		return nil
	}
	out := make([]record.OpAssign, len(a))
	for i, du := range a {
		out[i] = record.OpAssign{Dim: du.Dim, Units: du.Units}
	}
	return out
}

// fromOpAssign converts a WAL assignment back to the placement form.
func fromOpAssign(a []record.OpAssign) resource.Assignment {
	if len(a) == 0 {
		return nil
	}
	out := make(resource.Assignment, len(a))
	for i, du := range a {
		out[i] = resource.DimUnits{Dim: du.Dim, Units: du.Units}
	}
	return out
}

// applyOp applies one WAL op to the in-memory state. It is the replay
// half of the durability contract: the live path records exactly what
// it applied, this path applies exactly what was recorded. Callers
// serialize (recovery is single-threaded).
func (s *Server) applyOp(op record.Op) error {
	switch op.Kind {
	case record.OpPlace:
		sh := s.shards[s.pmShard(op.PM)]
		pm, ok := sh.pms[op.PM]
		if !ok {
			return fmt.Errorf("serve: replay seq %d: pm %d not in inventory", op.Seq, op.PM)
		}
		vm, err := s.cfg.NewVM(op.VM, op.VMType)
		if err != nil {
			return fmt.Errorf("serve: replay seq %d: %w", op.Seq, err)
		}
		if err := sh.cluster.Host(pm, vm, fromOpAssign(op.Assign)); err != nil {
			return fmt.Errorf("serve: replay seq %d: %w", op.Seq, err)
		}
		s.loc.Store(op.VM, locEntry{shard: sh.idx, pm: pm.ID})
	case record.OpRelease:
		sh := s.shards[s.pmShard(op.PM)]
		if _, err := sh.cluster.Release(op.VM); err != nil {
			return fmt.Errorf("serve: replay seq %d: %w", op.Seq, err)
		}
		s.loc.Delete(op.VM)
	case record.OpRetire:
		sh := s.shards[s.pmShard(op.PM)]
		pm, ok := sh.pms[op.PM]
		if !ok {
			return fmt.Errorf("serve: replay seq %d: pm %d not in inventory", op.Seq, op.PM)
		}
		if err := sh.cluster.Retire(pm); err != nil {
			return fmt.Errorf("serve: replay seq %d: %w", op.Seq, err)
		}
		delete(sh.pms, op.PM)
		sh.retired = append(sh.retired, op.PM)
	default:
		return fmt.Errorf("serve: replay seq %d: unknown op kind %q", op.Seq, op.Kind)
	}
	return nil
}

// numVMs counts placed VMs across shards (callers hold no locks; exact
// only when quiesced).
func (s *Server) numVMs() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.cluster.NumVMs()
		sh.mu.Unlock()
	}
	return n
}

// sortedVMIDs returns the ids of a PM's hosted VMs in ascending order —
// the deterministic iteration order for snapshots and status listings.
func sortedVMIDs(pm *placement.PM) []int {
	vms := pm.VMs()
	ids := make([]int, 0, len(vms))
	for id := range vms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
