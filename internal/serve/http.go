package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
)

// PlaceRequest is the body of POST /v1/place: place one instance of a
// catalog VM type.
type PlaceRequest struct {
	// VM is the caller-chosen instance id — the idempotency key. A
	// repeated id returns the existing placement with Duplicate set.
	VM int `json:"vm"`
	// Type is the catalog VM type name (e.g. "m3.large").
	Type string `json:"type"`
}

// PlaceResponse is the body of a successful POST /v1/place.
type PlaceResponse struct {
	// VM echoes the request id.
	VM int `json:"vm"`
	// PM is the hosting PM id.
	PM int `json:"pm"`
	// PMType is the hosting PM's catalog type (empty on duplicates).
	PMType string `json:"pm_type,omitempty"`
	// Score is the winning accommodation score (0 when a PM was opened).
	Score float64 `json:"score"`
	// Opened marks that the placement powered on an unused PM.
	Opened bool `json:"opened,omitempty"`
	// Duplicate marks an idempotent replay: the VM was already placed
	// and no new decision was made. Seq is -1.
	Duplicate bool `json:"duplicate,omitempty"`
	// Seq is the WAL sequence number of the committed op; the response
	// is sent only after the op is durable (see API.md).
	Seq int64 `json:"seq"`
	// Assign is the concrete anti-collocation assignment.
	Assign []record.OpAssign `json:"assign,omitempty"`
}

// ReleaseRequest is the body of POST /v1/release.
type ReleaseRequest struct {
	// VM is the instance id to release.
	VM int `json:"vm"`
}

// ReleaseResponse is the body of a successful POST /v1/release.
type ReleaseResponse struct {
	// VM echoes the request id; PM is the host it was released from.
	VM int `json:"vm"`
	PM int `json:"pm"`
	// Seq is the WAL sequence number of the release op.
	Seq int64 `json:"seq"`
}

// EvictRequest is the body of POST /v1/evict: migrate one VM off a PM.
type EvictRequest struct {
	// PM is the overloaded source PM.
	PM int `json:"pm"`
	// VM optionally names the victim; when nil the rank evictor picks
	// the hosted VM whose removal most improves the source PM's rank.
	VM *int `json:"vm,omitempty"`
}

// EvictResponse is the body of a successful POST /v1/evict.
type EvictResponse struct {
	// VM is the migrated victim; From and To are source and destination
	// PMs.
	VM   int `json:"vm"`
	From int `json:"from"`
	To   int `json:"to"`
	// Seq is the WAL sequence number of the re-place op (the release op
	// precedes it).
	Seq int64 `json:"seq"`
}

// DrainRequest is the body of POST /v1/drain: evacuate every VM off a
// PM and retire it from the inventory (maintenance drain).
type DrainRequest struct {
	// PM is the machine to drain.
	PM int `json:"pm"`
}

// DrainMove is one migration performed by a drain.
type DrainMove struct {
	// VM is the moved instance; To is its new host.
	VM int `json:"vm"`
	To int `json:"to"`
}

// DrainResponse is the body of a successful POST /v1/drain.
type DrainResponse struct {
	// PM echoes the drained machine.
	PM int `json:"pm"`
	// Moves lists the migrations, in the order they were performed.
	Moves []DrainMove `json:"moves,omitempty"`
	// Retired confirms the PM left the inventory.
	Retired bool `json:"retired"`
	// Seq is the WAL sequence number of the retire op (every move's
	// release+place pair precedes it).
	Seq int64 `json:"seq"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	// Code is a stable machine-readable cause (see API.md's table).
	Code string `json:"code"`
	// Error is a human-readable message.
	Error string `json:"error"`
}

// ClusterResponse is the body of GET /v1/cluster.
type ClusterResponse struct {
	// Shards reports per-shard state.
	Shards []ShardStatus `json:"shards"`
	// PMs, UsedPMs and VMs aggregate over shards; MaxUsed sums the
	// per-shard high-water marks.
	PMs     int `json:"pms"`
	UsedPMs int `json:"used_pms"`
	VMs     int `json:"vms"`
	MaxUsed int `json:"max_used"`
	// Retired counts PMs drained out of the inventory.
	Retired int `json:"retired"`
	// NextSeq is the next WAL sequence number.
	NextSeq int64 `json:"next_seq"`
	// Placements lists vm->pm pairs (ascending vm id) when the request
	// asked for ?vms=1.
	Placements []VMStatus `json:"placements,omitempty"`
}

// ShardStatus is one shard's row in ClusterResponse.
type ShardStatus struct {
	Shard   int `json:"shard"`
	PMs     int `json:"pms"`
	Used    int `json:"used"`
	VMs     int `json:"vms"`
	MaxUsed int `json:"max_used"`
	Retired int `json:"retired,omitempty"`
}

// VMStatus is one placed VM in ClusterResponse.Placements.
type VMStatus struct {
	VM int `json:"vm"`
	PM int `json:"pm"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "degraded" after a WAL write failure (the
	// server refuses mutations until restarted).
	Status string `json:"status"`
	// NextSeq is the next WAL sequence number.
	NextSeq int64 `json:"next_seq"`
	// Recovery summarizes what startup reconstructed.
	Recovery RecoveryInfo `json:"recovery"`
}

// Sentinel causes for evict/drain request routing (batch.go defines
// the admission-path sentinels).
var (
	errUnknownPM = errors.New("serve: unknown pm")
	errDraining  = errors.New("serve: pm is draining")
)

// routes wires the API and the in-process observability endpoints.
func (s *Server) routes() {
	s.mux.HandleFunc("/v1/place", s.handlePlace)
	s.mux.HandleFunc("/v1/release", s.handleRelease)
	s.mux.HandleFunc("/v1/evict", s.handleEvict)
	s.mux.HandleFunc("/v1/drain", s.handleDrain)
	s.mux.HandleFunc("/v1/cluster", s.handleCluster)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Obs != nil {
		oh := obs.Handler(s.cfg.Obs, s.cfg.Sink)
		s.mux.Handle("/metrics", oh)
		s.mux.Handle("/metrics.json", oh)
		s.mux.Handle("/events", oh)
		s.mux.Handle("/debug/", oh)
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // the client is gone if this fails
}

// writeError maps an error to the API's stable error codes.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorResponse{Code: code, Error: err.Error()})
}

// decodeBody decodes a JSON request body, rejecting unknown fields so
// client typos fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decode body: %w", err))
		return false
	}
	return true
}

// checkMutable gates mutating handlers: POST only, not shutting down,
// WAL healthy.
func (s *Server) checkMutable(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", errors.New("POST required"))
		return false
	}
	select {
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "shutting_down", errShutdown)
		return false
	default:
	}
	if s.walBroken.Load() {
		writeError(w, http.StatusServiceUnavailable, "wal_failed", errWALFailed)
		return false
	}
	return true
}

// handlePlace serves POST /v1/place.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.requestSecs.Observe(time.Since(start).Seconds()) }()
	if !s.checkMutable(w, r) {
		return
	}
	var req PlaceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.met.placeReqs.Inc()
	vm, err := s.cfg.NewVM(req.VM, req.Type)
	if err != nil {
		writeError(w, http.StatusBadRequest, "unknown_type", err)
		return
	}
	res := s.submitPlace(vm, nil)
	if res.err != nil {
		s.writePlaceError(w, res.err)
		return
	}
	writeJSON(w, http.StatusOK, PlaceResponse{
		VM:        req.VM,
		PM:        res.pmID,
		PMType:    res.pmType,
		Score:     res.score,
		Opened:    res.opened,
		Duplicate: res.dup,
		Seq:       res.seq,
		Assign:    toOpAssign(res.assign),
	})
}

// writePlaceError maps admission-path errors to status codes.
func (s *Server) writePlaceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, placement.ErrNoCapacity):
		writeError(w, http.StatusConflict, "no_capacity", err)
	case errors.Is(err, errOverloaded):
		writeError(w, http.StatusServiceUnavailable, "overloaded", err)
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err)
	case errors.Is(err, errWALFailed):
		writeError(w, http.StatusServiceUnavailable, "wal_failed", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err)
	}
}

// handleRelease serves POST /v1/release. Releases bypass the batcher:
// they never forward, so one shard lock plus a flush is the whole
// transaction.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.requestSecs.Observe(time.Since(start).Seconds()) }()
	if !s.checkMutable(w, r) {
		return
	}
	var req ReleaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.met.releaseReqs.Inc()
	pmID, seq, err := s.release(req.VM)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_placed", err)
		return
	}
	if err := s.wal.flush(); err != nil {
		s.walBroken.Store(true)
		s.met.walErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "wal_failed", errWALFailed)
		return
	}
	s.noteOps(1)
	writeJSON(w, http.StatusOK, ReleaseResponse{VM: req.VM, PM: pmID, Seq: seq})
}

// release removes a VM under its host shard's lock and appends the
// release op. The caller flushes.
func (s *Server) release(vmID int) (pmID int, seq int64, err error) {
	e, ok := s.loc.Load(vmID)
	if !ok {
		return 0, 0, fmt.Errorf("serve: vm %d not placed", vmID)
	}
	le := e.(locEntry)
	sh := s.shards[le.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, err := sh.cluster.Release(vmID)
	if err != nil {
		return 0, 0, err
	}
	s.loc.Delete(vmID)
	seq = s.wal.appendOp(record.Op{
		Kind:   record.OpRelease,
		VM:     vmID,
		VMType: h.VM.Type,
		PM:     le.pm,
	})
	return le.pm, seq, nil
}

// handleEvict serves POST /v1/evict: release a victim from the source
// PM (rank-evictor choice unless the request names one), then re-place
// it anywhere else through the normal admission path. The WAL records
// the migration as a release op followed by a place op; if re-placement
// fails the victim is restored to its source with a compensating place
// op, so the log never ends mid-migration in an unexplained state.
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.requestSecs.Observe(time.Since(start).Seconds()) }()
	if !s.checkMutable(w, r) {
		return
	}
	var req EvictRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.met.evictReqs.Inc()

	sh := s.shards[s.pmShard(req.PM)]
	victim, hosted, pm, err := s.evictVictim(sh, req.PM, req.VM)
	if err != nil {
		switch {
		case errors.Is(err, errUnknownPM):
			writeError(w, http.StatusNotFound, "unknown_pm", err)
		case errors.Is(err, errDraining):
			writeError(w, http.StatusConflict, "draining", err)
		default:
			writeError(w, http.StatusNotFound, "no_victim", err)
		}
		return
	}
	if err := s.wal.flush(); err != nil {
		s.walBroken.Store(true)
		s.met.walErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "wal_failed", errWALFailed)
		return
	}
	s.noteOps(1)

	res := s.submitPlace(hosted.VM, pm)
	if res.err != nil {
		// Compensate: put the victim back with its original assignment.
		if rerr := s.restore(sh, pm, hosted); rerr != nil {
			writeError(w, http.StatusInternalServerError, "internal",
				fmt.Errorf("re-place failed (%v) and restore failed: %w", res.err, rerr))
			return
		}
		// The compensating place op restore appended counts toward the
		// snapshot cadence like any other committed op.
		s.noteOps(1)
		writeError(w, http.StatusConflict, "no_capacity",
			fmt.Errorf("serve: no destination for vm %d; restored to pm %d", victim, pm.ID))
		return
	}
	writeJSON(w, http.StatusOK, EvictResponse{VM: victim, From: pm.ID, To: res.pmID, Seq: res.seq})
}

// evictVictim resolves the source PM, picks (or validates) the victim,
// and releases it — all under the shard lock, because sh.pms shrinks
// when a drain retires a PM. A draining (cordoned) source is refused:
// the drain is already moving every VM off it.
func (s *Server) evictVictim(sh *shard, pmID int, want *int) (int, placement.Hosted, *placement.PM, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pm, ok := sh.pms[pmID]
	if !ok {
		return 0, placement.Hosted{}, nil, fmt.Errorf("%w: pm %d not in inventory", errUnknownPM, pmID)
	}
	if pm.Cordoned() {
		return 0, placement.Hosted{}, nil, fmt.Errorf("%w: pm %d", errDraining, pmID)
	}
	victim := -1
	if want != nil {
		if _, ok := pm.VMs()[*want]; !ok {
			return 0, placement.Hosted{}, nil, fmt.Errorf("serve: vm %d not on pm %d", *want, pm.ID)
		}
		victim = *want
	} else {
		// All dimensions count as overloaded: pick the hosted VM whose
		// removal most improves the source PM's rank.
		dims := make([]int, pm.Shape.NumDims())
		for i := range dims {
			dims[i] = i
		}
		ev := placement.RankEvictor{Placer: sh.placer}
		id, ok := ev.SelectVictim(pm, dims)
		if !ok {
			return 0, placement.Hosted{}, nil, fmt.Errorf("serve: pm %d hosts no evictable VM", pm.ID)
		}
		victim = id
	}
	h, err := sh.cluster.Release(victim)
	if err != nil {
		return 0, placement.Hosted{}, nil, err
	}
	s.loc.Delete(victim)
	s.wal.appendOp(record.Op{
		Kind:   record.OpRelease,
		VM:     victim,
		VMType: h.VM.Type,
		PM:     pm.ID,
	})
	return victim, h, pm, nil
}

// restore re-hosts an evicted VM on its source PM with its original
// assignment after a failed re-placement, logging the compensating
// place op.
func (s *Server) restore(sh *shard, pm *placement.PM, h placement.Hosted) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.cluster.Host(pm, h.VM, h.Assign); err != nil {
		return err
	}
	s.loc.Store(h.VM.ID, locEntry{shard: sh.idx, pm: pm.ID})
	s.wal.appendOp(record.Op{
		Kind:   record.OpPlace,
		VM:     h.VM.ID,
		VMType: h.VM.Type,
		PM:     pm.ID,
		PMType: pm.Type,
		Assign: toOpAssign(h.Assign),
	})
	// Flushing under the shard lock follows the shard.mu -> wal.mu lock
	// order; the compensating op must be durable before we answer.
	if err := s.wal.flush(); err != nil {
		s.walBroken.Store(true)
		s.met.walErrors.Inc()
		return err
	}
	return nil
}

// handleDrain serves POST /v1/drain: a maintenance drain. The PM is
// cordoned (placers stop offering it), every hosted VM is re-placed
// through the normal admission path — each move a release+place op
// pair in the WAL — and the emptied PM is retired from the inventory
// with a final retire op. If any VM has no destination the drain
// aborts: the VM is restored to its source, the PM is uncordoned and
// stays in service (already-moved VMs stay moved), and the client gets
// 409. The cordon itself is not persisted — a crash mid-drain recovers
// to a consistent, partially drained, uncordoned PM — but a completed
// retirement is durable.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.drainSecs.Observe(time.Since(start).Seconds()) }()
	if !s.checkMutable(w, r) {
		return
	}
	var req DrainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.met.drainReqs.Inc()

	// One drain at a time: two concurrent drains could each need the
	// other's capacity and livelock against their compensation paths.
	s.drainMu.Lock()
	defer s.drainMu.Unlock()

	sh := s.shards[s.pmShard(req.PM)]
	pm, ids, err := s.cordonPM(sh, req.PM)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown_pm", err)
		return
	}

	var moves []DrainMove
	for _, vmID := range ids {
		h, ok := s.releaseForDrain(sh, pm, vmID)
		if !ok {
			continue // the client released it after the cordon
		}
		res := s.submitPlace(h.VM, pm)
		if res.err != nil {
			// Compensate: the VM goes back, the PM stays in service.
			if rerr := s.restore(sh, pm, h); rerr != nil {
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Errorf("drain re-place failed (%v) and restore failed: %w", res.err, rerr))
				return
			}
			s.noteOps(2) // the release op and its compensating place op
			s.uncordon(sh, pm)
			if errors.Is(res.err, placement.ErrNoCapacity) {
				writeError(w, http.StatusConflict, "no_capacity",
					fmt.Errorf("serve: drain of pm %d: no destination for vm %d; pm stays in service", pm.ID, vmID))
				return
			}
			s.writePlaceError(w, res.err)
			return
		}
		// The place op was counted by its batch commit; count the
		// release op here.
		s.noteOps(1)
		moves = append(moves, DrainMove{VM: vmID, To: res.pmID})
	}

	seq, err := s.retirePM(sh, pm)
	if err != nil {
		// Something re-hosted onto the PM between the last move and the
		// retire (an evict compensation, at worst). Leave it in service.
		s.uncordon(sh, pm)
		writeError(w, http.StatusConflict, "conflict", err)
		return
	}
	if err := s.wal.flush(); err != nil {
		s.walBroken.Store(true)
		s.met.walErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "wal_failed", errWALFailed)
		return
	}
	s.noteOps(1)
	writeJSON(w, http.StatusOK, DrainResponse{PM: req.PM, Moves: moves, Retired: true, Seq: seq})
}

// cordonPM resolves and cordons the PM under the shard lock, returning
// its hosted VM ids (ascending — the drain's move order).
func (s *Server) cordonPM(sh *shard, pmID int) (*placement.PM, []int, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pm, ok := sh.pms[pmID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: pm %d not in inventory", errUnknownPM, pmID)
	}
	pm.SetCordoned(true)
	return pm, sortedVMIDs(pm), nil
}

// uncordon returns a PM to service under the shard lock.
func (s *Server) uncordon(sh *shard, pm *placement.PM) {
	sh.mu.Lock()
	pm.SetCordoned(false)
	sh.mu.Unlock()
}

// releaseForDrain releases one VM off the draining PM under the shard
// lock, appending the release op. It reports false when the VM is no
// longer there (a client release raced the drain) — not an error, the
// drain's goal is an empty PM.
func (s *Server) releaseForDrain(sh *shard, pm *placement.PM, vmID int) (placement.Hosted, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := pm.VMs()[vmID]; !ok {
		return placement.Hosted{}, false
	}
	h, err := sh.cluster.Release(vmID)
	if err != nil {
		return placement.Hosted{}, false
	}
	s.loc.Delete(vmID)
	s.wal.appendOp(record.Op{
		Kind:   record.OpRelease,
		VM:     vmID,
		VMType: h.VM.Type,
		PM:     pm.ID,
	})
	return h, true
}

// retirePM removes the emptied PM from the inventory under the shard
// lock and appends the retire op. The caller flushes.
func (s *Server) retirePM(sh *shard, pm *placement.PM) (int64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.cluster.Retire(pm); err != nil {
		return 0, err
	}
	delete(sh.pms, pm.ID)
	sh.retired = append(sh.retired, pm.ID)
	seq := s.wal.appendOp(record.Op{
		Kind:   record.OpRetire,
		PM:     pm.ID,
		PMType: pm.Type,
	})
	return seq, nil
}

// handleCluster serves GET /v1/cluster.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", errors.New("GET required"))
		return
	}
	resp := ClusterResponse{NextSeq: s.wal.nextSeq()}
	wantVMs := r.URL.Query().Get("vms") == "1"
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := ShardStatus{
			Shard:   sh.idx,
			PMs:     len(sh.cluster.PMs()),
			Used:    sh.cluster.NumUsed(),
			VMs:     sh.cluster.NumVMs(),
			MaxUsed: sh.cluster.MaxUsed,
			Retired: len(sh.retired),
		}
		if wantVMs {
			for _, pm := range sh.cluster.UsedPMs() {
				for _, vmID := range sortedVMIDs(pm) {
					resp.Placements = append(resp.Placements, VMStatus{VM: vmID, PM: pm.ID})
				}
			}
		}
		sh.mu.Unlock()
		resp.Shards = append(resp.Shards, st)
		resp.PMs += st.PMs
		resp.UsedPMs += st.Used
		resp.VMs += st.VMs
		resp.MaxUsed += st.MaxUsed
		resp.Retired += st.Retired
	}
	if wantVMs {
		sort.Slice(resp.Placements, func(i, j int) bool { return resp.Placements[i].VM < resp.Placements[j].VM })
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.walBroken.Load() {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		Status:   status,
		NextSeq:  s.wal.nextSeq(),
		Recovery: s.recovered,
	})
}
