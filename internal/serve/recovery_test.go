package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"pagerankvm/internal/obs/record"
)

// foldedVM is one placed VM in an independent fold of the durable
// files: the ground truth a recovered server is checked against.
type foldedVM struct {
	Type   string
	PM     int
	Assign []record.OpAssign
}

// foldDataDir reconstructs the expected vm->placement map by folding
// the newest snapshot and every WAL op at or after its cut — an
// implementation independent of Server.recover (no clusters, no
// placers), so the integration test cross-checks the recovery code
// rather than trusting it.
func foldDataDir(t *testing.T, dir string) map[int]foldedVM {
	t.Helper()
	state := map[int]foldedVM{}

	snap, haveSnap, err := loadLatestSnapshot(dir)
	if err != nil {
		t.Fatalf("fold: %v", err)
	}
	if haveSnap {
		for _, sh := range snap.State {
			for _, pm := range sh.PMs {
				for _, vm := range pm.VMs {
					state[vm.ID] = foldedVM{Type: vm.Type, PM: pm.ID, Assign: vm.Assign}
				}
			}
		}
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("fold: %v", err)
	}
	for i, name := range segs {
		last := i == len(segs)-1
		_, err := readSegmentOps(filepath.Join(dir, name), last, func(op record.Op) error {
			if op.Seq < snap.Seq {
				return nil
			}
			switch op.Kind {
			case record.OpPlace:
				if _, dup := state[op.VM]; dup {
					return fmt.Errorf("fold: seq %d places vm %d twice", op.Seq, op.VM)
				}
				state[op.VM] = foldedVM{Type: op.VMType, PM: op.PM, Assign: op.Assign}
			case record.OpRelease:
				if _, ok := state[op.VM]; !ok {
					return fmt.Errorf("fold: seq %d releases unplaced vm %d", op.Seq, op.VM)
				}
				delete(state, op.VM)
			case record.OpRetire:
				// A retire is only legal after every hosted VM moved off.
				for id, fv := range state {
					if fv.PM == op.PM {
						return fmt.Errorf("fold: seq %d retires pm %d still hosting vm %d", op.Seq, op.PM, id)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("fold %s: %v", name, err)
		}
	}
	return state
}

// serverPlacements extracts the recovered server's vm->placement map
// directly from its shards.
func serverPlacements(s *Server) map[int]foldedVM {
	out := map[int]foldedVM{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, pm := range sh.cluster.UsedPMs() {
			vms := pm.VMs()
			for _, id := range sortedVMIDs(pm) {
				h := vms[id]
				out[id] = foldedVM{Type: h.VM.Type, PM: pm.ID, Assign: toOpAssign(h.Assign)}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

func diffPlacements(t *testing.T, want, got map[int]foldedVM) {
	t.Helper()
	var ids []int
	for id := range want {
		ids = append(ids, id)
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		w, inW := want[id]
		g, inG := got[id]
		switch {
		case !inW:
			t.Errorf("vm %d: recovered but not in WAL fold (%+v)", id, g)
		case !inG:
			t.Errorf("vm %d: in WAL fold (%+v) but not recovered", id, w)
		case w.PM != g.PM || w.Type != g.Type || !assignEqual(w.Assign, g.Assign):
			t.Errorf("vm %d: fold %+v, recovered %+v", id, w, g)
		}
	}
}

func assignEqual(a, b []record.OpAssign) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKillRecoverUnderConcurrentTraffic is the crash-recovery
// integration test: concurrent mixed place/release/evict traffic over
// HTTP with periodic snapshots, an abrupt Kill mid-stream, then
// recovery — verified against an independent fold of the snapshot and
// WAL files. Run under -race this also exercises the locking of the
// batcher, the WAL and the snapshot quiesce.
func TestKillRecoverUnderConcurrentTraffic(t *testing.T) {
	dir := t.TempDir()
	cat, reg := testEnv(t)
	cluster := cat.BuildCluster(12)
	s, err := New(Config{
		Rankers:       reg,
		PMs:           cluster.PMs(),
		NewVM:         cat.NewVM,
		Shards:        4,
		DataDir:       dir,
		SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)

	types := []string{"m3.medium", "m3.large", "m3.xlarge", "c3.large", "c3.xlarge"}
	const workers = 8
	const opsPerWorker = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			client := ts.Client()
			placed := []int{}
			for i := 0; i < opsPerWorker; i++ {
				switch {
				case len(placed) > 0 && rng.Intn(5) == 0:
					// Release one of our own placements.
					k := rng.Intn(len(placed))
					vm := placed[k]
					placed = append(placed[:k], placed[k+1:]...)
					post(client, ts.URL+"/v1/release", ReleaseRequest{VM: vm})
				case len(placed) > 3 && rng.Intn(7) == 0:
					// Evict from wherever one of ours sits; the victim
					// choice is the server's.
					var pr PlaceResponse
					b, _ := json.Marshal(PlaceRequest{VM: placed[0], Type: types[0]})
					resp, err := client.Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(b))
					if err == nil {
						_ = json.NewDecoder(resp.Body).Decode(&pr)
						_ = resp.Body.Close()
						post(client, ts.URL+"/v1/evict", EvictRequest{PM: pr.PM})
					}
				default:
					vm := w*10000 + i
					if code := post(client, ts.URL+"/v1/place", PlaceRequest{VM: vm, Type: types[rng.Intn(len(types))]}); code == http.StatusOK {
						placed = append(placed, vm)
					}
				}
				if w == 0 && i%20 == 10 {
					// Snapshots race the traffic on purpose.
					_ = s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	// Kill without draining: no final snapshot, the WAL is the truth.
	ts.CloseClientConnections()
	s.Kill()
	ts.Close()

	want := foldDataDir(t, dir)
	if len(want) == 0 {
		t.Fatal("fold produced no placements; test drove no traffic?")
	}

	r, err := New(Config{
		Rankers: reg,
		PMs:     cat.BuildCluster(12).PMs(),
		NewVM:   cat.NewVM,
		Shards:  4,
		DataDir: dir,
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer func() { _ = r.Close() }()

	diffPlacements(t, want, serverPlacements(r))
	if info := r.Recovery(); info.VMs != len(want) {
		t.Fatalf("recovery reports %d VMs, fold has %d", info.VMs, len(want))
	}

	// The recovered server keeps serving: free a slot (the cluster may
	// have been killed while full), then place a fresh VM.
	ts2 := httptest.NewServer(r)
	defer ts2.Close()
	for id, fv := range want {
		if code := post(ts2.Client(), ts2.URL+"/v1/release", ReleaseRequest{VM: id}); code != http.StatusOK {
			t.Fatalf("post-recovery release of vm %d: status %d", id, code)
		}
		if code := post(ts2.Client(), ts2.URL+"/v1/place", PlaceRequest{VM: 999999, Type: fv.Type}); code != http.StatusOK {
			t.Fatalf("post-recovery place: status %d", code)
		}
		break
	}
}

// post sends a JSON body and returns the status code, swallowing
// transport errors (expected around the kill).
func post(c *http.Client, url string, body any) int {
	b, err := json.Marshal(body)
	if err != nil {
		return 0
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0
	}
	defer func() { _ = resp.Body.Close() }()
	return resp.StatusCode
}

// A torn final WAL line (crash mid-write) must not block recovery: the
// torn suffix was never acknowledged and is discarded.
func TestRecoveryToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, 2, 4)
	ts := httptest.NewServer(s)
	for i := 0; i < 10; i++ {
		post(ts.Client(), ts.URL+"/v1/place", PlaceRequest{VM: i, Type: "m3.medium"})
	}
	want := stateFingerprint(s)
	ts.Close()
	s.Kill()

	// Tear the tail: append half a JSON line to the live segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"o","seq":99999,"kind":"pl`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := newTestServer(t, dir, 2, 4)
	defer func() { _ = r.Close() }()
	if got := stateFingerprint(r); got != want {
		t.Fatalf("torn-tail recovery diverged:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if !r.Recovery().Truncated {
		t.Fatal("recovery did not report the torn tail")
	}
}
