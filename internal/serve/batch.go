package serve

import (
	"errors"
	"time"

	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
)

// Sentinel errors surfaced by the admission path; http.go maps them to
// status codes.
var (
	// errShutdown: the server is stopping; the request was not applied.
	errShutdown = errors.New("serve: shutting down")
	// errOverloaded: every shard's admission queue was full.
	errOverloaded = errors.New("serve: admission queues full")
	// errWALFailed: the WAL could not be made durable; the server is
	// degraded and refuses mutations (state may be ahead of the log).
	errWALFailed = errors.New("serve: wal write failed")
)

// placeReq is one queued placement: the VM to place, eviction context,
// forwarding state, and the waiter's reply channel.
type placeReq struct {
	vm *placement.VM
	// exclude bars a PM from being chosen — the eviction source during
	// a re-place. Pointer identity; PMs of other shards never collide.
	exclude *placement.PM
	// home is the shard the request was first offered to; tried counts
	// shards attempted, for capacity forwarding.
	home  int
	tried int
	// enq stamps admission for the serve.place_seconds histogram.
	enq time.Time
	// done receives exactly one result (buffered: the batcher never
	// blocks on a waiter).
	done chan placeResult
}

// placeResult is the outcome of a placeReq.
type placeResult struct {
	pmID   int
	pmType string
	assign resource.Assignment
	score  float64
	opened bool
	dup    bool
	seq    int64
	err    error
}

// batcher drains one shard's admission queue: it blocks for the first
// request, then admits up to BatchMax requests or BatchWait of arrival
// time, whichever ends first, and commits the batch in one critical
// section. One batcher goroutine per shard, stopped by s.stop.
func (s *Server) batcher(sh *shard, stop <-chan struct{}) {
	defer s.wg.Done()
	for {
		var first *placeReq
		select {
		case first = <-sh.queue:
		case <-stop:
			s.drainQueue(sh)
			return
		}
		batch := s.collectBatch(sh, first, stop)
		s.commitBatch(sh, batch)
		select {
		case <-stop:
			s.drainQueue(sh)
			return
		default:
		}
	}
}

// collectBatch assembles one batch starting from first. The default
// (BatchWait == 0) is greedy group commit: take everything already
// queued and go — requests arriving during the previous commit form the
// next batch, so batching scales with load and adds zero idle latency.
// A positive BatchWait instead holds the batch open for that window
// (worth it only when the WAL is fsync-bound and the commit itself is
// cheap relative to the sync).
func (s *Server) collectBatch(sh *shard, first *placeReq, stop <-chan struct{}) []*placeReq {
	batch := []*placeReq{first}
	if s.cfg.BatchWait <= 0 {
		for len(batch) < s.cfg.BatchMax {
			select {
			case r := <-sh.queue:
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWait)
	defer timer.Stop()
	for len(batch) < s.cfg.BatchMax {
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-stop:
			return batch // commit what was admitted, then exit
		}
	}
	return batch
}

// drainQueue answers every queued request with a shutdown error.
// Waiters also select on s.stop, so this is belt and braces for
// requests enqueued concurrently with shutdown.
func (s *Server) drainQueue(sh *shard) {
	for {
		select {
		case r := <-sh.queue:
			r.done <- placeResult{err: errShutdown}
		default:
			return
		}
	}
}

// commitBatch applies a batch under the shard lock — the admission
// batching that amortizes one lock acquisition and one WAL flush over
// many placements — then flushes the WAL once and answers the waiters.
// No-capacity requests are forwarded to the next shard after the
// critical section.
func (s *Server) commitBatch(sh *shard, batch []*placeReq) {
	s.met.batchSize.Observe(float64(len(batch)))
	results := make([]placeResult, len(batch))
	wrote := false

	nops := int64(0)
	sh.mu.Lock()
	for i, req := range batch {
		results[i] = s.placeLocked(sh, req)
		if results[i].err == nil && !results[i].dup {
			wrote = true
			nops++
		}
	}
	sh.mu.Unlock()

	var flushErr error
	if wrote {
		flushErr = s.wal.flush()
		if flushErr != nil {
			s.walBroken.Store(true)
			s.met.walErrors.Inc()
		} else {
			s.noteOps(nops)
		}
	}

	for i, req := range batch {
		res := results[i]
		if flushErr != nil && res.err == nil && !res.dup {
			// The op may not be durable; do not acknowledge it.
			res = placeResult{err: errWALFailed}
		}
		if errors.Is(res.err, placement.ErrNoCapacity) && req.tried < len(s.shards) {
			s.met.forwards.Inc()
			s.forward(req)
			continue
		}
		req.done <- res
	}
}

// placeLocked handles one request under sh.mu: duplicate check, placer
// decision, cluster commit, WAL append. The append happens inside the
// critical section so the WAL's per-PM op order always equals the apply
// order — the invariant replay relies on.
func (s *Server) placeLocked(sh *shard, req *placeReq) placeResult {
	if e, ok := s.loc.Load(req.vm.ID); ok {
		le := e.(locEntry)
		s.met.placeDups.Inc()
		return placeResult{dup: true, pmID: le.pm, seq: -1}
	}
	pm, assign, err := sh.placer.Place(sh.cluster, req.vm, req.exclude)
	if err != nil {
		return placeResult{err: err}
	}
	opened := !pm.Active()
	var score float64
	if !opened {
		// The winning accommodation score; a PM opened from the unused
		// list scores 0 by convention (no candidate beat it).
		score, _ = sh.placer.ScoreOn(pm, req.vm)
	}
	if err := sh.cluster.Host(pm, req.vm, assign); err != nil {
		return placeResult{err: err}
	}
	s.loc.Store(req.vm.ID, locEntry{shard: sh.idx, pm: pm.ID})
	seq := s.wal.appendOp(record.Op{
		Kind:   record.OpPlace,
		VM:     req.vm.ID,
		VMType: req.vm.Type,
		PM:     pm.ID,
		PMType: pm.Type,
		Assign: toOpAssign(assign),
		Score:  score,
		Opened: opened,
	})
	return placeResult{
		pmID:   pm.ID,
		pmType: pm.Type,
		assign: assign,
		score:  score,
		opened: opened,
		seq:    seq,
	}
}

// forward offers a no-capacity request to the next shard in the ring.
// When every shard has been tried, the request is rejected with
// ErrNoCapacity; a full target queue rejects with errOverloaded rather
// than blocking the batcher.
func (s *Server) forward(req *placeReq) {
	req.tried++
	if req.tried >= len(s.shards) {
		s.met.placeRejs.Inc()
		req.done <- placeResult{err: placement.ErrNoCapacity}
		return
	}
	next := s.shards[(req.home+req.tried)%len(s.shards)]
	select {
	case next.queue <- req:
	default:
		req.done <- placeResult{err: errOverloaded}
	}
}

// submitPlace enqueues a placement on its home shard and waits for the
// result (or shutdown).
func (s *Server) submitPlace(vm *placement.VM, exclude *placement.PM) placeResult {
	req := &placeReq{
		vm:      vm,
		exclude: exclude,
		home:    s.vmShard(vm.ID),
		enq:     time.Now(),
		done:    make(chan placeResult, 1),
	}
	select {
	case s.shards[req.home].queue <- req:
	case <-s.stop:
		return placeResult{err: errShutdown}
	}
	select {
	case res := <-req.done:
		s.met.placeSecs.Observe(time.Since(req.enq).Seconds())
		return res
	case <-s.stop:
		return placeResult{err: errShutdown}
	}
}
