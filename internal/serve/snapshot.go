package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pagerankvm/internal/obs/record"
)

// Snapshot file framing. Like WAL segments, snapshots are named by
// their cut seq — snapshot-<seq, 16 digits>.json — so recovery picks
// the newest by file name and GC reasons about cut points without
// opening files.
const (
	snapFormat  = "prvm-serve-snapshot"
	snapVersion = 1
	snapPrefix  = "snapshot-"
	snapSuffix  = ".json"
)

// snapshotFile is the on-disk snapshot: the full sharded cluster state
// at a seq cut. It captures not just VM->PM membership but the
// used/unused list orders and MaxUsed watermark of every shard, because
// Algorithm 2's scan order (and therefore every post-recovery decision)
// depends on them.
type snapshotFile struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Seq is the cut: the state reflects exactly the ops with seq < Seq.
	Seq int64 `json:"seq"`
	// Shards is the shard count the snapshot was taken under. Recovery
	// refuses a mismatch: list orders are per-shard and do not survive
	// re-sharding (see DESIGN.md §14).
	Shards int         `json:"shards"`
	State  []snapShard `json:"state"`
}

// snapShard is one shard's state.
type snapShard struct {
	// Used is the used list: PM ids in first-use order.
	Used []int `json:"used"`
	// Unused is the unused list: PM ids in current list order.
	Unused []int `json:"unused"`
	// MaxUsed is the shard's high-water mark of simultaneously used PMs.
	MaxUsed int `json:"max_used"`
	// Retired lists PM ids drained out of the inventory, in retirement
	// order. Absent in pre-drain snapshots, which decode to an empty
	// list — no version bump needed.
	Retired []int `json:"retired,omitempty"`
	// PMs holds the hosted VMs of every active PM, in used-list order.
	PMs []snapPM `json:"pms,omitempty"`
}

// snapPM is one active PM's hosted set.
type snapPM struct {
	ID  int      `json:"id"`
	VMs []snapVM `json:"vms"`
}

// snapVM is one hosted VM with its concrete anti-collocation
// assignment.
type snapVM struct {
	ID     int               `json:"id"`
	Type   string            `json:"type"`
	Assign []record.OpAssign `json:"assign"`
}

// snapshotName renders the file name of a snapshot cut at seq.
func snapshotName(seq int64) string {
	return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix)
}

// snapshotSeq parses a snapshot file name back to its cut seq.
func snapshotSeq(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	seq, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// Snapshot cuts a snapshot now: quiesce all shards, stamp the cut seq,
// rotate the WAL to a new segment at the cut, then (off the locks)
// write the snapshot atomically and garbage-collect superseded files.
// Returns nil immediately for in-memory servers. Concurrent calls
// coalesce: a call while another snapshot is in flight is a no-op.
func (s *Server) Snapshot() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	if !s.snapInFlight.CompareAndSwap(false, true) {
		return nil
	}
	defer s.snapInFlight.Store(false)

	// Quiesce: with every shard lock held there are no in-flight
	// mutations, so NextSeq is a consistent cut. Locks are taken in
	// index order (the only place more than one shard lock is held).
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	cut := s.wal.nextSeq()
	snap := s.capture(cut)
	rotErr := s.wal.rotate(cut)
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	if rotErr != nil {
		return rotErr
	}

	if err := writeSnapshot(s.cfg.DataDir, snap); err != nil {
		// The rotation already happened; recovery simply replays across
		// the extra segment boundary. Nothing is lost.
		return err
	}
	s.met.snapshots.Inc()
	s.opsSinceSnap.Store(0)
	s.gcData(cut)
	return nil
}

// capture serializes the sharded state under the already-held shard
// locks. Iteration orders are deterministic: shards by index, PMs by
// list order, VMs by ascending id.
func (s *Server) capture(cut int64) snapshotFile {
	snap := snapshotFile{
		Format:  snapFormat,
		Version: snapVersion,
		Seq:     cut,
		Shards:  len(s.shards),
		State:   make([]snapShard, len(s.shards)),
	}
	for i, sh := range s.shards {
		st := snapShard{MaxUsed: sh.cluster.MaxUsed}
		if len(sh.retired) > 0 {
			st.Retired = append([]int(nil), sh.retired...)
		}
		for _, pm := range sh.cluster.UsedPMs() {
			st.Used = append(st.Used, pm.ID)
			sp := snapPM{ID: pm.ID}
			vms := pm.VMs()
			for _, vmID := range sortedVMIDs(pm) {
				h := vms[vmID]
				sp.VMs = append(sp.VMs, snapVM{
					ID:     vmID,
					Type:   h.VM.Type,
					Assign: toOpAssign(h.Assign),
				})
			}
			st.PMs = append(st.PMs, sp)
		}
		for _, pm := range sh.cluster.UnusedPMs() {
			st.Unused = append(st.Unused, pm.ID)
		}
		snap.State[i] = st
	}
	return snap
}

// writeSnapshot persists snap atomically: write to a temp file in the
// same directory, fsync, rename. A crash mid-write leaves only a .tmp
// file recovery ignores.
func writeSnapshot(dir string, snap snapshotFile) error {
	final := filepath.Join(dir, snapshotName(snap.Seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(snap); err != nil {
		_ = f.Close()      // the encode error is the story
		_ = os.Remove(tmp) // best-effort cleanup of the partial file
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot: %w", err)
	}
	return nil
}

// loadLatestSnapshot returns the newest parseable snapshot in dir, or
// ok=false when none exists. A corrupt newest snapshot fails recovery
// loudly rather than silently falling back to an older cut — an older
// snapshot plus the GC policy could not prove the intervening WAL
// segments still exist.
func loadLatestSnapshot(dir string) (snapshotFile, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return snapshotFile{}, false, fmt.Errorf("serve: load snapshot: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := snapshotSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return snapshotFile{}, false, nil
	}
	sort.Strings(names)
	newest := names[len(names)-1]
	data, err := os.ReadFile(filepath.Join(dir, newest))
	if err != nil {
		return snapshotFile{}, false, fmt.Errorf("serve: load snapshot %s: %w", newest, err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return snapshotFile{}, false, fmt.Errorf("serve: load snapshot %s: %w", newest, err)
	}
	if snap.Format != snapFormat {
		return snapshotFile{}, false, fmt.Errorf("serve: load snapshot %s: format %q", newest, snap.Format)
	}
	if snap.Version != snapVersion {
		return snapshotFile{}, false, fmt.Errorf("serve: load snapshot %s: version %d (reader speaks %d)", newest, snap.Version, snapVersion)
	}
	return snap, true, nil
}

// gcData removes files superseded by a successful snapshot at cut:
// WAL segments whose start seq is before the cut (their ops are all
// reflected in the snapshot) and older snapshots. Best-effort — a
// failed remove leaves harmless extra files.
func (s *Server) gcData(cut int64) {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := segmentStart(name); ok && seq < cut {
			_ = os.Remove(filepath.Join(s.cfg.DataDir, name)) // best-effort GC
		}
		if seq, ok := snapshotSeq(name); ok && seq < cut {
			_ = os.Remove(filepath.Join(s.cfg.DataDir, name)) // best-effort GC
		}
	}
}

// recover rebuilds state from dir: apply the newest snapshot (when
// present), then replay every WAL op at or after the snapshot cut, in
// seq order. Only the final segment may end in a torn line.
func (s *Server) recover(dir string) (RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return RecoveryInfo{}, fmt.Errorf("serve: recover: %w", err)
	}
	var info RecoveryInfo

	snap, haveSnap, err := loadLatestSnapshot(dir)
	if err != nil {
		return RecoveryInfo{}, err
	}
	if haveSnap {
		if err := s.applySnapshot(snap); err != nil {
			return RecoveryInfo{}, err
		}
		info.SnapshotSeq = snap.Seq
	}

	segs, err := listSegments(dir)
	if err != nil {
		return RecoveryInfo{}, err
	}
	maxSeq := snap.Seq - 1 // highest applied seq; snapshot covers < snap.Seq
	for i, name := range segs {
		last := i == len(segs)-1
		truncated, err := readSegmentOps(filepath.Join(dir, name), last, func(op record.Op) error {
			if op.Seq < snap.Seq {
				// Pre-cut ops are already in the snapshot. (Only the
				// segment containing the cut can hold them; earlier
				// segments were GC'd or are fully pre-cut and skipped
				// op by op here.)
				return nil
			}
			if op.Seq != maxSeq+1 {
				return fmt.Errorf("serve: recover: seq gap: %d after %d (segment %s)", op.Seq, maxSeq, name)
			}
			if err := s.applyOp(op); err != nil {
				return err
			}
			maxSeq = op.Seq
			info.ReplayedOps++
			return nil
		})
		if err != nil {
			return RecoveryInfo{}, err
		}
		if truncated {
			info.Truncated = true
		}
	}

	info.NextSeq = maxSeq + 1
	if info.NextSeq < snap.Seq {
		info.NextSeq = snap.Seq
	}
	info.VMs = s.numVMs()
	return info, nil
}

// applySnapshot replays a snapshot into the (empty) sharded state:
// host every VM in used-list order — recreating the used lists — then
// restore the unused-list orders and watermarks via Cluster.Reorder.
func (s *Server) applySnapshot(snap snapshotFile) error {
	if snap.Shards != len(s.shards) {
		return fmt.Errorf("serve: snapshot has %d shards, server configured for %d (re-sharding requires a fresh data dir)", snap.Shards, len(s.shards))
	}
	for i, st := range snap.State {
		sh := s.shards[i]
		// Retire first: retired PMs are out of the inventory, so the
		// used/unused Reorder below must not see them.
		for _, pmID := range st.Retired {
			pm, ok := sh.pms[pmID]
			if !ok {
				return fmt.Errorf("serve: snapshot retired pm %d not in shard %d inventory", pmID, i)
			}
			if err := sh.cluster.Retire(pm); err != nil {
				return fmt.Errorf("serve: snapshot retired pm %d: %w", pmID, err)
			}
			delete(sh.pms, pmID)
			sh.retired = append(sh.retired, pmID)
		}
		for _, sp := range st.PMs {
			pm, ok := sh.pms[sp.ID]
			if !ok {
				return fmt.Errorf("serve: snapshot pm %d not in shard %d inventory", sp.ID, i)
			}
			for _, sv := range sp.VMs {
				vm, err := s.cfg.NewVM(sv.ID, sv.Type)
				if err != nil {
					return fmt.Errorf("serve: snapshot vm %d: %w", sv.ID, err)
				}
				if err := sh.cluster.Host(pm, vm, fromOpAssign(sv.Assign)); err != nil {
					return fmt.Errorf("serve: snapshot vm %d: %w", sv.ID, err)
				}
				s.loc.Store(sv.ID, locEntry{shard: i, pm: sp.ID})
			}
		}
		if err := sh.cluster.Reorder(st.Used, st.Unused); err != nil {
			return fmt.Errorf("serve: snapshot shard %d: %w", i, err)
		}
		sh.cluster.MaxUsed = st.MaxUsed
	}
	return nil
}
