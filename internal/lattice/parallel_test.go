package lattice

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pagerankvm/internal/resource"
)

// randomSetup draws a small random shape and VM-type set (seeded; the
// detrand analyzer forbids the global source).
func randomSetup(rng *rand.Rand) (*resource.Shape, []resource.VMType) {
	groups := []resource.Group{
		{Name: "cpu", Dims: 1 + rng.Intn(3), Cap: 2 + rng.Intn(3)},
	}
	if rng.Intn(2) == 0 {
		groups = append(groups, resource.Group{Name: "mem", Dims: 1 + rng.Intn(2), Cap: 2 + rng.Intn(3)})
	}
	shape := resource.MustShape(groups...)
	var types []resource.VMType
	for k := 0; k < 1+rng.Intn(3); k++ {
		var demands []resource.Demand
		for _, g := range groups {
			if rng.Intn(3) == 0 && len(demands) > 0 {
				continue
			}
			units := make([]int, 1+rng.Intn(g.Dims))
			for u := range units {
				units[u] = 1 + rng.Intn(g.Cap)
			}
			demands = append(demands, resource.Demand{Group: g.Name, Units: units})
		}
		types = append(types, resource.NewVMType(string(rune('a'+k)), demands...))
	}
	return shape, types
}

// TestWireParallelDeterministic is the tentpole's determinism
// contract: for any worker count, every arena of the space — union
// CSR, typed successor lists, typed assignments — must be byte-for-
// byte the output of the serial build.
func TestWireParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		shape, types := randomSetup(rng)
		ref, err := NewSpace(shape, types, Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: serial build: %v", trial, err)
		}
		for _, workers := range []int{2, 3, 7, 0} {
			got, err := NewSpace(shape, types, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got.succOff, ref.succOff) || !reflect.DeepEqual(got.succ, ref.succ) {
				t.Fatalf("trial %d: workers=%d: union CSR differs from serial build", trial, workers)
			}
			if !reflect.DeepEqual(got.tOff, ref.tOff) || !reflect.DeepEqual(got.tSucc, ref.tSucc) ||
				!reflect.DeepEqual(got.tAssign, ref.tAssign) {
				t.Fatalf("trial %d: workers=%d: typed arenas differ from serial build", trial, workers)
			}
		}
	}
}

// TestWireParallelRace exercises concurrent wiring under the race
// detector (make race runs this package with -race).
func TestWireParallelRace(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[2]", resource.Demand{Group: "cpu", Units: []int{2}}),
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := NewSpace(shape, types, Options{Workers: 8}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestTypedSuccessors checks the labeled lists against a direct
// enumeration: for every (node, type), the typed successors must be
// exactly resource.Placements in order, and each stored assignment
// must transform the node's profile into the successor's profile.
func TestTypedSuccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		shape, types := randomSetup(rng)
		s, err := NewSpace(shape, types, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !s.HasTyped() {
			t.Fatalf("trial %d: typed arenas not built for a small lattice", trial)
		}
		for i := 0; i < s.Len(); i++ {
			node := s.Node(i)
			union := make(map[int32]bool)
			for ty := 0; ty < s.NumTypes(); ty++ {
				pls := resource.Placements(shape, node, s.TypeAt(ty))
				succ := s.TypedSucc(i, ty)
				assigns := s.TypedAssign(i, ty)
				if len(succ) != len(pls) {
					t.Fatalf("trial %d node %v type %s: %d typed successors, want %d",
						trial, node, s.TypeAt(ty).Name, len(succ), len(pls))
				}
				for k, pl := range pls {
					if want := s.IndexKey(pl.Key); int(succ[k]) != want {
						t.Fatalf("trial %d node %v type %s: successor %d = node %d, want %d",
							trial, node, s.TypeAt(ty).Name, k, succ[k], want)
					}
					got := node.Add(assigns[k].Vec(shape))
					if !shape.Canon(got).Equal(s.Node(int(succ[k]))) {
						t.Fatalf("trial %d node %v type %s: assignment %v does not yield successor %v",
							trial, node, s.TypeAt(ty).Name, assigns[k], s.Node(int(succ[k])))
					}
					union[succ[k]] = true
				}
			}
			if got := len(s.Succ(i)); got != len(union) {
				t.Fatalf("trial %d node %v: union CSR has %d successors, typed union has %d",
					trial, node, got, len(union))
			}
		}
	}
}
