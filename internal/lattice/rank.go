package lattice

// Arithmetic node indexing. Node ids are lexicographic ranks of the
// canonical profiles, and within one group a canonical profile is a
// non-decreasing sequence over [0, cap] — a combinatorial object whose
// rank is a handful of table lookups. Replacing the string-keyed index
// map with this ranking removes one string allocation plus one hash
// probe per lookup and, during wiring, per enumerated placement; it is
// what lets the arena wire path and the PM node-id resolution run
// allocation-free.

import "pagerankvm/internal/resource"

// groupRank ranks one group's canonical (non-decreasing) value
// sequences in lexicographic order.
type groupRank struct {
	lo, hi int // dimension range [lo, hi) in the joint shape
	dims   int // hi - lo
	capU   int // per-dimension capacity
	count  int // number of canonical sequences: C(dims+cap, cap)
	radix  int // product of the counts of all later groups

	// pref[L*(capU+1)+w] is the number of non-decreasing sequences of
	// length L whose first value is below w (given values in [0, capU]):
	// sum over x < w of C(L-1+capU-x, capU-x)... stored for L = suffix
	// length, so rank accumulation is two lookups per dimension.
	pref []int
}

// shapeRank is the per-shape ranking table set, one groupRank per
// group, built once in enumerate.
type shapeRank struct {
	groups []groupRank
}

// binom returns C(n+k, k) by the exact increasing-factor product
// (after step i the accumulator is C(n+i, i), so every division is
// exact). The lattice size was bounded by MaxNodes before this runs,
// so the products stay well inside int range.
func binom(n, k int) int {
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n + i) / i
	}
	return r
}

// newShapeRank precomputes the ranking tables of shape.
func newShapeRank(shape *resource.Shape) shapeRank {
	ng := shape.NumGroups()
	rk := shapeRank{groups: make([]groupRank, ng)}
	for gi := 0; gi < ng; gi++ {
		g := shape.Group(gi)
		lo, hi := shape.GroupRange(gi)
		gr := groupRank{lo: lo, hi: hi, dims: g.Dims, capU: g.Cap}
		gr.count = binom(g.Dims, g.Cap)
		stride := g.Cap + 1
		gr.pref = make([]int, g.Dims*stride)
		for L := 0; L < g.Dims; L++ {
			row := gr.pref[L*stride : (L+1)*stride]
			// row[w] = sum over x in [0, w) of the number of
			// non-decreasing length-L sequences with values in [x, cap].
			sum := 0
			for w := 0; w < stride; w++ {
				row[w] = sum
				sum += binom(L, g.Cap-w)
			}
		}
		rk.groups[gi] = gr
	}
	// radix[g] = product of counts of groups after g.
	radix := 1
	for gi := ng - 1; gi >= 0; gi-- {
		rk.groups[gi].radix = radix
		radix *= rk.groups[gi].count
	}
	return rk
}

// rankSorted returns the lexicographic rank of an already-sorted
// (non-decreasing) group value sequence. Values must be in [0, capU].
//
//prvm:hotpath
func (g *groupRank) rankSorted(v []int) int {
	r, prev := 0, 0
	stride := g.capU + 1
	for k, val := range v {
		row := g.pref[(len(v)-1-k)*stride : (len(v)-k)*stride]
		r += row[val] - row[prev]
		prev = val
	}
	return r
}

// nodeRank extracts group gi's rank from a joint node id.
//
//prvm:hotpath
func (rk *shapeRank) nodeRank(id, gi int) int {
	g := &rk.groups[gi]
	return (id / g.radix) % g.count
}

// insertionSort sorts a small int slice ascending — group widths are
// single digits, where insertion sort beats sort.Ints and, unlike it,
// does not box its argument into an interface.
//
//prvm:hotpath
func insertionSort(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
