// Package lattice builds the profile graph of the paper's Algorithm 1:
// the nodes are every canonical resource-usage profile a PM shape can
// take (the full box lattice [0..cap]^dims, collapsed by within-group
// symmetry), and the edges connect a profile to the profiles obtained
// by accommodating one VM from the VM-type set, in any feasible
// permutation of its anti-collocated demands.
//
// Adding a VM strictly increases total used units, so the graph is a
// DAG layered by total usage.
//
// The successor graph is stored in CSR form (one offsets arena, one
// edge arena) so the PageRank/absorption iteration streams it without
// pointer chasing, and — alongside the union graph — the space keeps
// per-VM-type labeled successor lists with one representative
// anti-collocation assignment per edge. The labeled lists are what
// turn Algorithm 2's candidate scoring into an O(1) table lookup (see
// internal/ranktable and DESIGN.md "Indexing & concurrency model").
package lattice

import (
	"fmt"
	"runtime"
	"sync"

	"pagerankvm/internal/resource"
)

// Space is the enumerated profile graph for one PM shape and one VM
// type set. It is immutable after New and safe for concurrent readers.
type Space struct {
	shape *resource.Shape
	nodes []resource.Vec // canonical profiles, lexicographic order
	index map[string]int // canonical key -> node id

	// Union successor graph in CSR form: the successors of node i are
	// succ[succOff[i]:succOff[i+1]], deduped across VM types.
	succOff []int32 // len(nodes)+1
	succ    []int32 // edge arena

	// Per-VM-type labeled successors: for node i and active type t the
	// reachable profiles are tSucc[tOff[i*T+t]:tOff[i*T+t+1]] in
	// enumeration order, with tAssign holding the representative
	// anti-collocation assignment (in canonical coordinates) of each.
	// nil when the lattice is too large (see maxTypedEntries).
	types   []resource.VMType // active types, in wiring order
	typeIdx map[string]int    // type name -> index into types
	tOff    []int32           // len(nodes)*len(types)+1
	tSucc   []int32
	tAssign []resource.Assignment
}

// MaxNodes bounds the lattice size New is willing to enumerate. The
// joint lattice of a large PM type explodes combinatorially; callers
// should fall back to the factored ranker (see internal/ranktable)
// above this bound.
const MaxNodes = 4 << 20

// maxTypedEntries bounds the per-type labeled successor arenas: above
// len(nodes)*len(types) entries the typed lists (and their assignment
// arena) are skipped and only the union CSR is built, keeping memory
// proportional to the graph itself. Rankers then fall back to the
// string-key scoring path.
const maxTypedEntries = 8 << 20

// Options tunes lattice construction.
type Options struct {
	// Workers caps the number of goroutines wiring successor edges.
	// Zero selects GOMAXPROCS. The output is deterministic for any
	// worker count: workers fill disjoint, contiguous node ranges that
	// are stitched in node order.
	Workers int
}

// New enumerates the canonical profile lattice of shape and wires the
// successor edges induced by the VM types, using the default Options.
func New(shape *resource.Shape, vmTypes []resource.VMType) (*Space, error) {
	return NewSpace(shape, vmTypes, Options{})
}

// NewSpace is New with explicit Options. Every VM type must validate
// against the shape. Types with no demand on any of the shape's groups
// are skipped (they would only contribute self-loops).
func NewSpace(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Space, error) {
	if n := shape.NumProfiles(); n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("lattice: profile space has %d canonical nodes, above limit %d (use the factored ranker)", n, MaxNodes)
	}
	var active []resource.VMType
	for _, vt := range vmTypes {
		if err := vt.Validate(shape); err != nil {
			return nil, err
		}
		touches := false
		for _, d := range vt.Demands {
			if shape.GroupIndex(d.Group) >= 0 && len(d.Units) > 0 {
				touches = true
				break
			}
		}
		if touches {
			active = append(active, vt)
		}
	}

	s := &Space{shape: shape}
	s.enumerate()
	s.wire(active, opts.Workers)
	return s, nil
}

// enumerate generates all canonical profiles (non-decreasing within
// each group) in lexicographic order; node ids are lexicographic
// ranks. Layer order is not required anywhere: traversals rely only on
// the DAG property (every edge strictly increases total usage).
func (s *Space) enumerate() {
	dims := s.shape.NumDims()
	cur := make(resource.Vec, dims)
	var nodes []resource.Vec

	// Per-dimension generation with the non-decreasing constraint
	// inside each group.
	var gen func(gi, di int)
	gen = func(gi, di int) {
		if gi == s.shape.NumGroups() {
			nodes = append(nodes, cur.Clone())
			return
		}
		lo, hi := s.shape.GroupRange(gi)
		g := s.shape.Group(gi)
		dim := lo + di
		if dim == hi {
			gen(gi+1, 0)
			return
		}
		min := 0
		if di > 0 {
			min = cur[dim-1]
		}
		for v := min; v <= g.Cap; v++ {
			cur[dim] = v
			gen(gi, di+1)
		}
		cur[dim] = 0
	}
	gen(0, 0)

	s.nodes = nodes
	s.index = make(map[string]int, len(nodes))
	for i, n := range nodes {
		s.index[s.shape.KeyCanon(n)] = i
	}
}

// wireChunk holds one worker's output: successor counts and edge
// buffers for a contiguous node range, concatenated in node order by
// the stitch pass.
type wireChunk struct {
	succ    []int32 // union edges, deduped, per node in range
	succCnt []int32 // union out-degree per node in range
	tSucc   []int32 // typed edges (enumeration order) per (node, type)
	tAssign []resource.Assignment
	tCnt    []int32 // typed out-degree per (node, type)
}

// wire computes the union CSR and the per-type labeled successor
// arenas. Node ranges are wired in parallel; each worker writes only
// its own chunk, so the hot path takes no locks and the stitched
// output is identical for every worker count.
func (s *Space) wire(vmTypes []resource.VMType, workers int) {
	n := len(s.nodes)
	s.types = vmTypes
	s.typeIdx = make(map[string]int, len(vmTypes))
	for t, vt := range vmTypes {
		s.typeIdx[vt.Name] = t
	}
	T := len(vmTypes)
	typed := T > 0 && n <= maxTypedEntries/T

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunkSize := (n + workers - 1) / workers
	chunks := make([]wireChunk, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunkSize, (w+1)*chunkSize
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c *wireChunk, lo, hi int) {
			defer wg.Done()
			s.wireRange(c, vmTypes, lo, hi, typed)
		}(&chunks[w], lo, hi)
	}
	wg.Wait()

	// Stitch: chunk order is node order, so the arenas concatenate and
	// the offsets are running sums of the per-node counts.
	totalE, totalT := 0, 0
	for i := range chunks {
		totalE += len(chunks[i].succ)
		totalT += len(chunks[i].tSucc)
	}
	s.succOff = make([]int32, n+1)
	s.succ = make([]int32, 0, totalE)
	if typed {
		s.tOff = make([]int32, n*T+1)
		s.tSucc = make([]int32, 0, totalT)
		s.tAssign = make([]resource.Assignment, 0, totalT)
	}
	ni, ti := 0, 0
	for ci := range chunks {
		c := &chunks[ci]
		for _, cnt := range c.succCnt {
			s.succOff[ni+1] = s.succOff[ni] + cnt
			ni++
		}
		s.succ = append(s.succ, c.succ...)
		if typed {
			for _, cnt := range c.tCnt {
				s.tOff[ti+1] = s.tOff[ti] + cnt
				ti++
			}
			s.tSucc = append(s.tSucc, c.tSucc...)
			s.tAssign = append(s.tAssign, c.tAssign...)
		}
	}
}

// wireRange wires nodes [lo, hi) into c. Union successors are deduped
// by a linear scan over the node's (small) out-list — no per-node map
// allocation — preserving first-seen order across types.
func (s *Space) wireRange(c *wireChunk, vmTypes []resource.VMType, lo, hi int, typed bool) {
	c.succCnt = make([]int32, 0, hi-lo)
	if typed {
		c.tCnt = make([]int32, 0, (hi-lo)*len(vmTypes))
	}
	for i := lo; i < hi; i++ {
		node := s.nodes[i]
		start := len(c.succ)
		for _, vt := range vmTypes {
			pls := resource.Placements(s.shape, node, vt)
			for _, pl := range pls {
				j, ok := s.index[pl.Key]
				if !ok {
					// Placements stays within capacity, so the result
					// is always in the lattice.
					panic(fmt.Sprintf("lattice: successor %v not enumerated", pl.Result))
				}
				if typed {
					c.tSucc = append(c.tSucc, int32(j))
					c.tAssign = append(c.tAssign, pl.Assign)
				}
				dup := false
				for _, e := range c.succ[start:] {
					if e == int32(j) {
						dup = true
						break
					}
				}
				if !dup {
					c.succ = append(c.succ, int32(j))
				}
			}
			if typed {
				c.tCnt = append(c.tCnt, int32(len(pls)))
			}
		}
		c.succCnt = append(c.succCnt, int32(len(c.succ)-start))
	}
}

// Shape returns the PM shape of the space.
func (s *Space) Shape() *resource.Shape { return s.shape }

// Len returns the number of canonical profiles.
func (s *Space) Len() int { return len(s.nodes) }

// Edges returns the total number of edges in the union graph.
func (s *Space) Edges() int { return len(s.succ) }

// Node returns the canonical profile with id i. The returned vector
// must not be modified.
func (s *Space) Node(i int) resource.Vec { return s.nodes[i] }

// Succ returns the successor node ids of node i. The returned slice
// aliases the CSR arena and must not be modified.
func (s *Space) Succ(i int) []int32 { return s.succ[s.succOff[i]:s.succOff[i+1]] }

// SuccOffsets returns the CSR offsets arena (length Len()+1). Read-only.
func (s *Space) SuccOffsets() []int32 { return s.succOff }

// SuccArena returns the CSR edge arena. Read-only.
func (s *Space) SuccArena() []int32 { return s.succ }

// NumTypes returns the number of active (wired) VM types.
func (s *Space) NumTypes() int { return len(s.types) }

// TypeAt returns the active VM type with index t.
func (s *Space) TypeAt(t int) resource.VMType { return s.types[t] }

// TypeIndex returns the index of the named active VM type, or -1.
func (s *Space) TypeIndex(name string) int {
	if t, ok := s.typeIdx[name]; ok {
		return t
	}
	return -1
}

// HasTyped reports whether the per-type labeled successor arenas were
// built (they are skipped above maxTypedEntries).
func (s *Space) HasTyped() bool { return s.tOff != nil }

// TypedSucc returns the successor ids reachable from node i by placing
// one VM of active type t, in enumeration order. The slice aliases the
// arena and must not be modified.
func (s *Space) TypedSucc(i, t int) []int32 {
	k := i*len(s.types) + t
	return s.tSucc[s.tOff[k]:s.tOff[k+1]]
}

// TypedAssign returns the representative anti-collocation assignments
// parallel to TypedSucc(i, t). Assignments are in canonical
// coordinates (the node's profile is sorted within each group) and
// must not be modified.
func (s *Space) TypedAssign(i, t int) []resource.Assignment {
	k := i*len(s.types) + t
	return s.tAssign[s.tOff[k]:s.tOff[k+1]]
}

// Index returns the node id of a (not necessarily canonical) profile,
// or -1 when the profile is not in the lattice.
func (s *Space) Index(v resource.Vec) int {
	if i, ok := s.index[s.shape.Key(v)]; ok {
		return i
	}
	return -1
}

// IndexKey returns the node id for a canonical key, or -1.
func (s *Space) IndexKey(key string) int {
	if i, ok := s.index[key]; ok {
		return i
	}
	return -1
}

// Utils returns the aggregate utilization of every node, indexed by
// node id.
func (s *Space) Utils() []float64 {
	out := make([]float64, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = s.shape.Util(n)
	}
	return out
}

// Terminals returns the ids of nodes with no outgoing edges (profiles
// that cannot accommodate any VM from the set).
func (s *Space) Terminals() []int {
	var out []int
	for i := range s.nodes {
		if s.succOff[i] == s.succOff[i+1] {
			out = append(out, i)
		}
	}
	return out
}
