// Package lattice builds the profile graph of the paper's Algorithm 1:
// the nodes are every canonical resource-usage profile a PM shape can
// take (the full box lattice [0..cap]^dims, collapsed by within-group
// symmetry), and the edges connect a profile to the profiles obtained
// by accommodating one VM from the VM-type set, in any feasible
// permutation of its anti-collocated demands.
//
// Adding a VM strictly increases total used units, so the graph is a
// DAG layered by total usage.
package lattice

import (
	"fmt"

	"pagerankvm/internal/resource"
)

// Space is the enumerated profile graph for one PM shape and one VM
// type set. It is immutable after New.
type Space struct {
	shape *resource.Shape
	nodes []resource.Vec // canonical profiles, layer order (by Sum)
	index map[string]int // canonical key -> node id
	succ  [][]int32      // deduped successor node ids per node
	edges int
}

// MaxNodes bounds the lattice size New is willing to enumerate. The
// joint lattice of a large PM type explodes combinatorially; callers
// should fall back to the factored ranker (see internal/ranktable)
// above this bound.
const MaxNodes = 4 << 20

// New enumerates the canonical profile lattice of shape and wires the
// successor edges induced by the VM types. Every VM type must validate
// against the shape. Types with no demand on any of the shape's groups
// are skipped (they would only contribute self-loops).
func New(shape *resource.Shape, vmTypes []resource.VMType) (*Space, error) {
	if n := shape.NumProfiles(); n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("lattice: profile space has %d canonical nodes, above limit %d (use the factored ranker)", n, MaxNodes)
	}
	var active []resource.VMType
	for _, vt := range vmTypes {
		if err := vt.Validate(shape); err != nil {
			return nil, err
		}
		touches := false
		for _, d := range vt.Demands {
			if shape.GroupIndex(d.Group) >= 0 && len(d.Units) > 0 {
				touches = true
				break
			}
		}
		if touches {
			active = append(active, vt)
		}
	}

	s := &Space{shape: shape}
	s.enumerate()
	s.wire(active)
	return s, nil
}

// enumerate generates all canonical profiles (non-decreasing within
// each group) in layer order is not required; we generate in
// lexicographic order and rely on the DAG property for traversals.
func (s *Space) enumerate() {
	dims := s.shape.NumDims()
	cur := make(resource.Vec, dims)
	var nodes []resource.Vec

	// Per-dimension generation with the non-decreasing constraint
	// inside each group.
	var gen func(gi, di int)
	gen = func(gi, di int) {
		if gi == s.shape.NumGroups() {
			nodes = append(nodes, cur.Clone())
			return
		}
		lo, hi := s.shape.GroupRange(gi)
		g := s.shape.Group(gi)
		dim := lo + di
		if dim == hi {
			gen(gi+1, 0)
			return
		}
		min := 0
		if di > 0 {
			min = cur[dim-1]
		}
		for v := min; v <= g.Cap; v++ {
			cur[dim] = v
			gen(gi, di+1)
		}
		cur[dim] = 0
	}
	gen(0, 0)

	s.nodes = nodes
	s.index = make(map[string]int, len(nodes))
	for i, n := range nodes {
		s.index[s.shape.KeyCanon(n)] = i
	}
}

// wire computes the deduped successor sets.
func (s *Space) wire(vmTypes []resource.VMType) {
	s.succ = make([][]int32, len(s.nodes))
	for i, node := range s.nodes {
		var out []int32
		seen := make(map[int32]bool)
		for _, vt := range vmTypes {
			for _, pl := range resource.Placements(s.shape, node, vt) {
				j, ok := s.index[pl.Key]
				if !ok {
					// Placements stays within capacity, so the result
					// is always in the lattice.
					panic(fmt.Sprintf("lattice: successor %v not enumerated", pl.Result))
				}
				if !seen[int32(j)] {
					seen[int32(j)] = true
					out = append(out, int32(j))
				}
			}
		}
		s.succ[i] = out
		s.edges += len(out)
	}
}

// Shape returns the PM shape of the space.
func (s *Space) Shape() *resource.Shape { return s.shape }

// Len returns the number of canonical profiles.
func (s *Space) Len() int { return len(s.nodes) }

// Edges returns the total number of edges.
func (s *Space) Edges() int { return s.edges }

// Node returns the canonical profile with id i. The returned vector
// must not be modified.
func (s *Space) Node(i int) resource.Vec { return s.nodes[i] }

// Succ returns the successor node ids of node i. The returned slice
// must not be modified.
func (s *Space) Succ(i int) []int32 { return s.succ[i] }

// Index returns the node id of a (not necessarily canonical) profile,
// or -1 when the profile is not in the lattice.
func (s *Space) Index(v resource.Vec) int {
	if i, ok := s.index[s.shape.Key(v)]; ok {
		return i
	}
	return -1
}

// IndexKey returns the node id for a canonical key, or -1.
func (s *Space) IndexKey(key string) int {
	if i, ok := s.index[key]; ok {
		return i
	}
	return -1
}

// Utils returns the aggregate utilization of every node, indexed by
// node id.
func (s *Space) Utils() []float64 {
	out := make([]float64, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = s.shape.Util(n)
	}
	return out
}

// Terminals returns the ids of nodes with no outgoing edges (profiles
// that cannot accommodate any VM from the set).
func (s *Space) Terminals() []int {
	var out []int
	for i := range s.nodes {
		if len(s.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}
