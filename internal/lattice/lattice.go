// Package lattice builds the profile graph of the paper's Algorithm 1:
// the nodes are every canonical resource-usage profile a PM shape can
// take (the full box lattice [0..cap]^dims, collapsed by within-group
// symmetry), and the edges connect a profile to the profiles obtained
// by accommodating one VM from the VM-type set, in any feasible
// permutation of its anti-collocated demands.
//
// Adding a VM strictly increases total used units, so the graph is a
// DAG layered by total usage.
//
// The successor graph is stored in CSR form (one offsets arena, one
// edge arena) so the PageRank/absorption iteration streams it without
// pointer chasing, and — alongside the union graph — the space keeps
// per-VM-type labeled successor lists with one representative
// anti-collocation assignment per edge. The labeled lists are what
// turn Algorithm 2's candidate scoring into an O(1) table lookup (see
// internal/ranktable and DESIGN.md "Indexing & concurrency model").
//
// Construction is arena-backed (DESIGN.md §13): node profiles live in
// one flat int arena, node ids are computed arithmetically from the
// per-group ranking tables in rank.go (no string keys, no index map),
// and the wire phase enumerates placements in place with pooled
// scratch — per-build allocations are a handful of exact-size arenas
// instead of one per node/edge/placement.
package lattice

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pagerankvm/internal/resource"
)

// Space is the enumerated profile graph for one PM shape and one VM
// type set. It is immutable after New and safe for concurrent readers.
type Space struct {
	shape *resource.Shape
	rank  shapeRank
	dims  int
	n     int
	vals  []int // node arena: profile i is vals[i*dims : (i+1)*dims]

	// Union successor graph in CSR form: the successors of node i are
	// succ[succOff[i]:succOff[i+1]], deduped across VM types.
	succOff []int32 // n+1
	succ    []int32 // edge arena

	// Per-VM-type labeled successors: for node i and active type t the
	// reachable profiles are tSucc[tOff[i*T+t]:tOff[i*T+t+1]] in
	// enumeration order, with tAssign holding the representative
	// anti-collocation assignment (in canonical coordinates) of each.
	// nil when the lattice is too large (see maxTypedEntries).
	types   []resource.VMType // active types, in wiring order
	typeIdx map[string]int    // type name -> index into types
	tOff    []int32           // n*len(types)+1
	tSucc   []int32
	tAssign []resource.Assignment
	// assignUnits is the flat backing arena every tAssign slice points
	// into: edge assignments of one type all have the same length, so
	// the headers are reconstructed with fixed per-type strides.
	assignUnits []resource.DimUnits
}

// MaxNodes bounds the lattice size New is willing to enumerate. The
// joint lattice of a large PM type explodes combinatorially; callers
// should fall back to the factored ranker (see internal/ranktable)
// above this bound.
const MaxNodes = 4 << 20

// maxTypedEntries bounds the per-type labeled successor arenas: above
// len(nodes)*len(types) entries the typed lists (and their assignment
// arena) are skipped and only the union CSR is built, keeping memory
// proportional to the graph itself. Rankers then fall back to the
// string-key scoring path.
const maxTypedEntries = 8 << 20

// chunksPerWorker oversubscribes the wire phase: low-usage nodes have
// far more feasible placements than nearly-full ones, so equal node
// ranges are unequal work. Several chunks per worker let fast workers
// steal the tail instead of idling behind the heaviest range.
const chunksPerWorker = 8

// Options tunes lattice construction.
type Options struct {
	// Workers caps the number of goroutines wiring successor edges.
	// Zero selects GOMAXPROCS. The output is deterministic for any
	// worker count: chunks cover disjoint, contiguous node ranges and
	// are stitched in node order, and each node's successor list
	// depends only on the node itself.
	Workers int
}

// New enumerates the canonical profile lattice of shape and wires the
// successor edges induced by the VM types, using the default Options.
func New(shape *resource.Shape, vmTypes []resource.VMType) (*Space, error) {
	return NewSpace(shape, vmTypes, Options{})
}

// NewSpace is New with explicit Options. Every VM type must validate
// against the shape. Types with no demand on any of the shape's groups
// are skipped (they would only contribute self-loops).
func NewSpace(shape *resource.Shape, vmTypes []resource.VMType, opts Options) (*Space, error) {
	np := shape.NumProfiles()
	if np < 0 || np > MaxNodes {
		return nil, fmt.Errorf("lattice: profile space has %d canonical nodes, above limit %d (use the factored ranker)", np, MaxNodes)
	}
	var active []resource.VMType
	for _, vt := range vmTypes {
		if err := vt.Validate(shape); err != nil {
			return nil, err
		}
		touches := false
		for _, d := range vt.Demands {
			if shape.GroupIndex(d.Group) >= 0 && len(d.Units) > 0 {
				touches = true
				break
			}
		}
		if touches {
			active = append(active, vt)
		}
	}

	s := &Space{shape: shape, dims: shape.NumDims(), n: int(np)}
	s.rank = newShapeRank(shape)
	s.enumerate()
	s.wire(active, opts.Workers)
	return s, nil
}

// enumerate writes all canonical profiles (non-decreasing within each
// group) into the node arena in lexicographic order; node ids are
// lexicographic ranks, which is exactly what the rank.go tables
// compute. Generation is an odometer: increment the last incrementable
// dimension, raise the rest of its group to the new value, zero all
// later groups.
func (s *Space) enumerate() {
	dims, n := s.dims, s.n
	s.vals = make([]int, n*dims)
	dimEnd := make([]int, dims) // end of the dimension's group
	dimCap := make([]int, dims)
	for gi := range s.rank.groups {
		g := &s.rank.groups[gi]
		for d := g.lo; d < g.hi; d++ {
			dimEnd[d] = g.hi
			dimCap[d] = g.capU
		}
	}
	prev := s.vals[:dims] // node 0 is all-zero
	for i := 1; i < n; i++ {
		cur := s.vals[i*dims : (i+1)*dims]
		copy(cur, prev)
		for d := dims - 1; d >= 0; d-- {
			if cur[d] < dimCap[d] {
				cur[d]++
				v := cur[d]
				for e := d + 1; e < dimEnd[d]; e++ {
					cur[e] = v
				}
				for e := dimEnd[d]; e < dims; e++ {
					cur[e] = 0
				}
				break
			}
		}
		prev = cur
	}
}

// typePlan is the per-VM-type wiring plan shared read-only by every
// worker: demand ranges resolved against the shape, the distinct
// groups the type touches (only those contribute to the successor id
// delta), and the fixed assignment length of every placement.
type typePlan struct {
	demands []demandPlan
	touched []int // distinct group indices, in demand order
	stride  int   // assignment entries per placement: sum of unit counts
	dead    bool  // a demand names a group absent from the shape
}

type demandPlan struct {
	units       []int // per-unit amounts (aliases the VMType, read-only)
	lo, hi, cap int
}

func buildTypePlans(shape *resource.Shape, vmTypes []resource.VMType) []typePlan {
	plans := make([]typePlan, len(vmTypes))
	for t, vt := range vmTypes {
		p := &plans[t]
		for _, d := range vt.Demands {
			gi := shape.GroupIndex(d.Group)
			if gi < 0 {
				// NewSpace validated the type, so this only happens for
				// literal-constructed types fed to wire in tests; such a
				// demand makes every placement infeasible.
				*p = typePlan{dead: true}
				break
			}
			lo, hi := shape.GroupRange(gi)
			p.demands = append(p.demands, demandPlan{units: d.Units, lo: lo, hi: hi, cap: shape.Group(gi).Cap})
			known := false
			for _, k := range p.touched {
				if k == gi {
					known = true
					break
				}
			}
			if !known {
				p.touched = append(p.touched, gi)
			}
			p.stride += len(d.Units)
		}
	}
	return plans
}

// wireBufs is one chunk's growable output plus the enumeration
// scratch, pooled across chunks and across builds: after warmup a
// build's only allocations are the final exact-size arenas.
type wireBufs struct {
	succ    []int32 // union edges, deduped, per node in range
	succCnt []int32 // union out-degree per node in range
	tSucc   []int32 // typed edges (enumeration order) per (node, type)
	tCnt    []int32 // typed out-degree per (node, type)
	tUnits  []resource.DimUnits
	sc      wireScratch
}

// wireScratch backs the in-place placement enumeration. The recursion
// restores work/used/assign on every backtrack, so between nodes the
// scratch is all-zero/all-false by invariant and never needs clearing.
type wireScratch struct {
	work   []int
	assign []resource.DimUnits
	used   [][]bool // one flag array per demand index (demands may share a group)
	sorted []int
}

var wireBufPool = sync.Pool{New: func() any { return new(wireBufs) }}

func (b *wireBufs) reset(s *Space, plans []typePlan) {
	b.succ = b.succ[:0]
	b.succCnt = b.succCnt[:0]
	b.tSucc = b.tSucc[:0]
	b.tCnt = b.tCnt[:0]
	b.tUnits = b.tUnits[:0]

	maxDemands, maxStride := 0, 0
	for i := range plans {
		if n := len(plans[i].demands); n > maxDemands {
			maxDemands = n
		}
		if plans[i].stride > maxStride {
			maxStride = plans[i].stride
		}
	}
	maxGroup := 0
	for gi := range s.rank.groups {
		if d := s.rank.groups[gi].dims; d > maxGroup {
			maxGroup = d
		}
	}
	if cap(b.sc.work) < s.dims {
		b.sc.work = make([]int, s.dims)
	}
	b.sc.work = b.sc.work[:s.dims]
	if cap(b.sc.sorted) < maxGroup {
		b.sc.sorted = make([]int, maxGroup)
	}
	b.sc.sorted = b.sc.sorted[:maxGroup]
	if cap(b.sc.assign) < maxStride {
		b.sc.assign = make([]resource.DimUnits, 0, maxStride)
	}
	b.sc.assign = b.sc.assign[:0]
	for len(b.sc.used) < maxDemands {
		b.sc.used = append(b.sc.used, nil)
	}
	for i := 0; i < maxDemands; i++ {
		if len(b.sc.used[i]) < maxGroup {
			b.sc.used[i] = make([]bool, maxGroup)
		}
	}
}

// wire computes the union CSR and the per-type labeled successor
// arenas. Chunks of the node range are wired in parallel under a
// work-stealing counter; each chunk writes only its own pooled
// buffers, so the hot path takes no locks and the stitched output is
// identical for every worker count.
func (s *Space) wire(vmTypes []resource.VMType, workers int) {
	n := s.n
	s.types = vmTypes
	s.typeIdx = make(map[string]int, len(vmTypes))
	for t, vt := range vmTypes {
		s.typeIdx[vt.Name] = t
	}
	T := len(vmTypes)
	typed := T > 0 && n <= maxTypedEntries/T

	plans := buildTypePlans(s.shape, vmTypes)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	nchunks := workers * chunksPerWorker
	if nchunks > n {
		nchunks = n
	}
	if nchunks < 1 {
		nchunks = 1
	}
	chunkSz := (n + nchunks - 1) / nchunks
	bufs := make([]*wireBufs, nchunks)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo := ci * chunkSz
				hi := lo + chunkSz
				if hi > n {
					hi = n
				}
				b := wireBufPool.Get().(*wireBufs)
				s.wireRange(b, plans, lo, hi, typed)
				bufs[ci] = b
			}
		}()
	}
	wg.Wait()

	// Stitch: chunk order is node order, so the arenas concatenate and
	// the offsets are running sums of the per-node counts. Sizes are
	// known exactly, so every final arena is allocated once.
	totalE, totalT, totalU := 0, 0, 0
	for _, b := range bufs {
		totalE += len(b.succ)
		totalT += len(b.tSucc)
		totalU += len(b.tUnits)
	}
	s.succOff = make([]int32, n+1)
	s.succ = make([]int32, totalE)
	if typed {
		s.tOff = make([]int32, n*T+1)
		s.tSucc = make([]int32, totalT)
		s.tAssign = make([]resource.Assignment, totalT)
		s.assignUnits = make([]resource.DimUnits, totalU)
	}
	ePos, ni, tPos, ti, uPos := 0, 0, 0, 0, 0
	for _, b := range bufs {
		copy(s.succ[ePos:], b.succ)
		ePos += len(b.succ)
		for _, cnt := range b.succCnt {
			s.succOff[ni+1] = s.succOff[ni] + cnt
			ni++
		}
		if typed {
			copy(s.tSucc[tPos:], b.tSucc)
			copy(s.assignUnits[uPos:], b.tUnits)
			for k, cnt := range b.tCnt {
				s.tOff[ti+1] = s.tOff[ti] + cnt
				ti++
				stride := plans[k%T].stride
				for e := int32(0); e < cnt; e++ {
					s.tAssign[tPos] = resource.Assignment(s.assignUnits[uPos : uPos+stride : uPos+stride])
					tPos++
					uPos += stride
				}
			}
		}
		wireBufPool.Put(b)
	}
}

// wireCtx is the per-(node, type) enumeration state. It mirrors
// resource.Placements exactly — same recursion order, same symmetric-
// duplicate pruning, same first-seen dedup of canonical outcomes — but
// computes successor ids arithmetically from the mutated work profile
// instead of materializing result vectors and string keys.
type wireCtx struct {
	s      *Space
	b      *wireBufs
	p      *typePlan
	base   int // node id minus the touched groups' rank contributions
	uStart int // start of the current node's union segment in b.succ
	tStart int // start of the current (node, type) segment in b.tSucc
	typed  bool
}

func (s *Space) wireRange(b *wireBufs, plans []typePlan, lo, hi int, typed bool) {
	b.reset(s, plans)
	c := wireCtx{s: s, b: b, typed: typed}
	for i := lo; i < hi; i++ {
		node := s.vals[i*s.dims : (i+1)*s.dims]
		c.uStart = len(b.succ)
		for t := range plans {
			p := &plans[t]
			c.tStart = len(b.tSucc)
			if !p.dead && len(p.demands) > 0 {
				copy(b.sc.work, node)
				base := i
				for _, gi := range p.touched {
					g := &s.rank.groups[gi]
					base -= ((i / g.radix) % g.count) * g.radix
				}
				c.p, c.base = p, base
				b.sc.assign = b.sc.assign[:0]
				c.place(0)
			}
			if typed {
				b.tCnt = append(b.tCnt, int32(len(b.tSucc)-c.tStart))
			}
		}
		b.succCnt = append(b.succCnt, int32(len(b.succ)-c.uStart))
	}
}

// place recurses over the type's demands; at the leaf every demand has
// been assigned and work holds the (non-canonical) successor profile.
func (c *wireCtx) place(di int) {
	if di == len(c.p.demands) {
		c.leaf()
		return
	}
	c.placeUnit(di, 0, c.p.demands[di].lo)
}

// placeUnit places unit unitIdx of demand di on a distinct dimension
// of the demand's group. Units are sorted descending (NewVMType);
// identical consecutive units are forced onto increasing dimension
// indices to avoid enumerating symmetric duplicates.
func (c *wireCtx) placeUnit(di, unitIdx, minDim int) {
	d := &c.p.demands[di]
	if unitIdx == len(d.units) {
		c.place(di + 1)
		return
	}
	u := d.units[unitIdx]
	start := d.lo
	if unitIdx > 0 && d.units[unitIdx-1] == u {
		start = minDim
	}
	used := c.b.sc.used[di]
	work := c.b.sc.work
	for dim := start; dim < d.hi; dim++ {
		if used[dim-d.lo] || work[dim]+u > d.cap {
			continue
		}
		used[dim-d.lo] = true
		work[dim] += u
		c.b.sc.assign = append(c.b.sc.assign, resource.DimUnits{Dim: dim, Units: u})
		c.placeUnit(di, unitIdx+1, dim+1)
		c.b.sc.assign = c.b.sc.assign[:len(c.b.sc.assign)-1]
		work[dim] -= u
		used[dim-d.lo] = false
	}
}

// leaf ranks the successor profile and appends the edge unless its
// canonical outcome was already seen — per type for the labeled list
// (first-seen representative assignment, like resource.Placements) and
// per node for the union CSR.
func (c *wireCtx) leaf() {
	sc := &c.b.sc
	id := c.base
	for _, gi := range c.p.touched {
		g := &c.s.rank.groups[gi]
		sg := sc.sorted[:g.dims]
		copy(sg, sc.work[g.lo:g.hi])
		insertionSort(sg)
		id += g.rankSorted(sg) * g.radix
	}
	b := c.b
	if c.typed {
		for _, e := range b.tSucc[c.tStart:] {
			if e == int32(id) {
				return
			}
		}
		b.tSucc = append(b.tSucc, int32(id))
		b.tUnits = append(b.tUnits, sc.assign...)
	}
	for _, e := range b.succ[c.uStart:] {
		if e == int32(id) {
			return
		}
	}
	b.succ = append(b.succ, int32(id))
}

// Shape returns the PM shape of the space.
func (s *Space) Shape() *resource.Shape { return s.shape }

// Len returns the number of canonical profiles.
func (s *Space) Len() int { return s.n }

// Edges returns the total number of edges in the union graph.
func (s *Space) Edges() int { return len(s.succ) }

// Node returns the canonical profile with id i. The returned vector
// aliases the node arena and must not be modified.
func (s *Space) Node(i int) resource.Vec {
	return resource.Vec(s.vals[i*s.dims : (i+1)*s.dims : (i+1)*s.dims])
}

// Succ returns the successor node ids of node i. The returned slice
// aliases the CSR arena and must not be modified.
func (s *Space) Succ(i int) []int32 { return s.succ[s.succOff[i]:s.succOff[i+1]] }

// SuccOffsets returns the CSR offsets arena (length Len()+1). Read-only.
func (s *Space) SuccOffsets() []int32 { return s.succOff }

// SuccArena returns the CSR edge arena. Read-only.
func (s *Space) SuccArena() []int32 { return s.succ }

// NumTypes returns the number of active (wired) VM types.
func (s *Space) NumTypes() int { return len(s.types) }

// TypeAt returns the active VM type with index t.
func (s *Space) TypeAt(t int) resource.VMType { return s.types[t] }

// TypeIndex returns the index of the named active VM type, or -1.
func (s *Space) TypeIndex(name string) int {
	if t, ok := s.typeIdx[name]; ok {
		return t
	}
	return -1
}

// HasTyped reports whether the per-type labeled successor arenas were
// built (they are skipped above maxTypedEntries).
func (s *Space) HasTyped() bool { return s.tOff != nil }

// TypedSucc returns the successor ids reachable from node i by placing
// one VM of active type t, in enumeration order. The slice aliases the
// arena and must not be modified.
func (s *Space) TypedSucc(i, t int) []int32 {
	k := i*len(s.types) + t
	return s.tSucc[s.tOff[k]:s.tOff[k+1]]
}

// TypedAssign returns the representative anti-collocation assignments
// parallel to TypedSucc(i, t). Assignments are in canonical
// coordinates (the node's profile is sorted within each group) and
// must not be modified.
func (s *Space) TypedAssign(i, t int) []resource.Assignment {
	k := i*len(s.types) + t
	return s.tAssign[s.tOff[k]:s.tOff[k+1]]
}

// Index returns the node id of a (not necessarily canonical) profile,
// or -1 when the profile is not in the lattice. The lookup is
// arithmetic — sort each group into a stack buffer and rank it — so it
// does not allocate for shapes with groups of at most 64 dimensions.
//
//prvm:hotpath
func (s *Space) Index(v resource.Vec) int {
	if len(v) != s.dims {
		return -1
	}
	var stack [64]int
	id := 0
	for gi := range s.rank.groups {
		g := &s.rank.groups[gi]
		sg := stack[:]
		if g.dims > len(stack) {
			sg = make([]int, g.dims) //prvmlint:allow hotalloc — cold fallback for >64-dim groups
		}
		sg = sg[:g.dims]
		copy(sg, v[g.lo:g.hi])
		insertionSort(sg)
		if sg[0] < 0 || sg[g.dims-1] > g.capU {
			return -1
		}
		id += g.rankSorted(sg) * g.radix
	}
	return id
}

// IndexKey returns the node id for a canonical key, or -1 for keys
// that are malformed, out of range, or not canonical.
//
//prvm:hotpath
func (s *Space) IndexKey(key string) int {
	if len(key) != s.dims {
		return -1
	}
	id := 0
	for gi := range s.rank.groups {
		g := &s.rank.groups[gi]
		r, prev := 0, 0
		stride := g.capU + 1
		for k := 0; k < g.dims; k++ {
			val := int(key[g.lo+k])
			if val < prev || val > g.capU {
				return -1
			}
			row := g.pref[(g.dims-1-k)*stride : (g.dims-k)*stride]
			r += row[val] - row[prev]
			prev = val
		}
		id += r * g.radix
	}
	return id
}

// Utils returns the aggregate utilization of every node, indexed by
// node id.
func (s *Space) Utils() []float64 {
	out := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.shape.Util(s.Node(i))
	}
	return out
}

// Terminals returns the ids of nodes with no outgoing edges (profiles
// that cannot accommodate any VM from the set).
func (s *Space) Terminals() []int {
	var out []int
	for i := 0; i < s.n; i++ {
		if s.succOff[i] == s.succOff[i+1] {
			out = append(out, i)
		}
	}
	return out
}
