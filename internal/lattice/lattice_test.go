package lattice

import (
	"testing"

	"pagerankvm/internal/resource"
)

func paperSpace(t *testing.T) *Space {
	t.Helper()
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
	s, err := New(shape, types)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSpaceEnumeration(t *testing.T) {
	s := paperSpace(t)
	// C(8,4) = 70 canonical profiles for 4 dims of capacity 4.
	if s.Len() != 70 {
		t.Fatalf("Len = %d, want 70", s.Len())
	}
	// Every node is canonical (non-decreasing) and within capacity.
	caps := s.Shape().Capacity()
	seen := make(map[string]bool)
	for i := 0; i < s.Len(); i++ {
		n := s.Node(i)
		if !n.LE(caps) {
			t.Fatalf("node %v exceeds capacity", n)
		}
		for d := 1; d < len(n); d++ {
			if n[d-1] > n[d] {
				t.Fatalf("node %v not canonical", n)
			}
		}
		key := s.Shape().KeyCanon(n)
		if seen[key] {
			t.Fatalf("duplicate node %v", n)
		}
		seen[key] = true
	}
}

func TestSpaceSuccessorsIncreaseUsage(t *testing.T) {
	s := paperSpace(t)
	for i := 0; i < s.Len(); i++ {
		from := s.Node(i)
		for _, j := range s.Succ(i) {
			to := s.Node(int(j))
			if to.Sum() <= from.Sum() {
				t.Fatalf("edge %v -> %v does not increase usage", from, to)
			}
		}
	}
}

func TestSpacePaperEdges(t *testing.T) {
	s := paperSpace(t)
	// [3,3,3,3] can go to [4,4,3,3] (one [1,1]) or [4,4,4,4]
	// (one [1,1,1,1]).
	i := s.Index(resource.Vec{3, 3, 3, 3})
	if i < 0 {
		t.Fatal("profile [3,3,3,3] not found")
	}
	succ := s.Succ(i)
	want := map[string]bool{
		s.Shape().Key(resource.Vec{4, 4, 3, 3}): false,
		s.Shape().Key(resource.Vec{4, 4, 4, 4}): false,
	}
	if len(succ) != len(want) {
		t.Fatalf("got %d successors, want %d", len(succ), len(want))
	}
	for _, j := range succ {
		key := s.Shape().KeyCanon(s.Node(int(j)))
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected successor %v", s.Node(int(j)))
		}
		want[key] = true
	}
	for k, hit := range want {
		if !hit {
			t.Errorf("missing successor with key %q", k)
		}
	}

	// [4,4,2,2] can only go via [1,1] on the two free dims:
	// -> [4,4,3,3] (split) or [4,4,4,2]? No: units land on distinct
	// dims, so {2,2}->{3,3} or one of the 2s twice is illegal; but
	// [1,1] on dims with value 2 and 2 gives [4,4,3,3] only... and
	// placing on a 2 and a 4 is infeasible (4+1>4). So exactly one
	// successor.
	i = s.Index(resource.Vec{4, 4, 2, 2})
	succ = s.Succ(i)
	if len(succ) != 1 || !s.Node(int(succ[0])).Equal(resource.Vec{2, 3, 4, 4}.Clone()) {
		// canonical form of [4,4,3,3] is [3,3,4,4]
		got := make([]resource.Vec, 0, len(succ))
		for _, j := range succ {
			got = append(got, s.Node(int(j)))
		}
		want := resource.Vec{3, 3, 4, 4}
		if len(succ) != 1 || !got[0].Equal(want) {
			t.Fatalf("successors of [4,4,2,2] = %v, want [%v]", got, want)
		}
	}
}

func TestSpaceTerminals(t *testing.T) {
	s := paperSpace(t)
	terms := s.Terminals()
	// The full profile is terminal.
	full := s.Index(resource.Vec{4, 4, 4, 4})
	found := false
	for _, id := range terms {
		if id == full {
			found = true
		}
		if len(s.Succ(id)) != 0 {
			t.Fatalf("terminal %v has successors", s.Node(id))
		}
	}
	if !found {
		t.Fatal("full profile not terminal")
	}
	// [4,4,4,3] is terminal too: neither VM type fits.
	i := s.Index(resource.Vec{4, 4, 4, 3})
	if len(s.Succ(i)) != 0 {
		t.Fatalf("[4,4,4,3] should be terminal")
	}
}

func TestSpaceIndex(t *testing.T) {
	s := paperSpace(t)
	// Non-canonical lookup works.
	if s.Index(resource.Vec{4, 2, 4, 2}) != s.Index(resource.Vec{2, 2, 4, 4}) {
		t.Fatal("Index not canonical")
	}
	if s.Index(resource.Vec{5, 0, 0, 0}) != -1 {
		t.Fatal("out-of-lattice profile indexed")
	}
	if s.IndexKey("nonsense") != -1 {
		t.Fatal("bogus key indexed")
	}
}

func TestSpaceUtils(t *testing.T) {
	s := paperSpace(t)
	utils := s.Utils()
	if got := utils[s.Index(resource.Vec{4, 4, 4, 4})]; got != 1 {
		t.Errorf("full util = %v", got)
	}
	if got := utils[s.Index(resource.Vec{0, 0, 0, 0})]; got != 0 {
		t.Errorf("zero util = %v", got)
	}
	if got := utils[s.Index(resource.Vec{2, 2, 2, 2})]; got != 0.5 {
		t.Errorf("half util = %v", got)
	}
}

func TestNewRejectsInvalidVMType(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 2, Cap: 2})
	bad := resource.NewVMType("bad", resource.Demand{Group: "gpu", Units: []int{1}})
	if _, err := New(shape, []resource.VMType{bad}); err == nil {
		t.Fatal("New accepted a VM type with an unknown group")
	}
}

func TestNewRejectsHugeSpace(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "x", Dims: 64, Cap: 255})
	if _, err := New(shape, nil); err == nil {
		t.Fatal("New accepted a combinatorially huge space")
	}
}

func TestMultiGroupSpace(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 2, Cap: 2},
		resource.Group{Name: "mem", Dims: 1, Cap: 2},
	)
	types := []resource.VMType{
		resource.NewVMType("t",
			resource.Demand{Group: "cpu", Units: []int{1}},
			resource.Demand{Group: "mem", Units: []int{1}},
		),
	}
	s, err := New(shape, types)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// cpu canonical: C(4,2)=6 states; mem: 3 states => 18 nodes.
	if s.Len() != 18 {
		t.Fatalf("Len = %d, want 18", s.Len())
	}
	// zero -> [0,1|1] only (canonical), one successor.
	zero := s.Index(shape.Zero())
	if got := len(s.Succ(zero)); got != 1 {
		t.Fatalf("zero has %d successors, want 1", got)
	}
}
