package lattice

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pagerankvm/internal/resource"
)

// legacySpace is the pre-arena reference build: recursive enumeration
// cloning one vector per node, a string-keyed index map, and
// resource.Placements materializing every placement. The arena build
// must reproduce its every arena bitwise; this is the equivalence
// contract of DESIGN.md §13.
type legacySpace struct {
	nodes   []resource.Vec
	index   map[string]int
	succOff []int32
	succ    []int32
	tOff    []int32
	tSucc   []int32
	tAssign []resource.Assignment
}

func legacyBuild(t *testing.T, shape *resource.Shape, vmTypes []resource.VMType) *legacySpace {
	t.Helper()
	var active []resource.VMType
	for _, vt := range vmTypes {
		if err := vt.Validate(shape); err != nil {
			t.Fatalf("legacy build: %v", err)
		}
		touches := false
		for _, d := range vt.Demands {
			if shape.GroupIndex(d.Group) >= 0 && len(d.Units) > 0 {
				touches = true
				break
			}
		}
		if touches {
			active = append(active, vt)
		}
	}

	ls := &legacySpace{}
	cur := make(resource.Vec, shape.NumDims())
	var gen func(gi, di int)
	gen = func(gi, di int) {
		if gi == shape.NumGroups() {
			ls.nodes = append(ls.nodes, cur.Clone())
			return
		}
		lo, hi := shape.GroupRange(gi)
		g := shape.Group(gi)
		dim := lo + di
		if dim == hi {
			gen(gi+1, 0)
			return
		}
		min := 0
		if di > 0 {
			min = cur[dim-1]
		}
		for v := min; v <= g.Cap; v++ {
			cur[dim] = v
			gen(gi, di+1)
		}
		cur[dim] = 0
	}
	gen(0, 0)
	ls.index = make(map[string]int, len(ls.nodes))
	for i, n := range ls.nodes {
		ls.index[shape.KeyCanon(n)] = i
	}

	n, T := len(ls.nodes), len(active)
	ls.succOff = make([]int32, n+1)
	ls.tOff = make([]int32, n*T+1)
	for i := 0; i < n; i++ {
		var union []int32
		for t := range active {
			pls := resource.Placements(shape, ls.nodes[i], active[t])
			for _, pl := range pls {
				j := int32(ls.index[pl.Key])
				ls.tSucc = append(ls.tSucc, j)
				ls.tAssign = append(ls.tAssign, pl.Assign)
				dup := false
				for _, e := range union {
					if e == j {
						dup = true
						break
					}
				}
				if !dup {
					union = append(union, j)
				}
			}
			k := i*T + t
			ls.tOff[k+1] = ls.tOff[k] + int32(len(pls))
		}
		ls.succ = append(ls.succ, union...)
		ls.succOff[i+1] = ls.succOff[i] + int32(len(union))
	}
	return ls
}

// TestArenaLegacyEquivalence proves the arena build bitwise against
// the reference across seeded random shapes: node ids and profiles,
// union CSR, typed successor order, and representative assignments.
func TestArenaLegacyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		shape, types := randomSetup(rng)
		for _, workers := range []int{1, 4} {
			got, err := NewSpace(shape, types, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			ref := legacyBuild(t, shape, types)

			if got.Len() != len(ref.nodes) {
				t.Fatalf("trial %d: %d nodes, want %d", trial, got.Len(), len(ref.nodes))
			}
			for i := range ref.nodes {
				if !got.Node(i).Equal(ref.nodes[i]) {
					t.Fatalf("trial %d: node %d = %v, want %v", trial, i, got.Node(i), ref.nodes[i])
				}
			}
			// Arithmetic index must agree with the map on every key —
			// canonical and shuffled — and reject foreign profiles.
			for key, id := range ref.index {
				if got.IndexKey(key) != id {
					t.Fatalf("trial %d: IndexKey(%q) = %d, want %d", trial, key, got.IndexKey(key), id)
				}
			}
			for i := range ref.nodes {
				v := ref.nodes[i].Clone()
				rng.Shuffle(len(v), func(a, b int) { v[a], v[b] = v[b], v[a] })
				want, ok := ref.index[shape.Key(v)]
				if !ok {
					want = -1 // shuffling across group boundaries can leave the lattice
				}
				if got.Index(v) != want {
					t.Fatalf("trial %d: Index(%v) = %d, want %d", trial, v, got.Index(v), want)
				}
			}

			if !reflect.DeepEqual(got.succOff, ref.succOff) {
				t.Fatalf("trial %d workers=%d: union offsets differ", trial, workers)
			}
			if !equalEdges(got.succ, ref.succ) {
				t.Fatalf("trial %d workers=%d: union edges differ", trial, workers)
			}
			if !got.HasTyped() {
				t.Fatalf("trial %d: typed arenas not built", trial)
			}
			if !reflect.DeepEqual(got.tOff, ref.tOff) {
				t.Fatalf("trial %d workers=%d: typed offsets differ", trial, workers)
			}
			if !equalEdges(got.tSucc, ref.tSucc) {
				t.Fatalf("trial %d workers=%d: typed edges differ", trial, workers)
			}
			if len(got.tAssign) != len(ref.tAssign) {
				t.Fatalf("trial %d: %d assignments, want %d", trial, len(got.tAssign), len(ref.tAssign))
			}
			for k := range ref.tAssign {
				if !reflect.DeepEqual(got.tAssign[k], ref.tAssign[k]) {
					t.Fatalf("trial %d: assignment %d = %v, want %v", trial, k, got.tAssign[k], ref.tAssign[k])
				}
			}
		}
	}
}

// equalEdges compares edge arenas treating nil and empty as equal
// (the arena build sizes exactly; the reference appends lazily).
func equalEdges(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWireGOMAXPROCSDeterministic pins the satellite contract
// directly: the same seed must produce bitwise-identical arenas when
// the process runs the wire phase at GOMAXPROCS 1 and 4 (the Workers
// default follows GOMAXPROCS).
func TestWireGOMAXPROCSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shape, types := randomSetup(rng)
	builds := make([]*Space, 2)
	for bi, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		s, err := NewSpace(shape, types, Options{}) // Workers: 0 → GOMAXPROCS
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		builds[bi] = s
	}
	a, b := builds[0], builds[1]
	if !reflect.DeepEqual(a.succOff, b.succOff) || !equalEdges(a.succ, b.succ) ||
		!reflect.DeepEqual(a.tOff, b.tOff) || !equalEdges(a.tSucc, b.tSucc) ||
		!reflect.DeepEqual(a.tAssign, b.tAssign) {
		t.Fatal("wire output differs between GOMAXPROCS 1 and 4")
	}
}
