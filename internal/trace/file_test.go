package trace

import (
	"errors"
	"io/fs"
	"strings"
	"testing"
	"testing/fstest"
)

func TestParseSeries(t *testing.T) {
	in := "0\n50\n\n# comment\n100\n25\n"
	s, err := ParseSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Series{0, 0.5, 1, 0.25}
	if len(s) != len(want) {
		t.Fatalf("len = %d", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestParseSeriesErrors(t *testing.T) {
	for _, in := range []string{"", "abc\n", "150\n", "-5\n"} {
		if _, err := ParseSeries(strings.NewReader(in)); err == nil {
			t.Errorf("ParseSeries(%q) accepted", in)
		}
	}
}

func TestLoadDir(t *testing.T) {
	fsys := fstest.MapFS{
		"vm_b": {Data: []byte("10\n20\n")},
		"vm_a": {Data: []byte("100\n")},
	}
	set, err := LoadDir(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || set.Name() != "file" {
		t.Fatalf("Len = %d", set.Len())
	}
	// Round-robin in sorted filename order: vm 0 -> vm_a, vm 1 -> vm_b.
	a := set.Series(0, 3)
	if a[0] != 1 || a[2] != 1 { // clamped extension
		t.Fatalf("vm 0 series = %v", a)
	}
	b := set.Series(1, 2)
	if b[0] != 0.1 || b[1] != 0.2 {
		t.Fatalf("vm 1 series = %v", b)
	}
	// Wrap-around.
	c := set.Series(2, 1)
	if c[0] != 1 {
		t.Fatalf("vm 2 series = %v", c)
	}
	if _, ok := set.ByFile("vm_b"); !ok {
		t.Fatal("ByFile failed")
	}
	if _, ok := set.ByFile("nope"); ok {
		t.Fatal("ByFile found a ghost")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(fstest.MapFS{}); err == nil {
		t.Fatal("accepted empty dir")
	}
	bad := fstest.MapFS{"x": {Data: []byte("oops\n")}}
	if _, err := LoadDir(bad); err == nil {
		t.Fatal("accepted bad file")
	}
}

// closeFailFS wraps a filesystem so every opened file fails on Close,
// the way a network filesystem surfaces a truncated read only at close
// time. LoadDir must propagate that error, not swallow it.
type closeFailFS struct{ fs.FS }

func (c closeFailFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return fs.ReadDir(c.FS, name)
}

func (c closeFailFS) Open(name string) (fs.File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return closeFailFile{f}, nil
}

type closeFailFile struct{ fs.File }

func (closeFailFile) Close() error { return errors.New("close failed") }

func TestLoadDirPropagatesCloseError(t *testing.T) {
	fsys := closeFailFS{fstest.MapFS{"vm_a": {Data: []byte("50\n")}}}
	_, err := LoadDir(fsys)
	if err == nil || !strings.Contains(err.Error(), "close failed") {
		t.Fatalf("LoadDir error = %v, want the close failure surfaced", err)
	}
}
