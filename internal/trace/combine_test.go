package trace

import (
	"math"
	"testing"

	"pagerankvm/internal/opt"
)

func TestBlend(t *testing.T) {
	a := Series{0.2, 0.4, 0.6}
	b := Series{1.0, 0.0, 1.0, 0.5}
	got := Blend(a, b, 0.5)
	want := Series{0.6, 0.2, 0.8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Blend[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBlendClamps(t *testing.T) {
	got := Blend(Series{1.0}, Series{1.0}, 1.5)
	if got[0] != 1 {
		t.Fatalf("Blend not clamped: %v", got[0])
	}
}

func TestOverlay(t *testing.T) {
	base := Series{0.3, 0.7, 0.5}
	burst := Series{0.0, 0.6, 0.9, 0.4}
	got := Overlay(base, burst)
	want := Series{0.3, 1.0, 1.0}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Overlay[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBurstsDeterministicAndBounded(t *testing.T) {
	a := Bursts(7, 3, 500, BurstConfig{})
	b := Bursts(7, 3, 500, BurstConfig{})
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	sawBurst := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("sample %v out of range", a[i])
		}
		if a[i] > 0.4 {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Fatal("no bursts in 500 steps at default probability")
	}
	c := Bursts(8, 3, 500, BurstConfig{})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical bursts")
	}
}

func TestBurstsDecay(t *testing.T) {
	// A burst decays geometrically: after a peak the next samples are
	// strictly smaller until the next burst.
	s := Bursts(1, 1, 2000, BurstConfig{Prob: opt.F(0.005), Min: 0.9, Max: opt.F(0.9), Decay: opt.F(0.5)})
	found := false
	for i := 0; i+1 < len(s); i++ {
		if s[i] == 0.9 && s[i+1] != 0.9 {
			if math.Abs(s[i+1]-0.45) > 1e-12 {
				t.Fatalf("decay after peak = %v, want 0.45", s[i+1])
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no isolated burst found; decay unverifiable for this seed")
	}
}
