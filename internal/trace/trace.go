// Package trace generates synthetic per-VM CPU-utilization time
// series standing in for the two traces the paper uses:
//
//   - the PlanetLab trace shipped with CloudSim (5-minute CPU samples
//     over 24 hours per node): moderate mean, strong diurnal pattern,
//     AR(1)-correlated noise;
//   - the Google cluster usage trace (May 2011, ~11k machines):
//     lower mean, heavy-tailed bursts, weak diurnal structure.
//
// Neither original trace is redistributable or reachable offline; the
// simulator only consumes a utilization multiplier in [0, 1] per VM
// per interval, so a seeded generator with matching shape preserves
// the evaluated behaviour (see DESIGN.md §5). Generators are
// deterministic given (seed, vm id).
package trace

import (
	"errors"
	"math"
	"math/rand"

	"pagerankvm/internal/opt"
)

// Series is one VM's utilization multipliers, one sample per interval,
// each in [0, 1]: the fraction of the VM's requested CPU it actually
// uses during the interval.
type Series []float64

// At returns the sample at step i, clamping past the end (a VM that
// outlives its trace keeps its final utilization).
func (s Series) At(i int) float64 {
	if len(s) == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Mean returns the average utilization of the series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range s {
		total += x
	}
	return total / float64(len(s))
}

// Max returns the peak utilization of the series.
func (s Series) Max() float64 {
	peak := 0.0
	for _, x := range s {
		if x > peak {
			peak = x
		}
	}
	return peak
}

// Generator produces utilization series for VM ids.
type Generator interface {
	Name() string
	// Series returns the utilization series for one VM over the given
	// number of steps. Deterministic in (generator seed, vmID).
	Series(vmID, steps int) Series
}

// clamp01 bounds x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// PlanetLab mimics the CloudSim PlanetLab workload: a diurnal base
// level plus AR(1) noise and occasional decaying spikes. The diurnal
// phase is shared across VMs (with per-VM jitter): PlanetLab nodes see
// correlated daily peaks, which is what drives simultaneous host
// overloads in the paper's experiments.
type PlanetLab struct {
	// Seed drives all randomness; two generators with equal seeds
	// produce identical workloads.
	Seed int64
	// Mean is the long-run average utilization; nil selects 0.35
	// (set with opt.F).
	Mean *float64
	// Diurnal is the amplitude of the day/night swing; nil selects
	// 0.20.
	Diurnal *float64
	// StepsPerDay is the number of samples in one diurnal period;
	// default 288 (5-minute samples over 24 h).
	StepsPerDay int
}

var _ Generator = PlanetLab{}

// Name implements Generator.
func (PlanetLab) Name() string { return "planetlab" }

// Series implements Generator.
func (g PlanetLab) Series(vmID, steps int) Series {
	mean := opt.Or(g.Mean, 0.35)
	diurnal := opt.Or(g.Diurnal, 0.20)
	perDay := g.StepsPerDay
	if perDay == 0 {
		perDay = 288
	}
	// The daily peak hour is common to the whole workload (seed-
	// derived), individual VMs jitter around it.
	globalPhase := rand.New(rand.NewSource(g.Seed)).Float64() * 2 * math.Pi
	rng := rand.New(rand.NewSource(g.Seed*1000003 + int64(vmID)))

	var (
		phase   = globalPhase + 0.4*rng.NormFloat64()
		level   = mean * (0.6 + 0.8*rng.Float64()) // VM-specific mean
		sigma   = 0.05 + 0.10*rng.Float64()
		rho     = 0.85 // AR(1) autocorrelation across 5-min samples
		noise   = 0.0
		burst   = 0.0
		samples = make(Series, steps)
	)
	for i := range samples {
		day := 2 * math.Pi * float64(i) / float64(perDay)
		base := level + diurnal*math.Sin(day+phase)
		noise = rho*noise + math.Sqrt(1-rho*rho)*rng.NormFloat64()*sigma
		// Occasional load spikes toward saturation, decaying over a
		// few intervals.
		if rng.Float64() < 0.02 {
			burst = 0.4 + 0.6*rng.Float64()
		}
		samples[i] = clamp01(base + noise + burst)
		burst *= 0.5
	}
	return samples
}

// Google mimics the Google cluster usage trace: lower average
// utilization than PlanetLab, heavy-tailed bursts, little diurnal
// structure.
type Google struct {
	// Seed drives all randomness.
	Seed int64
	// Mean is the long-run average utilization; nil selects 0.30
	// (set with opt.F).
	Mean *float64
}

var _ Generator = Google{}

// Name implements Generator.
func (Google) Name() string { return "google" }

// Series implements Generator.
func (g Google) Series(vmID, steps int) Series {
	mean := opt.Or(g.Mean, 0.30)
	rng := rand.New(rand.NewSource(g.Seed*998244353 + int64(vmID)))

	var (
		level   = mean * (0.4 + 1.2*rng.Float64())
		rho     = 0.7
		noise   = 0.0
		burst   = 0.0 // current burst height, decays geometrically
		samples = make(Series, steps)
	)
	for i := range samples {
		noise = rho*noise + math.Sqrt(1-rho*rho)*rng.NormFloat64()*0.08
		// Heavy-tailed bursts: start with small probability, then
		// decay over several intervals (tasks ramping up and down).
		if rng.Float64() < 0.03 {
			burst = 0.4 + 0.6*math.Pow(rng.Float64(), 0.5)
		}
		samples[i] = clamp01(level + noise + burst)
		burst *= 0.6
	}
	return samples
}

// Constant yields a fixed utilization for every VM and step — useful
// for tests and capacity planning.
type Constant struct {
	// Level is the fixed utilization in [0, 1].
	Level float64
}

var _ Generator = Constant{}

// Name implements Generator.
func (Constant) Name() string { return "constant" }

// Series implements Generator.
func (g Constant) Series(_, steps int) Series {
	s := make(Series, steps)
	for i := range s {
		s[i] = clamp01(g.Level)
	}
	return s
}

// Blend mixes two series: w*a + (1-w)*b, sample-wise, truncated to the
// shorter input.
func Blend(a, b Series, w float64) Series {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make(Series, n)
	for i := 0; i < n; i++ {
		out[i] = clamp01(w*a[i] + (1-w)*b[i])
	}
	return out
}

// Overlay adds two series sample-wise with clamping to [0, 1],
// truncated to the shorter input. Workload builders overlay a shared
// tenant burst series on each VM's base series: when a tenant's
// workload surges, all of its VMs surge together.
func Overlay(a, b Series) Series {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make(Series, n)
	for i := 0; i < n; i++ {
		out[i] = clamp01(a[i] + b[i])
	}
	return out
}

// BurstConfig parameterizes a Bursts series.
type BurstConfig struct {
	// Prob is the per-step probability that a burst starts; nil
	// selects 0.02 (set with opt.F).
	Prob *float64
	// Max bounds a burst's initial height; nil selects 0.9 and also
	// defaults Min to 0.5.
	Max *float64
	// Min is the lower bound of a burst's initial height; only read
	// when Max is set.
	Min float64
	// Decay is the per-step geometric decay of a burst; nil selects
	// 0.6.
	Decay *float64
}

// resolvedBursts carries the effective burst parameters.
type resolvedBursts struct {
	prob, min, max, decay float64
}

func (c BurstConfig) withDefaults() resolvedBursts {
	r := resolvedBursts{
		prob:  opt.Or(c.Prob, 0.02),
		min:   c.Min,
		decay: opt.Or(c.Decay, 0.6),
	}
	if c.Max == nil {
		r.min, r.max = 0.5, 0.9
	} else {
		r.max = *c.Max
	}
	return r
}

// Bursts generates a burst-only series (zero baseline): occasional
// surges that decay geometrically. Deterministic in (seed, id).
func Bursts(seed int64, id, steps int, cfg BurstConfig) Series {
	r := cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed*69061 + int64(id)))
	out := make(Series, steps)
	burst := 0.0
	for i := range out {
		if rng.Float64() < r.prob {
			burst = r.min + (r.max-r.min)*rng.Float64()
		}
		out[i] = clamp01(burst)
		burst *= r.decay
	}
	return out
}

// ErrUnknownGenerator is returned by ByName for unrecognized names.
var ErrUnknownGenerator = errors.New("trace: unknown generator")

// ByName builds a generator from its name ("planetlab", "google",
// "constant"), used by the CLI tools.
func ByName(name string, seed int64) (Generator, error) {
	switch name {
	case "planetlab":
		return PlanetLab{Seed: seed}, nil
	case "google":
		return Google{Seed: seed}, nil
	case "constant":
		return Constant{Level: 0.5}, nil
	default:
		return nil, ErrUnknownGenerator
	}
}
