package trace

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
)

// FileSet serves traces loaded from disk in CloudSim's PlanetLab
// workload format: one file per VM, one integer CPU-utilization
// percentage (0-100) per line, 5-minute samples. The paper drives its
// simulation with exactly such files; this loader lets users with the
// original archives substitute them for the synthetic generators
// (DESIGN.md §5).
type FileSet struct {
	names  []string
	series map[string]Series
}

var _ Generator = (*FileSet)(nil)

// LoadDir reads every regular file of fsys (e.g. os.DirFS(dir)) as one
// VM trace, in lexicographic filename order.
func LoadDir(fsys fs.FS) (*FileSet, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("trace: read dir: %w", err)
	}
	set := &FileSet{series: make(map[string]Series)}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		f, err := fsys.Open(e.Name())
		if err != nil {
			return nil, fmt.Errorf("trace: open %s: %w", e.Name(), err)
		}
		s, err := ParseSeries(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			// A failed close can mean a truncated read on some
			// filesystems; a silently short trace would skew every
			// simulation built on it.
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", e.Name(), err)
		}
		set.series[e.Name()] = s
		set.names = append(set.names, e.Name())
	}
	if len(set.names) == 0 {
		return nil, fmt.Errorf("trace: no trace files found")
	}
	sort.Strings(set.names)
	return set, nil
}

// ParseSeries reads one PlanetLab-format trace: one utilization
// percentage per line; blank lines and '#' comments are skipped.
func ParseSeries(r io.Reader) (Series, error) {
	var s Series
	scanner := bufio.NewScanner(r)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		pct, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if pct < 0 || pct > 100 {
			return nil, fmt.Errorf("line %d: utilization %v outside [0,100]", line, pct)
		}
		s = append(s, pct/100)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return s, nil
}

// Name implements Generator.
func (f *FileSet) Name() string { return "file" }

// Len returns the number of loaded traces.
func (f *FileSet) Len() int { return len(f.names) }

// Series implements Generator: VM ids map onto the loaded files
// round-robin (the paper: "we randomly chose traces of the VMs"; a
// deterministic assignment keeps runs reproducible). Loaded traces are
// truncated or end-extended (Series.At clamps) to the requested
// length.
func (f *FileSet) Series(vmID, steps int) Series {
	name := f.names[((vmID%len(f.names))+len(f.names))%len(f.names)]
	src := f.series[name]
	out := make(Series, steps)
	for i := range out {
		out[i] = src.At(i)
	}
	return out
}

// ByFile returns the raw series of a loaded file.
func (f *FileSet) ByFile(name string) (Series, bool) {
	s, ok := f.series[name]
	return s, ok
}
