package trace

import (
	"errors"
	"math"
	"testing"
)

func TestSeriesAt(t *testing.T) {
	s := Series{0.1, 0.2, 0.3}
	tests := []struct {
		give int
		want float64
	}{
		{give: -5, want: 0.1},
		{give: 0, want: 0.1},
		{give: 2, want: 0.3},
		{give: 99, want: 0.3},
	}
	for _, tt := range tests {
		if got := s.At(tt.give); got != tt.want {
			t.Errorf("At(%d) = %v, want %v", tt.give, got, tt.want)
		}
	}
	var empty Series
	if empty.At(0) != 0 {
		t.Error("empty series At != 0")
	}
}

func TestSeriesMeanMax(t *testing.T) {
	s := Series{0.2, 0.4, 0.6}
	if math.Abs(s.Mean()-0.4) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Max() != 0.6 {
		t.Errorf("Max = %v", s.Max())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty series stats non-zero")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{PlanetLab{Seed: 7}, Google{Seed: 7}, Constant{Level: 0.5}}
	for _, g := range gens {
		t.Run(g.Name(), func(t *testing.T) {
			a := g.Series(13, 288)
			b := g.Series(13, 288)
			if len(a) != 288 || len(b) != 288 {
				t.Fatalf("wrong length %d/%d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("non-deterministic at %d", i)
				}
			}
		})
	}
}

func TestGeneratorsDifferPerVM(t *testing.T) {
	g := PlanetLab{Seed: 7}
	a, b := g.Series(1, 288), g.Series(2, 288)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different VMs got identical traces")
	}
}

func TestGeneratorsDifferPerSeed(t *testing.T) {
	a := Google{Seed: 1}.Series(1, 288)
	b := Google{Seed: 2}.Series(1, 288)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds got identical traces")
	}
}

func TestTracesBounded(t *testing.T) {
	gens := []Generator{PlanetLab{Seed: 3}, Google{Seed: 3}}
	for _, g := range gens {
		t.Run(g.Name(), func(t *testing.T) {
			for vm := 0; vm < 50; vm++ {
				for _, x := range g.Series(vm, 288) {
					if x < 0 || x > 1 {
						t.Fatalf("sample %v out of [0,1]", x)
					}
				}
			}
		})
	}
}

// The population statistics should land near the documented targets:
// PlanetLab mean ~0.30, Google mean ~0.25, both with peaks near 1.
func TestTraceStatistics(t *testing.T) {
	tests := []struct {
		gen        Generator
		wantMeanLo float64
		wantMeanHi float64
	}{
		{gen: PlanetLab{Seed: 11}, wantMeanLo: 0.25, wantMeanHi: 0.45},
		{gen: Google{Seed: 11}, wantMeanLo: 0.20, wantMeanHi: 0.45},
	}
	for _, tt := range tests {
		t.Run(tt.gen.Name(), func(t *testing.T) {
			total, peak := 0.0, 0.0
			const vms = 200
			for vm := 0; vm < vms; vm++ {
				s := tt.gen.Series(vm, 288)
				total += s.Mean()
				if p := s.Max(); p > peak {
					peak = p
				}
			}
			mean := total / vms
			if mean < tt.wantMeanLo || mean > tt.wantMeanHi {
				t.Errorf("population mean %v outside [%v,%v]", mean, tt.wantMeanLo, tt.wantMeanHi)
			}
			if peak < 0.9 {
				t.Errorf("population peak %v, want near saturation", peak)
			}
		})
	}
}

// Consecutive samples must be autocorrelated (the paper's traces are
// real workloads, not white noise): lag-1 autocorrelation well above 0.
func TestTraceAutocorrelation(t *testing.T) {
	for _, g := range []Generator{PlanetLab{Seed: 5}, Google{Seed: 5}} {
		t.Run(g.Name(), func(t *testing.T) {
			s := g.Series(1, 288*4)
			mean := s.Mean()
			var num, den float64
			for i := 1; i < len(s); i++ {
				num += (s[i] - mean) * (s[i-1] - mean)
			}
			for _, x := range s {
				den += (x - mean) * (x - mean)
			}
			if den == 0 {
				t.Skip("degenerate series")
			}
			if r := num / den; r < 0.3 {
				t.Errorf("lag-1 autocorrelation %v, want >= 0.3", r)
			}
		})
	}
}

func TestConstant(t *testing.T) {
	s := Constant{Level: 0.5}.Series(0, 10)
	for _, x := range s {
		if x != 0.5 {
			t.Fatalf("constant sample %v", x)
		}
	}
	s = Constant{Level: 1.5}.Series(0, 1)
	if s[0] != 1 {
		t.Fatalf("constant not clamped: %v", s[0])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"planetlab", "google", "constant"} {
		g, err := ByName(name, 1)
		if err != nil || g == nil {
			t.Errorf("ByName(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := ByName("bogus", 1); !errors.Is(err, ErrUnknownGenerator) {
		t.Errorf("ByName(bogus) err = %v", err)
	}
}
