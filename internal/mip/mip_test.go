package mip

import (
	"errors"
	"math/rand"
	"testing"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

const pmType = "small"

func smallShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func vmType(name string) resource.VMType {
	switch name {
	case "[1,1]":
		return resource.NewVMType(name, resource.Demand{Group: "cpu", Units: []int{1, 1}})
	case "[1,1,1,1]":
		return resource.NewVMType(name, resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}})
	case "[2,2]":
		return resource.NewVMType(name, resource.Demand{Group: "cpu", Units: []int{2, 2}})
	}
	panic("unknown " + name)
}

func newVM(id int, name string) *placement.VM {
	return &placement.VM{ID: id, Type: name, Req: map[string]resource.VMType{pmType: vmType(name)}}
}

func newPMs(n int) []*placement.PM {
	shape := smallShape()
	pms := make([]*placement.PM, n)
	for i := range pms {
		pms[i] = placement.NewPM(i, pmType, shape)
	}
	return pms
}

func TestSolveTrivial(t *testing.T) {
	sol, err := Solve(newPMs(2), []*placement.VM{newVM(0, "[1,1]")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PMsUsed != 1 || sol.Cost != 1 || !sol.Optimal {
		t.Fatalf("solution %+v", sol)
	}
	if len(sol.Assignments) != 1 {
		t.Fatalf("assignments %v", sol.Assignments)
	}
}

func TestSolvePacksPerfectly(t *testing.T) {
	// 8 x [1,1] = 16 units exactly fill one PM.
	var vms []*placement.VM
	for i := 0; i < 8; i++ {
		vms = append(vms, newVM(i, "[1,1]"))
	}
	sol, err := Solve(newPMs(3), vms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d, want 1", sol.PMsUsed)
	}
	if !sol.Optimal {
		t.Fatal("not optimal")
	}
}

func TestSolveNeedsTwoPMs(t *testing.T) {
	// 5 x [1,1,1,1]: 20 units; one PM fits 4 such VMs (anti-collocated
	// across all 4 dims), the 5th forces a second PM.
	var vms []*placement.VM
	for i := 0; i < 5; i++ {
		vms = append(vms, newVM(i, "[1,1,1,1]"))
	}
	sol, err := Solve(newPMs(3), vms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PMsUsed != 2 {
		t.Fatalf("PMsUsed = %d, want 2", sol.PMsUsed)
	}
}

func TestSolveAntiCollocationForcesSpread(t *testing.T) {
	// A [2,2] VM needs two distinct cores with 2 free units each; 3
	// such VMs use 12 units, but each core has capacity 4 = two 2-unit
	// slots, so one PM (8 slots) still fits all three.
	var vms []*placement.VM
	for i := 0; i < 3; i++ {
		vms = append(vms, newVM(i, "[2,2]"))
	}
	sol, err := Solve(newPMs(2), vms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d, want 1", sol.PMsUsed)
	}
	// Every VM's two units must sit on distinct dims.
	for id, a := range sol.Assignments {
		if len(a.Assign) != 2 || a.Assign[0].Dim == a.Assign[1].Dim {
			t.Fatalf("vm %d assignment violates anti-collocation: %v", id, a.Assign)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	var vms []*placement.VM
	for i := 0; i < 5; i++ {
		vms = append(vms, newVM(i, "[1,1,1,1]"))
	}
	_, err := Solve(newPMs(1), vms, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveCosts(t *testing.T) {
	// PM 0 costs 10, PM 1 costs 1: a single VM must go to PM 1.
	sol, err := Solve(newPMs(2), []*placement.VM{newVM(0, "[1,1]")},
		Options{Costs: map[int]float64{0: 10, 1: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 1 {
		t.Fatalf("Cost = %v, want 1", sol.Cost)
	}
	if sol.Assignments[0].PM != 1 {
		t.Fatalf("assigned to pm %d, want 1", sol.Assignments[0].PM)
	}
}

func TestSolveRejectsDirtyPMs(t *testing.T) {
	pms := newPMs(1)
	c := placement.NewCluster(pms)
	vm := newVM(9, "[1,1]")
	demand, _ := vm.DemandOn(pmType)
	assign := resource.GreedyAssign(pms[0].Shape, pms[0].Used(), demand)
	if err := c.Host(pms[0], vm, assign); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(pms, nil, Options{}); err == nil {
		t.Fatal("accepted non-empty PM")
	}
	if _, err := Solve(nil, nil, Options{}); err == nil {
		t.Fatal("accepted empty inventory")
	}
}

func TestSolveNodeLimit(t *testing.T) {
	var vms []*placement.VM
	for i := 0; i < 10; i++ {
		vms = append(vms, newVM(i, "[1,1]"))
	}
	// A full solution needs at least 11 nodes (root + one per VM), so
	// a limit of 5 guarantees truncation before any incumbent exists.
	sol, err := Solve(newPMs(4), vms, Options{NodeLimit: 5})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible after truncation", err)
	}
	if sol != nil && sol.Optimal {
		t.Fatal("claimed optimality after truncation")
	}
}

// Property: the optimum never exceeds any heuristic's PM count, and
// heuristic solutions are feasible whenever the optimum exists.
func TestOptimumLowerBoundsHeuristics(t *testing.T) {
	table, err := ranktable.NewJoint(smallShape(), []resource.VMType{
		vmType("[1,1]"), vmType("[1,1,1,1]"), vmType("[2,2]"),
	}, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmType, table)

	names := []string{"[1,1]", "[1,1,1,1]", "[2,2]"}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		var vms []*placement.VM
		for i := 0; i < n; i++ {
			vms = append(vms, newVM(i, names[rng.Intn(len(names))]))
		}
		sol, err := Solve(newPMs(4), vms, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		placers := []placement.Placer{
			placement.NewPageRankVM(reg),
			placement.FirstFit{},
			placement.CompVM{},
			placement.BestFit{},
		}
		for _, p := range placers {
			c := placement.NewCluster(newPMs(4))
			for _, vm := range vms {
				pm, assign, err := p.Place(c, vm, nil)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, p.Name(), err)
				}
				if err := c.Host(pm, vm, assign); err != nil {
					t.Fatal(err)
				}
			}
			if c.MaxUsed < sol.PMsUsed {
				t.Fatalf("seed %d: %s used %d PMs, below optimum %d",
					seed, p.Name(), c.MaxUsed, sol.PMsUsed)
			}
		}
	}
}
