// Package mip solves the paper's Section-IV formulation exactly for
// small instances: assign every VM to a PM, with each anti-collocated
// unit on its own dimension (Equ. 1-10), minimizing the total cost of
// the PMs that host at least one VM (Equ. 11). The solver is a
// branch-and-bound over the VM list with symmetry breaking across
// identical empty PMs and a per-group packing lower bound — the
// "branch and bound algorithm [22]" the paper names as the general
// solution, practical only at small scale, which is exactly why the
// heuristics exist. The exactgap example and BenchmarkExactGap use it
// to measure heuristic optimality gaps.
package mip

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
)

// Options tunes the search.
type Options struct {
	// NodeLimit bounds the explored nodes; 0 means 5,000,000. When
	// the limit is hit the best solution found so far is returned
	// with Optimal=false.
	NodeLimit int
	// Costs maps PM ids to activation costs s_j; missing ids cost 1.
	Costs map[int]float64
}

// Assignment records where one VM landed.
type Assignment struct {
	PM     int
	Assign resource.Assignment
}

// Solution is the solver output.
type Solution struct {
	// Cost is Equ. (11)'s objective for the best assignment found.
	Cost float64
	// PMsUsed is the number of PMs hosting at least one VM.
	PMsUsed int
	// Assignments maps VM id to its placement.
	Assignments map[int]Assignment
	// Nodes is the number of search nodes explored.
	Nodes int
	// Optimal reports whether the search completed within NodeLimit.
	Optimal bool
}

// ErrInfeasible is returned when no complete assignment exists.
var ErrInfeasible = errors.New("mip: infeasible instance")

type solver struct {
	cluster   *placement.Cluster
	vms       []*placement.VM
	costs     map[int]float64
	nodeLimit int

	best        float64
	bestAssign  map[int]Assignment
	nodes       int
	truncated   bool
	homogeneous bool
	groupCaps   []int // per-group total capacity of one PM (homogeneous case)
	remaining   [][]int
}

// Solve finds a minimum-cost feasible assignment of vms to pms. The
// pms must be empty (fresh) machines.
func Solve(pms []*placement.PM, vms []*placement.VM, opts Options) (*Solution, error) {
	if len(pms) == 0 {
		return nil, errors.New("mip: no PMs")
	}
	for _, pm := range pms {
		if pm.Active() {
			return nil, fmt.Errorf("mip: pm %d is not empty", pm.ID)
		}
	}
	if opts.NodeLimit == 0 {
		opts.NodeLimit = 5_000_000
	}

	s := &solver{
		cluster:   placement.NewCluster(pms),
		costs:     opts.Costs,
		nodeLimit: opts.NodeLimit,
		best:      math.Inf(1),
	}
	// Larger VMs first: stronger pruning.
	s.vms = append(s.vms, vms...)
	sort.SliceStable(s.vms, func(i, j int) bool {
		return vmSize(s.vms[i]) > vmSize(s.vms[j])
	})
	s.prepareBound(pms)

	s.search(0, 0)

	if s.bestAssign == nil {
		if s.truncated {
			return &Solution{Nodes: s.nodes, Optimal: false}, ErrInfeasible
		}
		return nil, ErrInfeasible
	}
	used := map[int]bool{}
	for _, a := range s.bestAssign {
		used[a.PM] = true
	}
	return &Solution{
		Cost:        s.best,
		PMsUsed:     len(used),
		Assignments: s.bestAssign,
		Nodes:       s.nodes,
		Optimal:     !s.truncated,
	}, nil
}

func vmSize(v *placement.VM) int {
	total := 0
	for _, d := range v.Req {
		total += d.TotalUnits()
	}
	return total
}

func (s *solver) cost(pmID int) float64 {
	if c, ok := s.costs[pmID]; ok {
		return c
	}
	return 1
}

// prepareBound precomputes the per-group demand suffix sums used by
// the packing lower bound. The bound only applies to homogeneous
// inventories (all PMs share one shape), where "units" are comparable.
func (s *solver) prepareBound(pms []*placement.PM) {
	shape := pms[0].Shape
	s.homogeneous = true
	for _, pm := range pms[1:] {
		if pm.Type != pms[0].Type {
			s.homogeneous = false
			return
		}
	}
	for gi := 0; gi < shape.NumGroups(); gi++ {
		g := shape.Group(gi)
		s.groupCaps = append(s.groupCaps, g.Dims*g.Cap)
	}
	// remaining[i][g]: group-g units demanded by vms[i:].
	s.remaining = make([][]int, len(s.vms)+1)
	s.remaining[len(s.vms)] = make([]int, shape.NumGroups())
	for i := len(s.vms) - 1; i >= 0; i-- {
		row := make([]int, shape.NumGroups())
		copy(row, s.remaining[i+1])
		if demand, ok := s.vms[i].DemandOn(pms[0].Type); ok {
			for gi := 0; gi < shape.NumGroups(); gi++ {
				if d, ok := demand.DemandFor(shape.Group(gi).Name); ok {
					for _, u := range d.Units {
						row[gi] += u
					}
				}
			}
		}
		s.remaining[i] = row
	}
}

// lowerBound returns an admissible bound on the additional activation
// cost needed to host vms[idx:].
func (s *solver) lowerBound(idx int) float64 {
	if !s.homogeneous || idx >= len(s.remaining) {
		return 0
	}
	shape := s.cluster.PMs()[0].Shape
	extra := 0
	for gi, capUnits := range s.groupCaps {
		free := 0
		for _, pm := range s.cluster.UsedPMs() {
			lo, hi := shape.GroupRange(gi)
			for d := lo; d < hi; d++ {
				free += shape.Group(gi).Cap - pm.Used()[d]
			}
		}
		deficit := s.remaining[idx][gi] - free
		if deficit <= 0 {
			continue
		}
		need := (deficit + capUnits - 1) / capUnits
		if need > extra {
			extra = need
		}
	}
	if extra == 0 {
		return 0
	}
	minCost := math.Inf(1)
	for _, pm := range s.cluster.UnusedPMs() {
		if c := s.cost(pm.ID); c < minCost {
			minCost = c
		}
	}
	if math.IsInf(minCost, 1) {
		// Not enough PMs left; force a prune by returning a cost that
		// exceeds any finite incumbent.
		return math.Inf(1)
	}
	return float64(extra) * minCost
}

func (s *solver) search(idx int, cost float64) {
	if s.truncated {
		return
	}
	s.nodes++
	if s.nodes > s.nodeLimit {
		s.truncated = true
		return
	}
	if cost+s.lowerBound(idx) >= s.best {
		return
	}
	if idx == len(s.vms) {
		s.best = cost
		s.bestAssign = make(map[int]Assignment, len(s.vms))
		for _, vm := range s.vms {
			pm, _ := s.cluster.Locate(vm.ID)
			h := pm.VMs()[vm.ID]
			assign := make(resource.Assignment, len(h.Assign))
			copy(assign, h.Assign)
			s.bestAssign[vm.ID] = Assignment{PM: pm.ID, Assign: assign}
		}
		return
	}

	vm := s.vms[idx]
	// Candidates: every used PM, plus the first unused PM of each
	// (type, cost) class — identical empty machines are symmetric.
	candidates := append([]*placement.PM(nil), s.cluster.UsedPMs()...)
	seenClass := map[string]bool{}
	for _, pm := range s.cluster.UnusedPMs() {
		class := fmt.Sprintf("%s/%g", pm.Type, s.cost(pm.ID))
		if seenClass[class] {
			continue
		}
		seenClass[class] = true
		candidates = append(candidates, pm)
	}

	for _, pm := range candidates {
		demand, ok := vm.DemandOn(pm.Type)
		if !ok {
			continue
		}
		stepCost := 0.0
		if !pm.Active() {
			stepCost = s.cost(pm.ID)
		}
		if cost+stepCost >= s.best {
			continue
		}
		for _, pl := range resource.Placements(pm.Shape, pm.Used(), demand) {
			if err := s.cluster.Host(pm, vm, pl.Assign); err != nil {
				continue
			}
			s.search(idx+1, cost+stepCost)
			if _, err := s.cluster.Release(vm.ID); err != nil {
				panic(fmt.Sprintf("mip: release: %v", err))
			}
			if s.truncated {
				return
			}
		}
	}
}
