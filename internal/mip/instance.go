package mip

import (
	"encoding/json"
	"fmt"
	"io"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/resource"
)

// Instance is the JSON-serializable description of a Section-IV
// problem instance, consumed by cmd/prvm-mip.
type Instance struct {
	PMTypes []PMTypeJSON       `json:"pmTypes"`
	PMs     []PMJSON           `json:"pms"`
	VMTypes []VMTypeJSON       `json:"vmTypes"`
	VMs     []VMJSON           `json:"vms"`
	Costs   map[string]float64 `json:"costs,omitempty"` // pm id -> activation cost
}

// PMTypeJSON describes a PM type's groups.
type PMTypeJSON struct {
	Name   string      `json:"name"`
	Groups []GroupJSON `json:"groups"`
}

// GroupJSON mirrors resource.Group.
type GroupJSON struct {
	Name string `json:"name"`
	Dims int    `json:"dims"`
	Cap  int    `json:"cap"`
}

// PMJSON is one machine.
type PMJSON struct {
	ID   int    `json:"id"`
	Type string `json:"type"`
}

// VMTypeJSON describes a VM type's demands.
type VMTypeJSON struct {
	Name    string       `json:"name"`
	Demands []DemandJSON `json:"demands"`
}

// DemandJSON mirrors resource.Demand.
type DemandJSON struct {
	Group string `json:"group"`
	Units []int  `json:"units"`
}

// VMJSON is one request.
type VMJSON struct {
	ID   int    `json:"id"`
	Type string `json:"type"`
}

// ReadInstance decodes an instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) {
	var inst Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&inst); err != nil {
		return nil, fmt.Errorf("mip: decode instance: %w", err)
	}
	return &inst, nil
}

// Write encodes the instance as indented JSON.
func (inst *Instance) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inst); err != nil {
		return fmt.Errorf("mip: encode instance: %w", err)
	}
	return nil
}

// Build materializes the instance into solver inputs.
func (inst *Instance) Build() (pms []*placement.PM, vms []*placement.VM, opts Options, err error) {
	shapes := make(map[string]*resource.Shape, len(inst.PMTypes))
	for _, pt := range inst.PMTypes {
		groups := make([]resource.Group, len(pt.Groups))
		for i, g := range pt.Groups {
			groups[i] = resource.Group{Name: g.Name, Dims: g.Dims, Cap: g.Cap}
		}
		shape, err := resource.NewShape(groups...)
		if err != nil {
			return nil, nil, opts, fmt.Errorf("mip: pm type %q: %w", pt.Name, err)
		}
		shapes[pt.Name] = shape
	}
	if len(inst.PMs) == 0 {
		return nil, nil, opts, fmt.Errorf("mip: instance has no PMs")
	}
	seenPM := make(map[int]bool, len(inst.PMs))
	for _, p := range inst.PMs {
		shape, ok := shapes[p.Type]
		if !ok {
			return nil, nil, opts, fmt.Errorf("mip: pm %d has unknown type %q", p.ID, p.Type)
		}
		if seenPM[p.ID] {
			return nil, nil, opts, fmt.Errorf("mip: duplicate pm id %d", p.ID)
		}
		seenPM[p.ID] = true
		pms = append(pms, placement.NewPM(p.ID, p.Type, shape))
	}

	vmTypes := make(map[string]map[string]resource.VMType, len(inst.VMTypes)) // vm type -> pm type -> demand
	for _, vt := range inst.VMTypes {
		demands := make([]resource.Demand, len(vt.Demands))
		for i, d := range vt.Demands {
			demands[i] = resource.Demand{Group: d.Group, Units: d.Units}
		}
		perPM := make(map[string]resource.VMType, len(shapes))
		for pmType := range shapes {
			perPM[pmType] = resource.NewVMType(vt.Name, demands...)
		}
		vmTypes[vt.Name] = perPM
	}
	seenVM := make(map[int]bool, len(inst.VMs))
	for _, v := range inst.VMs {
		perPM, ok := vmTypes[v.Type]
		if !ok {
			return nil, nil, opts, fmt.Errorf("mip: vm %d has unknown type %q", v.ID, v.Type)
		}
		if seenVM[v.ID] {
			return nil, nil, opts, fmt.Errorf("mip: duplicate vm id %d", v.ID)
		}
		seenVM[v.ID] = true
		vms = append(vms, &placement.VM{ID: v.ID, Type: v.Type, Req: perPM})
	}

	if len(inst.Costs) > 0 {
		opts.Costs = make(map[int]float64, len(inst.Costs))
		for idStr, cost := range inst.Costs {
			var id int
			if _, err := fmt.Sscanf(idStr, "%d", &id); err != nil {
				return nil, nil, opts, fmt.Errorf("mip: bad cost key %q", idStr)
			}
			opts.Costs[id] = cost
		}
	}
	return pms, vms, opts, nil
}

// ExampleInstance returns a small solvable sample, used by
// prvm-mip -example.
func ExampleInstance() *Instance {
	return &Instance{
		PMTypes: []PMTypeJSON{{
			Name: "host",
			Groups: []GroupJSON{
				{Name: "cpu", Dims: 4, Cap: 4},
				{Name: "mem", Dims: 1, Cap: 8},
			},
		}},
		PMs: []PMJSON{{ID: 0, Type: "host"}, {ID: 1, Type: "host"}, {ID: 2, Type: "host"}},
		VMTypes: []VMTypeJSON{
			{Name: "small", Demands: []DemandJSON{
				{Group: "cpu", Units: []int{1, 1}}, {Group: "mem", Units: []int{2}},
			}},
			{Name: "wide", Demands: []DemandJSON{
				{Group: "cpu", Units: []int{1, 1, 1, 1}}, {Group: "mem", Units: []int{2}},
			}},
		},
		VMs: []VMJSON{
			{ID: 0, Type: "small"}, {ID: 1, Type: "wide"},
			{ID: 2, Type: "small"}, {ID: 3, Type: "wide"},
		},
		Costs: map[string]float64{"2": 3},
	}
}
