package mip

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceRoundTrip(t *testing.T) {
	inst := ExampleInstance()
	var buf bytes.Buffer
	if err := inst.Write(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.PMs) != len(inst.PMs) || len(decoded.VMs) != len(inst.VMs) {
		t.Fatalf("round trip lost entries: %+v", decoded)
	}
}

func TestInstanceBuildAndSolve(t *testing.T) {
	pms, vms, opts, err := ExampleInstance().Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(pms) != 3 || len(vms) != 4 {
		t.Fatalf("built %d PMs, %d VMs", len(pms), len(vms))
	}
	if opts.Costs[2] != 3 {
		t.Fatalf("costs = %v", opts.Costs)
	}
	sol, err := Solve(pms, vms, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 small + 2 wide = 2*4 + 2*6... cpu: small 2, wide 4 -> 12 cpu
	// units and 8 mem units fit one host (16 cpu, 8 mem): mem binds at
	// exactly 8 -> one PM suffices.
	if sol.PMsUsed != 1 {
		t.Fatalf("PMsUsed = %d, want 1", sol.PMsUsed)
	}
	// The expensive PM (id 2, cost 3) must not be the one used.
	for _, a := range sol.Assignments {
		if a.PM == 2 {
			t.Fatalf("used the expensive PM: %+v", sol.Assignments)
		}
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	if _, err := ReadInstance(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadInstance(strings.NewReader(`{"bogusField": 1}`)); err == nil {
		t.Fatal("accepted unknown fields")
	}
}

func TestInstanceBuildValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Instance)
	}{
		{name: "no pms", mutate: func(i *Instance) { i.PMs = nil }},
		{name: "unknown pm type", mutate: func(i *Instance) { i.PMs[0].Type = "zzz" }},
		{name: "duplicate pm id", mutate: func(i *Instance) { i.PMs[1].ID = i.PMs[0].ID }},
		{name: "unknown vm type", mutate: func(i *Instance) { i.VMs[0].Type = "zzz" }},
		{name: "duplicate vm id", mutate: func(i *Instance) { i.VMs[1].ID = i.VMs[0].ID }},
		{name: "bad group", mutate: func(i *Instance) { i.PMTypes[0].Groups[0].Dims = 0 }},
		{name: "bad cost key", mutate: func(i *Instance) { i.Costs = map[string]float64{"abc": 1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inst := ExampleInstance()
			tt.mutate(inst)
			if _, _, _, err := inst.Build(); err == nil {
				t.Error("invalid instance accepted")
			}
		})
	}
}
