package placement

import (
	"errors"
	"math/rand"
	"testing"

	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// test fixtures: a single "small" PM type with 4 cores of capacity 4,
// the paper's testbed configuration.

const pmSmall = "small"

func smallShape() *resource.Shape {
	return resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
}

func smallVMTypes() []resource.VMType {
	return []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
}

func newVM(id int, typeName string) *VM {
	var vt resource.VMType
	for _, t := range smallVMTypes() {
		if t.Name == typeName {
			vt = t
		}
	}
	return &VM{ID: id, Type: typeName, Req: map[string]resource.VMType{pmSmall: vt}}
}

func newCluster(n int) *Cluster {
	shape := smallShape()
	pms := make([]*PM, n)
	for i := range pms {
		pms[i] = NewPM(i, pmSmall, shape)
	}
	return NewCluster(pms)
}

func smallRegistry(t *testing.T) *ranktable.Registry {
	t.Helper()
	table, err := ranktable.NewJoint(smallShape(), smallVMTypes(), ranktable.Options{})
	if err != nil {
		t.Fatalf("NewJoint: %v", err)
	}
	reg := ranktable.NewRegistry()
	reg.Add(pmSmall, table)
	return reg
}

// place is a test helper that runs a placer and commits the result.
func place(t *testing.T, c *Cluster, p Placer, vm *VM) *PM {
	t.Helper()
	pm, assign, err := p.Place(c, vm, nil)
	if err != nil {
		t.Fatalf("%s.Place(vm %d): %v", p.Name(), vm.ID, err)
	}
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatalf("Host: %v", err)
	}
	return pm
}

func TestClusterHostRelease(t *testing.T) {
	c := newCluster(2)
	if c.NumUsed() != 0 || len(c.UnusedPMs()) != 2 {
		t.Fatal("fresh cluster lists wrong")
	}
	vm := newVM(1, "[1,1]")
	pm := c.PMs()[0]
	demand, _ := vm.DemandOn(pmSmall)
	assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatalf("Host: %v", err)
	}
	if c.NumUsed() != 1 || c.MaxUsed != 1 || c.NumVMs() != 1 {
		t.Fatalf("after host: used=%d max=%d vms=%d", c.NumUsed(), c.MaxUsed, c.NumVMs())
	}
	got, ok := c.Locate(1)
	if !ok || got != pm {
		t.Fatal("Locate failed")
	}
	// Double placement rejected.
	if err := c.Host(pm, vm, assign); err == nil {
		t.Fatal("double Host accepted")
	}
	h, err := c.Release(1)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if h.VM != vm {
		t.Fatal("released wrong VM")
	}
	if c.NumUsed() != 0 || len(c.UnusedPMs()) != 2 {
		t.Fatal("emptied PM did not return to unused list")
	}
	if c.MaxUsed != 1 {
		t.Fatal("MaxUsed must be a high-water mark")
	}
	if _, err := c.Release(1); err == nil {
		t.Fatal("Release of unplaced VM accepted")
	}
}

func TestPMHostOverflowRejected(t *testing.T) {
	pm := NewPM(0, pmSmall, smallShape())
	vm := newVM(1, "[1,1]")
	bogus := resource.Assignment{{Dim: 0, Units: 5}}
	if err := pm.host(vm, bogus); err == nil {
		t.Fatal("over-capacity assignment accepted")
	}
	if pm.Used().Sum() != 0 {
		t.Fatal("failed host mutated PM")
	}
}

func TestPMRemoveUnknown(t *testing.T) {
	pm := NewPM(0, pmSmall, smallShape())
	if _, err := pm.remove(42); err == nil {
		t.Fatal("remove of unknown VM accepted")
	}
}

func TestFirstFitFillsInOrder(t *testing.T) {
	c := newCluster(3)
	ff := FirstFit{}
	// 8 x [1,1] = 16 units fill exactly one PM (4 dims x cap 4).
	for i := 0; i < 8; i++ {
		pm := place(t, c, ff, newVM(i, "[1,1]"))
		if pm != c.PMs()[0] {
			t.Fatalf("vm %d placed on pm %d, want 0", i, pm.ID)
		}
	}
	// The 9th VM opens the second PM.
	pm := place(t, c, ff, newVM(8, "[1,1]"))
	if pm != c.PMs()[1] {
		t.Fatalf("overflow vm placed on pm %d, want 1", pm.ID)
	}
	if c.MaxUsed != 2 {
		t.Fatalf("MaxUsed = %d, want 2", c.MaxUsed)
	}
}

func TestFirstFitNoCapacity(t *testing.T) {
	c := newCluster(1)
	ff := FirstFit{}
	for i := 0; i < 4; i++ {
		place(t, c, ff, newVM(i, "[1,1,1,1]"))
	}
	_, _, err := ff.Place(c, newVM(99, "[1,1]"), nil)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestFirstFitExcludesSource(t *testing.T) {
	c := newCluster(2)
	ff := FirstFit{}
	place(t, c, ff, newVM(0, "[1,1]"))
	src := c.PMs()[0]
	pm, _, err := ff.Place(c, newVM(1, "[1,1]"), src)
	if err != nil {
		t.Fatal(err)
	}
	if pm == src {
		t.Fatal("excluded PM chosen")
	}
}

func TestFFDSumOrderVMs(t *testing.T) {
	vms := []*VM{newVM(0, "[1,1]"), newVM(1, "[1,1,1,1]"), newVM(2, "[1,1]")}
	FFDSum{}.OrderVMs(vms)
	if vms[0].ID != 1 {
		t.Fatalf("largest VM not first: %d", vms[0].ID)
	}
	// Equal sizes keep ascending-ID order.
	if vms[1].ID != 0 || vms[2].ID != 2 {
		t.Fatalf("tie order wrong: %d,%d", vms[1].ID, vms[2].ID)
	}
}

func TestFFDSumPlaces(t *testing.T) {
	c := newCluster(2)
	p := FFDSum{}
	for i := 0; i < 8; i++ {
		place(t, c, p, newVM(i, "[1,1]"))
	}
	if c.NumUsed() != 1 {
		t.Fatalf("used %d PMs, want 1", c.NumUsed())
	}
}

func TestCompVMMinimizesVariance(t *testing.T) {
	c := newCluster(2)
	comp := CompVM{}
	// Preload PM0 unbalanced: one [1,1,1,1] + one extra [1,1] makes
	// [2,2,1,1]; PM1 balanced [1,1,1,1].
	pm0, pm1 := c.PMs()[0], c.PMs()[1]
	mustHost(t, c, pm0, newVM(0, "[1,1,1,1]"))
	mustHost(t, c, pm0, newVM(1, "[1,1]"))
	mustHost(t, c, pm1, newVM(2, "[1,1,1,1]"))

	// A [1,1] on PM0 can go on the two 1-dims -> [2,2,2,2], variance 0.
	// On PM1 the best is [2,2,1,1], variance > 0. CompVM must pick PM0.
	pm, assign, err := comp.Place(c, newVM(3, "[1,1]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm != pm0 {
		t.Fatalf("CompVM picked pm %d, want 0", pm.ID)
	}
	result := pm.Used().Add(assign.Vec(pm.Shape))
	if v, _ := utilVariance(pm.Shape, result); v != 0 {
		t.Fatalf("variance after placement = %v, want 0 (profile %v)", v, result)
	}
}

func TestBestFitPicksFullest(t *testing.T) {
	c := newCluster(3)
	bf := BestFit{}
	pm0, pm1 := c.PMs()[0], c.PMs()[1]
	mustHost(t, c, pm0, newVM(0, "[1,1]"))
	mustHost(t, c, pm1, newVM(1, "[1,1,1,1]"))
	// PM1 is fuller (4 units vs 2): BestFit chooses it.
	pm, _, err := bf.Place(c, newVM(2, "[1,1]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm != pm1 {
		t.Fatalf("BestFit picked pm %d, want 1", pm.ID)
	}
}

// mustHost places a VM on a specific PM with a greedy assignment.
func mustHost(t *testing.T, c *Cluster, pm *PM, vm *VM) {
	t.Helper()
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		t.Fatalf("vm %d has no demand for pm type %s", vm.ID, pm.Type)
	}
	assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
	if assign == nil {
		t.Fatalf("vm %d does not fit pm %d", vm.ID, pm.ID)
	}
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatal(err)
	}
}

func TestPlacersNeverOvercommit(t *testing.T) {
	placers := []Placer{FirstFit{}, FFDSum{}, CompVM{}, BestFit{}}
	for _, p := range placers {
		t.Run(p.Name(), func(t *testing.T) {
			c := newCluster(4)
			rng := rand.New(rand.NewSource(9))
			caps := smallShape().Capacity()
			for i := 0; i < 60; i++ {
				typ := "[1,1]"
				if rng.Intn(2) == 0 {
					typ = "[1,1,1,1]"
				}
				vm := newVM(i, typ)
				pm, assign, err := p.Place(c, vm, nil)
				if errors.Is(err, ErrNoCapacity) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Host(pm, vm, assign); err != nil {
					t.Fatal(err)
				}
				for _, m := range c.PMs() {
					if !m.Used().LE(caps) {
						t.Fatalf("pm %d overcommitted: %v", m.ID, m.Used())
					}
				}
			}
		})
	}
}
