package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pagerankvm/internal/resource"
)

// Property: under any random sequence of placements and releases the
// cluster bookkeeping stays consistent — used/unused lists partition
// the inventory, the location index matches PM contents, capacities
// hold, and MaxUsed is a high-water mark.
func TestClusterBookkeepingQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := newCluster(3)
		ff := FirstFit{}
		placed := map[int]bool{}
		nextID := 0
		maxSeen := 0

		for op := 0; op < 60; op++ {
			if r.Intn(3) != 0 || len(placed) == 0 {
				name := "[1,1]"
				if r.Intn(2) == 0 {
					name = "[1,1,1,1]"
				}
				vm := newVM(nextID, name)
				nextID++
				pm, assign, err := ff.Place(c, vm, nil)
				if err != nil {
					continue // full; fine
				}
				if err := c.Host(pm, vm, assign); err != nil {
					return false
				}
				placed[vm.ID] = true
			} else {
				// Release a random placed VM.
				var victim int
				k := r.Intn(len(placed))
				for id := range placed {
					if k == 0 {
						victim = id
						break
					}
					k--
				}
				if _, err := c.Release(victim); err != nil {
					return false
				}
				delete(placed, victim)
			}
			if c.NumUsed() > maxSeen {
				maxSeen = c.NumUsed()
			}

			// Invariants after every operation.
			if len(c.UsedPMs())+len(c.UnusedPMs()) != len(c.PMs()) {
				return false
			}
			for _, pm := range c.UsedPMs() {
				if !pm.Active() {
					return false
				}
			}
			for _, pm := range c.UnusedPMs() {
				if pm.Active() {
					return false
				}
			}
			caps := smallShape().Capacity()
			total := 0
			for _, pm := range c.PMs() {
				if !pm.Used().LE(caps) {
					return false
				}
				recomputed := pm.Shape.Zero()
				for _, h := range pm.VMs() {
					recomputed = recomputed.Add(h.Assign.Vec(pm.Shape))
				}
				if !recomputed.Equal(pm.Used()) {
					return false
				}
				total += pm.NumVMs()
			}
			if total != len(placed) || c.NumVMs() != len(placed) {
				return false
			}
			for id := range placed {
				pm, ok := c.Locate(id)
				if !ok {
					return false
				}
				if _, hosted := pm.VMs()[id]; !hosted {
					return false
				}
			}
			if c.MaxUsed != maxSeen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: GreedyAssign and PackAssign succeed exactly when Fits says
// a placement exists, and both respect capacity and anti-collocation.
func TestAssignFunctionsAgreeWithFits(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 4, Cap: 3},
		resource.Group{Name: "disk", Dims: 2, Cap: 5},
	)
	types := []resource.VMType{
		resource.NewVMType("a", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("b", resource.Demand{Group: "cpu", Units: []int{2, 2, 2}}),
		resource.NewVMType("c",
			resource.Demand{Group: "cpu", Units: []int{3}},
			resource.Demand{Group: "disk", Units: []int{4, 2}}),
	}
	caps := shape.Capacity()
	rng := rand.New(rand.NewSource(33))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := make(resource.Vec, shape.NumDims())
		for i := range p {
			p[i] = r.Intn(caps[i] + 1)
		}
		vt := types[r.Intn(len(types))]
		fits := resource.Fits(shape, p, vt)
		for _, assignFn := range []func(*resource.Shape, resource.Vec, resource.VMType) resource.Assignment{
			resource.GreedyAssign, resource.PackAssign,
		} {
			assign := assignFn(shape, p, vt)
			if (assign != nil) != fits {
				return false
			}
			if assign == nil {
				continue
			}
			result := p.Add(assign.Vec(shape))
			if !result.LE(caps) {
				return false
			}
			// Anti-collocation within each demand: dims distinct.
			// Demands target disjoint groups here, so global
			// uniqueness suffices.
			seen := map[int]bool{}
			for _, du := range assign {
				if seen[du.Dim] {
					return false
				}
				seen[du.Dim] = true
			}
			if result.Sum()-p.Sum() != vt.TotalUnits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Error(err)
	}
}
