package placement

import (
	"fmt"
	"math/rand"
	"time"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// PageRankVM is the paper's Algorithm 2: for a given VM it derives, on
// every used PM with sufficient resources, the set of possible PM
// profiles after accommodating every permutation of the VM's demands,
// looks the resulting profiles up in the Profile→PageRank score table,
// and places the VM where the best resulting profile scores highest.
//
// Score ties (PMs whose resulting profiles coincide) are broken
// uniformly at random with a seeded generator: the paper does not
// specify tie-breaking, and always taking the first candidate would
// pile consecutive same-tenant requests onto one PM.
type PageRankVM struct {
	rankers *ranktable.Registry
	rng     *rand.Rand

	// twoChoice enables the Section V-C variant: instead of scanning
	// the whole used list, sample two random used PMs and pick the
	// better one.
	twoChoice bool

	// noFast disables the id-indexed fast path (WithoutFastPath),
	// forcing the string-key enumeration on every candidate. Both
	// paths make identical decisions (see TestFastPathEquivalence);
	// the switch exists for that test and for A/B benchmarking.
	noFast bool

	// binds caches per-PM-type ranker/demand/fast-path resolutions for
	// the VM currently being placed (bindVM); reset when the VM changes.
	binds  []binding
	bindVM *VM

	// obs and the pre-resolved met counters are nil without
	// WithObserver; every instrument call is then a no-op branch.
	obs *obs.Observer
	met placeMetrics

	// rec is the decision recorder (WithRecorder). When nil — the
	// default — Place skips candidate-set assembly and phase timing
	// entirely behind one boolean check, leaving the hot path intact.
	// recCands and recTied are scratch reused across decisions.
	rec      *record.Recorder
	recCands []record.Candidate
	recTied  []int
}

// binding is the per-(PM type, VM) resolution Algorithm 2's candidate
// loop would otherwise redo per PM: the ranker, the VM's quantized
// demand on the PM type, and — when the ranker supports it — the
// id-indexed fast-path handles.
type binding struct {
	pmType    string
	ranker    ranktable.Ranker
	demand    resource.VMType
	hasDemand bool
	fr        ranktable.FastRanker
	ref       ranktable.TypeRef
	fast      bool
}

// placeMetrics holds the placer's pre-resolved instruments so the
// Algorithm 2 hot path never does name lookups.
type placeMetrics struct {
	placeCalls      *obs.Counter // placement.place_calls
	pmsScanned      *obs.Counter // placement.pms_scanned
	profilesScored  *obs.Counter // placement.profiles_enumerated
	tiesBroken      *obs.Counter // placement.ties_broken
	twoChoiceDraws  *obs.Counter // placement.two_choice_samples
	pmsOpened       *obs.Counter // placement.pms_opened
	noCapacity      *obs.Counter // placement.no_capacity
	evictionsScored *obs.Counter // placement.evictions_scored
	victimsSelected *obs.Counter // placement.victims_selected

	// Per-decision phase latency histograms, observed only while a
	// recorder is attached (phase timing is not free).
	phaseScan  *obs.Histogram // placement.phase_scan_seconds
	phaseCheck *obs.Histogram // placement.phase_check_seconds
	phaseBind  *obs.Histogram // placement.phase_bind_seconds
}

// phaseBuckets spans 10ns..~1.3s exponentially — per-decision phases
// sit far below the DefSecondsBuckets floor of 1µs.
func phaseBuckets() []float64 { return obs.ExpBuckets(1e-8, 2, 28) }

func newPlaceMetrics(o *obs.Observer) placeMetrics {
	return placeMetrics{
		placeCalls:      o.Counter("placement.place_calls"),
		pmsScanned:      o.Counter("placement.pms_scanned"),
		profilesScored:  o.Counter("placement.profiles_enumerated"),
		tiesBroken:      o.Counter("placement.ties_broken"),
		twoChoiceDraws:  o.Counter("placement.two_choice_samples"),
		pmsOpened:       o.Counter("placement.pms_opened"),
		noCapacity:      o.Counter("placement.no_capacity"),
		evictionsScored: o.Counter("placement.evictions_scored"),
		victimsSelected: o.Counter("placement.victims_selected"),
		phaseScan:       o.Histogram("placement.phase_scan_seconds", phaseBuckets()),
		phaseCheck:      o.Histogram("placement.phase_check_seconds", phaseBuckets()),
		phaseBind:       o.Histogram("placement.phase_bind_seconds", phaseBuckets()),
	}
}

var _ Placer = (*PageRankVM)(nil)

// scoreEpsilon is the relative tolerance within which two placement
// scores count as tied.
const scoreEpsilon = 1e-12

// PageRankOption configures the PageRankVM placer.
type PageRankOption interface{ apply(*PageRankVM) }

type twoChoiceOption struct{}

func (twoChoiceOption) apply(p *PageRankVM) { p.twoChoice = true }

// WithTwoChoice enables 2-choice candidate sampling.
func WithTwoChoice() PageRankOption { return twoChoiceOption{} }

type seedOption struct{ seed int64 }

func (o seedOption) apply(p *PageRankVM) { p.rng = rand.New(rand.NewSource(o.seed)) }

// WithSeed sets the seed of the tie-breaking (and 2-choice sampling)
// generator; the default seed is 1.
func WithSeed(seed int64) PageRankOption { return seedOption{seed: seed} }

type noFastOption struct{}

func (noFastOption) apply(p *PageRankVM) { p.noFast = true }

// WithoutFastPath forces the string-key enumeration path even when the
// rankers support id-indexed scoring. Decisions are identical either
// way; this exists for equivalence testing and A/B benchmarks.
func WithoutFastPath() PageRankOption { return noFastOption{} }

type observerOption struct{ o *obs.Observer }

func (o observerOption) apply(p *PageRankVM) {
	p.obs = o.o
	p.met = newPlaceMetrics(o.o)
}

// WithObserver attaches a telemetry observer recording the placement.*
// decision counters, and — when the observer has an event sink — a
// structured trace event per Place call. A nil observer (the default)
// keeps the instrumentation disabled at ~zero cost.
func WithObserver(o *obs.Observer) PageRankOption { return observerOption{o: o} }

type recorderOption struct{ r *record.Recorder }

func (o recorderOption) apply(p *PageRankVM) { p.rec = o.r }

// WithRecorder attaches a decision recorder: every Place call appends
// one record.Decision — the full candidate set with scores and
// rejection reasons, the tie-break path, and scan/check/bind phase
// timings (also observed into the placement.phase_*_seconds histograms
// when an observer is attached). A nil recorder (the default) keeps
// recording disabled behind a single branch.
func WithRecorder(r *record.Recorder) PageRankOption { return recorderOption{r: r} }

// NewPageRankVM builds the placer over a registry holding one ranker
// per PM type in the inventory.
func NewPageRankVM(rankers *ranktable.Registry, opts ...PageRankOption) *PageRankVM {
	p := &PageRankVM{
		rankers: rankers,
		rng:     rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o.apply(p)
	}
	return p
}

// Ranker returns the ranker registered for a PM type — extensions
// (e.g. the network-aware decorator) evaluate candidate profiles with
// the same tables the placer uses.
func (p *PageRankVM) Ranker(pmType string) (ranktable.Ranker, bool) {
	return p.rankers.Get(pmType)
}

// Name implements Placer.
func (p *PageRankVM) Name() string {
	if p.twoChoice {
		return "PageRankVM-2choice"
	}
	return "PageRankVM"
}

// Place implements Placer (Algorithm 2).
func (p *PageRankVM) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	p.met.placeCalls.Inc()
	candidates := c.UsedPMs()
	if p.twoChoice && len(candidates) > 2 {
		candidates = p.sample(candidates)
		p.met.twoChoiceDraws.Inc()
	}

	// rec gates every recording expense — candidate-set assembly,
	// tie-path tracking, phase clocks — behind one branch, so the
	// disabled path stays byte-for-byte the pre-recording loop.
	rec := p.rec.Active()
	var (
		recCands  []record.Candidate
		recTied   []int
		ph        record.Phases
		scanStart time.Time
	)
	if rec {
		recCands = p.recCands[:0]
		recTied = p.recTied[:0]
		scanStart = time.Now()
	}

	var (
		bestPM     *PM
		bestAssign resource.Assignment
		bestBind   binding
		bestScore  = -1.0
		ties       = 0
		scanned    = 0
		profiles   = 0
	)
	for _, pm := range candidates {
		scanned++
		if rec {
			if pm == exclude {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusExcluded})
				continue
			}
			if pm.Cordoned() {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusCordoned})
				continue
			}
			t0 := time.Now()
			fits := pm.Fits(vm)
			ph.CheckNs += int64(time.Since(t0))
			if !fits {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoFit})
				continue
			}
		} else if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		b, err := p.binding(pm.Type, vm)
		if err != nil {
			return nil, nil, err
		}
		if !b.hasDemand {
			if rec {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoDemand})
			}
			continue
		}
		score, assign, n, ok := p.scoreCandidate(b, pm)
		profiles += n
		if !ok {
			if rec {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoProfile, Profiles: n})
			}
			continue
		}
		if rec {
			recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusScored, Score: score, Profiles: n})
		}
		switch {
		case score > bestScore*(1+scoreEpsilon):
			bestScore, bestPM, bestAssign, bestBind = score, pm, assign, b
			ties = 1
			if rec {
				recTied = append(recTied[:0], pm.ID)
			}
		case score >= bestScore*(1-scoreEpsilon):
			// Tie: reservoir-sample uniformly among tied candidates.
			ties++
			if p.rng.Intn(ties) == 0 {
				bestPM, bestAssign, bestBind = pm, assign, b
			}
			if rec {
				recTied = append(recTied, pm.ID)
			}
		}
	}
	p.met.pmsScanned.Add(int64(scanned))
	if bestPM != nil {
		p.met.profilesScored.Add(int64(profiles))
		if ties > 1 {
			p.met.tiesBroken.Add(int64(ties - 1))
		}
		var bindStart time.Time
		if rec {
			ph.ScanNs = int64(time.Since(scanStart))
			bindStart = time.Now()
		}
		// Winners get their assignment here, once, instead of one per
		// candidate: fast-path winners materialize from the move table,
		// slow-path winners translate their canonical-coordinate
		// assignment to the PM's actual dimension order.
		if bestAssign == nil {
			bestAssign = p.materialize(bestBind, bestPM)
			if bestAssign == nil {
				return nil, nil, fmt.Errorf("placement: cannot materialize assignment on pm %d", bestPM.ID)
			}
		} else {
			bestAssign = alignAssign(bestPM.Shape, bestPM.used, bestAssign)
		}
		if rec {
			ph.BindNs = int64(time.Since(bindStart))
			p.recordPlace(vm, bestPM, bestScore, scanned, profiles, ties, recCands, recTied, bestBind.fast, false, &ph)
		}
		p.tracePlace(vm, bestPM, bestScore, scanned, profiles, ties, false)
		return bestPM, bestAssign, nil
	}
	// Lines 17-24: fall back to an unused PM, choosing the
	// best-scoring accommodation on the fresh profile.
	for _, pm := range c.UnusedPMs() {
		if rec {
			if pm == exclude {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusExcluded, Unused: true})
				continue
			}
			if pm.Cordoned() {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusCordoned, Unused: true})
				continue
			}
			t0 := time.Now()
			fits := pm.Fits(vm)
			ph.CheckNs += int64(time.Since(t0))
			if !fits {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoFit, Unused: true})
				continue
			}
		} else if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		b, err := p.binding(pm.Type, vm)
		if err != nil {
			return nil, nil, err
		}
		if !b.hasDemand {
			if rec {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoDemand, Unused: true})
			}
			continue
		}
		_, assign, n, ok := p.scoreCandidate(b, pm)
		profiles += n
		if ok {
			var bindStart time.Time
			if rec {
				recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusScored, Profiles: n, Unused: true})
				ph.ScanNs = int64(time.Since(scanStart))
				bindStart = time.Now()
			}
			if assign == nil {
				assign = p.materialize(b, pm)
			} else {
				assign = alignAssign(pm.Shape, pm.used, assign)
			}
			if assign != nil {
				p.met.profilesScored.Add(int64(profiles))
				p.met.pmsOpened.Inc()
				if rec {
					ph.BindNs = int64(time.Since(bindStart))
					p.recordPlace(vm, pm, 0, scanned, profiles, 0, recCands, nil, b.fast, true, &ph)
				}
				p.tracePlace(vm, pm, 0, scanned, profiles, 0, true)
				return pm, assign, nil
			}
		} else if rec {
			recCands = append(recCands, record.Candidate{PM: pm.ID, Status: record.StatusNoProfile, Profiles: n, Unused: true})
		}
	}
	p.met.profilesScored.Add(int64(profiles))
	p.met.noCapacity.Inc()
	if rec {
		ph.ScanNs = int64(time.Since(scanStart))
		p.recordPlace(vm, nil, 0, scanned, profiles, 0, recCands, nil, false, false, &ph)
	}
	return nil, nil, ErrNoCapacity
}

// recordPlace assembles and appends one record.Decision, feeds the
// phase histograms, and stashes the candidate scratch for reuse.
func (p *PageRankVM) recordPlace(vm *VM, pm *PM, score float64, scanned, profiles, ties int, cands []record.Candidate, tied []int, fast, opened bool, ph *record.Phases) {
	d := record.Decision{
		VM:         vm.ID,
		VMType:     vm.Type,
		PM:         -1,
		Score:      score,
		Scanned:    scanned,
		Profiles:   profiles,
		Ties:       ties,
		Opened:     opened,
		Candidates: cands,
		Fast:       fast,
		Phases:     ph,
	}
	if pm != nil {
		d.PM = pm.ID
		d.PMType = pm.Type
	} else {
		d.Rejected = true
	}
	if ties > 1 {
		d.TiedPMs = tied
	}
	p.rec.RecordDecision(d)
	p.met.phaseScan.Observe(float64(ph.ScanNs) / 1e9)
	p.met.phaseCheck.Observe(float64(ph.CheckNs) / 1e9)
	p.met.phaseBind.Observe(float64(ph.BindNs) / 1e9)
	// RecordDecision copied (collector) or serialized (JSONL) the
	// slices, so the scratch can be handed back for the next decision.
	p.recCands = cands[:0]
	p.recTied = tied[:0]
}

// tracePlace emits one structured decision event; field assembly is
// skipped entirely unless the observer has a sink attached.
func (p *PageRankVM) tracePlace(vm *VM, pm *PM, score float64, scanned, profiles, ties int, opened bool) {
	if !p.obs.TraceActive() {
		return
	}
	p.obs.Emit(obs.Event{Name: "placement.place", Fields: []obs.Field{
		obs.F("vm", vm.ID),
		obs.F("vm_type", vm.Type),
		obs.F("pm", pm.ID),
		obs.F("pm_type", pm.Type),
		obs.F("score", score),
		obs.F("pms_scanned", scanned),
		obs.F("profiles", profiles),
		obs.F("ties", ties),
		obs.F("opened_fresh_pm", opened),
	}})
}

// binding resolves (and caches, for the VM currently being placed) the
// ranker, demand and fast-path handles for one PM type.
func (p *PageRankVM) binding(pmType string, vm *VM) (binding, error) {
	if p.bindVM != vm {
		p.binds = p.binds[:0]
		p.bindVM = vm
	}
	for i := range p.binds {
		if p.binds[i].pmType == pmType {
			return p.binds[i], nil
		}
	}
	b, err := p.resolveBinding(pmType, vm)
	if err != nil {
		return binding{}, err
	}
	p.binds = append(p.binds, b)
	return b, nil
}

func (p *PageRankVM) resolveBinding(pmType string, vm *VM) (binding, error) {
	ranker, ok := p.rankers.Get(pmType)
	if !ok {
		return binding{}, fmt.Errorf("placement: no ranker registered for PM type %q", pmType)
	}
	b := binding{pmType: pmType, ranker: ranker}
	b.demand, b.hasDemand = vm.DemandOn(pmType)
	if b.hasDemand && !p.noFast {
		if fr, ok := ranker.(ranktable.FastRanker); ok && fr.Fast() {
			if ref, ok := fr.ResolveType(b.demand); ok {
				b.fr, b.ref, b.fast = fr, ref, true
			}
		}
	}
	return b, nil
}

// pmNodeIDs resolves pm's used profile to fr's lattice node ids,
// serving repeats from the cache on the PM (invalidated whenever the
// profile mutates — see PM.gen).
//
//prvm:hotpath
func pmNodeIDs(pm *PM, fr ranktable.FastRanker) ([]int32, bool) {
	if pm.rankOwner == fr && pm.rankGen == pm.gen {
		return pm.rankIDs, pm.rankOK
	}
	ids, ok := fr.NodeIDs(pm.used, pm.rankIDs)
	pm.rankIDs, pm.rankOK = ids, ok
	pm.rankGen, pm.rankOwner = pm.gen, fr
	return ids, ok
}

// scoreCandidate scores the best accommodation of the bound VM on pm
// (lines 6-7 of Algorithm 2) plus the number of candidate profiles.
// On the fast path the returned assignment is nil — the caller
// materializes it for the winning PM only. The slow path enumerates
// resource.Placements from the PM's canonical profile — the same
// sequence the lattice's typed successor lists were wired from, so
// both paths break score ties identically — and string-key scores
// each result. The returned slow-path assignment is therefore in
// canonical coordinates; callers translate with alignAssign.
//
//prvm:hotpath
func (p *PageRankVM) scoreCandidate(b binding, pm *PM) (float64, resource.Assignment, int, bool) {
	if b.fast {
		if ids, ok := pmNodeIDs(pm, b.fr); ok {
			score, count, ok := b.fr.BestMove(ids, b.ref)
			return score, nil, count, ok
		}
	}
	var (
		bestScore  = -1.0
		bestAssign resource.Assignment
	)
	placements := resource.Placements(pm.Shape, pm.Shape.Canon(pm.used), b.demand)
	for _, pl := range placements {
		score, ok := b.ranker.Score(pl.Result)
		if !ok {
			continue
		}
		if score > bestScore {
			bestScore, bestAssign = score, pl.Assign
		}
	}
	if bestAssign == nil {
		return 0, nil, len(placements), false
	}
	return bestScore, bestAssign, len(placements), true
}

// materialize produces the concrete assignment realizing the fast
// path's best move on pm, translated from canonical to the PM's actual
// dimension order. Returns nil if the move cannot be realized (which a
// successful scoreCandidate on the same profile rules out; the
// enumeration fallback is defensive).
func (p *PageRankVM) materialize(b binding, pm *PM) resource.Assignment {
	if b.fast {
		if ids, ok := pmNodeIDs(pm, b.fr); ok {
			if canon, ok := b.fr.Materialize(ids, b.ref); ok {
				return alignAssign(pm.Shape, pm.used, canon)
			}
		}
		b.fast = false
	}
	_, assign, _, _ := p.scoreCandidate(b, pm)
	if assign == nil {
		return nil
	}
	return alignAssign(pm.Shape, pm.used, assign)
}

// alignAssign translates an assignment expressed in canonical
// coordinates (positions within each group's sorted profile) to the
// PM's actual dimension order: canonical position k of a group maps to
// the actual dimension holding the k-th smallest used value, ties by
// dimension index — the same stable order the canonical sort applies.
// The aligned assignment is valid against used and yields a profile
// whose canonical form is exactly the lattice successor the move was
// scored on.
func alignAssign(shape *resource.Shape, used resource.Vec, canon resource.Assignment) resource.Assignment {
	out := make(resource.Assignment, len(canon))
	copy(out, canon)
	var perm [16]int
	for gi := 0; gi < shape.NumGroups(); gi++ {
		lo, hi := shape.GroupRange(gi)
		sorted := true
		for d := lo + 1; d < hi; d++ {
			if used[d] < used[d-1] {
				sorted = false
				break
			}
		}
		if sorted {
			continue
		}
		// Stable insertion sort of the group's dimension indices by
		// used value: p[k] = in-group index of the k-th smallest.
		n := hi - lo
		pp := perm[:0]
		if n > len(perm) {
			pp = make([]int, 0, n)
		}
		for d := 0; d < n; d++ {
			pp = append(pp, d)
		}
		for i := 1; i < n; i++ {
			for j := i; j > 0 && used[lo+pp[j]] < used[lo+pp[j-1]]; j-- {
				pp[j], pp[j-1] = pp[j-1], pp[j]
			}
		}
		for i := range out {
			if out[i].Dim >= lo && out[i].Dim < hi {
				out[i].Dim = lo + pp[out[i].Dim-lo]
			}
		}
	}
	return out
}

// ScoreOn returns the best accommodation score of vm on pm — one
// candidate evaluation of Algorithm 2's inner loop, exposed for
// benchmarking the id-indexed fast path against the enumeration path.
// On the fast path it runs in ~25ns with zero allocations — the
// alloc_gate test and the hotalloc analyzer both hold it there.
//
//prvm:hotpath
func (p *PageRankVM) ScoreOn(pm *PM, vm *VM) (float64, bool) {
	b, err := p.binding(pm.Type, vm)
	if err != nil || !b.hasDemand {
		return 0, false
	}
	score, _, _, ok := p.scoreCandidate(b, pm)
	return score, ok
}

// sample draws two distinct random used PMs (the 2-choice method).
func (p *PageRankVM) sample(used []*PM) []*PM {
	i := p.rng.Intn(len(used))
	j := p.rng.Intn(len(used) - 1)
	if j >= i {
		j++
	}
	return []*PM{used[i], used[j]}
}

// ScoreVictim returns the rank of pm's residual profile after removing
// the hosted VM — the paper's overload handling picks the VM whose
// removal yields the highest residual score. ok is false when the PM
// type has no ranker or the profile is outside the table.
func (p *PageRankVM) ScoreVictim(pm *PM, h Hosted) (float64, bool) {
	p.met.evictionsScored.Inc()
	ranker, ok := p.rankers.Get(pm.Type)
	if !ok {
		return 0, false
	}
	residual := pm.Used().Sub(h.Assign.Vec(pm.Shape))
	return ranker.Score(residual)
}
