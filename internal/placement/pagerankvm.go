package placement

import (
	"fmt"
	"math/rand"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// PageRankVM is the paper's Algorithm 2: for a given VM it derives, on
// every used PM with sufficient resources, the set of possible PM
// profiles after accommodating every permutation of the VM's demands,
// looks the resulting profiles up in the Profile→PageRank score table,
// and places the VM where the best resulting profile scores highest.
//
// Score ties (PMs whose resulting profiles coincide) are broken
// uniformly at random with a seeded generator: the paper does not
// specify tie-breaking, and always taking the first candidate would
// pile consecutive same-tenant requests onto one PM.
type PageRankVM struct {
	rankers *ranktable.Registry
	rng     *rand.Rand

	// twoChoice enables the Section V-C variant: instead of scanning
	// the whole used list, sample two random used PMs and pick the
	// better one.
	twoChoice bool

	// obs and the pre-resolved met counters are nil without
	// WithObserver; every instrument call is then a no-op branch.
	obs *obs.Observer
	met placeMetrics
}

// placeMetrics holds the placer's pre-resolved instruments so the
// Algorithm 2 hot path never does name lookups.
type placeMetrics struct {
	placeCalls      *obs.Counter // placement.place_calls
	pmsScanned      *obs.Counter // placement.pms_scanned
	profilesScored  *obs.Counter // placement.profiles_enumerated
	tiesBroken      *obs.Counter // placement.ties_broken
	twoChoiceDraws  *obs.Counter // placement.two_choice_samples
	pmsOpened       *obs.Counter // placement.pms_opened
	noCapacity      *obs.Counter // placement.no_capacity
	evictionsScored *obs.Counter // placement.evictions_scored
	victimsSelected *obs.Counter // placement.victims_selected
}

func newPlaceMetrics(o *obs.Observer) placeMetrics {
	return placeMetrics{
		placeCalls:      o.Counter("placement.place_calls"),
		pmsScanned:      o.Counter("placement.pms_scanned"),
		profilesScored:  o.Counter("placement.profiles_enumerated"),
		tiesBroken:      o.Counter("placement.ties_broken"),
		twoChoiceDraws:  o.Counter("placement.two_choice_samples"),
		pmsOpened:       o.Counter("placement.pms_opened"),
		noCapacity:      o.Counter("placement.no_capacity"),
		evictionsScored: o.Counter("placement.evictions_scored"),
		victimsSelected: o.Counter("placement.victims_selected"),
	}
}

var _ Placer = (*PageRankVM)(nil)

// scoreEpsilon is the relative tolerance within which two placement
// scores count as tied.
const scoreEpsilon = 1e-12

// PageRankOption configures the PageRankVM placer.
type PageRankOption interface{ apply(*PageRankVM) }

type twoChoiceOption struct{}

func (twoChoiceOption) apply(p *PageRankVM) { p.twoChoice = true }

// WithTwoChoice enables 2-choice candidate sampling.
func WithTwoChoice() PageRankOption { return twoChoiceOption{} }

type seedOption struct{ seed int64 }

func (o seedOption) apply(p *PageRankVM) { p.rng = rand.New(rand.NewSource(o.seed)) }

// WithSeed sets the seed of the tie-breaking (and 2-choice sampling)
// generator; the default seed is 1.
func WithSeed(seed int64) PageRankOption { return seedOption{seed: seed} }

type observerOption struct{ o *obs.Observer }

func (o observerOption) apply(p *PageRankVM) {
	p.obs = o.o
	p.met = newPlaceMetrics(o.o)
}

// WithObserver attaches a telemetry observer recording the placement.*
// decision counters, and — when the observer has an event sink — a
// structured trace event per Place call. A nil observer (the default)
// keeps the instrumentation disabled at ~zero cost.
func WithObserver(o *obs.Observer) PageRankOption { return observerOption{o: o} }

// NewPageRankVM builds the placer over a registry holding one ranker
// per PM type in the inventory.
func NewPageRankVM(rankers *ranktable.Registry, opts ...PageRankOption) *PageRankVM {
	p := &PageRankVM{
		rankers: rankers,
		rng:     rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o.apply(p)
	}
	return p
}

// Ranker returns the ranker registered for a PM type — extensions
// (e.g. the network-aware decorator) evaluate candidate profiles with
// the same tables the placer uses.
func (p *PageRankVM) Ranker(pmType string) (ranktable.Ranker, bool) {
	return p.rankers.Get(pmType)
}

// Name implements Placer.
func (p *PageRankVM) Name() string {
	if p.twoChoice {
		return "PageRankVM-2choice"
	}
	return "PageRankVM"
}

// Place implements Placer (Algorithm 2).
func (p *PageRankVM) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	p.met.placeCalls.Inc()
	candidates := c.UsedPMs()
	if p.twoChoice && len(candidates) > 2 {
		candidates = p.sample(candidates)
		p.met.twoChoiceDraws.Inc()
	}

	var (
		bestPM     *PM
		bestAssign resource.Assignment
		bestScore  = -1.0
		ties       = 0
		scanned    = 0
		profiles   = 0
	)
	for _, pm := range candidates {
		scanned++
		if pm == exclude || !pm.Fits(vm) {
			continue
		}
		score, assign, n, err := p.bestOn(pm, vm)
		profiles += n
		if err != nil {
			return nil, nil, err
		}
		if assign == nil {
			continue
		}
		switch {
		case score > bestScore*(1+scoreEpsilon):
			bestScore, bestPM, bestAssign = score, pm, assign
			ties = 1
		case score >= bestScore*(1-scoreEpsilon):
			// Tie: reservoir-sample uniformly among tied candidates.
			ties++
			if p.rng.Intn(ties) == 0 {
				bestPM, bestAssign = pm, assign
			}
		}
	}
	p.met.pmsScanned.Add(int64(scanned))
	if bestPM != nil {
		p.met.profilesScored.Add(int64(profiles))
		if ties > 1 {
			p.met.tiesBroken.Add(int64(ties - 1))
		}
		p.tracePlace(vm, bestPM, bestScore, scanned, profiles, ties, false)
		return bestPM, bestAssign, nil
	}
	// Lines 17-24: fall back to an unused PM, choosing the
	// best-scoring accommodation on the fresh profile.
	for _, pm := range c.UnusedPMs() {
		if pm == exclude || !pm.Fits(vm) {
			continue
		}
		_, assign, n, err := p.bestOn(pm, vm)
		profiles += n
		if err != nil {
			return nil, nil, err
		}
		if assign != nil {
			p.met.profilesScored.Add(int64(profiles))
			p.met.pmsOpened.Inc()
			p.tracePlace(vm, pm, 0, scanned, profiles, 0, true)
			return pm, assign, nil
		}
	}
	p.met.profilesScored.Add(int64(profiles))
	p.met.noCapacity.Inc()
	return nil, nil, ErrNoCapacity
}

// tracePlace emits one structured decision event; field assembly is
// skipped entirely unless the observer has a sink attached.
func (p *PageRankVM) tracePlace(vm *VM, pm *PM, score float64, scanned, profiles, ties int, opened bool) {
	if !p.obs.TraceActive() {
		return
	}
	p.obs.Emit(obs.Event{Name: "placement.place", Fields: []obs.Field{
		obs.F("vm", vm.ID),
		obs.F("vm_type", vm.Type),
		obs.F("pm", pm.ID),
		obs.F("pm_type", pm.Type),
		obs.F("score", score),
		obs.F("pms_scanned", scanned),
		obs.F("profiles", profiles),
		obs.F("ties", ties),
		obs.F("opened_fresh_pm", opened),
	}})
}

// bestOn scores every distinct accommodation of vm on pm and returns
// the best (lines 6-7 of Algorithm 2) plus the number of candidate
// profiles enumerated.
func (p *PageRankVM) bestOn(pm *PM, vm *VM) (float64, resource.Assignment, int, error) {
	ranker, ok := p.rankers.Get(pm.Type)
	if !ok {
		return 0, nil, 0, fmt.Errorf("placement: no ranker registered for PM type %q", pm.Type)
	}
	demand, ok := vm.DemandOn(pm.Type)
	if !ok {
		return 0, nil, 0, nil
	}
	var (
		bestScore  = -1.0
		bestAssign resource.Assignment
	)
	placements := resource.Placements(pm.Shape, pm.Used(), demand)
	for _, pl := range placements {
		score, ok := ranker.Score(pl.Result)
		if !ok {
			continue
		}
		if score > bestScore {
			bestScore, bestAssign = score, pl.Assign
		}
	}
	if bestAssign == nil {
		return 0, nil, len(placements), nil
	}
	return bestScore, bestAssign, len(placements), nil
}

// sample draws two distinct random used PMs (the 2-choice method).
func (p *PageRankVM) sample(used []*PM) []*PM {
	i := p.rng.Intn(len(used))
	j := p.rng.Intn(len(used) - 1)
	if j >= i {
		j++
	}
	return []*PM{used[i], used[j]}
}

// ScoreVictim returns the rank of pm's residual profile after removing
// the hosted VM — the paper's overload handling picks the VM whose
// removal yields the highest residual score. ok is false when the PM
// type has no ranker or the profile is outside the table.
func (p *PageRankVM) ScoreVictim(pm *PM, h Hosted) (float64, bool) {
	p.met.evictionsScored.Inc()
	ranker, ok := p.rankers.Get(pm.Type)
	if !ok {
		return 0, false
	}
	residual := pm.Used().Sub(h.Assign.Vec(pm.Shape))
	return ranker.Score(residual)
}
