package placement_test

import (
	"fmt"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// The placement fast path end to end: build a rank table for the
// paper's testbed shape (one cpu group, four cores of capacity four),
// register it, and drive Algorithm 2. The placer scans used PMs in
// first-use order, commits each VM to the accommodation with the
// highest rank-table score (via the id-indexed fast path), and opens
// an unused PM only when nothing used fits.
func ExamplePageRankVM_Place() {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	vmType := resource.NewVMType("[1,1]",
		resource.Demand{Group: "cpu", Units: []int{1, 1}})

	table, err := ranktable.NewJoint(shape, []resource.VMType{vmType}, ranktable.Options{})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	reg := ranktable.NewRegistry()
	reg.Add("small", table)

	cluster := placement.NewCluster([]*placement.PM{
		placement.NewPM(0, "small", shape),
		placement.NewPM(1, "small", shape),
	})
	placer := placement.NewPageRankVM(reg, placement.WithSeed(1))

	for id := 0; id < 3; id++ {
		vm := &placement.VM{
			ID:   id,
			Type: "[1,1]",
			Req:  map[string]resource.VMType{"small": vmType},
		}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			fmt.Println("place:", err)
			return
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			fmt.Println("host:", err)
			return
		}
		fmt.Printf("vm %d -> pm %d (used PMs: %d)\n", id, pm.ID, cluster.NumUsed())
	}
	// Output:
	// vm 0 -> pm 0 (used PMs: 1)
	// vm 1 -> pm 0 (used PMs: 1)
	// vm 2 -> pm 0 (used PMs: 1)
}
