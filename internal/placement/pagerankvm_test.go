package placement

import (
	"errors"
	"testing"

	"pagerankvm/internal/resource"
)

func TestPageRankVMPrefersUsedPMs(t *testing.T) {
	c := newCluster(3)
	p := NewPageRankVM(smallRegistry(t))
	pm0 := c.PMs()[0]
	mustHost(t, c, pm0, newVM(0, "[1,1]"))

	pm, _, err := p.Place(c, newVM(1, "[1,1]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pm != pm0 {
		t.Fatalf("placed on pm %d, want used pm 0", pm.ID)
	}
}

func TestPageRankVMPicksBestAccommodation(t *testing.T) {
	c := newCluster(1)
	p := NewPageRankVM(smallRegistry(t))
	pm := c.PMs()[0]
	// Load the PM to [2,2,1,1] (via one [1,1,1,1] and one [1,1]).
	mustHost(t, c, pm, newVM(0, "[1,1,1,1]"))
	mustHost(t, c, pm, newVM(1, "[1,1]"))

	// A [1,1] can produce [3,3,1,1], [3,2,2,1] or [2,2,2,2].
	// Algorithm 2's contract: the placer commits to the outcome with
	// the maximum Profile→PageRank table score.
	reg := smallRegistry(t)
	ranker, _ := reg.Get(pmSmall)
	demand, _ := newVM(2, "[1,1]").DemandOn(pmSmall)
	wantScore := -1.0
	var wantProfile resource.Vec
	for _, pl := range resource.Placements(pm.Shape, pm.Used(), demand) {
		if s, ok := ranker.Score(pl.Result); ok && s > wantScore {
			wantScore, wantProfile = s, pm.Shape.Canon(pl.Result)
		}
	}

	got, assign, err := p.Place(c, newVM(2, "[1,1]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != pm {
		t.Fatalf("placed on pm %d", got.ID)
	}
	result := pm.Shape.Canon(pm.Used().Add(assign.Vec(pm.Shape)))
	if !result.Equal(wantProfile) {
		t.Fatalf("resulting profile %v, want argmax %v (score %v)", result, wantProfile, wantScore)
	}
}

func TestPageRankVMOpensUnusedWhenFull(t *testing.T) {
	c := newCluster(2)
	p := NewPageRankVM(smallRegistry(t))
	for i := 0; i < 4; i++ {
		place(t, c, p, newVM(i, "[1,1,1,1]"))
	}
	if c.NumUsed() != 1 {
		t.Fatalf("used %d PMs after filling, want 1", c.NumUsed())
	}
	pm := place(t, c, p, newVM(5, "[1,1]"))
	if pm != c.PMs()[1] {
		t.Fatalf("overflow went to pm %d, want 1", pm.ID)
	}
}

func TestPageRankVMNoCapacity(t *testing.T) {
	c := newCluster(1)
	p := NewPageRankVM(smallRegistry(t))
	for i := 0; i < 4; i++ {
		place(t, c, p, newVM(i, "[1,1,1,1]"))
	}
	_, _, err := p.Place(c, newVM(9, "[1,1]"), nil)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestPageRankVMExcludesSource(t *testing.T) {
	c := newCluster(2)
	p := NewPageRankVM(smallRegistry(t))
	src := c.PMs()[0]
	mustHost(t, c, src, newVM(0, "[1,1]"))
	pm, _, err := p.Place(c, newVM(1, "[1,1]"), src)
	if err != nil {
		t.Fatal(err)
	}
	if pm == src {
		t.Fatal("excluded PM chosen")
	}
}

func TestPageRankVMMissingRanker(t *testing.T) {
	c := newCluster(1)
	mustHost(t, c, c.PMs()[0], newVM(0, "[1,1]"))
	p := NewPageRankVM(smallRegistry(t))
	// A PM type absent from the registry is a configuration error.
	other := NewPM(7, "unknown", smallShape())
	cBad := NewCluster([]*PM{other})
	vm := &VM{ID: 5, Type: "[1,1]", Req: map[string]resource.VMType{
		"unknown": resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
	}}
	mustHost(t, cBad, other, vm)
	if _, _, err := p.Place(cBad, vm2ForType(6, "unknown"), nil); err == nil {
		t.Fatal("missing ranker not reported")
	}
}

func vm2ForType(id int, pmType string) *VM {
	return &VM{ID: id, Type: "[1,1]", Req: map[string]resource.VMType{
		pmType: resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
	}}
}

func TestPageRankVMTwoChoice(t *testing.T) {
	c := newCluster(6)
	p := NewPageRankVM(smallRegistry(t), WithTwoChoice())
	if p.Name() != "PageRankVM-2choice" {
		t.Fatalf("Name = %q", p.Name())
	}
	for i := 0; i < 20; i++ {
		vm := newVM(i, "[1,1]")
		pm, assign, err := p.Place(c, vm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumVMs() != 20 {
		t.Fatalf("placed %d VMs", c.NumVMs())
	}
	caps := smallShape().Capacity()
	for _, pm := range c.PMs() {
		if !pm.Used().LE(caps) {
			t.Fatalf("pm %d overcommitted", pm.ID)
		}
	}
}

func TestScoreVictim(t *testing.T) {
	c := newCluster(1)
	p := NewPageRankVM(smallRegistry(t))
	pm := c.PMs()[0]
	mustHost(t, c, pm, newVM(0, "[1,1,1,1]"))
	mustHost(t, c, pm, newVM(1, "[1,1]"))
	h := pm.VMs()[1]
	score, ok := p.ScoreVictim(pm, h)
	if !ok {
		t.Fatal("ScoreVictim failed")
	}
	if score <= 0 {
		t.Fatalf("score = %v", score)
	}
}

func TestRankEvictorRelievesOverloadedDim(t *testing.T) {
	c := newCluster(1)
	p := NewPageRankVM(smallRegistry(t))
	pm := c.PMs()[0]
	// VM0 occupies dims {0,1}; VM1 occupies all dims.
	mustHost(t, c, pm, newVM(0, "[1,1]"))
	mustHost(t, c, pm, newVM(1, "[1,1,1,1]"))

	ev := RankEvictor{Placer: p}
	if ev.Name() != "rank" {
		t.Fatalf("Name = %q", ev.Name())
	}
	// Overload reported only on dim 3: VM0 does not touch it, so the
	// victim must be VM1.
	id, ok := ev.SelectVictim(pm, []int{3})
	if !ok || id != 1 {
		t.Fatalf("victim = %d, %v; want 1", id, ok)
	}
	// Overload on dim 0: both qualify; the victim is whichever leaves
	// the higher-ranked residual profile. Removing VM1 leaves [1,1,0,0]
	// which far outranks removing VM0's [1,1,1,1]... both valid; just
	// assert a victim is found and is a real VM.
	id, ok = ev.SelectVictim(pm, []int{0})
	if !ok || (id != 0 && id != 1) {
		t.Fatalf("victim = %d, %v", id, ok)
	}
}

func TestRankEvictorNoCandidate(t *testing.T) {
	c := newCluster(1)
	p := NewPageRankVM(smallRegistry(t))
	pm := c.PMs()[0]
	mustHost(t, c, pm, newVM(0, "[1,1]")) // greedy assign -> dims 0,1
	ev := RankEvictor{Placer: p}
	if _, ok := ev.SelectVictim(pm, []int{3}); ok {
		t.Fatal("found a victim on an untouched dim")
	}
}

func TestMMTEvictorPicksSmallestMemory(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 2, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 8},
	)
	small := resource.NewVMType("small",
		resource.Demand{Group: "cpu", Units: []int{1}},
		resource.Demand{Group: "mem", Units: []int{1}},
	)
	big := resource.NewVMType("big",
		resource.Demand{Group: "cpu", Units: []int{1}},
		resource.Demand{Group: "mem", Units: []int{4}},
	)
	pm := NewPM(0, "t", shape)
	c := NewCluster([]*PM{pm})
	vmSmall := &VM{ID: 0, Type: "small", Req: map[string]resource.VMType{"t": small}}
	vmBig := &VM{ID: 1, Type: "big", Req: map[string]resource.VMType{"t": big}}
	mustHost(t, c, pm, vmBig)
	mustHost(t, c, pm, vmSmall)

	ev := MMTEvictor{}
	if ev.Name() != "mmt" {
		t.Fatalf("Name = %q", ev.Name())
	}
	// Both VMs share cpu dims; overload on dim 0 or 1.
	overloaded := []int{0, 1}
	id, ok := ev.SelectVictim(pm, overloaded)
	if !ok || id != 0 {
		t.Fatalf("victim = %d, %v; want 0 (smallest memory)", id, ok)
	}
}

// Regression: a hosted VM with no demand record for its PM's type used
// to keep size 0 through the loop and win victim selection every time,
// so MMT evicted the one VM whose migration time is unknowable — and
// kept re-picking it forever when re-placement failed. Such VMs must
// be skipped.
func TestMMTEvictorSkipsUnknownDemand(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 2, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 8},
	)
	small := resource.NewVMType("small",
		resource.Demand{Group: "cpu", Units: []int{1}},
		resource.Demand{Group: "mem", Units: []int{1}},
	)
	pm := NewPM(0, "t", shape)
	c := NewCluster([]*PM{pm})

	// vmGhost's demand records are keyed under a different PM type, so
	// DemandOn(pm.Type) fails for it; its concrete assignment is built
	// directly, the way a migration compensation path would.
	vmGhost := &VM{ID: 0, Type: "small", Req: map[string]resource.VMType{"other": small}}
	assign := resource.GreedyAssign(shape, pm.Used(), small)
	if assign == nil {
		t.Fatal("no assignment for ghost VM")
	}
	if err := c.Host(pm, vmGhost, assign); err != nil {
		t.Fatal(err)
	}

	ev := MMTEvictor{}
	// Alone, the ghost VM must yield no victim rather than id 0.
	if id, ok := ev.SelectVictim(pm, []int{0, 1}); ok {
		t.Fatalf("victim = %d; want none (only candidate has unknowable migration time)", id)
	}

	vmKnown := &VM{ID: 1, Type: "small", Req: map[string]resource.VMType{"t": small}}
	mustHost(t, c, pm, vmKnown)
	id, ok := ev.SelectVictim(pm, []int{0, 1})
	if !ok || id != 1 {
		t.Fatalf("victim = %d, %v; want 1 (vm 0 must be skipped, not preferred)", id, ok)
	}
}

func TestMMTEvictorFallbackNoMemGroup(t *testing.T) {
	c := newCluster(1)
	pm := c.PMs()[0]
	mustHost(t, c, pm, newVM(0, "[1,1]"))
	mustHost(t, c, pm, newVM(1, "[1,1,1,1]"))
	ev := MMTEvictor{}
	// No "mem" group: falls back to total units; the [1,1] VM is
	// smaller. Both touch dim 0 (greedy spread for vm0: dims with most
	// headroom = 0,1; vm1 all dims).
	id, ok := ev.SelectVictim(pm, []int{0})
	if !ok || id != 0 {
		t.Fatalf("victim = %d, %v; want 0", id, ok)
	}
}
