package placement

import (
	"math"
	"math/rand"
	"testing"

	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// trajStep records one committed placement decision.
type trajStep struct {
	pmID    int
	score   uint64 // Float64bits of ScoreOn after commit target chosen
	profile string // canonical profile key of the chosen PM after hosting
}

// runTrajectory replays a randomized arrival/departure sequence
// through a placer and records every decision: chosen PM, the
// canonical profile it ends up with, and the bitwise score of the
// accommodation. Both placers see identical clusters and identical
// request streams.
func runTrajectory(t *testing.T, reg *ranktable.Registry, pmType string, shape *resource.Shape,
	vmTypes []resource.VMType, numPMs int, seed int64, opts ...PageRankOption) ([]trajStep, int) {
	t.Helper()
	pms := make([]*PM, numPMs)
	for i := range pms {
		pms[i] = NewPM(i, pmType, shape)
	}
	c := NewCluster(pms)
	p := NewPageRankVM(reg, append([]PageRankOption{WithSeed(99)}, opts...)...)

	rng := rand.New(rand.NewSource(seed))
	var steps []trajStep
	var live []*VM
	for i := 0; i < 120; i++ {
		if len(live) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			if _, err := c.Release(live[k].ID); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
			continue
		}
		vt := vmTypes[rng.Intn(len(vmTypes))]
		vm := &VM{ID: 1000 + i, Type: vt.Name, Req: map[string]resource.VMType{pmType: vt}}
		pm, assign, err := p.Place(c, vm, nil)
		if err != nil {
			if err == ErrNoCapacity {
				continue
			}
			t.Fatal(err)
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatalf("Host after Place: %v", err)
		}
		live = append(live, vm)
		ranker, _ := reg.Get(pmType)
		score, ok := ranker.Score(pm.Used())
		if !ok {
			t.Fatalf("resulting profile %v not scorable", pm.Used())
		}
		steps = append(steps, trajStep{
			pmID:    pm.ID,
			score:   math.Float64bits(score),
			profile: shape.Key(pm.Used()),
		})
	}
	return steps, c.MaxUsed
}

// checkEquivalence runs the same trajectory with the fast path on and
// off and requires identical decisions: PM choice, bitwise resulting
// score, canonical resulting profile, and the MaxUsed metric.
func checkEquivalence(t *testing.T, reg *ranktable.Registry, pmType string, shape *resource.Shape,
	vmTypes []resource.VMType, numPMs int, seed int64) {
	t.Helper()
	fast, fastMax := runTrajectory(t, reg, pmType, shape, vmTypes, numPMs, seed)
	slow, slowMax := runTrajectory(t, reg, pmType, shape, vmTypes, numPMs, seed, WithoutFastPath())
	if len(fast) != len(slow) {
		t.Fatalf("seed %d: fast path made %d placements, slow path %d", seed, len(fast), len(slow))
	}
	for i := range fast {
		if fast[i].pmID != slow[i].pmID {
			t.Fatalf("seed %d step %d: fast chose pm %d, slow chose pm %d", seed, i, fast[i].pmID, slow[i].pmID)
		}
		if fast[i].score != slow[i].score {
			t.Fatalf("seed %d step %d: scores differ bitwise: %x vs %x", seed, i, fast[i].score, slow[i].score)
		}
		if fast[i].profile != slow[i].profile {
			t.Fatalf("seed %d step %d: resulting canonical profiles differ on pm %d", seed, i, fast[i].pmID)
		}
	}
	if fastMax != slowMax {
		t.Fatalf("seed %d: MaxUsed differs: fast %d, slow %d", seed, fastMax, slowMax)
	}
}

// TestFastPathEquivalenceJoint is the ISSUE's acceptance test for the
// joint ranker: the id-indexed path and the legacy string-key path
// must make byte-identical placement decisions over randomized
// arrival/departure trajectories.
func TestFastPathEquivalenceJoint(t *testing.T) {
	reg := smallRegistry(t)
	for seed := int64(1); seed <= 6; seed++ {
		checkEquivalence(t, reg, pmSmall, smallShape(), smallVMTypes(), 6, seed)
	}
}

// TestFastPathEquivalenceFactored covers the factored ranker (the
// production configuration for large PM types), including multi-group
// shapes where the PM's actual profile drifts out of canonical order
// and alignAssign must translate coordinates.
func TestFastPathEquivalenceFactored(t *testing.T) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 3, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 6},
		resource.Group{Name: "disk", Dims: 2, Cap: 5},
	)
	vmTypes := []resource.VMType{
		resource.NewVMType("s",
			resource.Demand{Group: "cpu", Units: []int{1}},
			resource.Demand{Group: "mem", Units: []int{1}},
		),
		resource.NewVMType("m",
			resource.Demand{Group: "cpu", Units: []int{1, 1}},
			resource.Demand{Group: "mem", Units: []int{2}},
			resource.Demand{Group: "disk", Units: []int{2}},
		),
		resource.NewVMType("l",
			resource.Demand{Group: "cpu", Units: []int{2, 2}},
			resource.Demand{Group: "disk", Units: []int{1, 1}},
		),
	}
	f, err := ranktable.NewFactored(shape, vmTypes, ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Fast() {
		t.Fatal("factored ranker did not offer the fast path")
	}
	reg := ranktable.NewRegistry()
	const pmBig = "big"
	reg.Add(pmBig, f)
	for seed := int64(1); seed <= 6; seed++ {
		checkEquivalence(t, reg, pmBig, shape, vmTypes, 5, seed)
	}
}

// TestAlignAssign pins the canonical→actual translation on a profile
// that is far from canonical order.
func TestAlignAssign(t *testing.T) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	used := resource.Vec{4, 0, 3, 1} // canonical: [0,1,3,4], perm = [1,3,2,0]
	canon := resource.Assignment{{Dim: 0, Units: 2}, {Dim: 1, Units: 1}}
	got := alignAssign(shape, used, canon)
	want := resource.Assignment{{Dim: 1, Units: 2}, {Dim: 3, Units: 1}}
	if len(got) != len(want) {
		t.Fatalf("alignAssign = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alignAssign = %v, want %v", got, want)
		}
	}
	// The aligned result must have the same canonical form as the
	// canonical move applied to the canonical profile.
	result := shape.Canon(used.Add(got.Vec(shape)))
	wantResult := shape.Canon(shape.Canon(used).Add(canon.Vec(shape)))
	if !result.Equal(wantResult) {
		t.Fatalf("aligned result %v, want %v", result, wantResult)
	}
	// An already-canonical profile passes through unchanged.
	id := alignAssign(shape, resource.Vec{0, 1, 3, 4}, canon)
	for i := range canon {
		if id[i] != canon[i] {
			t.Fatalf("canonical profile changed the assignment: %v", id)
		}
	}
}

// TestFastPathCacheInvalidation: the PM's cached node ids must refresh
// after host/release mutations.
func TestFastPathCacheInvalidation(t *testing.T) {
	c := newCluster(1)
	reg := smallRegistry(t)
	p := NewPageRankVM(reg)
	pm := c.PMs()[0]

	vmA := newVM(0, "[1,1]")
	got := place(t, c, p, vmA)
	if got != pm {
		t.Fatalf("placed on pm %d", got.ID)
	}
	s1, ok := p.ScoreOn(pm, newVM(1, "[1,1]"))
	if !ok {
		t.Fatal("ScoreOn failed")
	}
	// Mutate the PM and re-score: the answer must track the new profile.
	if _, err := c.Release(vmA.ID); err != nil {
		t.Fatal(err)
	}
	s2, ok := p.ScoreOn(pm, newVM(2, "[1,1]"))
	if !ok {
		t.Fatal("ScoreOn failed after release")
	}
	if math.Float64bits(s1) == math.Float64bits(s2) {
		t.Fatal("score did not change after the PM profile mutated; node-id cache is stale")
	}
	ranker, _ := reg.Get(pmSmall)
	demand, _ := newVM(3, "[1,1]").DemandOn(pmSmall)
	wantBest := -1.0
	for _, pl := range resource.Placements(pm.Shape, pm.Used(), demand) {
		if s, ok := ranker.Score(pl.Result); ok && s > wantBest {
			wantBest = s
		}
	}
	if math.Float64bits(s2) != math.Float64bits(wantBest) {
		t.Fatalf("ScoreOn = %v, enumeration max = %v", s2, wantBest)
	}
}
