// Package placement implements the paper's Algorithm 2 (PageRankVM's
// initial VM allocation), the comparison algorithms (First Fit,
// First-Fit-Decreasing-Sum, CompVM, Best Fit), and the overload
// eviction policies. All algorithms share the anti-collocation
// machinery of internal/resource, as the paper prescribes ("all
// algorithms use the strategy of PageRankVM to satisfy the
// anti-collocation constraints").
//
// Types in this package are not safe for concurrent use; a simulation
// run drives one cluster from one goroutine.
package placement

import (
	"errors"
	"fmt"

	"pagerankvm/internal/resource"
)

// ErrNoCapacity is returned when no PM — used or unused — can host a VM.
var ErrNoCapacity = errors.New("placement: no PM with sufficient capacity")

// VM is one placement request: an instance of a catalog VM type. Its
// integer-unit demands depend on the PM type they are placed on
// (per-PM-type quantization), hence the map.
type VM struct {
	// ID uniquely identifies the VM instance.
	ID int
	// Type is the catalog VM type name (e.g. "m3.large").
	Type string
	// Req maps a PM type name to the quantized demand of this VM on
	// that PM type.
	Req map[string]resource.VMType
}

// DemandOn returns the quantized demand of the VM on a PM type.
func (v *VM) DemandOn(pmType string) (resource.VMType, bool) {
	d, ok := v.Req[pmType]
	return d, ok
}

// Hosted records a VM placed on a PM together with its concrete
// anti-collocation assignment.
type Hosted struct {
	VM     *VM
	Assign resource.Assignment
}

// PM is one physical machine.
type PM struct {
	// ID uniquely identifies the PM.
	ID int
	// Type is the catalog PM type name (e.g. "M3").
	Type string
	// Shape is the PM's dimension layout.
	Shape *resource.Shape

	used resource.Vec
	vms  map[int]Hosted

	// cordon marks the PM as unavailable for new placements — the
	// maintenance-drain state. Placers skip cordoned PMs; Host still
	// succeeds (compensation paths re-host a released VM explicitly).
	cordon bool

	// gen counts profile mutations (host/remove). The fast-path
	// placer caches the lattice node ids of the used profile here (see
	// pmNodeIDs in pagerankvm.go); the cache is valid while
	// rankGen == gen and rankOwner is the ranker that resolved it.
	gen       uint64
	rankIDs   []int32
	rankGen   uint64
	rankOwner any
	rankOK    bool
}

// NewPM returns an empty PM.
func NewPM(id int, pmType string, shape *resource.Shape) *PM {
	return &PM{
		ID:    id,
		Type:  pmType,
		Shape: shape,
		used:  shape.Zero(),
		vms:   make(map[int]Hosted),
	}
}

// Used returns the PM's current requested-units profile. The returned
// vector is shared; callers must not modify it.
func (p *PM) Used() resource.Vec { return p.used }

// NumVMs returns the number of VMs hosted.
func (p *PM) NumVMs() int { return len(p.vms) }

// Active reports whether the PM hosts at least one VM.
func (p *PM) Active() bool { return len(p.vms) > 0 }

// VMs returns the hosted VMs. The returned map is shared; callers must
// not modify it.
func (p *PM) VMs() map[int]Hosted { return p.vms }

// Cordoned reports whether the PM is cordoned: under maintenance
// drain, refused by every placer until uncordoned or retired.
func (p *PM) Cordoned() bool { return p.cordon }

// SetCordoned marks or unmarks the PM as cordoned. Cordoning only
// affects placer choice — hosted VMs stay hosted, and Cluster.Host on
// a cordoned PM still succeeds so drain-failure compensation can put a
// released VM back.
func (p *PM) SetCordoned(v bool) { p.cordon = v }

// Fits reports whether vm can be hosted under the PM's remaining
// capacity with anti-collocation respected.
func (p *PM) Fits(vm *VM) bool {
	demand, ok := vm.DemandOn(p.Type)
	if !ok {
		return false
	}
	return resource.Fits(p.Shape, p.used, demand)
}

// host places vm with a concrete assignment. The assignment must have
// been derived from the PM's current profile.
func (p *PM) host(vm *VM, assign resource.Assignment) error {
	if _, dup := p.vms[vm.ID]; dup {
		return fmt.Errorf("placement: vm %d already on pm %d", vm.ID, p.ID)
	}
	next := p.used.Add(assign.Vec(p.Shape))
	if !p.Shape.Valid(next) {
		return fmt.Errorf("placement: assignment overflows pm %d: %v", p.ID, next)
	}
	p.used = next
	p.vms[vm.ID] = Hosted{VM: vm, Assign: assign}
	p.gen++
	return nil
}

// remove releases vm's resources.
func (p *PM) remove(vmID int) (Hosted, error) {
	h, ok := p.vms[vmID]
	if !ok {
		return Hosted{}, fmt.Errorf("placement: vm %d not on pm %d", vmID, p.ID)
	}
	p.used = p.used.Sub(h.Assign.Vec(p.Shape))
	delete(p.vms, vmID)
	p.gen++
	return h, nil
}

// Cluster tracks the datacenter's PMs and which VMs they host. It keeps
// the paper's two lists: used PMs (hosting at least one VM, in
// first-use order) and unused PMs (in inventory order).
type Cluster struct {
	pms    []*PM
	used   []*PM
	unused []*PM
	loc    map[int]*PM // vm id -> hosting PM

	// MaxUsed tracks the high-water mark of simultaneously used PMs —
	// the paper's "number of PMs used" metric.
	MaxUsed int
}

// NewCluster builds a cluster over the given PM inventory. All PMs
// start unused.
func NewCluster(pms []*PM) *Cluster {
	c := &Cluster{
		pms:    pms,
		unused: make([]*PM, len(pms)),
		loc:    make(map[int]*PM),
	}
	copy(c.unused, pms)
	return c
}

// PMs returns all PMs in inventory order. The slice is shared.
func (c *Cluster) PMs() []*PM { return c.pms }

// UsedPMs returns the used list in first-use order. The slice is shared.
func (c *Cluster) UsedPMs() []*PM { return c.used }

// UnusedPMs returns the unused list. The slice is shared.
func (c *Cluster) UnusedPMs() []*PM { return c.unused }

// NumUsed returns the number of PMs currently hosting VMs.
func (c *Cluster) NumUsed() int { return len(c.used) }

// Locate returns the PM hosting the VM with the given id.
func (c *Cluster) Locate(vmID int) (*PM, bool) {
	pm, ok := c.loc[vmID]
	return pm, ok
}

// NumVMs returns the number of placed VMs.
func (c *Cluster) NumVMs() int { return len(c.loc) }

// Host places vm on pm with the given assignment, maintaining the
// used/unused lists.
func (c *Cluster) Host(pm *PM, vm *VM, assign resource.Assignment) error {
	if _, placed := c.loc[vm.ID]; placed {
		return fmt.Errorf("placement: vm %d already placed", vm.ID)
	}
	wasActive := pm.Active()
	if err := pm.host(vm, assign); err != nil {
		return err
	}
	c.loc[vm.ID] = pm
	if !wasActive {
		c.used = append(c.used, pm)
		c.removeUnused(pm)
		if len(c.used) > c.MaxUsed {
			c.MaxUsed = len(c.used)
		}
	}
	return nil
}

// Release removes the VM from its PM and returns the released record.
// An emptied PM moves back to the unused list (it can be powered off).
func (c *Cluster) Release(vmID int) (Hosted, error) {
	pm, ok := c.loc[vmID]
	if !ok {
		return Hosted{}, fmt.Errorf("placement: vm %d not placed", vmID)
	}
	h, err := pm.remove(vmID)
	if err != nil {
		return Hosted{}, err
	}
	delete(c.loc, vmID)
	if !pm.Active() {
		c.removeUsed(pm)
		c.unused = append(c.unused, pm)
	}
	return h, nil
}

// Retire permanently removes an inactive PM from the inventory — the
// testbed controller's response to a dead agent, whose machine must
// never be offered to the placer again. The PM must be empty; Release
// its VMs first. The inventory slice is rebuilt rather than mutated in
// place so callers holding the original slice are unaffected.
func (c *Cluster) Retire(pm *PM) error {
	if pm.Active() {
		return fmt.Errorf("placement: retire pm %d: still hosts %d VMs", pm.ID, pm.NumVMs())
	}
	c.removeUsed(pm)
	c.removeUnused(pm)
	pms := make([]*PM, 0, len(c.pms))
	for _, p := range c.pms {
		if p != pm {
			pms = append(pms, p)
		}
	}
	c.pms = pms
	return nil
}

// Reorder rebuilds the used and unused lists in the given PM-id orders.
// It is the snapshot-restore hook of the serve daemon: Algorithm 2 scans
// the used list in first-use order and opens unused PMs in list order,
// so a recovered cluster must restore both orders — not just the same
// membership — to keep post-recovery decisions bit-identical to an
// uninterrupted run. Each argument must be a permutation of the
// corresponding current list.
func (c *Cluster) Reorder(usedIDs, unusedIDs []int) error {
	used, err := c.permute(c.used, usedIDs, "used")
	if err != nil {
		return err
	}
	unused, err := c.permute(c.unused, unusedIDs, "unused")
	if err != nil {
		return err
	}
	c.used = used
	c.unused = unused
	return nil
}

// permute reorders list into the id order given by ids, verifying ids is
// exactly a permutation of the list's members.
func (c *Cluster) permute(list []*PM, ids []int, name string) ([]*PM, error) {
	if len(ids) != len(list) {
		return nil, fmt.Errorf("placement: reorder %s: %d ids for %d PMs", name, len(ids), len(list))
	}
	byID := make(map[int]*PM, len(list))
	for _, pm := range list {
		byID[pm.ID] = pm
	}
	out := make([]*PM, 0, len(ids))
	for _, id := range ids {
		pm, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("placement: reorder %s: pm %d not in list (or repeated)", name, id)
		}
		delete(byID, id)
		out = append(out, pm)
	}
	return out, nil
}

func (c *Cluster) removeUnused(pm *PM) {
	for i, p := range c.unused {
		if p == pm {
			c.unused = append(c.unused[:i], c.unused[i+1:]...)
			return
		}
	}
}

func (c *Cluster) removeUsed(pm *PM) {
	for i, p := range c.used {
		if p == pm {
			c.used = append(c.used[:i], c.used[i+1:]...)
			return
		}
	}
}

// Placer selects a PM and a concrete assignment for a VM without
// mutating the cluster; callers commit the decision with Cluster.Host.
// exclude, when non-nil, is a PM that must not be chosen (the overload
// source during a migration).
type Placer interface {
	Name() string
	Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error)
}

// openUnused implements the shared tail of Algorithm 2 (lines 17-24):
// take the first unused PM that can host the VM.
func openUnused(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	for _, pm := range c.unused {
		if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		demand, _ := vm.DemandOn(pm.Type)
		assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
		if assign == nil {
			continue
		}
		return pm, assign, nil
	}
	return nil, nil, ErrNoCapacity
}
