package placement

import (
	"testing"

	"pagerankvm/internal/resource"
)

func TestClusterRetire(t *testing.T) {
	c := newCluster(3)
	pm := c.PMs()[1]
	vm := newVM(1, "[1,1]")
	demand, _ := vm.DemandOn(pmSmall)
	assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand)
	if err := c.Host(pm, vm, assign); err != nil {
		t.Fatal(err)
	}

	// A PM still hosting VMs cannot be retired.
	if err := c.Retire(pm); err == nil {
		t.Fatal("Retire accepted an active PM")
	}
	if _, err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Retire(pm); err != nil {
		t.Fatalf("Retire of empty PM: %v", err)
	}

	// The retired PM is gone from the inventory and both free lists.
	if got := len(c.PMs()); got != 2 {
		t.Fatalf("inventory = %d PMs, want 2", got)
	}
	for _, p := range c.PMs() {
		if p == pm {
			t.Fatal("retired PM still in inventory")
		}
	}
	for _, p := range c.UnusedPMs() {
		if p == pm {
			t.Fatal("retired PM still in unused list")
		}
	}
	if c.NumUsed() != 0 {
		t.Fatalf("NumUsed = %d, want 0", c.NumUsed())
	}

	// Placement never lands on a retired PM.
	for i := 0; i < 16; i++ {
		got := place(t, c, FirstFit{}, newVM(10+i, "[1,1]"))
		if got == pm {
			t.Fatal("placed a VM on a retired PM")
		}
	}
	// Capacity shrank accordingly: the 2 surviving small PMs hold 16
	// [1,1] VMs, the 17th is rejected.
	if _, _, err := (FirstFit{}).Place(c, newVM(99, "[1,1]"), nil); err == nil {
		t.Fatal("capacity of a retired PM still counted")
	}
}
