package placement

import (
	"fmt"
	"sync"
	"testing"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/obs/record"
)

// recordRun places a fixed VM sequence with a collector recorder
// attached and returns the captured decision stream.
func recordRun(t *testing.T, n int, popts ...PageRankOption) []record.Decision {
	t.Helper()
	rec := record.NewCollector()
	reg := smallRegistry(t)
	opts := append([]PageRankOption{WithSeed(7), WithRecorder(rec)}, popts...)
	p := NewPageRankVM(reg, opts...)
	c := newCluster(4)
	for i := 0; i < n; i++ {
		name := "[1,1]"
		if i%3 == 0 {
			name = "[1,1,1,1]"
		}
		vm := newVM(i, name)
		pm, assign, err := p.Place(c, vm, nil)
		if err != nil {
			continue // rejections are recorded too
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatalf("Host vm %d: %v", i, err)
		}
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	return rec.Decisions()
}

func TestRecorderCapturesDecisions(t *testing.T) {
	const n = 40
	ds := recordRun(t, n)
	if len(ds) != n {
		t.Fatalf("recorded %d decisions, want %d", len(ds), n)
	}
	opened, placed, rejected := 0, 0, 0
	for i, d := range ds {
		if d.Seq != int64(i) {
			t.Fatalf("decision %d has seq %d", i, d.Seq)
		}
		if d.VM != i {
			t.Fatalf("decision %d records vm %d", i, d.VM)
		}
		switch {
		case d.Rejected:
			rejected++
			if d.PM != -1 {
				t.Fatalf("rejected decision %d has pm %d", i, d.PM)
			}
		case d.Opened:
			opened++
		default:
			placed++
		}
		if d.Phases == nil {
			t.Fatalf("decision %d missing phase timings", i)
		}
		if len(d.Candidates) == 0 && !d.Rejected {
			t.Fatalf("decision %d has no candidates", i)
		}
		// Scanned counts used-list candidates; the recorded candidate
		// set additionally includes unused-fallback PMs.
		nonUnused := 0
		for _, cand := range d.Candidates {
			if !cand.Unused {
				nonUnused++
			}
		}
		if nonUnused != d.Scanned {
			t.Fatalf("decision %d: %d non-fallback candidates, scanned %d", i, nonUnused, d.Scanned)
		}
		if d.Ties > 1 && len(d.TiedPMs) != d.Ties {
			t.Fatalf("decision %d: ties %d but tied pms %v", i, d.Ties, d.TiedPMs)
		}
	}
	// The tiny cluster fills up: the run must exercise open, place and
	// reject outcomes for the assertions above to mean anything.
	if opened == 0 || placed == 0 || rejected == 0 {
		t.Fatalf("run not representative: opened=%d placed=%d rejected=%d", opened, placed, rejected)
	}
}

// TestRecordingFastPathEquivalence is the acceptance criterion behind
// `prvm-replay -diff`: recordings of the same seeded run with the
// id-indexed fast path on and off must diff clean — decision identity
// (chosen PM, bitwise score, candidate set, tie path) is independent
// of the scoring engine, with only the Fast metadata flag differing.
func TestRecordingFastPathEquivalence(t *testing.T) {
	const n = 24
	fast := recordRun(t, n)
	slow := recordRun(t, n, WithoutFastPath())
	sum := record.Diff(fast, slow)
	if !sum.Clean() {
		t.Fatalf("fast vs no-fast recordings diverge: %+v (first: %+v)", sum, sum.First)
	}
	sawFast := false
	for i := range fast {
		if fast[i].Fast {
			sawFast = true
		}
		if slow[i].Fast {
			t.Fatalf("no-fast decision %d flagged fast", i)
		}
	}
	if !sawFast {
		t.Fatal("fast run never used the fast path")
	}
}

func TestRecorderDisabledMatchesEnabled(t *testing.T) {
	// The recording branch must not perturb decisions: the same seeded
	// run without a recorder picks identical PMs.
	reg := smallRegistry(t)
	runPMs := func(withRec bool) []int {
		var opts []PageRankOption
		rec := record.NewCollector()
		opts = append(opts, WithSeed(5))
		if withRec {
			opts = append(opts, WithRecorder(rec))
		}
		p := NewPageRankVM(reg, opts...)
		c := newCluster(4)
		var pms []int
		for i := 0; i < 16; i++ {
			vm := newVM(i, "[1,1]")
			pm, assign, err := p.Place(c, vm, nil)
			if err != nil {
				pms = append(pms, -1)
				continue
			}
			if err := c.Host(pm, vm, assign); err != nil {
				t.Fatal(err)
			}
			pms = append(pms, pm.ID)
		}
		return pms
	}
	with, without := runPMs(true), runPMs(false)
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("decision %d: pm %d with recorder, %d without", i, with[i], without[i])
		}
	}
}

// TestParallelWorkersRecordDeterministicStream is the recorder
// concurrency contract at the placement layer, run under -race: many
// placement workers (each with its own placer and cluster, as parallel
// sweeps use them) share one recorder, and the combined stream must be
// seq-ordered and gap-free, with every worker's own decision
// subsequence identical to a solo run of that worker.
func TestParallelWorkersRecordDeterministicStream(t *testing.T) {
	const (
		workers = 6
		perW    = 12
	)
	reg := smallRegistry(t)

	runWorker := func(w int, rec *record.Recorder) {
		p := NewPageRankVM(reg, WithSeed(int64(w)), WithRecorder(rec))
		c := newCluster(3)
		for i := 0; i < perW; i++ {
			vm := newVM(w*1000+i, "[1,1]")
			pm, assign, err := p.Place(c, vm, nil)
			if err != nil {
				continue
			}
			if err := c.Host(pm, vm, assign); err != nil {
				panic(fmt.Sprintf("worker %d host: %v", w, err))
			}
		}
	}

	shared := record.NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(w, shared)
		}(w)
	}
	wg.Wait()

	ds := shared.Decisions()
	if len(ds) != workers*perW {
		t.Fatalf("recorded %d decisions, want %d", len(ds), workers*perW)
	}
	for i := range ds {
		if ds[i].Seq != int64(i) {
			t.Fatalf("stream not seq-ordered at %d: seq %d", i, ds[i].Seq)
		}
	}

	// Per-worker determinism: each worker's subsequence equals its
	// solo run, whatever the interleaving was.
	for w := 0; w < workers; w++ {
		solo := record.NewCollector()
		runWorker(w, solo)
		want := solo.Decisions()
		var got []record.Decision
		for _, d := range ds {
			if d.VM/1000 == w {
				got = append(got, d)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("worker %d: %d decisions in shared stream, %d solo", w, len(got), len(want))
		}
		for i := range got {
			if !record.Equivalent(got[i], want[i]) {
				t.Fatalf("worker %d decision %d differs between shared and solo runs:\n shared %+v\n solo %+v",
					w, i, got[i], want[i])
			}
		}
	}
}

func TestRecorderFeedsPhaseHistograms(t *testing.T) {
	o := obs.New()
	rec := record.NewCollector()
	reg := smallRegistry(t)
	p := NewPageRankVM(reg, WithSeed(1), WithObserver(o), WithRecorder(rec))
	c := newCluster(2)
	for i := 0; i < 6; i++ {
		vm := newVM(i, "[1,1]")
		pm, assign, err := p.Place(c, vm, nil)
		if err != nil {
			break
		}
		if err := c.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	snap := o.Snapshot()
	for _, name := range []string{
		"placement.phase_scan_seconds",
		"placement.phase_check_seconds",
		"placement.phase_bind_seconds",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 6 {
			t.Fatalf("%s: count %d (present %v), want 6", name, h.Count, ok)
		}
	}
}
