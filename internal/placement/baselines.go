package placement

import (
	"math"
	"sort"

	"pagerankvm/internal/resource"
)

// FirstFit places a VM on the first used PM (in first-use order) with
// sufficient resources, as in Eucalyptus-style schedulers [27].
type FirstFit struct{}

var _ Placer = FirstFit{}

// Name implements Placer.
func (FirstFit) Name() string { return "FF" }

// Place implements Placer.
func (FirstFit) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	for _, pm := range c.UsedPMs() {
		if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		demand, _ := vm.DemandOn(pm.Type)
		if assign := resource.PackAssign(pm.Shape, pm.Used(), demand); assign != nil {
			return pm, assign, nil
		}
	}
	return openUnused(c, vm, exclude)
}

// FFDSum is First-Fit-Decreasing-Sum [30]: VMs are pre-sorted by
// decreasing weighted dimension sum (see OrderVMs) and then placed
// first-fit.
type FFDSum struct{}

var _ Placer = FFDSum{}

// Name implements Placer.
func (FFDSum) Name() string { return "FFDSum" }

// Place implements Placer.
func (FFDSum) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	return FirstFit{}.Place(c, vm, exclude)
}

// OrderVMs sorts VMs by decreasing demand size (total normalized units,
// averaged over the PM types the VM can land on), the FFD preprocessing
// step. Ties break on ascending ID for determinism.
func (FFDSum) OrderVMs(vms []*VM) {
	size := func(v *VM) float64 {
		if len(v.Req) == 0 {
			return 0
		}
		// Sum in integers: exact and commutative, so the map iteration
		// order of Req cannot perturb the FFD sort key.
		total := 0
		for _, d := range v.Req {
			total += d.TotalUnits()
		}
		return float64(total) / float64(len(v.Req))
	}
	sort.SliceStable(vms, func(i, j int) bool {
		si, sj := size(vms[i]), size(vms[j])
		if si > sj {
			return true
		}
		if si < sj {
			return false
		}
		return vms[i].ID < vms[j].ID
	})
}

// CompVM consolidates complementary VMs [10] (Chen & Shen,
// INFOCOM'14): it is consolidation-first — among feasible used PMs it
// prefers the accommodation yielding the highest resulting
// utilization, and among near-maximal options (within utilBand) it
// picks the one minimizing the variance of per-dimension utilization,
// i.e. it packs VMs whose demands complement the PM's current skew.
type CompVM struct{}

var _ Placer = CompVM{}

// utilBand is the utilization tolerance within which CompVM lets the
// variance criterion decide.
const utilBand = 0.02

// Name implements Placer.
func (CompVM) Name() string { return "CompVM" }

// Place implements Placer.
func (CompVM) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	type option struct {
		pm       *PM
		assign   resource.Assignment
		variance float64
		util     float64
	}
	var (
		options  []option
		bestUtil = -1.0
	)
	for _, pm := range c.UsedPMs() {
		if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		demand, _ := vm.DemandOn(pm.Type)
		for _, pl := range resource.Placements(pm.Shape, pm.Used(), demand) {
			variance, util := utilVariance(pm.Shape, pl.Result)
			options = append(options, option{pm: pm, assign: pl.Assign, variance: variance, util: util})
			if util > bestUtil {
				bestUtil = util
			}
		}
	}
	var best *option
	for i := range options {
		o := &options[i]
		if o.util < bestUtil-utilBand {
			continue
		}
		if best == nil || o.variance < best.variance {
			best = o
		}
	}
	if best != nil {
		return best.pm, best.assign, nil
	}
	return openUnused(c, vm, exclude)
}

// utilVariance returns the variance of per-dimension utilization
// fractions and the mean utilization (Section III-B's u and v).
func utilVariance(s *resource.Shape, v resource.Vec) (variance, mean float64) {
	caps := s.Capacity()
	n := float64(len(v))
	for i := range v {
		mean += float64(v[i]) / float64(caps[i])
	}
	mean /= n
	for i := range v {
		d := float64(v[i])/float64(caps[i]) - mean
		variance += d * d
	}
	return variance / n, mean
}

// BestFit places the VM on the feasible PM that leaves the minimum
// remaining resources after hosting it [10]'s greedy flavor.
type BestFit struct{}

var _ Placer = BestFit{}

// Name implements Placer.
func (BestFit) Name() string { return "BestFit" }

// Place implements Placer.
func (BestFit) Place(c *Cluster, vm *VM, exclude *PM) (*PM, resource.Assignment, error) {
	var (
		bestPM   *PM
		bestRem  = math.MaxInt
		bestDemd resource.VMType
	)
	for _, pm := range c.UsedPMs() {
		if pm == exclude || pm.Cordoned() || !pm.Fits(vm) {
			continue
		}
		demand, _ := vm.DemandOn(pm.Type)
		rem := pm.Shape.TotalCapacity() - pm.Used().Sum() - demand.TotalUnits()
		if rem < bestRem {
			bestRem, bestPM, bestDemd = rem, pm, demand
		}
	}
	if bestPM != nil {
		// Fits held, and for descending unit sizes the tightest-fit
		// matching always succeeds, so assign is non-nil here.
		if assign := resource.PackAssign(bestPM.Shape, bestPM.Used(), bestDemd); assign != nil {
			return bestPM, assign, nil
		}
	}
	return openUnused(c, vm, exclude)
}
