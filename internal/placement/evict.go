package placement

import (
	"math"
	"sort"

	"pagerankvm/internal/obs"
)

// Evictor selects which VM to migrate away from an overloaded PM.
// overloaded lists the dimension indices whose actual utilization
// crossed the threshold; a useful victim must occupy at least one of
// them, otherwise evicting it cannot relieve the overload.
type Evictor interface {
	Name() string
	// SelectVictim returns the VM id to evict, or ok=false when no
	// hosted VM touches an overloaded dimension.
	SelectVictim(pm *PM, overloaded []int) (vmID int, ok bool)
}

// victimCandidates returns the hosted VMs that occupy at least one
// overloaded dimension, in ascending VM id order for determinism.
func victimCandidates(pm *PM, overloaded []int) []Hosted {
	dims := make(map[int]bool, len(overloaded))
	for _, d := range overloaded {
		dims[d] = true
	}
	var out []Hosted
	for _, h := range pm.VMs() {
		for _, du := range h.Assign {
			if dims[du.Dim] {
				out = append(out, h)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VM.ID < out[j].VM.ID })
	return out
}

// RankEvictor is the paper's overload policy for PageRankVM: "for each
// VM on the PM, we check the PageRank value of the resulting profile
// of this PM after removing the VM. Then we select the VM that can
// result in the highest PageRank value to remove."
//
// Applied verbatim, that sentence always evicts the largest VM (the
// emptiest residual profile is the most developable one), which is
// maximally disruptive: large evictees rarely fit the remaining used
// PMs and force fresh PMs on. We therefore restrict the comparison to
// the least-disruptive candidates — the VMs with the minimum footprint
// on the overloaded dimensions (any of them relieves a ~90%-threshold
// breach) — and apply the paper's residual-rank criterion among those.
type RankEvictor struct {
	Placer *PageRankVM
}

var _ Evictor = RankEvictor{}

// Name implements Evictor.
func (RankEvictor) Name() string { return "rank" }

// SelectVictim implements Evictor.
func (e RankEvictor) SelectVictim(pm *PM, overloaded []int) (int, bool) {
	dims := make(map[int]bool, len(overloaded))
	for _, d := range overloaded {
		dims[d] = true
	}
	var (
		bestID    = -1
		bestUnits = math.MaxInt
		bestScore = math.Inf(-1)
	)
	for _, h := range victimCandidates(pm, overloaded) {
		units := 0
		for _, du := range h.Assign {
			if dims[du.Dim] {
				units += du.Units
			}
		}
		score, ok := e.Placer.ScoreVictim(pm, h)
		if !ok {
			score = math.Inf(-1)
		}
		if units < bestUnits || (units == bestUnits && score > bestScore) {
			bestUnits, bestScore, bestID = units, score, h.VM.ID
		}
	}
	if bestID >= 0 {
		e.Placer.met.victimsSelected.Inc()
		if e.Placer.obs.TraceActive() {
			e.Placer.obs.Emit(obs.Event{Name: "placement.evict", Fields: []obs.Field{
				obs.F("pm", pm.ID),
				obs.F("victim", bestID),
				obs.F("residual_score", bestScore),
				obs.F("overloaded_dims", len(overloaded)),
			}})
		}
	}
	return bestID, bestID >= 0
}

// MMTEvictor is CloudSim's default "minimum migration time" policy
// used for the baselines: evict the VM with the smallest memory
// footprint (memory size dominates live-migration time). Falls back to
// smallest total demand when the PM type has no "mem" group.
type MMTEvictor struct {
	// MemGroup is the memory group name; default "mem".
	MemGroup string
}

var _ Evictor = MMTEvictor{}

// Name implements Evictor.
func (MMTEvictor) Name() string { return "mmt" }

// SelectVictim implements Evictor.
func (e MMTEvictor) SelectVictim(pm *PM, overloaded []int) (int, bool) {
	memGroup := e.MemGroup
	if memGroup == "" {
		memGroup = "mem"
	}
	var (
		bestID   = -1
		bestSize = math.MaxInt
	)
	for _, h := range victimCandidates(pm, overloaded) {
		demand, ok := h.VM.DemandOn(pm.Type)
		if !ok {
			// No demand record on this PM type: the migration time is
			// unknowable, and counting it as zero would make such a VM
			// the permanent first choice. Skip it.
			continue
		}
		size := 0
		if mem, ok := demand.DemandFor(memGroup); ok {
			for _, u := range mem.Units {
				size += u
			}
		} else {
			size = demand.TotalUnits()
		}
		if size < bestSize {
			bestSize, bestID = size, h.VM.ID
		}
	}
	return bestID, bestID >= 0
}
