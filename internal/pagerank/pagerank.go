// Package pagerank implements Algorithm 1 of the paper: the PageRank
// iteration over a profile graph (damping, auxiliary accumulation,
// per-iteration normalization, convergence threshold) followed by the
// BPRU (Best Possible Resource Utilization) discount that multiplies
// each profile's rank by the maximum utilization among the terminal
// profiles reachable from it.
//
// The cores operate on CSR graphs (see CSR); the [][]int32 entry
// points are thin shims retained for callers holding per-node
// successor slices.
package pagerank

import (
	"errors"
	"math"

	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
)

// Defaults for Options, matching the paper (d = 0.85 "as generally
// assumed").
const (
	DefaultDamping = 0.85
	DefaultEpsilon = 1e-10
	DefaultMaxIter = 10000
)

// Options configures the PageRank iteration. The zero value selects the
// defaults above.
type Options struct {
	// Damping is the damping factor d in Equ. (12); nil selects
	// DefaultDamping (set with opt.F, e.g. opt.F(0.9) — an explicit
	// opt.F(0) runs undamped).
	Damping *float64
	// Epsilon is the convergence threshold: iteration stops once every
	// node's score changes by less than Epsilon between iterations.
	// Nil selects DefaultEpsilon.
	Epsilon *float64
	// MaxIter bounds the iteration count as a safety net.
	MaxIter int
	// Obs, when non-nil, records iteration counts, per-iteration
	// residuals and convergence outcomes (pagerank.* metrics).
	Obs *obs.Observer
}

// resolved carries the effective iteration parameters after defaulting.
type resolved struct {
	damping float64
	epsilon float64
	maxIter int
	obs     *obs.Observer
}

func (o Options) withDefaults() resolved {
	r := resolved{
		damping: opt.Or(o.Damping, DefaultDamping),
		epsilon: opt.Or(o.Epsilon, DefaultEpsilon),
		maxIter: o.MaxIter,
		obs:     o.Obs,
	}
	if r.maxIter == 0 {
		r.maxIter = DefaultMaxIter
	}
	return r
}

// Result carries the converged scores and iteration diagnostics.
type Result struct {
	// Ranks holds the normalized PageRank score of every node.
	Ranks []float64
	// Iterations is the number of iterations run until convergence.
	Iterations int
	// Converged reports whether Epsilon was reached within MaxIter.
	Converged bool
	// Residuals holds the max per-node score change of every
	// iteration, in order — Residuals[Iterations-1] is the residual
	// that ended the run (below Epsilon when Converged).
	Residuals []float64
}

// initialResidualCap seeds the Residuals slice: well-conditioned runs
// converge within a few dozen iterations, so the slice grows from a
// small capacity instead of pre-reserving MaxIter entries.
const initialResidualCap = 16

// Ranks runs the paper's Algorithm 1 lines 2-18 on the graph given as
// per-node successor lists. It returns an error for an empty graph or
// invalid options. Compatibility shim over RanksCSR.
func Ranks(succ [][]int32, opts Options) (Result, error) {
	return RanksCSR(NewCSR(succ), opts)
}

// RanksCSR is Ranks over a CSR graph — the hot-path form: the
// distribute loop streams two flat arenas and the auxiliary
// accumulator comes from a scratch pool, so steady-state runs allocate
// only the returned rank vector (plus residual diagnostics).
//
//prvm:hotpath
func RanksCSR(g CSR, opts Options) (Result, error) {
	o := opts.withDefaults()
	n := g.Len()
	if n == 0 {
		return Result{}, errors.New("pagerank: empty graph")
	}
	if o.damping < 0 || o.damping >= 1 {
		return Result{}, errors.New("pagerank: damping must be in [0,1)")
	}
	if o.epsilon <= 0 {
		return Result{}, errors.New("pagerank: epsilon must be positive")
	}

	//prvmlint:allow hotalloc — the returned rank vector; the one allocation the doc promises
	pr := make([]float64, n)
	aux := grabF64(n)
	defer releaseF64(aux)
	// Out-degree reciprocals, hoisted out of the iteration loop: the
	// distribute loop then runs one multiply per node instead of one
	// divide, and divides are the long pole of the kernel (an fdiv
	// stalls ~20+ cycles where fmul pipelines at ~4).
	invdeg := grabF64(n)
	defer releaseF64(invdeg)
	for i := 0; i < n; i++ {
		if d := g.Offsets[i+1] - g.Offsets[i]; d > 0 {
			invdeg[i] = 1 / float64(d)
		}
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	offsets, edges := g.Offsets, g.Edges

	//prvmlint:allow hotalloc — residual diagnostics travel with the result
	res := Result{Residuals: make([]float64, 0, initialResidualCap)}
	for iter := 1; iter <= o.maxIter; iter++ {
		// Lines 7-12: distribute each node's rank to its successors.
		for i := 0; i < n; i++ {
			lo, hi := offsets[i], offsets[i+1]
			if lo == hi {
				continue
			}
			share := pr[i] * invdeg[i]
			for _, j := range edges[lo:hi] {
				aux[j] += share
			}
		}
		// Lines 13-16: damped update, with the normalization sum fused
		// into the same pass.
		base := (1 - o.damping) / float64(n)
		sum := 0.0
		maxDelta := 0.0
		for i := range pr {
			next := base + o.damping*aux[i]
			sum += next
			pr[i], aux[i] = next, pr[i] // aux now holds the previous score
		}
		// Line 17: normalize (one divide, n multiplies), then measure
		// convergence against the previous normalized scores stashed in
		// aux.
		invSum := 1 / sum
		for i := range pr {
			pr[i] *= invSum
			if d := math.Abs(pr[i] - aux[i]); d > maxDelta {
				maxDelta = d
			}
			aux[i] = 0
		}
		res.Iterations = iter
		//prvmlint:allow hotalloc — one float per iteration, capacity preallocated above
		res.Residuals = append(res.Residuals, maxDelta)
		if maxDelta < o.epsilon {
			res.Converged = true
			break
		}
	}
	res.Ranks = pr
	if o.obs != nil {
		o.obs.Counter("pagerank.runs").Inc()
		if res.Converged {
			o.obs.Counter("pagerank.converged_runs").Inc()
		}
		o.obs.Histogram("pagerank.iterations", obs.ExpBuckets(1, 2, 16)).
			Observe(float64(res.Iterations))
		if len(res.Residuals) > 0 {
			o.obs.Histogram("pagerank.final_residual", obs.ExpBuckets(1e-14, 10, 15)).
				Observe(res.Residuals[len(res.Residuals)-1])
		}
	}
	return res, nil
}

// BPRU computes, for every node, the maximum utilization among the
// terminal nodes (no out-edges) reachable from it; a terminal node's
// BPRU is its own utilization (Algorithm 1 line 19's discount factor).
// The graph must be a DAG — profile graphs always are, because edges
// strictly increase total usage. Compatibility shim over BPRUCSR.
func BPRU(succ [][]int32, utils []float64) ([]float64, error) {
	return BPRUCSR(NewCSR(succ), utils)
}

// dfsFrame is one entry of the iterative post-order DFS stack shared
// by BPRUCSR and AbsorptionValuesCSR (deep recursion on long chains
// would overflow the goroutine stack).
type dfsFrame struct {
	node int32
	next int32
}

// BPRUCSR is BPRU over a CSR graph.
func BPRUCSR(g CSR, utils []float64) ([]float64, error) {
	n := g.Len()
	if len(utils) != n {
		return nil, errors.New("pagerank: utils length mismatch")
	}
	const (
		unvisited = iota
		inProgress
		done
	)
	state := grabU8(n)
	defer releaseU8(state)
	bpru := make([]float64, n)
	offsets, edges := g.Offsets, g.Edges

	var stack []dfsFrame
	for start := 0; start < n; start++ {
		if state[start] == done {
			continue
		}
		stack = append(stack[:0], dfsFrame{node: int32(start)})
		state[start] = inProgress
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			lo, hi := offsets[f.node], offsets[f.node+1]
			if lo+f.next < hi {
				child := edges[lo+f.next]
				f.next++
				switch state[child] {
				case unvisited:
					state[child] = inProgress
					stack = append(stack, dfsFrame{node: child})
				case inProgress:
					return nil, errors.New("pagerank: graph has a cycle")
				}
				continue
			}
			// Post-order: fold children.
			best := math.Inf(-1)
			if lo == hi {
				best = utils[f.node]
			} else {
				for _, c := range edges[lo:hi] {
					if bpru[c] > best {
						best = bpru[c]
					}
				}
			}
			bpru[f.node] = best
			state[f.node] = done
			stack = stack[:len(stack)-1]
		}
	}
	return bpru, nil
}

// AbsorptionValues computes the damped absorption value of every node
// of a DAG: terminals are worth reward(t) = utils[t]^rewardExp, and an
// inner node is worth damping times the mean value of its successors.
//
// This is the "probability that this profile can reach the best
// profile" reading of the paper's rank (Section V-B's closing
// sentence): a random walk that accommodates one uniformly-chosen
// feasible VM per step, pays a damping factor per step, and is
// rewarded by how close to full utilization it ends. The reward
// exponent sharpens the penalty for stranding capacity (a terminal at
// 93% utilization with rewardExp=8 is worth 0.6, not 0.93).
// Compatibility shim over AbsorptionValuesCSR.
func AbsorptionValues(succ [][]int32, utils []float64, damping, rewardExp float64) ([]float64, error) {
	return AbsorptionValuesCSR(NewCSR(succ), utils, damping, rewardExp)
}

// AbsorptionValuesCSR is AbsorptionValues over a CSR graph.
func AbsorptionValuesCSR(g CSR, utils []float64, damping, rewardExp float64) ([]float64, error) {
	n := g.Len()
	if len(utils) != n {
		return nil, errors.New("pagerank: utils length mismatch")
	}
	if damping <= 0 || damping > 1 {
		return nil, errors.New("pagerank: damping must be in (0,1]")
	}
	if rewardExp <= 0 {
		return nil, errors.New("pagerank: reward exponent must be positive")
	}
	const (
		unvisited = iota
		inProgress
		done
	)
	state := grabU8(n)
	defer releaseU8(state)
	value := make([]float64, n)
	offsets, edges := g.Offsets, g.Edges

	var stack []dfsFrame
	for start := 0; start < n; start++ {
		if state[start] == done {
			continue
		}
		stack = append(stack[:0], dfsFrame{node: int32(start)})
		state[start] = inProgress
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			lo, hi := offsets[f.node], offsets[f.node+1]
			if lo+f.next < hi {
				child := edges[lo+f.next]
				f.next++
				switch state[child] {
				case unvisited:
					state[child] = inProgress
					stack = append(stack, dfsFrame{node: child})
				case inProgress:
					return nil, errors.New("pagerank: graph has a cycle")
				}
				continue
			}
			if lo == hi {
				value[f.node] = math.Pow(utils[f.node], rewardExp)
			} else {
				sum := 0.0
				for _, c := range edges[lo:hi] {
					sum += value[c]
				}
				value[f.node] = damping * sum / float64(hi-lo)
			}
			state[f.node] = done
			stack = stack[:len(stack)-1]
		}
	}
	return value, nil
}

// Scores runs Ranks then applies the BPRU discount (Algorithm 1
// line 19), returning the final per-node scores. Compatibility shim
// over ScoresCSR.
func Scores(succ [][]int32, utils []float64, opts Options) ([]float64, Result, error) {
	return ScoresCSR(NewCSR(succ), utils, opts)
}

// ScoresCSR is Scores over a CSR graph.
func ScoresCSR(g CSR, utils []float64, opts Options) ([]float64, Result, error) {
	res, err := RanksCSR(g, opts)
	if err != nil {
		return nil, Result{}, err
	}
	bpru, err := BPRUCSR(g, utils)
	if err != nil {
		return nil, Result{}, err
	}
	scores := make([]float64, len(res.Ranks))
	for i, r := range res.Ranks {
		scores[i] = r * bpru[i]
	}
	return scores, res, nil
}
