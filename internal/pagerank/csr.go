package pagerank

import "sync"

// CSR is a profile graph in compressed-sparse-row form: the successors
// of node i are Edges[Offsets[i]:Offsets[i+1]]. It is the native
// layout of the iteration cores — one contiguous offsets arena and one
// contiguous edge arena, no per-node slice headers to chase — and
// matches the arenas lattice.Space exposes.
type CSR struct {
	Offsets []int32 // len n+1, non-decreasing
	Edges   []int32
}

// NewCSR flattens per-node successor lists into CSR form.
func NewCSR(succ [][]int32) CSR {
	off := make([]int32, len(succ)+1)
	total := 0
	for i, out := range succ {
		total += len(out)
		off[i+1] = int32(total)
	}
	edges := make([]int32, 0, total)
	for _, out := range succ {
		edges = append(edges, out...)
	}
	return CSR{Offsets: off, Edges: edges}
}

// Len returns the number of nodes.
func (g CSR) Len() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumEdges returns the number of edges.
func (g CSR) NumEdges() int { return len(g.Edges) }

// Succ returns the successors of node i. The slice aliases the arena.
func (g CSR) Succ(i int) []int32 { return g.Edges[g.Offsets[i]:g.Offsets[i+1]] }

// Reverse returns the graph with every edge flipped, built by a
// counting pass. The reversed adjacency of a target node lists its
// sources in ascending order, matching the append order of a serial
// per-node reversal, so downstream float accumulation is reproducible.
func (g CSR) Reverse() CSR {
	n := g.Len()
	off := make([]int32, n+1)
	for _, j := range g.Edges {
		off[j+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	edges := make([]int32, len(g.Edges))
	cursor := make([]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range g.Edges[g.Offsets[i]:g.Offsets[i+1]] {
			edges[off[j]+cursor[j]] = int32(i)
			cursor[j]++
		}
	}
	return CSR{Offsets: off, Edges: edges}
}

// Scratch-vector pools. The iteration cores allocate only their
// returned result; internal accumulators and DFS visit states come
// from these pools so the Factored ranker's many per-group runs (and
// repeated re-ranks of a live system) reach a steady state with no
// per-run scratch allocations. Pooled slices are zeroed on grab.

var (
	f64Pool sync.Pool // *[]float64
	u8Pool  sync.Pool // *[]uint8
)

func grabF64(n int) []float64 {
	if p, ok := f64Pool.Get().(*[]float64); ok && cap(*p) >= n {
		s := (*p)[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n)
}

func releaseF64(s []float64) {
	if cap(s) > 0 {
		f64Pool.Put(&s)
	}
}

func grabU8(n int) []uint8 {
	if p, ok := u8Pool.Get().(*[]uint8); ok && cap(*p) >= n {
		s := (*p)[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]uint8, n)
}

func releaseU8(s []uint8) {
	if cap(s) > 0 {
		u8Pool.Put(&s)
	}
}
