package pagerank

import (
	"math"
	"testing"
)

func TestAbsorptionValuesChain(t *testing.T) {
	// 0 -> 1 -> 2(terminal, util 1): V(2)=1, V(1)=d, V(0)=d^2.
	g := [][]int32{{1}, {2}, nil}
	utils := []float64{0.1, 0.5, 1.0}
	v, err := AbsorptionValues(g, utils, 0.85, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7225, 0.85, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestAbsorptionValuesMean(t *testing.T) {
	// 0 -> {1, 2}; terminal utils 1 and 0.5; exponent 1.
	g := [][]int32{{1, 2}, nil, nil}
	utils := []float64{0, 1, 0.5}
	v, err := AbsorptionValues(g, utils, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 * (1 + 0.5) / 2
	if math.Abs(v[0]-want) > 1e-12 {
		t.Fatalf("v[0] = %v, want %v", v[0], want)
	}
}

func TestAbsorptionValuesRewardExponent(t *testing.T) {
	g := [][]int32{nil}
	utils := []float64{0.5}
	v1, err := AbsorptionValues(g, utils, 0.85, 1)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := AbsorptionValues(g, utils, 0.85, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v1[0] != 0.5 || math.Abs(v3[0]-0.125) > 1e-12 {
		t.Fatalf("v1=%v v3=%v", v1[0], v3[0])
	}
}

func TestAbsorptionValuesSharedSubDAG(t *testing.T) {
	// Diamond: both paths meet at a shared terminal; memoization must
	// hold and both middles get d * 1.
	g := [][]int32{{1, 2}, {3}, {3}, nil}
	utils := []float64{0, 0, 0, 1}
	v, err := AbsorptionValues(g, utils, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[1] != 0.9 || v[2] != 0.9 {
		t.Fatalf("middles = %v, %v", v[1], v[2])
	}
	if math.Abs(v[0]-0.81) > 1e-12 {
		t.Fatalf("v[0] = %v", v[0])
	}
}

func TestAbsorptionValuesValidation(t *testing.T) {
	g := [][]int32{nil}
	if _, err := AbsorptionValues(g, nil, 0.85, 8); err == nil {
		t.Error("accepted mismatched utils")
	}
	if _, err := AbsorptionValues(g, []float64{1}, 0, 8); err == nil {
		t.Error("accepted zero damping")
	}
	if _, err := AbsorptionValues(g, []float64{1}, 1.5, 8); err == nil {
		t.Error("accepted damping > 1")
	}
	if _, err := AbsorptionValues(g, []float64{1}, 0.85, 0); err == nil {
		t.Error("accepted zero reward exponent")
	}
	cyclic := [][]int32{{1}, {0}}
	if _, err := AbsorptionValues(cyclic, []float64{0, 0}, 0.85, 8); err == nil {
		t.Error("accepted a cycle")
	}
}

func TestAbsorptionValuesDampingOne(t *testing.T) {
	// damping 1 is allowed: pure expected terminal reward.
	g := [][]int32{{1}, nil}
	v, err := AbsorptionValues(g, []float64{0, 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 {
		t.Fatalf("v[0] = %v", v[0])
	}
}

func TestAbsorptionValuesBounded(t *testing.T) {
	// Values always lie in [0, 1] for utils in [0, 1].
	g := [][]int32{{1, 2}, {3}, {3, 4}, nil, nil}
	utils := []float64{0.2, 0.3, 0.1, 0.9, 0.4}
	v, err := AbsorptionValues(g, utils, 0.85, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("v[%d] = %v out of [0,1]", i, x)
		}
	}
}
