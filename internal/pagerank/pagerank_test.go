package pagerank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pagerankvm/internal/opt"
)

func TestRanksEmptyGraph(t *testing.T) {
	if _, err := Ranks(nil, Options{}); err == nil {
		t.Fatal("Ranks accepted an empty graph")
	}
}

func TestRanksBadOptions(t *testing.T) {
	g := [][]int32{nil}
	if _, err := Ranks(g, Options{Damping: opt.F(1.5)}); err == nil {
		t.Error("accepted damping >= 1")
	}
	if _, err := Ranks(g, Options{Damping: opt.F(-0.5)}); err == nil {
		t.Error("accepted negative damping")
	}
	if _, err := Ranks(g, Options{Epsilon: opt.F(-1)}); err == nil {
		t.Error("accepted negative epsilon")
	}
}

func TestRanksSingleNode(t *testing.T) {
	res, err := Ranks([][]int32{nil}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("single node did not converge")
	}
	if res.Ranks[0] != 1 {
		t.Errorf("rank = %v, want 1 after normalization", res.Ranks[0])
	}
}

// In a chain a->b->c, rank must increase along the chain: every node
// votes for its successor.
func TestRanksChainOrdering(t *testing.T) {
	g := [][]int32{{1}, {2}, nil}
	res, err := Ranks(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Ranks
	if !(r[2] > r[1] && r[1] > r[0]) {
		t.Fatalf("chain ranks not increasing: %v", r)
	}
}

// A node with two in-links from equally ranked sources outranks a node
// with one.
func TestRanksInDegreeMatters(t *testing.T) {
	// 0 -> 2, 1 -> 2, 3 -> 4. Node 2 has two voters, node 4 one.
	g := [][]int32{{2}, {2}, nil, {4}, nil}
	res, err := Ranks(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[2] <= res.Ranks[4] {
		t.Fatalf("rank[2]=%v should exceed rank[4]=%v", res.Ranks[2], res.Ranks[4])
	}
}

func TestRanksNormalizedAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := make([][]int32, n)
		// Random DAG: edges only i -> j with j > i.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g[i] = append(g[i], int32(j))
				}
			}
		}
		res, err := Ranks(g, Options{})
		if err != nil || !res.Converged {
			return false
		}
		sum := 0.0
		for _, x := range res.Ranks {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRanksDeterministic(t *testing.T) {
	g := [][]int32{{1, 2}, {2}, {3}, nil}
	a, err := Ranks(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ranks(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("non-deterministic ranks at %d: %v vs %v", i, a.Ranks[i], b.Ranks[i])
		}
	}
}

func TestBPRUChain(t *testing.T) {
	// 0 -> 1 -> 2(terminal, util .75); 3 terminal util .5.
	g := [][]int32{{1}, {2}, nil, nil}
	utils := []float64{0.1, 0.5, 0.75, 0.5}
	b, err := BPRU(g, utils)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.75, 0.75, 0.75, 0.5}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bpru[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestBPRUBranching(t *testing.T) {
	// 0 -> {1,2}; 1 terminal util 1.0; 2 -> 3 terminal util 0.6.
	g := [][]int32{{1, 2}, nil, {3}, nil}
	utils := []float64{0.2, 1.0, 0.4, 0.6}
	b, err := BPRU(g, utils)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1.0 {
		t.Errorf("bpru[0] = %v, want 1.0 (best reachable terminal)", b[0])
	}
	if b[2] != 0.6 {
		t.Errorf("bpru[2] = %v, want 0.6", b[2])
	}
}

func TestBPRUDetectsCycle(t *testing.T) {
	g := [][]int32{{1}, {0}}
	if _, err := BPRU(g, []float64{0, 0}); err == nil {
		t.Fatal("BPRU accepted a cyclic graph")
	}
}

func TestBPRULengthMismatch(t *testing.T) {
	if _, err := BPRU([][]int32{nil}, nil); err == nil {
		t.Fatal("BPRU accepted mismatched utils")
	}
}

func TestBPRUSharedSubDAG(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3 (terminal util .9). Memoization must
	// not double-visit.
	g := [][]int32{{1, 2}, {3}, {3}, nil}
	utils := []float64{0, 0, 0, 0.9}
	b, err := BPRU(g, utils)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i] != 0.9 {
			t.Errorf("bpru[%d] = %v, want 0.9", i, b[i])
		}
	}
}

func TestScoresDiscount(t *testing.T) {
	// Two parallel chains of equal topology but different terminal
	// utilization; the high-utilization chain must win after BPRU.
	g := [][]int32{{1}, nil, {3}, nil}
	utils := []float64{0.5, 1.0, 0.5, 0.5}
	scores, res, err := Scores(g, utils, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if scores[0] <= scores[2] {
		t.Errorf("score[0]=%v should exceed score[2]=%v (BPRU discount)", scores[0], scores[2])
	}
	if scores[1] <= scores[3] {
		t.Errorf("score[1]=%v should exceed score[3]=%v", scores[1], scores[3])
	}
}

func TestScoresErrorPropagation(t *testing.T) {
	if _, _, err := Scores(nil, nil, Options{}); err == nil {
		t.Error("Scores accepted empty graph")
	}
	g := [][]int32{{1}, {0}}
	if _, _, err := Scores(g, []float64{0, 0}, Options{}); err == nil {
		t.Error("Scores accepted a cyclic graph")
	}
}

func TestRanksMaxIterCap(t *testing.T) {
	g := [][]int32{{1}, {2}, nil}
	res, err := Ranks(g, Options{Epsilon: opt.F(1e-300), MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("claimed convergence with impossible epsilon")
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3", res.Iterations)
	}
}

func TestRanksResiduals(t *testing.T) {
	// A small cyclic graph so the power iteration actually runs a few
	// rounds before converging.
	g := [][]int32{{1, 2}, {2}, {0}}
	res, err := Ranks(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(res.Residuals) != res.Iterations {
		t.Fatalf("len(Residuals) = %d, want Iterations = %d", len(res.Residuals), res.Iterations)
	}
	last := res.Residuals[len(res.Residuals)-1]
	if !(last < DefaultEpsilon) {
		t.Errorf("final residual %v not below Epsilon %v", last, DefaultEpsilon)
	}
	for i, r := range res.Residuals {
		if r < 0 || math.IsNaN(r) {
			t.Errorf("Residuals[%d] = %v, want non-negative", i, r)
		}
	}
}
