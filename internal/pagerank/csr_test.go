package pagerank

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomDAG draws a random DAG as per-node successor lists with edges
// pointing only to higher ids (so acyclicity holds by construction).
func randomDAG(rng *rand.Rand, n int) [][]int32 {
	succ := make([][]int32, n)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				succ[i] = append(succ[i], int32(j))
			}
		}
	}
	return succ
}

func randomUtils(rng *rand.Rand, n int) []float64 {
	utils := make([]float64, n)
	for i := range utils {
		utils[i] = rng.Float64()
	}
	return utils
}

// TestCSRMatchesSliceForm pins the CSR cores to the slice-shim entry
// points bit for bit: same ranks, residuals, BPRU and absorption
// values on random DAGs. The shims delegate to the CSR cores, so this
// is really a regression net for NewCSR and the arena iteration.
func TestCSRMatchesSliceForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		succ := randomDAG(rng, n)
		utils := randomUtils(rng, n)
		g := NewCSR(succ)

		if g.Len() != n {
			t.Fatalf("trial %d: CSR Len = %d, want %d", trial, g.Len(), n)
		}
		for i := 0; i < n; i++ {
			got := g.Succ(i)
			if len(got) != len(succ[i]) {
				t.Fatalf("trial %d: node %d has %d successors in CSR, want %d", trial, i, len(got), len(succ[i]))
			}
			for k, j := range succ[i] {
				if got[k] != j {
					t.Fatalf("trial %d: node %d successor %d = %d, want %d", trial, i, k, got[k], j)
				}
			}
		}

		res1, err1 := Ranks(succ, Options{})
		res2, err2 := RanksCSR(g, Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: Ranks errors: %v, %v", trial, err1, err2)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("trial %d: Ranks differs between slice and CSR form", trial)
		}
		for i := range res1.Ranks {
			if math.Float64bits(res1.Ranks[i]) != math.Float64bits(res2.Ranks[i]) {
				t.Fatalf("trial %d: rank %d not bitwise equal", trial, i)
			}
		}

		b1, err1 := BPRU(succ, utils)
		b2, err2 := BPRUCSR(g, utils)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: BPRU errors: %v, %v", trial, err1, err2)
		}
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("trial %d: BPRU differs between slice and CSR form", trial)
		}

		a1, err1 := AbsorptionValues(succ, utils, 0.85, 8)
		a2, err2 := AbsorptionValuesCSR(g, utils, 0.85, 8)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: AbsorptionValues errors: %v, %v", trial, err1, err2)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("trial %d: AbsorptionValues differs between slice and CSR form", trial)
		}
	}
}

// TestCSRReverse checks Reverse against a naive per-node reversal,
// including the source-order guarantee (ascending sources per target)
// that keeps downstream float accumulation reproducible.
func TestCSRReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		succ := randomDAG(rng, n)
		rev := NewCSR(succ).Reverse()

		naive := make([][]int32, n)
		for i, out := range succ {
			for _, j := range out {
				naive[j] = append(naive[j], int32(i))
			}
		}
		want := NewCSR(naive)
		if !reflect.DeepEqual(rev.Offsets, want.Offsets) || !reflect.DeepEqual(rev.Edges, want.Edges) {
			t.Fatalf("trial %d: Reverse differs from naive reversal", trial)
		}
	}
}

// TestScratchPoolsZeroed guards the pool reuse: a dirty released
// buffer must never leak state into the next run. Two identical runs
// sandwiching an unrelated one must agree exactly.
func TestScratchPoolsZeroed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	succ := randomDAG(rng, 30)
	g := NewCSR(succ)
	utils := randomUtils(rng, 30)

	first, _, err := ScoresCSR(g, utils, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pollute the pools with a differently-sized run.
	other := NewCSR(randomDAG(rng, 50))
	if _, err := RanksCSR(other, Options{}); err != nil {
		t.Fatal(err)
	}
	second, _, err := ScoresCSR(g, utils, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated ScoresCSR runs differ; pooled scratch not zeroed")
	}
}
