package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

func TestAmazonCatalogShapes(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	m3, ok := cat.Shape("M3")
	if !ok {
		t.Fatal("no M3 shape")
	}
	// 8 cores of 4 vCPU slots, 17 memory units (64/3.75), 4 disks of
	// 31 units (250/8).
	if m3.NumDims() != 13 {
		t.Fatalf("M3 dims = %d", m3.NumDims())
	}
	if g := m3.Group(0); g.Dims != 8 || g.Cap != 4 {
		t.Fatalf("M3 cpu group %+v", g)
	}
	if g := m3.Group(1); g.Dims != 1 || g.Cap != 17 {
		t.Fatalf("M3 mem group %+v", g)
	}
	if g := m3.Group(2); g.Dims != 4 || g.Cap != 31 {
		t.Fatalf("M3 disk group %+v", g)
	}
	if _, ok := cat.Shape("Z9"); ok {
		t.Fatal("unknown shape found")
	}
}

func TestQuantizedDemands(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		pm, vm   string
		cpuUnits []int
		mem      int
		disk     []int
	}{
		// m3 vCPUs are 0.6 GHz; M3 slots are 0.65 GHz -> 1 unit each.
		{pm: "M3", vm: "m3.large", cpuUnits: []int{1, 1}, mem: 2, disk: []int{4}},
		// c3 vCPUs are 0.7 GHz -> 2 M3 slots each.
		{pm: "M3", vm: "c3.large", cpuUnits: []int{2, 2}, mem: 1, disk: []int{2, 2}},
		// On a C3 host the slot is 0.7 GHz: c3 vCPUs take 1 unit.
		{pm: "C3", vm: "c3.xlarge", cpuUnits: []int{1, 1, 1, 1}, mem: 2, disk: []int{5, 5}},
		{pm: "M3", vm: "m3.2xlarge", cpuUnits: []int{1, 1, 1, 1, 1, 1, 1, 1}, mem: 8, disk: []int{10, 10}},
	}
	for _, tt := range tests {
		d, ok := cat.Demand(tt.pm, tt.vm)
		if !ok {
			t.Fatalf("no demand for %s on %s", tt.vm, tt.pm)
		}
		cpu, _ := d.DemandFor(GroupCPU)
		if !resource.Vec(cpu.Units).Equal(resource.Vec(tt.cpuUnits)) {
			t.Errorf("%s on %s cpu = %v, want %v", tt.vm, tt.pm, cpu.Units, tt.cpuUnits)
		}
		mem, _ := d.DemandFor(GroupMem)
		if mem.Units[0] != tt.mem {
			t.Errorf("%s on %s mem = %v, want %d", tt.vm, tt.pm, mem.Units, tt.mem)
		}
		disk, _ := d.DemandFor(GroupDisk)
		if !resource.Vec(disk.Units).Equal(resource.Vec(tt.disk)) {
			t.Errorf("%s on %s disk = %v, want %v", tt.vm, tt.pm, disk.Units, tt.disk)
		}
	}
	if _, ok := cat.Demand("Z9", "m3.large"); ok {
		t.Error("demand on unknown PM type")
	}
	if _, ok := cat.Demand("M3", "z9.tiny"); ok {
		t.Error("demand for unknown VM type")
	}
}

func TestNewVM(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := cat.NewVM(7, "m3.medium")
	if err != nil {
		t.Fatal(err)
	}
	if vm.ID != 7 || vm.Type != "m3.medium" || len(vm.Req) != 2 {
		t.Fatalf("vm = %+v", vm)
	}
	if _, err := cat.NewVM(8, "nope"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestBuildCluster(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	c := cat.BuildCluster(3)
	pms := c.PMs()
	if len(pms) != 6 {
		t.Fatalf("built %d PMs", len(pms))
	}
	// Interleaved types, unique ids.
	if pms[0].Type != "M3" || pms[1].Type != "C3" || pms[2].Type != "M3" {
		t.Fatalf("types %s,%s,%s", pms[0].Type, pms[1].Type, pms[2].Type)
	}
	seen := map[int]bool{}
	for _, pm := range pms {
		if seen[pm.ID] {
			t.Fatalf("duplicate pm id %d", pm.ID)
		}
		seen[pm.ID] = true
	}
}

func TestBuildRegistry(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry has %d rankers", reg.Len())
	}
	for _, pmType := range []string{"M3", "C3"} {
		ranker, ok := reg.Get(pmType)
		if !ok {
			t.Fatalf("no ranker for %s", pmType)
		}
		shape, _ := cat.Shape(pmType)
		full, ok := ranker.Score(shape.Capacity())
		if !ok || full <= 0 {
			t.Fatalf("%s full profile score = %v, %v", pmType, full, ok)
		}
		empty, _ := ranker.Score(shape.Zero())
		if empty >= full {
			t.Fatalf("%s: empty %v should score below full %v", pmType, empty, full)
		}
	}
}

func TestVMMixNormalizes(t *testing.T) {
	mix := VMMix()
	total := 0.0
	for _, w := range mix {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("mix weights sum to %v", total)
	}
	names := make([]string, 0, len(mix))
	for _, vm := range AmazonVMTypes() {
		names = append(names, vm.Name)
	}
	// Sampling respects weights roughly.
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[SampleVMType(mix, names, rng.Float64())]++
	}
	for name, w := range mix {
		got := float64(counts[name]) / draws
		if got < w-0.02 || got > w+0.02 {
			t.Errorf("type %s frequency %v, want ~%v", name, got, w)
		}
	}
}

func TestTableWriters(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable1(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m3.2xlarge") {
		t.Errorf("table 1 missing rows: %s", sb.String())
	}
	sb.Reset()
	if err := WriteTable2(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E5-2680") {
		t.Errorf("table 2 missing power model: %s", sb.String())
	}
	sb.Reset()
	if err := WriteTable3(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "417.6") {
		t.Errorf("table 3 missing breakpoint: %s", sb.String())
	}
}

func TestFigure1And2Writers(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigure1(&sb, ranktable.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[4,4,4,4]") {
		t.Errorf("figure 1 output: %s", sb.String())
	}
	comps, err := RunFigure2(ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	for _, c := range comps {
		if !c.Holds {
			t.Errorf("paper comparison %v > %v does not hold: %v vs %v",
				c.Better, c.Worse, c.BetterScore, c.WorseScore)
		}
	}
	sb.Reset()
	if err := WriteFigure2(&sb, ranktable.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "true") {
		t.Errorf("figure 2 output: %s", sb.String())
	}
}
