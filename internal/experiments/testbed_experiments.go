package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"pagerankvm/internal/metrics"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/testbed"
)

// TestbedConfig parameterizes the GENI-emulation sweeps behind
// Figures 4 and 8.
type TestbedConfig struct {
	// NumJobs are the sweep points; the paper reports 100-300.
	NumJobs []int
	// Reps is the repetition count per point.
	Reps int
	// Seed is the base seed.
	Seed int64
	// NumPMs is the emulated instance count (paper: 10).
	NumPMs int
	// Steps is the experiment length (paper: 4 h at 10 s = 1440).
	Steps int
	// Transport selects in-memory pipes (default) or loopback TCP.
	Transport testbed.Transport
	// CallTimeout, CallRetries and RetryBackoff configure the
	// controller's fault-tolerant call path (see testbed.Config).
	CallTimeout  time.Duration
	CallRetries  *int
	RetryBackoff time.Duration
	// Faults, when non-nil, wraps every controller-side connection in
	// a seeded deterministic fault injector (the -faults flag of
	// cmd/prvm-testbed).
	Faults *testbed.FaultConfig
	// Rank tunes the Profile→score table.
	Rank ranktable.Options
	// Obs, when non-nil, receives runtime telemetry from the table
	// builds, the placer and the controller (the -obsaddr/-metrics-out
	// hook of cmd/prvm-testbed).
	Obs *obs.Observer
}

func (c TestbedConfig) withDefaults() TestbedConfig {
	if len(c.NumJobs) == 0 {
		c.NumJobs = []int{100, 200, 300}
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumPMs == 0 {
		c.NumPMs = testbed.DefaultPMs
	}
	if c.Steps == 0 {
		c.Steps = 1440
	}
	return c
}

// TestbedCell is one (algorithm, numJobs) cell of the sweep.
type TestbedCell struct {
	Algorithm  string
	NumJobs    int
	PMsUsed    metrics.Summary
	Migrations metrics.Summary
	SLOPct     metrics.Summary
}

// TestbedSweep holds the grid behind Figures 4(a), 4(b) and 8.
type TestbedSweep struct {
	Cells []TestbedCell
}

// RunTestbedSweep runs the GENI emulation for every algorithm and job
// count.
func RunTestbedSweep(cfg TestbedConfig) (*TestbedSweep, error) {
	cfg = cfg.withDefaults()
	if cfg.Rank.Obs == nil {
		cfg.Rank.Obs = cfg.Obs
	}
	reg, err := testbed.NewRegistry(cfg.Rank)
	if err != nil {
		return nil, err
	}
	sweep := &TestbedSweep{}
	for _, n := range cfg.NumJobs {
		type accum struct{ pms, migr, slo []float64 }
		results := make(map[string]*accum, len(AlgorithmNames))
		for _, name := range AlgorithmNames {
			results[name] = &accum{}
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + int64(rep)
			jobs, err := testbed.GenJobs(testbed.NewJobVM, testbed.JobConfig{
				NumJobs: n,
				Steps:   cfg.Steps,
				Seed:    seed,
			})
			if err != nil {
				return nil, err
			}
			for _, name := range AlgorithmNames {
				placer, evictor := buildAlgorithmObserved(name, reg, seed, cfg.Obs)
				faults := cfg.Faults
				if faults != nil && faults.Obs == nil {
					f := *faults
					f.Obs = cfg.Obs
					faults = &f
				}
				h, err := testbed.LaunchWithFaults(cfg.NumPMs, cfg.Transport, faults)
				if err != nil {
					return nil, err
				}
				ctrl, err := testbed.NewController(testbed.Config{
					Steps:        cfg.Steps,
					CallTimeout:  cfg.CallTimeout,
					CallRetries:  cfg.CallRetries,
					RetryBackoff: cfg.RetryBackoff,
					Obs:          cfg.Obs,
				}, h.Cluster(), placer, evictor, h.Conns(), jobs)
				if err != nil {
					return nil, err
				}
				res, err := ctrl.Run()
				if err != nil {
					return nil, fmt.Errorf("experiments: testbed %s n=%d rep=%d: %w", name, n, rep, err)
				}
				h.Close()
				a := results[name]
				a.pms = append(a.pms, float64(res.PMsUsed))
				a.migr = append(a.migr, float64(res.Migrations))
				a.slo = append(a.slo, res.SLOViolationPct)
			}
		}
		for _, name := range AlgorithmNames {
			a := results[name]
			sweep.Cells = append(sweep.Cells, TestbedCell{
				Algorithm:  name,
				NumJobs:    n,
				PMsUsed:    metrics.Summarize(a.pms),
				Migrations: metrics.Summarize(a.migr),
				SLOPct:     metrics.Summarize(a.slo),
			})
		}
	}
	return sweep, nil
}

// Summary extracts one metric's summary from a testbed cell.
// MetricEnergy is not measured on the testbed (the paper evaluates
// energy in simulation only).
func (c TestbedCell) Summary(m Metric) (metrics.Summary, bool) {
	switch m {
	case MetricPMs:
		return c.PMsUsed, true
	case MetricMigrations:
		return c.Migrations, true
	case MetricSLO:
		return c.SLOPct, true
	default:
		return metrics.Summary{}, false
	}
}

// WriteFigure renders one testbed figure (4a, 4b or 8).
func (s *TestbedSweep) WriteFigure(w io.Writer, m Metric, title string) error {
	if _, err := fmt.Fprintf(w, "%s — GENI testbed emulation, metric: %s\n", title, m); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	counts := s.jobCounts()
	fmt.Fprint(tw, "algorithm")
	for _, n := range counts {
		fmt.Fprintf(tw, "\t%d jobs", n)
	}
	fmt.Fprintln(tw)
	for _, alg := range AlgorithmNames {
		fmt.Fprint(tw, alg)
		for _, n := range counts {
			cell, ok := s.cell(alg, n)
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			sum, ok := cell.Summary(m)
			if !ok {
				fmt.Fprint(tw, "\tn/a")
				continue
			}
			fmt.Fprintf(tw, "\t%.1f [%.1f, %.1f]", sum.Median, sum.P1, sum.P99)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV emits the testbed sweep in tidy form.
func (s *TestbedSweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "num_jobs", "metric", "median", "p1", "p99", "reps"}); err != nil {
		return err
	}
	for _, c := range s.Cells {
		for _, m := range []Metric{MetricPMs, MetricMigrations, MetricSLO} {
			sum, ok := c.Summary(m)
			if !ok {
				continue
			}
			rec := []string{
				c.Algorithm,
				strconv.Itoa(c.NumJobs),
				m.String(),
				formatFloat(sum.Median),
				formatFloat(sum.P1),
				formatFloat(sum.P99),
				strconv.Itoa(sum.N),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func (s *TestbedSweep) jobCounts() []int {
	seen := map[int]bool{}
	var counts []int
	for _, c := range s.Cells {
		if !seen[c.NumJobs] {
			seen[c.NumJobs] = true
			counts = append(counts, c.NumJobs)
		}
	}
	sort.Ints(counts)
	return counts
}

func (s *TestbedSweep) cell(alg string, n int) (TestbedCell, bool) {
	for _, c := range s.Cells {
		if c.Algorithm == alg && c.NumJobs == n {
			return c, true
		}
	}
	return TestbedCell{}, false
}
