package experiments

import (
	"strings"
	"testing"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/trace"
)

func TestGenWorkloads(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.PlanetLab{Seed: 3}
	wl, err := cat.GenWorkloads(gen, WorkloadConfig{NumVMs: 200, Seed: 1, Steps: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(wl) != 200 {
		t.Fatalf("len = %d", len(wl))
	}
	churned := 0
	seen := map[int]bool{}
	for _, w := range wl {
		if seen[w.VM.ID] {
			t.Fatalf("duplicate vm id %d", w.VM.ID)
		}
		seen[w.VM.ID] = true
		if len(w.Trace) != 48 {
			t.Fatalf("trace length %d", len(w.Trace))
		}
		for _, u := range w.Trace {
			if u < 0 || u > 1 {
				t.Fatalf("trace sample %v out of range", u)
			}
		}
		if w.Start < 0 || w.Start >= 48 {
			t.Fatalf("start %d out of range", w.Start)
		}
		if w.End != 0 && w.End <= w.Start {
			t.Fatalf("lease [%d,%d) invalid", w.Start, w.End)
		}
		if w.Start > 0 || w.End > 0 {
			churned++
		}
	}
	// Default churn fraction is 0.5 of tenants; some churn must appear.
	if churned == 0 {
		t.Fatal("no churned VMs with default config")
	}
}

func TestGenWorkloadsDeterministic(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.Google{Seed: 9}
	a, err := cat.GenWorkloads(gen, WorkloadConfig{NumVMs: 50, Seed: 4, Steps: 24})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cat.GenWorkloads(gen, WorkloadConfig{NumVMs: 50, Seed: 4, Steps: 24})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].VM.Type != b[i].VM.Type || a[i].Start != b[i].Start || a[i].End != b[i].End {
			t.Fatalf("workload %d differs", i)
		}
		for j := range a[i].Trace {
			if a[i].Trace[j] != b[i].Trace[j] {
				t.Fatalf("trace %d differs at %d", i, j)
			}
		}
	}
}

func TestGenWorkloadsNoChurn(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := cat.GenWorkloads(trace.Constant{Level: 0.5},
		WorkloadConfig{NumVMs: 40, Seed: 2, Steps: 24, ChurnFraction: opt.F(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wl {
		if w.Start != 0 || w.End != 0 {
			t.Fatalf("churn with ChurnFraction=0: [%d,%d)", w.Start, w.End)
		}
	}
}

func TestGenWorkloadsValidation(t *testing.T) {
	cat, err := AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.GenWorkloads(trace.Constant{}, WorkloadConfig{}); err == nil {
		t.Fatal("accepted empty config")
	}
}

// A small end-to-end sweep: orderings are checked by the full harness;
// here we only assert the plumbing produces complete, well-formed
// grids.
func TestRunSimSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sweep, err := RunSimSweep(SimConfig{
		Trace:      "google",
		NumVMs:     []int{60},
		Reps:       2,
		Seed:       3,
		PMsPerType: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != len(AlgorithmNames) {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	for _, c := range sweep.Cells {
		if c.PMsUsed.N != 2 {
			t.Fatalf("cell %s has %d reps", c.Algorithm, c.PMsUsed.N)
		}
		if c.PMsUsed.Median <= 0 {
			t.Fatalf("cell %s median %v", c.Algorithm, c.PMsUsed.Median)
		}
		if c.EnergyKWh.Median <= 0 {
			t.Fatalf("cell %s energy %v", c.Algorithm, c.EnergyKWh.Median)
		}
	}
	var sb strings.Builder
	for _, m := range []Metric{MetricPMs, MetricEnergy, MetricMigrations, MetricSLO} {
		if err := sweep.WriteFigure(&sb, m, "smoke"); err != nil {
			t.Fatal(err)
		}
	}
	out := sb.String()
	for _, alg := range AlgorithmNames {
		if !strings.Contains(out, alg) {
			t.Fatalf("figure output missing %s:\n%s", alg, out)
		}
	}
}

func TestRunTestbedSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sweep, err := RunTestbedSweep(TestbedConfig{
		NumJobs: []int{20},
		Reps:    2,
		Seed:    3,
		NumPMs:  4,
		Steps:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != len(AlgorithmNames) {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	var sb strings.Builder
	for _, m := range []Metric{MetricPMs, MetricMigrations, MetricSLO} {
		if err := sweep.WriteFigure(&sb, m, "smoke"); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(sb.String(), "PageRankVM") {
		t.Fatalf("output:\n%s", sb.String())
	}
	// Energy is n/a on the testbed.
	sb.Reset()
	if err := sweep.WriteFigure(&sb, MetricEnergy, "smoke"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n/a") {
		t.Fatalf("energy should be n/a:\n%s", sb.String())
	}
}

func TestMetricString(t *testing.T) {
	wants := map[Metric]string{
		MetricPMs:        "PMs used",
		MetricEnergy:     "energy (kWh)",
		MetricMigrations: "VM migrations",
		MetricSLO:        "SLO violations (%)",
	}
	for m, want := range wants {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q", int(m), got)
		}
	}
}

func TestSweepCSVWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sim, err := RunSimSweep(SimConfig{
		Trace: "google", NumVMs: []int{40}, Reps: 1, Seed: 2, PMsPerType: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sim.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace,algorithm,num_vms,metric,median,p1,p99,reps") {
		t.Fatalf("missing header:\n%s", out)
	}
	// 4 algorithms x 4 metrics + header.
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 16 {
		t.Fatalf("csv rows = %d, want 16", got)
	}

	tb, err := RunTestbedSweep(TestbedConfig{
		NumJobs: []int{10}, Reps: 1, Seed: 2, NumPMs: 3, Steps: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(strings.TrimSpace(sb.String()), "\n"); got != 12 {
		t.Fatalf("testbed csv rows = %d, want 12", got)
	}
}

// The paper's headline result as a regression guard: PageRankVM needs
// far fewer migrations and SLO violations than First Fit under the
// evaluation workload. Run at reduced scale; skipped in -short.
func TestHeadlineMigrationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sweep, err := RunSimSweep(SimConfig{
		Trace:      "google",
		NumVMs:     []int{400},
		Reps:       3,
		Seed:       7,
		PMsPerType: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(alg string) SimCell {
		for _, c := range sweep.Cells {
			if c.Algorithm == alg {
				return c
			}
		}
		t.Fatalf("no cell for %s", alg)
		return SimCell{}
	}
	prvm, ff := get("PageRankVM"), get("FF")
	if prvm.Migrations.Median*1.5 >= ff.Migrations.Median {
		t.Errorf("migration headline lost: PageRankVM %v vs FF %v",
			prvm.Migrations.Median, ff.Migrations.Median)
	}
	if prvm.SLOPct.Median > ff.SLOPct.Median {
		t.Errorf("SLO headline lost: PageRankVM %v vs FF %v",
			prvm.SLOPct.Median, ff.SLOPct.Median)
	}
}

func TestRunTimeSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts, err := RunTimeSeries(SimConfig{Trace: "google", Seed: 5, PMsPerType: 25}, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := 288
	for _, alg := range AlgorithmNames {
		steps := ts.Steps[alg]
		if len(steps) != wantSteps {
			t.Fatalf("%s recorded %d steps, want %d", alg, len(steps), wantSteps)
		}
		if steps[10].ActivePMs <= 0 {
			t.Fatalf("%s has no active PMs at step 10", alg)
		}
	}
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows := strings.Count(strings.TrimSpace(sb.String()), "\n")
	if rows != wantSteps*len(AlgorithmNames) {
		t.Fatalf("csv rows = %d, want %d", rows, wantSteps*len(AlgorithmNames))
	}
}
