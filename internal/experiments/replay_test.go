package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"pagerankvm/internal/obs/record"
)

// TestRecordReplayRoundTrip is the golden-regression contract end to
// end at the library layer: record a seeded run to disk, reconstruct
// the run from the file's header alone, and require the fresh decision
// stream to diff clean against the recorded one.
func TestRecordReplayRoundTrip(t *testing.T) {
	cfg := RecordConfig{Trace: "google", Seed: 9, NumVMs: 30, PMsPerType: 4, Steps: 24}
	path := filepath.Join(t.TempDir(), "run.jsonl.gz")
	res, ndec, err := RecordToFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ndec == 0 {
		t.Fatal("no decisions recorded")
	}

	hdr, recorded, spans, err := record.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recorded)) != ndec {
		t.Fatalf("file holds %d decisions, recorder counted %d", len(recorded), ndec)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if !reflect.DeepEqual(hdr.Meta, cfg.Meta()) {
		t.Fatalf("header meta %+v, want %+v", hdr.Meta, cfg.Meta())
	}

	replayed, _, rres, err := Replay(hdr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if sum := record.Diff(recorded, replayed); !sum.Clean() {
		t.Fatalf("replay diverges from recording: %+v (first: %+v)", sum, sum.First)
	}
	if rres != res {
		t.Fatalf("replay result %+v, want recorded %+v", rres, res)
	}
}

func TestConfigFromMetaRejectsUnreplayable(t *testing.T) {
	cases := []struct {
		name string
		meta record.RunMeta
	}{
		{"wrong kind", record.RunMeta{Kind: "bench"}},
		{"wrong algorithm", record.RunMeta{Kind: "sim", Algorithm: "FFDSum"}},
		{"unknown trace", record.RunMeta{Kind: "sim", Trace: "borg"}},
	}
	for _, tc := range cases {
		if _, err := ConfigFromMeta(tc.meta); err == nil {
			t.Errorf("%s: ConfigFromMeta accepted %+v", tc.name, tc.meta)
		}
	}
}

func TestConfigMetaRoundTrip(t *testing.T) {
	cfg := RecordConfig{Trace: "planetlab", Seed: 3, NumVMs: 50, PMsPerType: 5, Steps: 12, NoFastPath: true}
	got, err := ConfigFromMeta(cfg.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip %+v, want %+v", got, cfg)
	}
}
