// Package experiments wires the library's pieces into the paper's
// evaluation: the Amazon-EC2-style VM and PM catalogs (Tables I and
// II), quantization, rank-table registries, and one runner per paper
// table/figure.
package experiments

import (
	"fmt"

	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// Resource group names used by the catalogs.
const (
	GroupCPU  = "cpu"
	GroupMem  = "mem"
	GroupDisk = "disk"
)

// Quantization constants. The CPU quantum is per-PM-type (core GHz
// divided by VCPUsPerCore, matching the paper's GENI assumption that a
// physical core hosts 4 vCPUs); memory and disk quanta are global.
const (
	// VCPUsPerCore is how many quantized vCPU slots one physical core
	// provides, matching the paper's assumption that "each physical
	// CPU core can host 4 vCPUs".
	VCPUsPerCore = 4
	// MemQuantumGiB is the memory unit: the smallest Table I memory
	// demand (m3.medium / c3.large, 3.75 GiB).
	MemQuantumGiB = 3.75
	// DiskQuantumGB is the disk volume unit.
	DiskQuantumGB = 8
)

// VMTypeSpec is one row of Table I.
type VMTypeSpec struct {
	Name    string
	VCPUs   int
	VCPUGHz float64
	MemGiB  float64
	VDisks  int
	VDiskGB float64
}

// PMTypeSpec is one row of Table II.
type PMTypeSpec struct {
	Name    string
	Cores   int
	CoreGHz float64
	MemGiB  float64
	Disks   int
	DiskGB  float64
	// Power names the processor power model in internal/energy
	// (Table III column).
	Power string
}

// AmazonVMTypes returns Table I: the EC2 VM classes used throughout
// the evaluation.
func AmazonVMTypes() []VMTypeSpec {
	return []VMTypeSpec{
		{Name: "m3.medium", VCPUs: 1, VCPUGHz: 0.6, MemGiB: 3.75, VDisks: 1, VDiskGB: 4},
		{Name: "m3.large", VCPUs: 2, VCPUGHz: 0.6, MemGiB: 7.5, VDisks: 1, VDiskGB: 32},
		{Name: "m3.xlarge", VCPUs: 4, VCPUGHz: 0.6, MemGiB: 15, VDisks: 2, VDiskGB: 40},
		{Name: "m3.2xlarge", VCPUs: 8, VCPUGHz: 0.6, MemGiB: 30, VDisks: 2, VDiskGB: 80},
		{Name: "c3.large", VCPUs: 2, VCPUGHz: 0.7, MemGiB: 3.75, VDisks: 2, VDiskGB: 16},
		{Name: "c3.xlarge", VCPUs: 4, VCPUGHz: 0.7, MemGiB: 7.5, VDisks: 2, VDiskGB: 40},
	}
}

// AmazonPMTypes returns Table II: the M3 and C3 host classes.
func AmazonPMTypes() []PMTypeSpec {
	return []PMTypeSpec{
		{Name: "M3", Cores: 8, CoreGHz: 2.6, MemGiB: 64, Disks: 4, DiskGB: 250, Power: "E5-2670"},
		// Table II prints 7.5 GiB for the C3 host class — less than a
		// single m3.xlarge VM and surely a transcription slip (it
		// repeats c3.large's VM memory). We use 60 GiB, the published
		// memory of Amazon's c3-family hosts; see DESIGN.md §5.
		{Name: "C3", Cores: 8, CoreGHz: 2.8, MemGiB: 60, Disks: 4, DiskGB: 250, Power: "E5-2680"},
	}
}

// CPUQuantumGHz returns the per-core vCPU slot size of a PM type.
func (p PMTypeSpec) CPUQuantumGHz() float64 {
	return p.CoreGHz / VCPUsPerCore
}

// Shape builds the PM type's dimension layout: one dimension per
// physical core and per physical disk (the anti-collocation encoding),
// one memory dimension.
func (p PMTypeSpec) Shape() (*resource.Shape, error) {
	return resource.NewShape(
		resource.Group{Name: GroupCPU, Dims: p.Cores, Cap: VCPUsPerCore},
		resource.Group{Name: GroupMem, Dims: 1, Cap: resource.QuantizeCap(p.MemGiB, MemQuantumGiB)},
		resource.Group{Name: GroupDisk, Dims: p.Disks, Cap: resource.QuantizeCap(p.DiskGB, DiskQuantumGB)},
	)
}

// Quantize converts a Table I VM spec into integer-unit demands on a
// Table II PM type. The demand may be infeasible on the PM type (e.g.
// m3.xlarge memory exceeds a C3 host); feasibility is checked at
// placement time.
func (p PMTypeSpec) Quantize(vm VMTypeSpec) resource.VMType {
	cpuUnits := make([]int, vm.VCPUs)
	for i := range cpuUnits {
		cpuUnits[i] = resource.Quantize(vm.VCPUGHz, p.CPUQuantumGHz())
	}
	diskUnits := make([]int, vm.VDisks)
	for i := range diskUnits {
		diskUnits[i] = resource.Quantize(vm.VDiskGB, DiskQuantumGB)
	}
	return resource.NewVMType(vm.Name,
		resource.Demand{Group: GroupCPU, Units: cpuUnits},
		resource.Demand{Group: GroupMem, Units: []int{resource.Quantize(vm.MemGiB, MemQuantumGiB)}},
		resource.Demand{Group: GroupDisk, Units: diskUnits},
	)
}

// Catalog bundles the VM and PM specs with their derived shapes and
// per-PM-type quantized VM demands.
type Catalog struct {
	VMs []VMTypeSpec
	PMs []PMTypeSpec

	shapes  map[string]*resource.Shape
	demands map[string]map[string]resource.VMType // pm type -> vm type -> demand
}

// NewCatalog derives shapes and quantized demands for the given specs.
func NewCatalog(vms []VMTypeSpec, pms []PMTypeSpec) (*Catalog, error) {
	c := &Catalog{
		VMs:     vms,
		PMs:     pms,
		shapes:  make(map[string]*resource.Shape, len(pms)),
		demands: make(map[string]map[string]resource.VMType, len(pms)),
	}
	for _, pm := range pms {
		shape, err := pm.Shape()
		if err != nil {
			return nil, fmt.Errorf("experiments: pm type %s: %w", pm.Name, err)
		}
		c.shapes[pm.Name] = shape
		byVM := make(map[string]resource.VMType, len(vms))
		for _, vm := range vms {
			byVM[vm.Name] = pm.Quantize(vm)
		}
		c.demands[pm.Name] = byVM
	}
	return c, nil
}

// AmazonCatalog returns the paper's evaluation catalog (Tables I + II).
func AmazonCatalog() (*Catalog, error) {
	return NewCatalog(AmazonVMTypes(), AmazonPMTypes())
}

// VMMix is the request-frequency distribution over Table I types used
// by the workload generator. The paper only says VM types were chosen
// randomly; we use a mix weighted so that the aggregate demand is
// balanced across the CPU and memory dimensions (compute-optimized c3
// requests are common in practice), which is the regime where
// dimension-aware placement matters. The weights are documented in
// DESIGN.md and EXPERIMENTS.md.
func VMMix() map[string]float64 {
	return map[string]float64{
		"m3.medium":  0.10,
		"m3.large":   0.20,
		"m3.xlarge":  0.10,
		"m3.2xlarge": 0.10,
		"c3.large":   0.30,
		"c3.xlarge":  0.20,
	}
}

// SampleVMType draws a VM type name from VMMix using u in [0,1).
func SampleVMType(mix map[string]float64, names []string, u float64) string {
	total := 0.0
	for _, n := range names {
		total += mix[n]
	}
	target := u * total
	acc := 0.0
	for _, n := range names {
		acc += mix[n]
		if target < acc {
			return n
		}
	}
	return names[len(names)-1]
}

// Shape returns the shape of a PM type.
func (c *Catalog) Shape(pmType string) (*resource.Shape, bool) {
	s, ok := c.shapes[pmType]
	return s, ok
}

// Demand returns the quantized demand of a VM type on a PM type.
func (c *Catalog) Demand(pmType, vmType string) (resource.VMType, bool) {
	byVM, ok := c.demands[pmType]
	if !ok {
		return resource.VMType{}, false
	}
	d, ok := byVM[vmType]
	return d, ok
}

// NewVM builds a placement request for one instance of a VM type.
func (c *Catalog) NewVM(id int, vmType string) (*placement.VM, error) {
	req := make(map[string]resource.VMType, len(c.PMs))
	found := false
	for pmName, byVM := range c.demands {
		if d, ok := byVM[vmType]; ok {
			req[pmName] = d
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown vm type %q", vmType)
	}
	return &placement.VM{ID: id, Type: vmType, Req: req}, nil
}

// BuildCluster creates count PMs per PM type, in round-robin type
// order, so a heterogeneous inventory interleaves M3 and C3 hosts.
func (c *Catalog) BuildCluster(countPerType int) *placement.Cluster {
	pms := make([]*placement.PM, 0, countPerType*len(c.PMs))
	id := 0
	for i := 0; i < countPerType; i++ {
		for _, spec := range c.PMs {
			pms = append(pms, placement.NewPM(id, spec.Name, c.shapes[spec.Name]))
			id++
		}
	}
	return placement.NewCluster(pms)
}

// BuildRegistry builds one factored ranker per PM type. The factored
// ranker is the scalable default; the joint lattice of Table II hosts
// has ~10^6 canonical profiles (see DESIGN.md).
//
// Unless the caller supplies opts.Cache, the builds share a
// registry-local cache: PM types with overlapping group geometry and
// identical projected demands (Table II's M3 and C3 share the cpu and
// disk groups) then build each distinct per-group sub-table exactly
// once. Cached builds are bitwise-identical to uncached ones (see
// ranktable.Cache), so placement decisions are unaffected.
func (c *Catalog) BuildRegistry(opts ranktable.Options) (*ranktable.Registry, error) {
	if opts.Cache == nil {
		opts.Cache = ranktable.NewCache(0, opts.Obs)
	}
	reg := ranktable.NewRegistry()
	for _, pm := range c.PMs {
		var types []resource.VMType
		for _, vm := range c.VMs {
			d := c.demands[pm.Name][vm.Name]
			// A VM type whose demand can never fit this PM type (e.g.
			// m3.xlarge memory on a C3 host) contributes no edges.
			if d.Validate(c.shapes[pm.Name]) != nil {
				continue
			}
			types = append(types, d)
		}
		ranker, err := ranktable.NewFactored(c.shapes[pm.Name], types, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: ranker for %s: %w", pm.Name, err)
		}
		reg.Add(pm.Name, ranker)
	}
	return reg, nil
}
