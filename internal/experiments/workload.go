package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"pagerankvm/internal/opt"
	"pagerankvm/internal/sim"
	"pagerankvm/internal/trace"
)

// WorkloadConfig parameterizes the VM request stream of a simulation
// run. The paper's setup only states that VM types were drawn from
// Table I and traces from PlanetLab/Google; the batching and tenant
// correlation reflect how cloud requests actually arrive (tenants
// deploy groups of same-type VMs whose load is correlated) and are the
// regime in which dimension-aware placement differs from naive
// packing. All knobs are documented in EXPERIMENTS.md.
type WorkloadConfig struct {
	// NumVMs is the number of VM requests.
	NumVMs int
	// Seed drives the type draws and traces.
	Seed int64
	// Steps is the trace length (monitoring intervals).
	Steps int
	// MaxBatch is the largest tenant batch (same-type consecutive
	// requests); default 10.
	MaxBatch int
	// TenantBursts parameterizes the shared per-tenant load surges
	// overlaid on each VM's base trace; zero value takes the
	// trace.BurstConfig defaults.
	TenantBursts trace.BurstConfig
	// Mix is the request distribution over VM type names; default
	// VMMix().
	Mix map[string]float64
	// ChurnFraction in [0,1] is the share of tenants whose lease
	// starts after the initial allocation and may end before the
	// horizon (arrivals/departures during the day). Nil selects the
	// default 0.5; opt.F(0) disables churn.
	ChurnFraction *float64
	// MeanLeaseSteps is the mean lease duration of churning tenants;
	// 0 selects Steps/3.
	MeanLeaseSteps int
}

func (w WorkloadConfig) withDefaults() WorkloadConfig {
	if w.MaxBatch == 0 {
		w.MaxBatch = 10
	}
	if w.Mix == nil {
		w.Mix = VMMix()
	}
	churn := opt.Or(w.ChurnFraction, 0.5)
	if churn < 0 {
		churn = 0
	}
	w.ChurnFraction = &churn
	if w.MeanLeaseSteps == 0 {
		w.MeanLeaseSteps = w.Steps / 3
	}
	return w
}

// tenantIDBase offsets tenant series ids away from VM ids in the
// generators' seed space.
const tenantIDBase = 1 << 24

// GenWorkloads builds the VM request stream with traces: tenants
// arrive with geometric-ish batch sizes of one VM type each, and every
// VM's utilization blends the tenant's shared series with its own.
func (c *Catalog) GenWorkloads(gen trace.Generator, cfg WorkloadConfig) ([]sim.Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.NumVMs <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("experiments: workload needs NumVMs and Steps, got %d/%d", cfg.NumVMs, cfg.Steps)
	}
	names := make([]string, 0, len(c.VMs))
	for _, vm := range c.VMs {
		names = append(names, vm.Name)
	}
	sort.Strings(names)

	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]sim.Workload, 0, cfg.NumVMs)
	tenant := 0
	for len(out) < cfg.NumVMs {
		typeName := SampleVMType(cfg.Mix, names, rng.Float64())
		batch := 1 + rng.Intn(cfg.MaxBatch)
		shared := trace.Bursts(cfg.Seed, tenantIDBase+tenant, cfg.Steps, cfg.TenantBursts)

		// The whole tenant shares one lease window.
		start, end := 0, 0
		if cfg.Steps > 1 && rng.Float64() < *cfg.ChurnFraction {
			start = rng.Intn(cfg.Steps * 7 / 10)
			lease := 1 + int(rng.ExpFloat64()*float64(cfg.MeanLeaseSteps))
			if e := start + lease; e < cfg.Steps {
				end = e
			}
		}

		for b := 0; b < batch && len(out) < cfg.NumVMs; b++ {
			id := len(out)
			vm, err := c.NewVM(id, typeName)
			if err != nil {
				return nil, err
			}
			own := gen.Series(id, cfg.Steps)
			out = append(out, sim.Workload{
				VM:    vm,
				Trace: trace.Overlay(own, shared),
				Start: start,
				End:   end,
			})
		}
		tenant++
	}
	return out, nil
}
