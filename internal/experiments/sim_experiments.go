package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"pagerankvm/internal/energy"
	"pagerankvm/internal/metrics"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/sim"
	"pagerankvm/internal/trace"
)

// Algorithms evaluated in the paper, in its presentation order.
var AlgorithmNames = []string{"PageRankVM", "FF", "FFDSum", "CompVM"}

// SimConfig parameterizes the simulation sweeps behind Figures 3, 5,
// 6 and 7.
type SimConfig struct {
	// Trace is "planetlab" or "google".
	Trace string
	// NumVMs are the sweep points; the paper uses 1000, 2000, 3000.
	NumVMs []int
	// Reps is the number of repetitions per point (the paper: 100).
	Reps int
	// Seed is the base seed; repetition r of a point uses Seed+r.
	Seed int64
	// PMsPerType sizes the inventory (per Table II type).
	PMsPerType int
	// Workload tunes the request stream; NumVMs/Seed/Steps are
	// overridden per point.
	Workload WorkloadConfig
	// Rank tunes the Profile→score tables.
	Rank ranktable.Options
	// Underload, when positive, enables the simulator's dynamic
	// consolidation at that utilization threshold (an extension; the
	// paper's setup leaves it off).
	Underload float64
	// Obs, when non-nil, receives runtime telemetry from every layer
	// of the sweep: table builds, the PageRankVM placer, and the
	// simulator (the -obsaddr/-metrics-out hook of cmd/prvm-sim).
	Obs *obs.Observer
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Trace == "" {
		c.Trace = "planetlab"
	}
	if len(c.NumVMs) == 0 {
		c.NumVMs = []int{1000, 2000, 3000}
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PMsPerType == 0 {
		c.PMsPerType = 400
	}
	return c
}

// SimCell is one (algorithm, numVMs) cell of a sweep: the four
// metric summaries over the repetitions.
type SimCell struct {
	Algorithm  string
	NumVMs     int
	PMsUsed    metrics.Summary
	EnergyKWh  metrics.Summary
	Migrations metrics.Summary
	SLOPct     metrics.Summary
}

// SimSweep holds the full grid for one trace — the data behind one
// column of Figures 3, 5, 6 and 7.
type SimSweep struct {
	Trace string
	Cells []SimCell
}

// RunSimSweep runs the paper's simulation grid: every algorithm at
// every VM count, Reps times each, and summarizes the four metrics.
func RunSimSweep(cfg SimConfig) (*SimSweep, error) {
	cfg = cfg.withDefaults()
	cat, err := AmazonCatalog()
	if err != nil {
		return nil, err
	}
	if cfg.Rank.Obs == nil {
		cfg.Rank.Obs = cfg.Obs
	}
	reg, err := cat.BuildRegistry(cfg.Rank)
	if err != nil {
		return nil, err
	}
	models := map[string]*energy.Model{}
	for _, pm := range cat.PMs {
		m, err := energy.ByName(pm.Power)
		if err != nil {
			return nil, err
		}
		models[pm.Name] = m
	}

	sweep := &SimSweep{Trace: cfg.Trace}
	for _, n := range cfg.NumVMs {
		results := make(map[string]*simAccum, len(AlgorithmNames))
		for _, name := range AlgorithmNames {
			results[name] = &simAccum{}
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + int64(rep)
			gen, err := trace.ByName(cfg.Trace, seed)
			if err != nil {
				return nil, err
			}
			wcfg := cfg.Workload
			wcfg.NumVMs = n
			wcfg.Seed = seed
			wcfg.Steps = sim.Config{}.Steps()
			workloads, err := cat.GenWorkloads(gen, wcfg)
			if err != nil {
				return nil, err
			}
			for _, name := range AlgorithmNames {
				placer, evictor := buildAlgorithmObserved(name, reg, seed, cfg.Obs)
				cluster := cat.BuildCluster(cfg.PMsPerType)
				// Workloads are stateless inputs; a fresh copy of the
				// VM structs is not needed because placement never
				// mutates them, but each run needs its own cluster.
				s, err := sim.New(sim.Config{UnderloadThreshold: cfg.Underload, Obs: cfg.Obs},
					cluster, placer, evictor, models, workloads)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s n=%d rep=%d: %w", name, n, rep, err)
				}
				res, err := s.Run()
				if err != nil {
					return nil, fmt.Errorf("experiments: %s n=%d rep=%d: %w", name, n, rep, err)
				}
				results[name].add(res)
			}
		}
		for _, name := range AlgorithmNames {
			a := results[name]
			sweep.Cells = append(sweep.Cells, SimCell{
				Algorithm:  name,
				NumVMs:     n,
				PMsUsed:    metrics.Summarize(a.pms),
				EnergyKWh:  metrics.Summarize(a.energy),
				Migrations: metrics.Summarize(a.migr),
				SLOPct:     metrics.Summarize(a.slo),
			})
		}
	}
	return sweep, nil
}

type simAccum struct {
	pms, energy, migr, slo []float64
}

func (a *simAccum) add(r sim.Result) {
	a.pms = append(a.pms, float64(r.PMsUsed))
	a.energy = append(a.energy, r.EnergyKWh)
	a.migr = append(a.migr, float64(r.Migrations))
	a.slo = append(a.slo, r.SLOViolationPct)
}

// buildAlgorithm instantiates the placer and eviction policy for one
// of the paper's four algorithms. Baselines use CloudSim's default
// minimum-migration-time eviction, as the paper prescribes.
func buildAlgorithm(name string, reg *ranktable.Registry, seed int64) (placement.Placer, placement.Evictor) {
	return buildAlgorithmObserved(name, reg, seed, nil)
}

// buildAlgorithmObserved is buildAlgorithm with telemetry attached to
// the PageRankVM placer (the baselines have no hot-path instruments).
func buildAlgorithmObserved(name string, reg *ranktable.Registry, seed int64, o *obs.Observer) (placement.Placer, placement.Evictor) {
	switch name {
	case "FF":
		return placement.FirstFit{}, placement.MMTEvictor{}
	case "FFDSum":
		return placement.FFDSum{}, placement.MMTEvictor{}
	case "CompVM":
		return placement.CompVM{}, placement.MMTEvictor{}
	default: // PageRankVM
		p := placement.NewPageRankVM(reg, placement.WithSeed(seed), placement.WithObserver(o))
		return p, placement.RankEvictor{Placer: p}
	}
}

// Metric identifies one of the four reported metrics.
type Metric int

const (
	MetricPMs Metric = iota
	MetricEnergy
	MetricMigrations
	MetricSLO
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricPMs:
		return "PMs used"
	case MetricEnergy:
		return "energy (kWh)"
	case MetricMigrations:
		return "VM migrations"
	default:
		return "SLO violations (%)"
	}
}

// Summary extracts one metric's summary from a cell.
func (c SimCell) Summary(m Metric) metrics.Summary {
	switch m {
	case MetricPMs:
		return c.PMsUsed
	case MetricEnergy:
		return c.EnergyKWh
	case MetricMigrations:
		return c.Migrations
	default:
		return c.SLOPct
	}
}

// WriteFigure renders one figure's data (one metric of the sweep) as
// the median [p1, p99] series the paper plots.
func (s *SimSweep) WriteFigure(w io.Writer, m Metric, title string) error {
	if _, err := fmt.Fprintf(w, "%s — %s trace, metric: %s\n", title, s.Trace, m); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	counts := s.vmCounts()
	fmt.Fprint(tw, "algorithm")
	for _, n := range counts {
		fmt.Fprintf(tw, "\t%d VMs", n)
	}
	fmt.Fprintln(tw)
	for _, alg := range AlgorithmNames {
		fmt.Fprint(tw, alg)
		for _, n := range counts {
			cell, ok := s.cell(alg, n)
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			sum := cell.Summary(m)
			fmt.Fprintf(tw, "\t%.1f [%.1f, %.1f]", sum.Median, sum.P1, sum.P99)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV emits the sweep in tidy form — one row per (algorithm,
// numVMs, metric) with median and percentile columns — ready for any
// plotting tool.
func (s *SimSweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace", "algorithm", "num_vms", "metric", "median", "p1", "p99", "reps"}); err != nil {
		return err
	}
	for _, c := range s.Cells {
		for _, m := range []Metric{MetricPMs, MetricEnergy, MetricMigrations, MetricSLO} {
			sum := c.Summary(m)
			rec := []string{
				s.Trace,
				c.Algorithm,
				strconv.Itoa(c.NumVMs),
				m.String(),
				formatFloat(sum.Median),
				formatFloat(sum.P1),
				formatFloat(sum.P99),
				strconv.Itoa(sum.N),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }

func (s *SimSweep) vmCounts() []int {
	seen := map[int]bool{}
	var counts []int
	for _, c := range s.Cells {
		if !seen[c.NumVMs] {
			seen[c.NumVMs] = true
			counts = append(counts, c.NumVMs)
		}
	}
	sort.Ints(counts)
	return counts
}

func (s *SimSweep) cell(alg string, n int) (SimCell, bool) {
	for _, c := range s.Cells {
		if c.Algorithm == alg && c.NumVMs == n {
			return c, true
		}
	}
	return SimCell{}, false
}
