package experiments

// Decision recording and replay (DESIGN.md §11). A recording's header
// carries the full deterministic input of a seeded PageRankVM
// simulation — trace, seed, VM count, inventory size, horizon — so a
// later build can reconstruct the run bit-for-bit and diff its
// decision stream against the recorded one. cmd/prvm-replay drives
// this for golden regressions; cmd/prvm-sim's -record flag produces
// the recordings.

import (
	"fmt"
	"time"

	"pagerankvm/internal/deschedule"
	"pagerankvm/internal/energy"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/sim"
	"pagerankvm/internal/trace"
)

// RecordConfig is the minimal deterministic input of one recorded
// PageRankVM simulation run — exactly the fields a recording's header
// must carry for `prvm-replay -verify` to reconstruct it.
type RecordConfig struct {
	// Trace is "planetlab" or "google" (default planetlab).
	Trace string
	// Seed drives workload generation, traces and tie-breaking.
	Seed int64
	// NumVMs is the request count (default 200).
	NumVMs int
	// PMsPerType sizes the inventory per Table II type (default 40).
	PMsPerType int
	// Steps is the horizon in monitoring intervals (default: the
	// simulator's 24 h / 300 s).
	Steps int
	// NoFastPath disables the id-indexed scoring engine, recording
	// the legacy string-key path instead. Decision identity is
	// engine-independent, so recordings of the two variants diff
	// clean; the flag is kept in the header for honest provenance.
	NoFastPath bool
	// RebalanceEvery, when positive, enables the descheduler: one
	// rebalance round every that many monitoring intervals. Rebalance
	// moves are part of decision identity (each is a release+place op
	// pair in the recording), so the header must carry the full
	// descheduler configuration.
	RebalanceEvery int
	// RebalanceBudget is the per-round migration budget
	// (deschedule.Config.MaxMovesPerRound; 0 = engine default).
	RebalanceBudget int
	// RebalancePMBudget caps per-source moves per round
	// (deschedule.Config.MaxMovesPerPM; 0 = engine default).
	RebalancePMBudget int
	// RebalanceDrainBelow is the drain-pass fill threshold
	// (deschedule.Config.DrainBelow; 0 disables the drain pass).
	RebalanceDrainBelow float64
}

func (c RecordConfig) withDefaults() RecordConfig {
	if c.Trace == "" {
		c.Trace = "planetlab"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumVMs == 0 {
		c.NumVMs = 200
	}
	if c.PMsPerType == 0 {
		c.PMsPerType = 40
	}
	if c.Steps == 0 {
		c.Steps = sim.Config{}.Steps()
	}
	return c
}

// Meta renders the config as a recording header, the inverse of
// ConfigFromMeta.
func (c RecordConfig) Meta() record.RunMeta {
	c = c.withDefaults()
	return record.RunMeta{
		Kind:                "sim",
		Trace:               c.Trace,
		Seed:                c.Seed,
		NumVMs:              c.NumVMs,
		PMsPerType:          c.PMsPerType,
		Steps:               c.Steps,
		Algorithm:           "PageRankVM",
		NoFastPath:          c.NoFastPath,
		RebalanceEvery:      c.RebalanceEvery,
		RebalanceBudget:     c.RebalanceBudget,
		RebalancePMBudget:   c.RebalancePMBudget,
		RebalanceDrainBelow: c.RebalanceDrainBelow,
	}
}

// ConfigFromMeta reconstructs the run config from a recording header,
// rejecting recordings this build cannot replay.
func ConfigFromMeta(m record.RunMeta) (RecordConfig, error) {
	if m.Kind != "sim" {
		return RecordConfig{}, fmt.Errorf("experiments: recording kind %q is not replayable (want \"sim\")", m.Kind)
	}
	if m.Algorithm != "" && m.Algorithm != "PageRankVM" {
		return RecordConfig{}, fmt.Errorf("experiments: recorded algorithm %q is not replayable", m.Algorithm)
	}
	cfg := RecordConfig{
		Trace:               m.Trace,
		Seed:                m.Seed,
		NumVMs:              m.NumVMs,
		PMsPerType:          m.PMsPerType,
		Steps:               m.Steps,
		NoFastPath:          m.NoFastPath,
		RebalanceEvery:      m.RebalanceEvery,
		RebalanceBudget:     m.RebalanceBudget,
		RebalancePMBudget:   m.RebalancePMBudget,
		RebalanceDrainBelow: m.RebalanceDrainBelow,
	}.withDefaults()
	if _, err := trace.ByName(cfg.Trace, cfg.Seed); err != nil {
		return RecordConfig{}, fmt.Errorf("experiments: recording header: %w", err)
	}
	return cfg, nil
}

// RunRecorded runs one seeded PageRankVM simulation over the Amazon
// catalog with rec attached to every layer: rank-table builds, the
// placer (decision stream + phase timings), and the simulator (tick
// spans). rec may be nil, in which case this is just a plain seeded
// run — useful for timing the replay itself.
func RunRecorded(cfg RecordConfig, rec *record.Recorder) (sim.Result, error) {
	cfg = cfg.withDefaults()
	cat, err := AmazonCatalog()
	if err != nil {
		return sim.Result{}, err
	}
	reg, err := cat.BuildRegistry(ranktable.Options{Recorder: rec})
	if err != nil {
		return sim.Result{}, err
	}
	gen, err := trace.ByName(cfg.Trace, cfg.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	workloads, err := cat.GenWorkloads(gen, WorkloadConfig{
		NumVMs: cfg.NumVMs,
		Seed:   cfg.Seed,
		Steps:  cfg.Steps,
	})
	if err != nil {
		return sim.Result{}, err
	}
	popts := []placement.PageRankOption{
		placement.WithSeed(cfg.Seed),
		placement.WithRecorder(rec),
	}
	if cfg.NoFastPath {
		popts = append(popts, placement.WithoutFastPath())
	}
	placer := placement.NewPageRankVM(reg, popts...)
	models := map[string]*energy.Model{}
	for _, pm := range cat.PMs {
		m, err := energy.ByName(pm.Power)
		if err != nil {
			return sim.Result{}, err
		}
		models[pm.Name] = m
	}
	scfg := sim.Config{
		Horizon:        time.Duration(cfg.Steps) * sim.DefaultInterval,
		Recorder:       rec,
		RebalanceEvery: cfg.RebalanceEvery,
		Rebalance: deschedule.Config{
			MaxMovesPerRound: cfg.RebalanceBudget,
			MaxMovesPerPM:    cfg.RebalancePMBudget,
			DrainBelow:       cfg.RebalanceDrainBelow,
		},
	}
	s, err := sim.New(scfg, cat.BuildCluster(cfg.PMsPerType), placer,
		placement.RankEvictor{Placer: placer}, models, workloads)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run()
}

// Replay reconstructs the run a recording header describes and returns
// the decision and span streams the current code produces for it.
// Diffing the returned decisions against the recording's is the golden
// regression `prvm-replay -verify` performs.
func Replay(meta record.RunMeta) ([]record.Decision, []record.Span, sim.Result, error) {
	cfg, err := ConfigFromMeta(meta)
	if err != nil {
		return nil, nil, sim.Result{}, err
	}
	rec := record.NewCollector()
	res, err := RunRecorded(cfg, rec)
	if err != nil {
		return nil, nil, sim.Result{}, err
	}
	if err := rec.Err(); err != nil {
		return nil, nil, sim.Result{}, err
	}
	return rec.Decisions(), rec.Spans(), res, nil
}

// RecordToFile runs the config and writes the recording to path
// (gzip-compressed when path ends in ".gz"), returning the sim result
// and the number of decisions captured.
func RecordToFile(path string, cfg RecordConfig) (sim.Result, int64, error) {
	cfg = cfg.withDefaults()
	rec, err := record.Create(path, cfg.Meta())
	if err != nil {
		return sim.Result{}, 0, err
	}
	res, err := RunRecorded(cfg, rec)
	ndec, _ := rec.Counts()
	if cerr := rec.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return sim.Result{}, 0, err
	}
	return res, ndec, nil
}
