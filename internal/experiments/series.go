package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"pagerankvm/internal/energy"
	"pagerankvm/internal/sim"
	"pagerankvm/internal/trace"
)

// TimeSeries holds one simulated day's per-interval dynamics for every
// algorithm — the raw signal behind the aggregate figures (active PMs,
// migrations, overloads, utilization per 300 s interval).
type TimeSeries struct {
	Trace  string
	NumVMs int
	Steps  map[string][]sim.StepStats // algorithm -> per-step stats
}

// RunTimeSeries runs one seeded simulation per algorithm, recording
// every monitoring interval via the simulator's observer hook.
func RunTimeSeries(cfg SimConfig, numVMs int) (*TimeSeries, error) {
	cfg = cfg.withDefaults()
	cat, err := AmazonCatalog()
	if err != nil {
		return nil, err
	}
	if cfg.Rank.Obs == nil {
		cfg.Rank.Obs = cfg.Obs
	}
	reg, err := cat.BuildRegistry(cfg.Rank)
	if err != nil {
		return nil, err
	}
	models := map[string]*energy.Model{}
	for _, pm := range cat.PMs {
		m, err := energy.ByName(pm.Power)
		if err != nil {
			return nil, err
		}
		models[pm.Name] = m
	}
	gen, err := trace.ByName(cfg.Trace, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wcfg := cfg.Workload
	wcfg.NumVMs = numVMs
	wcfg.Seed = cfg.Seed
	wcfg.Steps = sim.Config{}.Steps()
	workloads, err := cat.GenWorkloads(gen, wcfg)
	if err != nil {
		return nil, err
	}

	out := &TimeSeries{
		Trace:  cfg.Trace,
		NumVMs: numVMs,
		Steps:  make(map[string][]sim.StepStats, len(AlgorithmNames)),
	}
	for _, name := range AlgorithmNames {
		placer, evictor := buildAlgorithmObserved(name, reg, cfg.Seed, cfg.Obs)
		cluster := cat.BuildCluster(cfg.PMsPerType)
		var steps []sim.StepStats
		simCfg := sim.Config{
			UnderloadThreshold: cfg.Underload,
			Observer:           func(s sim.StepStats) { steps = append(steps, s) },
			Obs:                cfg.Obs,
		}
		run, err := sim.New(simCfg, cluster, placer, evictor, models, workloads)
		if err != nil {
			return nil, fmt.Errorf("experiments: series %s: %w", name, err)
		}
		if _, err := run.Run(); err != nil {
			return nil, fmt.Errorf("experiments: series %s: %w", name, err)
		}
		out.Steps[name] = steps
	}
	return out, nil
}

// WriteCSV emits the time series in tidy form: one row per
// (algorithm, step).
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"trace", "num_vms", "algorithm", "step",
		"active_pms", "placed_vms", "migrations", "overloaded_pms", "violated_pms", "mean_cpu_util"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, alg := range AlgorithmNames {
		for _, s := range ts.Steps[alg] {
			rec := []string{
				ts.Trace,
				strconv.Itoa(ts.NumVMs),
				alg,
				strconv.Itoa(s.Step),
				strconv.Itoa(s.ActivePMs),
				strconv.Itoa(s.PlacedVMs),
				strconv.Itoa(s.Migrations),
				strconv.Itoa(s.OverloadedPMs),
				strconv.Itoa(s.ViolatedPMs),
				formatFloat(s.MeanCPUUtil),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
