package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"pagerankvm/internal/energy"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// WriteTable1 renders Table I (the VM type catalog).
func WriteTable1(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table I — description of VM types"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "VM type\tvCPUs\tvCPU GHz\tmemory GiB\tvdisks\tvdisk GB")
	for _, vm := range AmazonVMTypes() {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2f\t%d\t%.0f\n",
			vm.Name, vm.VCPUs, vm.VCPUGHz, vm.MemGiB, vm.VDisks, vm.VDiskGB)
	}
	return tw.Flush()
}

// WriteTable2 renders Table II (the PM type catalog) together with the
// derived quantized shapes.
func WriteTable2(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table II — description of PM types"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PM type\tcores\tcore GHz\tmemory GiB\tdisks\tdisk GB\tpower model\tshape (units)")
	for _, pm := range AmazonPMTypes() {
		shape, err := pm.Shape()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%d\t%.0f\t%s\t%dx cpu cap %d, mem cap %d, %dx disk cap %d\n",
			pm.Name, pm.Cores, pm.CoreGHz, pm.MemGiB, pm.Disks, pm.DiskGB, pm.Power,
			shape.Group(0).Dims, shape.Group(0).Cap,
			shape.Group(1).Cap,
			shape.Group(2).Dims, shape.Group(2).Cap)
	}
	return tw.Flush()
}

// WriteTable3 renders Table III (power versus CPU utilization).
func WriteTable3(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table III — power consumption vs. CPU utilization"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	models := []*energy.Model{energy.E52670(), energy.E52680()}
	utils, _ := models[0].Breakpoints()
	fmt.Fprint(tw, "CPU util.")
	for _, u := range utils {
		fmt.Fprintf(tw, "\t%.0f%%", 100*u)
	}
	fmt.Fprintln(tw)
	for _, m := range models {
		fmt.Fprintf(tw, "%s (W)", m.Name())
		for _, u := range utils {
			fmt.Fprintf(tw, "\t%.1f", m.Power(u))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Figure1Profiles are the example profiles whose ranks Figure 1 and
// the Section III/V discussions reference.
func Figure1Profiles() []resource.Vec {
	return []resource.Vec{
		{4, 4, 4, 4}, {4, 4, 3, 3}, {3, 3, 3, 3}, {4, 4, 2, 2},
		{4, 3, 3, 3}, {3, 3, 2, 2}, {2, 2, 2, 2}, {1, 1, 1, 1},
		{1, 1, 0, 0}, {0, 0, 0, 0},
	}
}

// PaperExampleTable builds the Profile→score table of the paper's
// running example: a PM with capacity [4,4,4,4] and the VM type set
// {[1,1],[1,1,1,1]}.
func PaperExampleTable(opts ranktable.Options) (*ranktable.Table, error) {
	shape, err := resource.NewShape(resource.Group{Name: GroupCPU, Dims: 4, Cap: 4})
	if err != nil {
		return nil, err
	}
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: GroupCPU, Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: GroupCPU, Units: []int{1, 1, 1, 1}}),
	}
	return ranktable.NewJoint(shape, types, opts)
}

// WriteFigure1 renders the rank values of the example profiles (the
// paper's Figure 1 PageRank graph annotations).
func WriteFigure1(w io.Writer, opts ranktable.Options) error {
	table, err := PaperExampleTable(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Figure 1 — rank values of PM profiles (capacity [4,4,4,4], VM types {[1,1],[1,1,1,1]}, mode %s)\n", opts.Mode); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "profile\trank")
	for _, p := range Figure1Profiles() {
		score, ok := table.Score(p)
		if !ok {
			return fmt.Errorf("experiments: no score for %v", p)
		}
		fmt.Fprintf(tw, "%v\t%.6f\n", p, score)
	}
	return tw.Flush()
}

// Figure2Comparison captures the paper's Figure 2 / Section III-B
// quality claims and whether the built table reproduces them.
type Figure2Comparison struct {
	Better, Worse resource.Vec
	BetterScore   float64
	WorseScore    float64
	Holds         bool
}

// RunFigure2 evaluates the paper's two worked profile-quality
// comparisons against a table.
func RunFigure2(opts ranktable.Options) ([]Figure2Comparison, error) {
	table, err := PaperExampleTable(opts)
	if err != nil {
		return nil, err
	}
	pairs := []struct{ better, worse resource.Vec }{
		// Figure 2: [3,3,3,3] has more ways to the best profile than
		// [4,4,2,2].
		{better: resource.Vec{3, 3, 3, 3}, worse: resource.Vec{4, 4, 2, 2}},
		// Section III-B: [3,3,2,2] can still reach the best profile,
		// [4,3,3,3] cannot.
		{better: resource.Vec{3, 3, 2, 2}, worse: resource.Vec{4, 3, 3, 3}},
	}
	out := make([]Figure2Comparison, 0, len(pairs))
	for _, p := range pairs {
		b, okB := table.Score(p.better)
		v, okW := table.Score(p.worse)
		if !okB || !okW {
			return nil, fmt.Errorf("experiments: missing score for figure 2 profiles")
		}
		out = append(out, Figure2Comparison{
			Better: p.better, Worse: p.worse,
			BetterScore: b, WorseScore: v,
			Holds: b > v,
		})
	}
	return out, nil
}

// WriteFigure2 renders the Figure 2 comparisons.
func WriteFigure2(w io.Writer, opts ranktable.Options) error {
	comps, err := RunFigure2(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Figure 2 — profile quality comparisons (mode %s)\n", opts.Mode); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "claimed better\tscore\tclaimed worse\tscore\tholds")
	for _, c := range comps {
		fmt.Fprintf(tw, "%v\t%.6f\t%v\t%.6f\t%v\n", c.Better, c.BetterScore, c.Worse, c.WorseScore, c.Holds)
	}
	return tw.Flush()
}
