package pagerankvm_test

// Micro-benchmarks for the integer-indexed hot paths (see DESIGN.md
// "Indexing & concurrency model"): id-indexed candidate scoring vs the
// string-key enumeration path, serial vs parallel lattice wiring, and
// the CSR PageRank core vs the slice-based entry point. cmd/prvm-bench
// runs these and records the comparison in BENCH_pr3.json.

import (
	"io"
	"testing"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/lattice"
	"pagerankvm/internal/obs/record"
	"pagerankvm/internal/pagerank"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

// benchPlaceLookup measures one candidate evaluation of Algorithm 2's
// inner loop — "score the best accommodation of this VM on this PM" —
// against the production M3/C3 factored tables, with the id-indexed
// fast path on or off.
func benchPlaceLookup(b *testing.B, opts ...placement.PageRankOption) {
	b.Helper()
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg, append([]placement.PageRankOption{placement.WithSeed(1)}, opts...)...)
	cluster := cat.BuildCluster(4)
	// Load one PM with a realistic mixed profile.
	for id := 0; id < 6; id++ {
		vm, err := cat.NewVM(id, "m3.large")
		if err != nil {
			b.Fatal(err)
		}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			b.Fatal(err)
		}
	}
	pm := cluster.UsedPMs()[0]
	probe, err := cat.NewVM(10_000, "c3.xlarge")
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := placer.ScoreOn(pm, probe); !ok {
		b.Fatal("probe does not fit the loaded PM")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := placer.ScoreOn(pm, probe); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkPlaceLookup(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchPlaceLookup(b) })
	b.Run("legacy", func(b *testing.B) { benchPlaceLookup(b, placement.WithoutFastPath()) })
}

// BenchmarkRecordOverhead measures one full Place decision against the
// production catalog with decision recording off and on. "off" is the
// acceptance bar: a disabled recorder must cost nothing measurable
// (one nil check) relative to the pre-recording hot path; "on" prices
// the candidate capture + JSONL encode for capacity planning. The
// ~25ns ScoreOn path itself carries no recording branch at all — see
// BenchmarkPlaceLookup for its unchanged numbers.
func BenchmarkRecordOverhead(b *testing.B) {
	run := func(b *testing.B, rec *record.Recorder) {
		b.Helper()
		cat, err := experiments.AmazonCatalog()
		if err != nil {
			b.Fatal(err)
		}
		reg, err := cat.BuildRegistry(ranktable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		placer := placement.NewPageRankVM(reg,
			placement.WithSeed(1), placement.WithRecorder(rec))
		cluster := cat.BuildCluster(4)
		for id := 0; id < 6; id++ {
			vm, err := cat.NewVM(id, "m3.large")
			if err != nil {
				b.Fatal(err)
			}
			pm, assign, err := placer.Place(cluster, vm, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.Host(pm, vm, assign); err != nil {
				b.Fatal(err)
			}
		}
		probe, err := cat.NewVM(10_000, "c3.xlarge")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Place without Host: a pure decision, repeatable each
			// iteration against the same cluster state.
			if _, _, err := placer.Place(cluster, probe, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		rec, err := record.NewWriter(io.Discard, record.RunMeta{Kind: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		run(b, rec)
	})
}

// BenchmarkSpaceWire builds the heaviest production sub-lattice (the
// M3 disk group: C(35,4) = 52360 nodes) serially and with all cores.
func BenchmarkSpaceWire(b *testing.B) {
	shape := resource.MustShape(resource.Group{Name: "disk", Dims: 4, Cap: 31})
	types := []resource.VMType{
		resource.NewVMType("m3.large", resource.Demand{Group: "disk", Units: []int{5}}),
		resource.NewVMType("m3.xlarge", resource.Demand{Group: "disk", Units: []int{5, 5}}),
		resource.NewVMType("m3.2xlarge", resource.Demand{Group: "disk", Units: []int{10, 10}}),
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := lattice.NewSpace(shape, types, lattice.Options{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if s.Edges() == 0 {
				b.Fatal("no edges wired")
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTableCache prices the shape-keyed table cache: "hit" is the
// steady-state lookup of an already-built table (key assembly in a
// stack buffer + map probe + closed-channel receive; must be
// zero-alloc, see alloc_gate_test.go), "miss" is a cold build through
// the cache on a small lattice — the cost a heterogeneous fleet pays
// once per distinct (shape, VM types, options) key.
func BenchmarkTableCache(b *testing.B) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[2]", resource.Demand{Group: "cpu", Units: []int{2}}),
	}
	b.Run("hit", func(b *testing.B) {
		c := ranktable.NewCache(0, nil)
		opts := ranktable.Options{Cache: c}
		if _, err := ranktable.NewJoint(shape, types, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ranktable.NewJoint(shape, types, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := ranktable.Options{Cache: ranktable.NewCache(0, nil)}
			if _, err := ranktable.NewJoint(shape, types, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRanksCSR compares the PageRank iteration over a prebuilt
// CSR graph with the per-node-slice entry point (which must flatten
// per call) on the paper's example lattice scaled up.
func BenchmarkRanksCSR(b *testing.B) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 6, Cap: 6})
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[2,2,2]", resource.Demand{Group: "cpu", Units: []int{2, 2, 2}}),
	}
	s, err := lattice.NewSpace(shape, types, lattice.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := pagerank.CSR{Offsets: s.SuccOffsets(), Edges: s.SuccArena()}
	succ := make([][]int32, s.Len())
	for i := range succ {
		succ[i] = s.Succ(i)
	}
	b.Run("slices", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.Ranks(succ, pagerank.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.RanksCSR(g, pagerank.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
