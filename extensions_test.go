package pagerankvm_test

import (
	"testing"

	"pagerankvm"
)

func TestFacadeNetworkExtension(t *testing.T) {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	vt := pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}})
	table, err := pagerankvm.BuildJointTable(shape, []pagerankvm.VMType{vt}, pagerankvm.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := pagerankvm.NewRegistry()
	reg.Add("h", table)

	pms := []*pagerankvm.PM{
		pagerankvm.NewPM(0, "h", shape),
		pagerankvm.NewPM(1, "h", shape),
		pagerankvm.NewPM(2, "h", shape),
		pagerankvm.NewPM(3, "h", shape),
	}
	cluster := pagerankvm.NewCluster(pms)
	topo, err := pagerankvm.NewTopology(pms, 2)
	if err != nil {
		t.Fatal(err)
	}
	traffic := pagerankvm.TenantTraffic([][]int{{0, 1, 2}}, 5)
	if traffic.Between(0, 2) != 5 {
		t.Fatal("tenant traffic missing")
	}

	inner := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1))
	placer := pagerankvm.NewNetworkAwarePlacer(inner, topo, traffic, 0.2)
	for i := 0; i < 3; i++ {
		vm := &pagerankvm.VM{ID: i, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": vt}}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	// One tenant, freshly consolidated: no cross-rack traffic.
	if got := pagerankvm.CrossRackTraffic(cluster, topo, traffic); got != 0 {
		t.Fatalf("CrossRackTraffic = %v, want 0", got)
	}
}

func TestFacadeTestbed(t *testing.T) {
	reg, err := pagerankvm.TestbedRegistry(pagerankvm.RankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	placer := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1))
	evictor := pagerankvm.RankEvictor{Placer: placer}

	h, err := pagerankvm.LaunchTestbed(2, pagerankvm.TestbedInMemory)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := pagerankvm.GenTestbedJobs(pagerankvm.TestbedJobConfig{
		NumJobs: 8, Steps: 30, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := pagerankvm.NewTestbedController(
		pagerankvm.TestbedConfig{Steps: 30}, h, placer, evictor, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if res.PMsUsed <= 0 {
		t.Fatalf("result %+v", res)
	}
}
